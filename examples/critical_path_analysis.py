#!/usr/bin/env python
"""Online critical-path analysis of SLATE's tiled Cholesky.

Uses Critter purely as a profiler (never-skip policy) to reproduce the
kind of analysis behind Fig. 3: for a range of tile sizes, measure the
BSP synchronization / communication / computation costs both along the
critical path and as volumetric averages, plus the execution-time
decomposition — showing the latency-vs-bandwidth trade-off that makes
tile size worth tuning, and the gap between critical-path and average
costs caused by load imbalance.

Run:  python examples/critical_path_analysis.py
"""

from repro import Critter, Machine, Simulator
from repro.algorithms.slate_cholesky import SlateCholeskyConfig, slate_cholesky
from repro.analysis import format_table


def main() -> None:
    n = 1024
    machine = Machine(nprocs=4, seed=21)
    rows = []
    for nb in (32, 64, 128, 256):
        for lookahead in (0, 1):
            cfg = SlateCholeskyConfig(n=n, nb=nb, pr=2, pc=2, lookahead=lookahead)
            critter = Critter(policy="never-skip")
            res = Simulator(machine, profiler=critter).run(
                slate_cholesky, args=(cfg,), run_seed=5
            )
            rep = critter.last_report
            rows.append([
                cfg.label(),
                rep.predicted.synchs,
                rep.volumetric["synchs"],
                rep.predicted.words / 1e3,
                rep.volumetric["words"] / 1e3,
                rep.predicted.flops / 1e6,
                res.makespan * 1e3,
                rep.predicted_comp_time * 1e3,
                rep.predicted.comm_time * 1e3,
                rep.volumetric["idle"] * 1e3,
            ])
    print(format_table(
        ["config", "sync_cp", "sync_avg", "KB_cp", "KB_avg", "Mflop_cp",
         "exec_ms", "comp_ms", "comm_ms", "idle_ms"],
        rows,
        title=f"SLATE Cholesky {n}x{n} on a 2x2 grid — critical path vs "
              "volumetric average (cf. Fig. 3b/3f/3j)",
    ))
    print(
        "\nReading the table like the paper does:"
        "\n * sync falls as tiles grow (fewer, larger tasks) while flops/comm"
        "\n   per path rise — the latency/bandwidth trade-off of Fig. 3;"
        "\n * critical-path costs upper-bound volumetric averages; the gap"
        "\n   is load imbalance;"
        "\n * lookahead=1 pipelines panels with updates and shortens the"
        "\n   execution time at equal tile size."
    )


if __name__ == "__main__":
    main()
