"""Block-cyclic data distributions and tile ownership maps.

Both SLATE algorithms and CANDMC distribute matrices block-cyclically
over 2D processor grids; Capital uses a cyclic layout partially
replicated over the layers of a 3D grid.  This module centralizes the
index arithmetic: tile extents (with ragged last tiles), ownership, and
per-rank tile enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

__all__ = ["TileMap", "tile_dim", "num_tiles", "band_rows"]


def num_tiles(n: int, nb: int) -> int:
    """Number of tiles covering ``n`` elements with tile size ``nb``."""
    return (n + nb - 1) // nb


def tile_dim(idx: int, nb: int, n: int) -> int:
    """Extent of tile ``idx`` (the last tile may be ragged)."""
    return min(nb, n - idx * nb)


def band_rows(idx: int, nb: int, n: int) -> range:
    """Global index range covered by tile/band ``idx``."""
    return range(idx * nb, min((idx + 1) * nb, n))


@dataclass(frozen=True, slots=True)
class TileMap:
    """Block-cyclic ownership of an (mt x nt) tile grid on a pr x pc grid.

    Tile (i, j) lives on grid position (i mod pr, j mod pc), i.e. on
    rank ``(i % pr) * pc + (j % pc)`` under row-major grid numbering —
    the 2D block-cyclic distribution of ScaLAPACK/SLATE.
    """

    m: int
    n: int
    nb: int
    pr: int
    pc: int

    @property
    def mt(self) -> int:
        return num_tiles(self.m, self.nb)

    @property
    def nt(self) -> int:
        return num_tiles(self.n, self.nb)

    def owner_coords(self, i: int, j: int) -> Tuple[int, int]:
        return i % self.pr, j % self.pc

    def owner(self, i: int, j: int) -> int:
        ri, ci = self.owner_coords(i, j)
        return ri * self.pc + ci

    def tile_shape(self, i: int, j: int) -> Tuple[int, int]:
        return tile_dim(i, self.nb, self.m), tile_dim(j, self.nb, self.n)

    def tile_nbytes(self, i: int, j: int) -> int:
        tm, tn = self.tile_shape(i, j)
        return 8 * tm * tn

    def tiles_of(self, rank: int, lower_only: bool = False) -> Iterator[Tuple[int, int]]:
        """All tiles owned by ``rank`` (optionally only i >= j)."""
        ri, ci = divmod(rank, self.pc)
        for i in range(ri, self.mt, self.pr):
            jmax = min(i, self.nt - 1) if lower_only else self.nt - 1
            for j in range(ci, jmax + 1, self.pc):
                yield (i, j)

    def col_tiles(self, rank: int, j: int, i_min: int = 0) -> List[int]:
        """Row indices i >= i_min of column-``j`` tiles owned by ``rank``."""
        ri, ci = divmod(rank, self.pc)
        if j % self.pc != ci:
            return []
        start = i_min + ((ri - i_min) % self.pr)
        return list(range(start, self.mt, self.pr))

    def row_tiles(self, rank: int, i: int, j_min: int = 0, j_max: int | None = None) -> List[int]:
        """Column indices j in [j_min, j_max] of row-``i`` tiles owned by ``rank``."""
        ri, ci = divmod(rank, self.pc)
        if i % self.pr != ri:
            return []
        hi = self.nt - 1 if j_max is None else j_max
        start = j_min + ((ci - j_min) % self.pc)
        return list(range(start, hi + 1, self.pc))
