"""Operation descriptors yielded by rank programs to the engine.

Rank programs never touch the engine directly: they ``yield`` one of
these descriptors (constructed through the :class:`~repro.sim.comm.Comm`
helpers) and are resumed with the operation's result once the simulated
operation completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Tuple

from repro.kernels.signature import KernelSignature

__all__ = [
    "ComputeOp",
    "ComputeBatchOp",
    "ComputeRunOp",
    "P2POp",
    "CollOp",
    "SplitOp",
    "WaitOp",
    "Request",
    "COLLECTIVES",
]

#: collective names understood by the engine / machine model
COLLECTIVES = (
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "scatter",
    "alltoall",
    "barrier",
)


@dataclass(slots=True)
class ComputeOp:
    """A computational kernel (BLAS/LAPACK call or user code region).

    ``fn(*args)`` optionally performs the real numeric work; the engine
    calls it when the kernel executes (and, if the simulator is created
    with ``execute_skipped_fns=True``, even when Critter skips it, so
    data-carrying runs stay numerically valid).
    """

    sig: KernelSignature
    flops: float
    fn: Optional[Callable[..., Any]] = None
    args: Tuple[Any, ...] = ()


@dataclass(slots=True)
class ComputeBatchOp:
    """``count`` identical-signature computational kernels in one event.

    Algorithm kernels that emit a panel's worth of same-signature work
    (a tpqrt reduction tree, inner-blocked geqr2 sub-kernels, ...) can
    yield one batch instead of ``count`` separate :class:`ComputeOp`\\ s.

    Semantics depend on the machine model's ``batched_compute`` flag:

    * **off** (default): the engine expands the batch inline into
      ``count`` back-to-back sub-kernels — per-sub-kernel profiler
      decisions and noise draws, bit-identical to yielding the ops
      individually;
    * **on**: the batch is a single engine event charging
      ``count * flops`` with *one* aggregate noise draw and one profiler
      decision (a deliberate, flagged model coarsening that trades noise
      resolution for engine throughput).

    ``fn`` (the batch's numeric callback) is invoked at most once, after
    the final sub-kernel, under the same execute/skip rules as
    :class:`ComputeOp`.
    """

    sig: KernelSignature
    #: flops per sub-kernel (not the batch total)
    flops: float
    count: int
    fn: Optional[Callable[..., Any]] = None
    args: Tuple[Any, ...] = ()


@dataclass(slots=True)
class ComputeRunOp:
    """A columnar run of rank-local compute work (struct of arrays).

    Where :class:`ComputeBatchOp` covers ``count`` kernels of *one*
    signature, a run covers a whole stretch of consecutive compute
    work as parallel arrays — one entry per *segment* of
    same-signature kernels::

        sigs   = (trsm_sig, gemm_sig)
        flops  = (f_trsm,   f_gemm)     # per sub-kernel
        counts = (m,        m)

    is one engine event equivalent to yielding ``m`` trsm ops followed
    by ``m`` gemm ops.  Semantics per segment follow
    :class:`ComputeBatchOp` exactly:

    * ``batched_compute`` **off**: each segment expands into
      ``counts[i]`` back-to-back sub-kernels — per-sub-kernel profiler
      decisions and noise draws, bit-identical to the per-op emission;
    * ``batched_compute`` **on**: each segment charges one aggregate
      kernel (``counts[i] * flops[i]``, one decision, one draw).

    The win over per-op emission is structural: one generator
    resumption and one heap interaction amortize over the whole run,
    and draw-free segments advance the clock with a single cumulative
    sum instead of a Python-level add per kernel.

    ``fn(*args)`` is invoked at most once, after the final sub-kernel,
    under the same execute/skip rules as :class:`ComputeOp` (``execute``
    taken from the run's last decision).
    """

    sigs: Tuple[KernelSignature, ...]
    #: flops per sub-kernel of each segment (not the segment total)
    flops: Tuple[float, ...]
    counts: Tuple[int, ...]
    fn: Optional[Callable[..., Any]] = None
    args: Tuple[Any, ...] = ()


@dataclass(slots=True)
class P2POp:
    """A point-to-point operation. ``kind`` in {send, recv, isend, irecv}.

    ``nbytes`` is always an ``int`` on send-side ops (inferred from the
    payload when not given).  On receives it is the size the receiver
    declared, or ``None`` when unknown — the engine costs transfers at
    the sender's size and flags declared sizes that disagree with the
    matched sender's.
    """

    kind: str
    comm: Any  # Comm (avoid circular import)
    peer: int  # peer rank, local to ``comm``
    tag: int = 0
    payload: Any = None
    nbytes: Optional[int] = 0


@dataclass(slots=True)
class CollOp:
    """A blocking collective on ``comm``.

    ``nbytes`` is the per-rank payload size in bytes (the MPI count);
    ``payload`` carries real data in numeric mode (root's buffer for
    bcast/scatter, each rank's contribution otherwise).
    """

    name: str
    comm: Any
    root: int = 0
    payload: Any = None
    nbytes: int = 0


@dataclass(slots=True)
class SplitOp:
    """``MPI_Comm_split``: collective over the parent communicator."""

    comm: Any
    color: Optional[int]
    key: int


@dataclass(slots=True)
class WaitOp:
    """Wait for one or more outstanding nonblocking requests.

    Modes:

    * ``"all"`` — resume once every request completed; returns the list
      of per-request results.
    * ``"one"`` — wait for a single request (``Comm.wait``); returns its
      result.  With several requests it degrades to waitany semantics
      (earliest known completion wins) but returns only the value;
      prefer ``"any"`` for that.
    * ``"any"`` — MPI_Waitany: resume as soon as any request completes;
      returns ``(index, value)`` of the winner.  The engine resolves the
      winner lazily: among the requests already completed when the wait
      is (re-)evaluated, the one with the earliest completion time (ties
      broken by list position) wins — a request whose match has not yet
      been *discovered* by the event loop cannot win even if its eventual
      completion time would be earlier, mirroring the implementation
      nondeterminism real MPI waitany exhibits.
    """

    requests: Sequence["Request"]
    mode: str = "all"


@dataclass(slots=True)
class Request:
    """Handle for a nonblocking operation.

    ``record`` is the engine-internal message record; ``value`` holds
    the received payload for irecv once complete.
    """

    rank: int
    kind: str
    done: bool = False
    completion: float = 0.0
    value: Any = None
    record: Any = None
