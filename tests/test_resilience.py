"""Fault-tolerant execution: retries, timeouts, quarantine, resume."""

import dataclasses
import json
import os

import pytest

from repro.autotune import capital_cholesky_space, tolerance_sweep
from repro.autotune.tuner import (
    assemble_tuning_result,
    default_machine,
    ground_truth_from_results,
    ground_truth_requests,
    tuning_requests,
)
from repro.runner import (
    GROUND_TRUTH,
    FaultPlan,
    FaultSpec,
    ManifestError,
    ResilientExecutor,
    ResultCache,
    RetryPolicy,
    Runner,
    RunnerError,
    SweepManifest,
    execute_request,
    failed_result,
    make_runner,
    request_key,
)
from repro.runner import faults as faults_mod
from repro.runner.jobs import result_from_dict, result_to_dict
from repro.runner.resilience import backoff_delay


@pytest.fixture(scope="module")
def space():
    return capital_cholesky_space(n=64, c=2, b0=4, nconf=3)


@pytest.fixture(scope="module")
def machine(space):
    return default_machine(space, seed=3)


@pytest.fixture(scope="module")
def gt_requests(space, machine):
    return ground_truth_requests(space, machine, full_reps=2, seed=0)


@pytest.fixture(scope="module")
def serial_baseline(gt_requests):
    return [result_to_dict(r) for r in Runner().run(gt_requests)]


@pytest.fixture
def fault_env(monkeypatch):
    """Activate a FaultPlan for this process and its pool workers."""

    def activate(plan):
        monkeypatch.setenv(faults_mod.ENV_PLAN, plan.to_json())
        faults_mod._plan_from_env.cache_clear()

    yield activate
    faults_mod._plan_from_env.cache_clear()


def resilient_runner(jobs=2, **policy_kw):
    policy_kw.setdefault("max_attempts", 3)
    return Runner(executor=ResilientExecutor(jobs=jobs,
                                             policy=RetryPolicy(**policy_kw)))


# ----------------------------------------------------------------------
# policy / backoff
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=-1.0)
        with pytest.raises(ValueError):
            ResilientExecutor(jobs=-1)

    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(seed=5)
        a = backoff_delay(policy, "k" * 64, 2)
        b = backoff_delay(policy, "k" * 64, 2)
        assert a == b
        assert a != backoff_delay(policy, "j" * 64, 2)
        assert a != backoff_delay(RetryPolicy(seed=6), "k" * 64, 2)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.5)
        delays = [backoff_delay(policy, "x", k) for k in range(1, 12)]
        # jittered into [0.5, 1.0) of the exponential curve, capped
        assert all(0.05 <= d < 0.5 for d in delays)
        assert max(delays) > min(delays)

    def test_make_runner_selects_resilient_executor(self):
        assert isinstance(make_runner(retries=2).executor, ResilientExecutor)
        assert isinstance(make_runner(timeout=1.0).executor, ResilientExecutor)
        r = make_runner(jobs=3, retries=1, timeout=2.5)
        assert r.executor.jobs == 3
        assert r.executor.policy.max_attempts == 2
        assert r.executor.policy.timeout == 2.5


# ----------------------------------------------------------------------
# the executor under injected faults
# ----------------------------------------------------------------------
class TestResilientExecutor:
    def test_clean_batch_matches_serial(self, gt_requests, serial_baseline):
        runner = resilient_runner(jobs=2)
        out = runner.run(gt_requests)
        assert [result_to_dict(r) for r in out] == serial_baseline
        assert runner.executor.stats == {
            "retries": 0, "timeouts": 0, "rebuilds": 0, "crashes": 0,
            "quarantined": 0}

    def test_empty_batch(self):
        assert resilient_runner().run([]) == []

    def test_transient_raise_retries_to_success(
        self, gt_requests, serial_baseline, fault_env
    ):
        fault_env(FaultPlan(specs=[
            FaultSpec(action="raise", config_index=1, attempts=1)]))
        runner = resilient_runner(jobs=2)
        out = runner.run(gt_requests)
        assert [result_to_dict(r) for r in out] == serial_baseline
        assert runner.executor.stats["retries"] == 1
        assert runner.executor.stats["quarantined"] == 0

    def test_poison_quarantined_siblings_complete(
        self, gt_requests, serial_baseline, fault_env
    ):
        fault_env(FaultPlan(specs=[
            FaultSpec(action="raise", config_index=1)]))  # every attempt
        runner = resilient_runner(jobs=2)
        out = runner.run(gt_requests)
        assert out[1].failed
        assert "quarantined after 3 failed attempts" in out[1].error
        assert request_key(gt_requests[1]) in out[1].error
        # siblings unharmed and bit-identical to the fault-free run
        for i in (0, 2):
            assert result_to_dict(out[i]) == serial_baseline[i]
        assert runner.executor.stats["quarantined"] == 1
        assert runner.failed(GROUND_TRUTH) == 1
        assert runner.executed(GROUND_TRUTH) == 2

    def test_no_retries_means_first_strike_quarantines(
        self, gt_requests, fault_env
    ):
        fault_env(FaultPlan(specs=[
            FaultSpec(action="raise", config_index=0, attempts=1)]))
        runner = resilient_runner(jobs=2, max_attempts=1)
        out = runner.run(gt_requests)
        assert out[0].failed
        assert runner.executor.stats["retries"] == 0
        assert runner.executor.stats["quarantined"] == 1

    def test_worker_exit_rebuilds_pool_and_recovers(
        self, gt_requests, serial_baseline, fault_env
    ):
        fault_env(FaultPlan(specs=[
            FaultSpec(action="exit", config_index=2, attempts=1)]))
        runner = resilient_runner(jobs=2)
        out = runner.run(gt_requests)
        # the dead worker broke the whole pool; everything still completes
        assert [result_to_dict(r) for r in out] == serial_baseline
        assert runner.executor.stats["crashes"] >= 1
        assert runner.executor.stats["rebuilds"] >= 1
        assert runner.executor.stats["quarantined"] == 0

    def test_hang_times_out_then_retry_succeeds(
        self, gt_requests, serial_baseline, fault_env
    ):
        fault_env(FaultPlan(specs=[
            FaultSpec(action="hang", config_index=0, attempts=1)],
            hang_seconds=10.0))
        runner = resilient_runner(jobs=2, timeout=1.0)
        out = runner.run(gt_requests)
        assert [result_to_dict(r) for r in out] == serial_baseline
        assert runner.executor.stats["timeouts"] >= 1
        assert runner.executor.stats["quarantined"] == 0

    def test_timeout_quarantine_names_the_timeout(
        self, gt_requests, fault_env
    ):
        fault_env(FaultPlan(specs=[
            FaultSpec(action="hang", config_index=1)],  # hangs every attempt
            hang_seconds=10.0))
        runner = resilient_runner(jobs=2, max_attempts=2, timeout=0.5)
        out = runner.run(gt_requests)
        assert out[1].failed
        assert "timed out after 0.5s" in out[1].error
        assert runner.executor.stats["timeouts"] == 2
        assert not out[0].failed and not out[2].failed


# ----------------------------------------------------------------------
# worker error attribution (with retries disabled too)
# ----------------------------------------------------------------------
class TestErrorAttribution:
    def test_job_error_names_the_job(self, gt_requests):
        plan = FaultPlan(specs=[FaultSpec(action="raise", config_index=0)])
        faults_mod.install(plan)
        try:
            with pytest.raises(Exception) as info:
                execute_request(gt_requests[0], attempt=4)
        finally:
            faults_mod.install(None)
        msg = str(info.value)
        assert f"key={request_key(gt_requests[0])}" in msg
        assert "kind=ground-truth" in msg
        assert "config=0" in msg
        assert "seed=0" in msg
        assert "attempt=4" in msg


# ----------------------------------------------------------------------
# runner result-stream integrity
# ----------------------------------------------------------------------
class _Truncating:
    """Executor that silently loses the tail of the batch."""

    jobs = 1

    def __init__(self, keep):
        self.keep = keep

    def map(self, requests):
        for req in list(requests)[: self.keep]:
            yield execute_request(req)


class _Duplicating:
    jobs = 1

    def map(self, requests):
        for req in requests:
            yield execute_request(req)
        yield execute_request(requests[-1])


class TestResultStreamIntegrity:
    def test_truncated_stream_names_missing_keys(self, gt_requests):
        runner = Runner(executor=_Truncating(keep=1))
        with pytest.raises(RunnerError) as info:
            runner.run(gt_requests)
        msg = str(info.value)
        assert "returned 1 results for 3 requests" in msg
        for req in gt_requests[1:]:
            assert request_key(req) in msg

    def test_surplus_stream_is_an_error(self, gt_requests):
        with pytest.raises(RunnerError, match="more results"):
            Runner(executor=_Duplicating()).run(gt_requests)


# ----------------------------------------------------------------------
# failed-result plumbing: serialization, cache, report layers
# ----------------------------------------------------------------------
class TestFailedResults:
    def test_serialization_round_trip(self, gt_requests):
        failed = failed_result(gt_requests[1], "boom [key=abc]")
        back = result_from_dict(result_to_dict(failed))
        assert back.failed and back.status == "failed"
        assert back.error == "boom [key=abc]"
        assert back.outputs == []

    def test_cache_round_trip(self, gt_requests, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = request_key(gt_requests[0])
        cache.put(key, failed_result(gt_requests[0], "boom"))
        back = cache.get(key)
        assert back is not None and back.failed and back.error == "boom"

    def test_runner_never_caches_failures(
        self, gt_requests, tmp_path, fault_env
    ):
        fault_env(FaultPlan(specs=[
            FaultSpec(action="raise", config_index=1)]))
        runner = Runner(cache=ResultCache(str(tmp_path)),
                        executor=ResilientExecutor(
                            jobs=2, policy=RetryPolicy(max_attempts=1)))
        out = runner.run(gt_requests)
        assert out[1].failed
        # only the two successes were stored; a rerun re-executes the failure
        assert runner.cache.stores == 2
        assert runner.cache.get(request_key(gt_requests[1])) is None

    def test_ground_truth_leaves_none_slot(self, space, gt_requests):
        results = Runner().run(gt_requests)
        results[1] = failed_result(gt_requests[1], "boom")
        ground = ground_truth_from_results(results, nconfigs=len(space))
        assert ground[1] is None
        assert ground[0] is not None and ground[2] is not None

    def test_tuning_result_skips_and_annotates(self, space, machine):
        ground = ground_truth_from_results(
            Runner().run(ground_truth_requests(space, machine, 2, 0)),
            nconfigs=len(space))
        reqs = tuning_requests(space, machine, "online", 0.25, reps=2, seed=0)
        results = Runner().run(reqs)
        results[2] = failed_result(reqs[2], "quarantined [key=xyz]")
        res = assemble_tuning_result(space, "online", 0.25, 2, results, ground)
        assert [o.index for o in res.outcomes] == [0, 1]
        assert res.failures == ["quarantined [key=xyz]"]
        assert res.search_time > 0  # aggregates range over survivors

    def test_missing_ground_truth_annotated(self, space, machine):
        gt = Runner().run(ground_truth_requests(space, machine, 2, 0))
        gt[0] = failed_result(
            ground_truth_requests(space, machine, 2, 0)[0], "gt boom")
        ground = ground_truth_from_results(gt, nconfigs=len(space))
        reqs = tuning_requests(space, machine, "online", 0.25, reps=2, seed=0)
        res = assemble_tuning_result(space, "online", 0.25, 2,
                                     Runner().run(reqs), ground)
        assert [o.index for o in res.outcomes] == [1, 2]
        assert any("ground truth unavailable" in f for f in res.failures)


# ----------------------------------------------------------------------
# cache quarantine of undecodable entries
# ----------------------------------------------------------------------
class TestCacheQuarantine:
    KEY = "ab" * 32

    def test_garbage_is_quarantined_once(self, tmp_path):
        path = tmp_path / f"{self.KEY}.json"
        path.write_text("{ not json")
        cache = ResultCache(str(tmp_path))
        assert len(cache) == 1
        assert cache.get(self.KEY) is None
        assert cache.corrupt == 1 and cache.misses == 1
        # moved aside: no longer counted, evidence preserved
        assert len(cache) == 0
        assert not path.exists()
        assert (tmp_path / f"{self.KEY}.corrupt").exists()
        # the second lookup is a plain miss, not a re-decode
        assert cache.get(self.KEY) is None
        assert cache.corrupt == 1 and cache.misses == 2

    def test_wrong_schema_is_quarantined(self, tmp_path):
        (tmp_path / f"{self.KEY}.json").write_text(
            json.dumps({"key": self.KEY, "result": {"version": 99}}))
        cache = ResultCache(str(tmp_path))
        assert cache.get(self.KEY) is None
        assert cache.corrupt == 1
        assert (tmp_path / f"{self.KEY}.corrupt").exists()

    def test_stats_and_repr_surface_corruption(self, tmp_path):
        (tmp_path / f"{self.KEY}.json").write_text("nope")
        cache = ResultCache(str(tmp_path))
        cache.get(self.KEY)
        assert cache.stats() == {"hits": 0, "misses": 1, "stores": 0,
                                 "corrupt": 1}
        assert "corrupt=1" in repr(cache)


# ----------------------------------------------------------------------
# sweep manifests
# ----------------------------------------------------------------------
class TestManifest:
    def test_grid_id_is_order_insensitive(self):
        keys = ["c" * 64, "a" * 64, "b" * 64]
        assert (SweepManifest.grid_id_for(keys)
                == SweepManifest.grid_id_for(reversed(keys)))
        assert (SweepManifest.grid_id_for(keys)
                != SweepManifest.grid_id_for(keys[:2]))

    def test_path_is_not_a_cache_entry(self, tmp_path):
        path = SweepManifest.path_for(str(tmp_path), "demo", "deadbeef")
        assert not path.endswith(".json")
        SweepManifest(path, "deadbeef").save()
        assert len(ResultCache(str(tmp_path))) == 0

    def test_round_trip_preserves_states(self, tmp_path, gt_requests):
        path = str(tmp_path / "m.manifest")
        m = SweepManifest(path, "g1")
        keyed = [(request_key(r), r) for r in gt_requests]
        m.plan(keyed)
        m.mark(keyed[0][0], "done")
        m.mark(keyed[1][0], "failed", error="boom")
        m.flush()  # marks batch in memory; publish before reloading
        back = SweepManifest.load(path)
        assert back.grid_id == "g1"
        assert back.counts() == {"pending": 1, "done": 1, "failed": 1}
        assert sorted(back.incomplete()) == sorted(
            [keyed[1][0], keyed[2][0]])
        assert back.entries[keyed[1][0]]["error"] == "boom"
        # re-planning the same grid keeps recorded progress
        back.plan(keyed)
        assert back.counts()["done"] == 1
        assert "done=1 failed=1 pending=1 of 3" in back.summary()

    def test_marks_batch_until_flush_every(self, tmp_path, gt_requests):
        path = str(tmp_path / "m.manifest")
        m = SweepManifest(path, "g1", flush_every=3)
        keyed = [(request_key(r), r) for r in gt_requests]
        m.plan(keyed)
        m.save()
        m.mark(keyed[0][0], "done")
        m.mark(keyed[1][0], "done")
        # two marks, flush_every=3: disk still shows the pre-mark state
        assert SweepManifest.load(path).counts()["done"] == 0
        m.mark(keyed[2][0], "done")  # third mark triggers the auto-flush
        assert SweepManifest.load(path).counts()["done"] == 3
        # explicit flush with nothing dirty is a no-op, not a rewrite
        mtime = os.path.getmtime(path)
        m.flush()
        assert os.path.getmtime(path) == mtime

    def test_flush_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            SweepManifest(str(tmp_path / "m.manifest"), "g", flush_every=0)

    def test_load_missing_says_nothing_to_resume(self, tmp_path):
        with pytest.raises(ManifestError, match="nothing to resume"):
            SweepManifest.load(str(tmp_path / "absent.manifest"))

    def test_load_rejects_bad_version(self, tmp_path):
        path = tmp_path / "m.manifest"
        path.write_text(json.dumps({"version": 99, "grid_id": "x",
                                    "entries": {}}))
        with pytest.raises(ManifestError, match="version"):
            SweepManifest.load(str(path))

    def test_mark_rejects_unknown_state(self, tmp_path):
        m = SweepManifest(str(tmp_path / "m.manifest"), "g")
        with pytest.raises(ValueError):
            m.mark("k", "exploded")


# ----------------------------------------------------------------------
# resumable sweeps
# ----------------------------------------------------------------------
class _KilledMidway:
    """Serial executor with a job budget: simulates a mid-sweep kill."""

    jobs = 1

    def __init__(self, budget):
        self.budget = budget

    def map(self, requests):
        for req in requests:
            if self.budget <= 0:
                raise RuntimeError("simulated mid-sweep kill")
            self.budget -= 1
            yield execute_request(req)


SWEEP_KW = dict(policies=("online",), tolerances=[1.0, 2**-4],
                reps=2, full_reps=2, seed=0)


def sweep_numbers(sweep):
    return {point: [(o.index, o.tuning_time, o.predicted.exec_time)
                    for o in res.outcomes]
            for point, res in sorted(sweep.points.items())}


class TestResume:
    def test_resume_after_kill_executes_only_the_remainder(
        self, space, machine, tmp_path
    ):
        clean = tolerance_sweep(space, machine, **SWEEP_KW)
        total = 3 + 2 * 3  # ground truth + (policy, eps) grid jobs

        killed = Runner(cache=ResultCache(str(tmp_path)),
                        executor=_KilledMidway(budget=5))
        with pytest.raises(RuntimeError, match="mid-sweep kill"):
            tolerance_sweep(space, machine, runner=killed, **SWEEP_KW)

        resumed = Runner(cache=ResultCache(str(tmp_path)))
        sweep = tolerance_sweep(space, machine, runner=resumed, resume=True,
                                **SWEEP_KW)
        # the acceptance bar: zero already-completed jobs re-execute
        assert resumed.cache_hits() == 5
        assert resumed.executed() == total - 5
        assert sweep_numbers(sweep) == sweep_numbers(clean)

    def test_resume_reruns_quarantined_jobs(
        self, space, machine, tmp_path, fault_env
    ):
        clean = tolerance_sweep(space, machine, **SWEEP_KW)
        fault_env(FaultPlan(specs=[
            FaultSpec(action="raise", kind=GROUND_TRUTH, config_index=1)]))
        first = Runner(cache=ResultCache(str(tmp_path)),
                       executor=ResilientExecutor(
                           jobs=2, policy=RetryPolicy(max_attempts=2)))
        degraded = tolerance_sweep(space, machine, runner=first, **SWEEP_KW)
        assert degraded.ground[1] is None
        assert degraded.failure_summary()  # the grid points name the gap

        faults_mod._plan_from_env.cache_clear()
        os.environ.pop(faults_mod.ENV_PLAN, None)
        resumed = Runner(cache=ResultCache(str(tmp_path)))
        sweep = tolerance_sweep(space, machine, runner=resumed, resume=True,
                                **SWEEP_KW)
        # only the quarantined ground-truth job re-executes
        assert resumed.executed() == 1
        assert resumed.executed(GROUND_TRUTH) == 1
        assert sweep.ground[1] is not None
        assert not sweep.failure_summary()
        assert sweep_numbers(sweep) == sweep_numbers(clean)

    def test_resume_requires_cache(self, space, machine):
        with pytest.raises(ManifestError, match="requires a result cache"):
            tolerance_sweep(space, machine, resume=True, **SWEEP_KW)

    def test_resume_requires_manifest(self, space, machine, tmp_path):
        with pytest.raises(ManifestError, match="nothing to resume"):
            tolerance_sweep(space, machine, cache_dir=str(tmp_path),
                            resume=True, **SWEEP_KW)

    def test_completed_sweep_resumes_with_zero_work(
        self, space, machine, tmp_path
    ):
        first = Runner(cache=ResultCache(str(tmp_path)))
        tolerance_sweep(space, machine, runner=first, **SWEEP_KW)
        again = Runner(cache=ResultCache(str(tmp_path)))
        tolerance_sweep(space, machine, runner=again, resume=True, **SWEEP_KW)
        assert again.executed() == 0
        assert again.cache_hits() == first.executed()
