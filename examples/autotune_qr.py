#!/usr/bin/env python
"""Autotune CANDMC's pipelined QR: tolerance sweep for one policy.

Shows the accuracy/speed trade-off the paper's Section III promises: as
the confidence tolerance eps tightens, the exhaustive search slows down
while the execution-time prediction error falls systematically
(cf. Figs. 5a / 5e).

Run:  python examples/autotune_qr.py
"""

import math

from repro.analysis import format_table
from repro.autotune import (
    candmc_qr_space,
    default_machine,
    measure_ground_truth,
    tolerance_sweep,
)


def main() -> None:
    space = candmc_qr_space()
    machine = default_machine(space, seed=13)
    print(f"space: {space.description}, {len(space)} configurations")
    print("sweeping tolerances 2^0 .. 2^-8 (online propagation)...\n")
    sweep = tolerance_sweep(
        space,
        machine,
        policies=("online",),
        tolerances=[2.0**-e for e in range(0, 9, 2)],
        reps=3,
        full_reps=3,
        seed=0,
    )
    rows = []
    for eps in sweep.tolerances:
        r = sweep.result("online", eps)
        rows.append([
            f"2^{int(math.log2(eps))}",
            r.search_time,
            r.search_speedup,
            f"2^{r.mean_log2_exec_error:.1f}",
            f"{100 * sum(o.skip_fraction for o in r.outcomes) / len(r.outcomes):.0f}%",
            f"{r.selection_quality:.1%}",
        ])
    rows.append(["full", sweep.full_search_time, 1.0, "-", "0%", "100.0%"])
    print(format_table(
        ["eps", "search_s", "speedup", "mean_err", "skipped", "sel_quality"],
        rows,
        title="CANDMC QR exhaustive autotuning vs confidence tolerance",
    ))
    print("\nNote the paper's trade-off: tighter tolerance -> slower search,"
          "\nsystematically better prediction; selection quality stays high"
          "\nthroughout (Section VI.C).")


if __name__ == "__main__":
    main()
