"""Resumable sweep manifests: request keys + completion states on disk.

A sweep is a long many-job campaign; killing it mid-grid must not cost
the completed work.  The content-addressed result cache already makes
completed measurements free to replay — the manifest adds the *plan*:
which request keys the sweep consists of and what state each is in
(``pending`` / ``done`` / ``failed``), flushed atomically after every
completion so the file is crash-consistent at all times.

``repro sweep --resume`` loads the manifest written next to the cache,
reports how much of the grid survived, and re-runs the sweep — the
cache guarantees zero recomputation for ``done`` entries, while
``pending`` and ``failed`` (transiently quarantined) jobs execute.
The manifest file is named after the *grid id*, a hash of the sorted
request keys, so differently-shaped sweeps over one cache directory
never collide and a resume against a changed grid is detected as
"nothing to resume" instead of silently mixing campaigns.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.runner.jobs import RunRequest

__all__ = ["SweepManifest", "ManifestError"]

_STATES = ("pending", "done", "failed")


class ManifestError(RuntimeError):
    """A manifest file is missing, unreadable, or from another grid."""


class SweepManifest:
    """Per-sweep completion ledger, one atomic JSON file."""

    VERSION = 1

    def __init__(self, path: str, grid_id: str,
                 entries: Optional[Dict[str, Dict]] = None) -> None:
        self.path = str(path)
        self.grid_id = str(grid_id)
        #: request key -> {"state", "kind", "config", "error"}
        self.entries: Dict[str, Dict] = entries if entries is not None else {}

    # ------------------------------------------------------------------
    @staticmethod
    def grid_id_for(keys: Iterable[str]) -> str:
        """Identity of a sweep grid: hash of its sorted request keys."""
        blob = "\n".join(sorted(keys)).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    @staticmethod
    def path_for(directory: str, name: str, grid_id: str) -> str:
        # deliberately NOT ``.json``: the result cache counts/clears
        # ``*.json`` entries and must never touch the manifest
        return os.path.join(directory, f"sweep-{name}-{grid_id}.manifest")

    @classmethod
    def load(cls, path: str) -> "SweepManifest":
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except FileNotFoundError:
            raise ManifestError(f"no sweep manifest at {path}: "
                                f"nothing to resume") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ManifestError(f"unreadable sweep manifest {path}: {exc}")
        if doc.get("version") != cls.VERSION:
            raise ManifestError(
                f"unsupported manifest version {doc.get('version')!r} in {path}")
        return cls(path, doc["grid_id"], entries=doc.get("entries", {}))

    # ------------------------------------------------------------------
    def plan(self, keyed_requests: Sequence[Tuple[str, RunRequest]]) -> None:
        """Register the grid's jobs, preserving already-recorded states."""
        for key, req in keyed_requests:
            self.entries.setdefault(key, {
                "state": "pending",
                "kind": req.kind,
                "config": req.config_index,
                "error": None,
            })

    def mark(self, key: str, state: str, error: Optional[str] = None) -> None:
        """Record a completion state and flush atomically."""
        if state not in _STATES:
            raise ValueError(f"unknown manifest state {state!r}")
        entry = self.entries.setdefault(
            key, {"state": "pending", "kind": None, "config": None,
                  "error": None})
        entry["state"] = state
        entry["error"] = error
        self.save()

    def save(self) -> None:
        doc = {"version": self.VERSION, "grid_id": self.grid_id,
               "entries": self.entries}
        directory = os.path.dirname(self.path) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".manifest.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(doc, f)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        out = {s: 0 for s in _STATES}
        for entry in self.entries.values():
            out[entry.get("state", "pending")] = \
                out.get(entry.get("state", "pending"), 0) + 1
        return out

    def incomplete(self) -> List[str]:
        """Keys still owed work (pending or previously failed)."""
        return [k for k, e in self.entries.items() if e.get("state") != "done"]

    def summary(self) -> str:
        c = self.counts()
        total = len(self.entries)
        return (f"manifest {os.path.basename(self.path)}: "
                f"done={c['done']} failed={c['failed']} "
                f"pending={c['pending']} of {total}")

    def __repr__(self) -> str:
        return f"SweepManifest({self.path!r}, grid={self.grid_id}, {self.counts()})"
