"""Eager propagation: statistic aggregation and global switch-off."""

import pytest

from repro.critter import Critter
from repro.kernels.blas import gemm_spec
from repro.sim import Machine, Simulator


def grid_prog(comm, iters=10):
    """A 2x2 grid workload with row/col collectives and a compute kernel."""
    ri, ci = divmod(comm.rank, 2)
    row = yield comm.split(color=ri, key=ci)
    col = yield comm.split(color=ci, key=ri)
    for _ in range(iters):
        yield comm.compute(gemm_spec(24, 24, 24))
        yield row.bcast(None, root=0, nbytes=256)
        yield col.allreduce(nbytes=256)


def world_prog(comm, iters=10):
    for _ in range(iters):
        yield comm.compute(gemm_spec(24, 24, 24))
        yield comm.allreduce(nbytes=256)


class TestGlobalSwitchOff:
    def test_world_collective_switches_off(self):
        m = Machine(nprocs=4, seed=3)
        cr = Critter(policy="eager", eps=0.5)
        Simulator(m, profiler=cr).run(world_prog, run_seed=0)
        assert len(cr._global_off) > 0

    def test_row_col_coverage_switches_off(self):
        # no world collectives at all: coverage must be assembled from
        # the row and column channels of the 2x2 grid
        m = Machine(nprocs=4, seed=3)
        cr = Critter(policy="eager", eps=0.5)
        Simulator(m, profiler=cr).run(grid_prog, run_seed=0)
        assert len(cr._global_off) > 0

    def test_switched_off_kernels_not_executed_next_run(self):
        m = Machine(nprocs=4, seed=3)
        cr = Critter(policy="eager", eps=0.5)
        Simulator(m, profiler=cr).run(world_prog, run_seed=0)
        off_before = set(cr._global_off)
        Simulator(m, profiler=cr).run(world_prog, run_seed=1)
        rep = cr.last_report
        assert off_before <= cr._global_off
        assert rep.skip_fraction > 0.5

    def test_eager_faster_than_conditional_across_configs(self):
        # eager reuses kernel models across "configurations" (runs of
        # different programs sharing kernels); conditional resets
        m = Machine(nprocs=4, seed=3)

        def total_time(policy):
            cr = Critter(policy=policy, eps=0.4)
            total = 0.0
            for cfg in range(4):
                if cr.policy.resets_between_configs:
                    cr.reset_statistics()
                for rep in range(3):
                    r = Simulator(m, profiler=cr).run(
                        world_prog, run_seed=cfg * 10 + rep
                    )
                    total += r.makespan
            return total

        assert total_time("eager") < total_time("conditional")


class TestAggregatedStatistics:
    def test_stats_shared_after_aggregation(self):
        m = Machine(nprocs=4, seed=3)
        cr = Critter(policy="eager", eps=0.5)
        Simulator(m, profiler=cr).run(world_prog, run_seed=0)
        sig = gemm_spec(24, 24, 24)[0]
        counts = [cr._K[r][sig].count for r in range(4)]
        means = [cr._K[r][sig].mean for r in range(4)]
        # after aggregation every rank holds the merged statistics
        assert len(set(counts)) == 1
        assert max(means) - min(means) < 1e-15
        # the merged count pools all four ranks' samples (at least
        # min_samples each at the moment of aggregation)
        assert counts[0] >= 4 * 2
        assert counts[0] % 4 == 0

    def test_aggregation_respects_channel_coverage(self):
        # only row collectives: coverage cannot reach the world, so no
        # kernel may be switched off globally
        def rows_only(comm, iters=10):
            ri, ci = divmod(comm.rank, 2)
            row = yield comm.split(color=ri, key=ci)
            for _ in range(iters):
                yield comm.compute(gemm_spec(24, 24, 24))
                yield row.allreduce(nbytes=256)

        m = Machine(nprocs=4, seed=3)
        cr = Critter(policy="eager", eps=0.5)
        Simulator(m, profiler=cr).run(rows_only, run_seed=0)
        assert len(cr._global_off) == 0

    def test_reset_clears_global_off(self):
        m = Machine(nprocs=4, seed=3)
        cr = Critter(policy="eager", eps=0.5)
        Simulator(m, profiler=cr).run(world_prog, run_seed=0)
        assert cr._global_off
        cr.reset_statistics()
        assert not cr._global_off
        assert not cr._coverage
