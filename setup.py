"""Shim for environments without the ``wheel`` package (offline editable install).

``pip install -e .`` requires wheel under PEP 660; when it is unavailable,
``python setup.py develop`` installs the same editable package.  All
packaging metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
