"""Load regimes: noise invariants, regime-keyed memoization, roofline.

Satellite coverage for the regime-aware machine models: every regime's
per-invocation noise must stay unit-mean (regimes rescale *costs*, not
the noise's center), the per-signature bias memo must key on the regime
(no cross-regime aliasing of cached draws), and the roofline ceiling
``max(gamma * comp_factor, mem_beta * bytes_per_flop)`` must price
bandwidth-bound kernels off the memory roof while flop-bound kernels
stay on the flop roof.
"""

import math

import numpy as np
import pytest

from repro.algorithms.stencil import stencil2d_spec
from repro.kernels import blas, lapack
from repro.kernels.roofline import bytes_per_flop
from repro.kernels.signature import comm_signature
from repro.sim import Simulator
from repro.sim.machine import LoadRegime, Machine
from repro.sim.noise import NoiseModel
from repro.sim.presets import PRESETS, REGIME_NAMES, make_machine

GEMM_SIG = blas.gemm_spec(64, 64, 64)[0]
TRSM_SIG = blas.trsm_spec(64, 64)[0]
STENCIL_SIG = stencil2d_spec(5, 64, 64)[0]
COMM_SIG = comm_signature("allreduce", 1024, 8, 1)


# ----------------------------------------------------------------------
# unit-mean invariants
# ----------------------------------------------------------------------
class TestUnitMeanInvariants:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    @pytest.mark.parametrize("regime", REGIME_NAMES)
    def test_invocation_noise_is_unit_mean(self, preset, regime):
        # the lognormal's (mu, sigma) must satisfy E[exp(mu + s Z)] = 1
        # for whatever CoV the regime overrides — regimes change the
        # *cost scales*, never the noise's center
        n = PRESETS[preset].noise(seed=3, regime=regime)
        for params in (n._comp_params, n._comm_params):
            if params is None:
                continue
            mu, s = params
            assert math.exp(mu + 0.5 * s * s) == pytest.approx(1.0, abs=1e-12)

    @pytest.mark.parametrize("regime", REGIME_NAMES)
    def test_empirical_sample_mean(self, regime):
        n = PRESETS["knl-fabric"].noise(seed=3, regime=regime)
        rng = np.random.Generator(np.random.PCG64(123))
        for sig in (GEMM_SIG, COMM_SIG):
            scale = n.true_mean(sig, 1.0) * n.run_drift(sig, 0)
            draws = [n.sample(sig, 1.0, rng, run_seed=0) / scale
                     for _ in range(4000)]
            cv = n.invocation_cv(sig)
            # 4000 draws of a cv<=0.45 lognormal: mean well within 5%
            assert np.mean(draws) == pytest.approx(1.0, abs=5 * cv / 60)

    @pytest.mark.parametrize("regime", REGIME_NAMES)
    def test_bias_is_unit_mean_across_signatures(self, regime):
        n = PRESETS["knl-fabric"].noise(seed=3, regime=regime)
        biases = [n.signature_bias(blas.gemm_spec(8 + i, 8, 8)[0])
                  for i in range(3000)]
        assert np.mean(biases) == pytest.approx(1.0, abs=0.05)


# ----------------------------------------------------------------------
# regime-keyed memoization
# ----------------------------------------------------------------------
class TestRegimeKeyedMemoization:
    def test_default_regime_matches_plain_noise_model(self):
        plain = NoiseModel(bias_sigma=0.3, comp_cv=0.08, comm_cv=0.2,
                           run_cv=0.01, machine_seed=13)
        via_regime = NoiseModel(bias_sigma=0.3, comp_cv=0.08, comm_cv=0.2,
                                run_cv=0.01, machine_seed=13,
                                regime="default")
        for sig in (GEMM_SIG, TRSM_SIG, COMM_SIG):
            assert plain.signature_bias(sig) == via_regime.signature_bias(sig)
            assert plain.run_drift(sig, 7) == via_regime.run_drift(sig, 7)

    def test_regimes_draw_distinct_biases(self):
        by_regime = {r: PRESETS["knl-fabric"].noise(seed=3, regime=r)
                     for r in REGIME_NAMES}
        biases = {r: n.signature_bias(GEMM_SIG)
                  for r, n in by_regime.items()}
        assert len(set(biases.values())) == len(REGIME_NAMES)
        drifts = {r: n.run_drift(GEMM_SIG, 5) for r, n in by_regime.items()}
        assert len(set(drifts.values())) == len(REGIME_NAMES)

    def test_memoized_values_are_stable_and_regime_deterministic(self):
        a = PRESETS["knl-fabric"].noise(seed=3, regime="heavy")
        b = PRESETS["knl-fabric"].noise(seed=3, regime="heavy")
        first = a.signature_bias(GEMM_SIG)
        # cache hit must replay the draw exactly; a fresh instance of
        # the same (seed, regime) identity must reproduce it
        assert a.signature_bias(GEMM_SIG) == first
        assert b.signature_bias(GEMM_SIG) == first

    def test_no_cross_regime_cache_aliasing(self):
        default = PRESETS["knl-fabric"].noise(seed=3)
        heavy = PRESETS["knl-fabric"].noise(seed=3, regime="heavy")
        # interleave lookups: the regime salt keys the memo, so neither
        # model may ever serve the other's cached draw
        d1 = default.signature_bias(GEMM_SIG)
        h1 = heavy.signature_bias(GEMM_SIG)
        assert d1 != h1
        assert default.signature_bias(GEMM_SIG) == d1
        assert heavy.signature_bias(GEMM_SIG) == h1

    def test_quiet_copy_preserves_regime(self):
        n = PRESETS["knl-fabric"].noise(seed=3, regime="heavy")
        assert n.quiet().regime == "heavy"


# ----------------------------------------------------------------------
# roofline pricing
# ----------------------------------------------------------------------
class TestRoofline:
    def test_arithmetic_intensities(self):
        assert bytes_per_flop(GEMM_SIG) == pytest.approx(0.25)
        assert bytes_per_flop(TRSM_SIG) == pytest.approx(0.3125)
        assert bytes_per_flop(STENCIL_SIG) == pytest.approx(2.4)
        # comm kernels carry no roofline model: the ceiling never fires
        assert bytes_per_flop(COMM_SIG) == 0.0

    def test_default_regime_has_no_ceiling(self):
        m, _ = make_machine("knl-fabric", 4, seed=0)
        assert m.mem_beta == 0.0
        for sig in (GEMM_SIG, TRSM_SIG, STENCIL_SIG):
            assert m.time_per_flop(sig) == m.gamma

    def test_medium_regime_tips_trsm_not_gemm(self):
        # knl-fabric medium: gamma stays 5e-11 (comp_factor 1.0) while
        # mem_beta 1.8e-10 puts trsm (0.3125 B/f -> 5.625e-11) over the
        # roof and gemm (0.25 B/f -> 4.5e-11) under it
        m, _ = make_machine("knl-fabric", 4, seed=0, regime="medium")
        g = m.gamma * m.comp_scale
        assert m.time_per_flop(GEMM_SIG) == g
        assert m.time_per_flop(TRSM_SIG) == m.mem_beta * 0.3125
        assert m.time_per_flop(TRSM_SIG) > g

    def test_stencil_is_bandwidth_bound_in_every_loaded_regime(self):
        for regime in ("idle", "medium", "heavy"):
            m, _ = make_machine("knl-fabric", 4, seed=0, regime=regime)
            expect = m.mem_beta * bytes_per_flop(STENCIL_SIG)
            assert m.time_per_flop(STENCIL_SIG) == expect
            assert expect > m.gamma * m.comp_scale

    def test_compute_cost_composes_exactly(self):
        m, _ = make_machine("quiet", 4, seed=0, regime="idle")
        sig, flops = stencil2d_spec(5, 64, 64)
        assert m.compute_cost(flops, sig) == m.time_per_flop(sig) * flops
        # without a signature the cost is the pure flop roof
        assert m.compute_cost(flops) == m.gamma * m.comp_scale * flops

    def test_comm_factor_scales_collectives(self):
        base, _ = make_machine("quiet", 4, seed=0)
        heavy, _ = make_machine("quiet", 4, seed=0, regime="heavy")
        assert heavy.collectives().alpha == 2.0 * base.collectives().alpha
        assert heavy.collectives().beta == 2.0 * base.collectives().beta


# ----------------------------------------------------------------------
# end-to-end determinism and fail-fast
# ----------------------------------------------------------------------
def _stencil_makespan(preset: str, regime: str) -> float:
    from golden_workloads import stencil_halo_case_program

    machine, noise = make_machine(preset, 4, seed=11, regime=regime)
    sim = Simulator(machine, noise=noise)
    return sim.run(stencil_halo_case_program, run_seed=2).makespan


class TestRegimeEndToEnd:
    def test_quiet_regimes_are_deterministic_and_ordered(self):
        spans = {r: _stencil_makespan("quiet", r)
                 for r in ("default", "idle", "heavy")}
        for r, span in spans.items():
            assert _stencil_makespan("quiet", r) == span
        # idle prices the bandwidth-bound stencil off the memory roof
        # (and doubles gamma); heavy additionally doubles comm
        assert spans["idle"] > spans["default"]
        assert spans["heavy"] > spans["default"]

    def test_unknown_regime_fails_fast_with_valid_names(self):
        with pytest.raises(ValueError) as exc:
            make_machine("knl-fabric", 4, regime="bogus")
        msg = str(exc.value)
        assert "bogus" in msg
        for name in REGIME_NAMES:
            assert name in msg

    def test_unknown_preset_fails_fast_with_valid_names(self):
        with pytest.raises(ValueError) as exc:
            make_machine("bogus", 4)
        msg = str(exc.value)
        assert "bogus" in msg and "knl-fabric" in msg

    def test_machine_carries_regime_identity(self):
        m, n = make_machine("epyc-ethernet", 4, seed=0, regime="idle")
        assert m.regime == "idle" and n.regime == "idle"
        # the CORTEX Idle Paradox preset: idle compute is *slower*
        assert m.comp_scale > 2.0

    def test_noise_fingerprint_includes_regime(self):
        from types import SimpleNamespace

        from repro.runner.jobs import _noise_fingerprint

        req = SimpleNamespace(noise=NoiseModel(regime="heavy"), machine=None)
        fp = _noise_fingerprint(req)
        assert fp["regime"] == "heavy"
