"""Critter state persistence (model reuse across sessions)."""

import json

import pytest

from repro.critter import (
    Critter,
    critter_state_to_dict,
    load_critter_state,
    read_critter_state,
    save_critter_state,
)
from repro.kernels.blas import gemm_spec
from repro.sim import Machine, Simulator

SIG = gemm_spec(32, 32, 32)[0]


def prog(comm):
    for _ in range(10):
        yield comm.compute(gemm_spec(32, 32, 32))
    yield comm.allreduce(nbytes=512)


def trained_critter(policy="conditional", eps=0.3, reps=3):
    m = Machine(nprocs=4, seed=6)
    cr = Critter(policy=policy, eps=eps)
    for rep in range(reps):
        Simulator(m, profiler=cr).run(prog, run_seed=rep)
    return cr


class TestRoundtrip:
    def test_dict_roundtrip_preserves_stats(self):
        cr = trained_critter()
        state = critter_state_to_dict(cr)
        fresh = Critter(policy="conditional", eps=0.3)
        load_critter_state(fresh, state)
        for r in range(4):
            assert set(fresh._K[r]) == set(cr._K[r])
            for sig in cr._K[r]:
                a, b = cr._K[r][sig], fresh._K[r][sig]
                assert (a.count, a.mean, a.variance) == (b.count, b.mean, b.variance)

    def test_json_file_roundtrip(self, tmp_path):
        cr = trained_critter()
        path = save_critter_state(cr, str(tmp_path / "state.json"))
        fresh = Critter(policy="conditional", eps=0.3)
        read_critter_state(fresh, path)
        assert fresh.nprocs == 4
        assert fresh._K[0][SIG].count == cr._K[0][SIG].count

    def test_state_is_plain_json(self, tmp_path):
        cr = trained_critter()
        path = save_critter_state(cr, str(tmp_path / "state.json"))
        data = json.load(open(path))
        assert data["version"] == 1
        assert data["nprocs"] == 4

    def test_eager_switch_off_persisted(self):
        cr = trained_critter(policy="eager", eps=0.5)
        assert cr._global_off
        fresh = Critter(policy="eager", eps=0.5)
        load_critter_state(fresh, critter_state_to_dict(cr))
        assert fresh._global_off == cr._global_off


class TestWarmStart:
    def test_warm_started_critter_skips_immediately(self):
        cr = trained_critter()
        m = Machine(nprocs=4, seed=6)
        cold = Critter(policy="conditional", eps=0.3)
        t_cold = Simulator(m, profiler=cold).run(prog, run_seed=50).makespan

        warm = Critter(policy="conditional", eps=0.3)
        load_critter_state(warm, critter_state_to_dict(cr))
        t_warm = Simulator(m, profiler=warm).run(prog, run_seed=50).makespan
        assert t_warm < t_cold
        assert warm.last_report.skip_fraction > 0.5


class TestErrors:
    def test_unattached_critter_rejected(self):
        with pytest.raises(ValueError, match="not attached"):
            critter_state_to_dict(Critter())

    def test_version_checked(self):
        fresh = Critter()
        with pytest.raises(ValueError, match="version"):
            load_critter_state(fresh, {"version": 99})

    def test_nprocs_mismatch_rejected(self):
        cr = trained_critter()
        state = critter_state_to_dict(cr)
        other = Critter()
        m = Machine(nprocs=2, seed=0)
        Simulator(m, profiler=other).run(prog, run_seed=0)
        with pytest.raises(ValueError, match="ranks"):
            load_critter_state(other, state)
