"""Engine throughput microbenchmark (``repro bench-engine``).

Measures the discrete-event core's throughput — engine events per
second of host wall time — under both schedulers (the naive
heap-per-op scheduler and the run-to-completion fast path), so every
PR has a recorded perf trajectory in ``BENCH_engine.json``.

Workloads are synthetic rank programs with *prebuilt* op descriptors,
so the measurement isolates the engine hot loop from algorithm-side
Python:

* ``cholesky-compute`` — the compute acceptance workload: a
  compute-heavy tiled-Cholesky-shaped sweep (potrf + trsm/gemm runs
  down each panel, one allreduce per panel).  Dominated by
  :class:`ComputeOp` events, exactly what tuner inner loops spend their
  time on.
* ``collective-dense`` — the collective acceptance workload: a panel
  factorization's bcast/allreduce chain (one small compute between the
  two collectives of each panel), >2/3 of whose events are collective
  arrivals.  This is the op mix the inline-arrival dispatch targets.
* ``critter-heavy``    — the profiler acceptance workload: a p2p +
  collective mix (isend/compute/recv/wait ring followed by a
  bcast/compute/allreduce panel per round) exercising every Critter
  sync-point hook — p2p path exchange with buffered isend snapshots,
  collective path elections and count adoption, and the decision hot
  path on both compute and communication kernels.  Measured under
  ``critter-online`` and ``critter-apriori`` (offline counts seeded
  from a never-skip pre-run) on top of the usual matrix.
* ``p2p-pipeline``     — the p2p acceptance workload: pure two-sided
  rendezvous mixes (ring pipelining via isend/compute/recv/wait, a
  blocking halo exchange with both neighbours, and a blocking panel
  pipeline down the rank line) — the CANDMC-style QR/Cholesky panel
  exchange op mix served by the inline blocking-send completion.
* ``stencil-halo``     — the 2D stencil halo exchange
  (:mod:`repro.algorithms.stencil`): bandwidth-bound compute
  (~2.4 bytes/flop) plus neighbour p2p in alternating nonblocking and
  red-black blocking styles — the workload whose compute prices off
  the memory roof under a load regime with ``mem_beta > 0``.
* ``collectives``      — bcast/allreduce/barrier rendezvous rounds.
* ``cholesky-batch``   — the sweep's kernel runs emitted as
  :class:`ComputeBatchOp`; measured with the machine model's
  ``batched_compute`` flag off (bit-identical expansion) and on (one
  aggregate event + noise draw per run) to quantify the batching win.
* ``cholesky-columnar`` — the columnar acceptance workload: the same
  sweep with each panel's trsm/gemm runs emitted as one
  :class:`ComputeRunOp` (struct-of-arrays).  Bit-identical to the
  per-op sweep (the bench asserts the makespans agree); its
  ``columnar_speedup`` entry records the wall-time win at identical
  work.

``--diag`` appends a machine-readable ``diag`` block — one
counter-instrumented run per acceptance row (see
:mod:`repro.sim.diagnostics`) — and prints the engagement tables.

Every workload runs on the ``knl-fabric`` (noisy) and ``quiet``
(draw-free) presets, with and without a Critter profiler attached; two
real algorithm configurations are also timed end-to-end.  Both
schedulers run the identical RNG streams, so makespans must agree
bit-for-bit — the bench asserts this on every measurement, making it a
determinism smoke test as well.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import platform
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.stencil import stencil_halo_program
from repro.autotune.metrics import coefficient_of_variation, p50, p99
from repro.kernels import blas, lapack
from repro.sim.engine import Simulator
from repro.sim.presets import PRESETS, REGIME_NAMES, make_machine

__all__ = ["Workload", "make_workloads", "run_bench", "format_bench",
           "format_bench_markdown", "main"]

#: presets the bench sweeps (noisy paper-like + draw-free control)
BENCH_PRESETS = ("knl-fabric", "quiet")

#: run seeds behind each row's makespan distribution: the fast path
#: replays these fresh runs so every row can report P50/P99/CoV of the
#: *simulated* time (timings are distributions, not scalars — the seed-1
#: makespan alone says nothing about the regime's spread)
MAKESPAN_SEEDS = (1, 2, 3, 4, 5)

#: the compute acceptance measurement: compute-heavy Cholesky, no
#: profiler, noisy preset — the row the CI check and the 2x target bind to
ACCEPTANCE = {"workload": "cholesky-compute", "preset": "knl-fabric",
              "profiler": "null"}

#: the collective acceptance measurement: the fast path must also beat
#: the naive scheduler on collective-dominated op mixes (inline
#: non-final collective arrivals, PR 3)
COLLECTIVE_ACCEPTANCE = {"workload": "collective-dense",
                         "preset": "knl-fabric", "profiler": "null"}

#: the profiler acceptance measurement: with Critter attached, its
#: hot-path cost (COW path propagation, cached verdicts) — not the
#: scheduler — must stay off the throughput floor
CRITTER_ACCEPTANCE = {"workload": "critter-heavy", "preset": "knl-fabric",
                      "profiler": "critter-online"}

#: the p2p acceptance measurement: pure two-sided rendezvous pipelines
#: (the pre-PR-5 naive-parity mix) must beat the naive scheduler via
#: inline blocking-send completion and rank-local early queuing
P2P_ACCEPTANCE = {"workload": "p2p-pipeline", "preset": "knl-fabric",
                  "profiler": "null"}

#: the profiled-p2p *parity* measurement: the same rendezvous mix with
#: Critter attached.  Hook work (decisions, path propagation, stats) is
#: bit-identical under both schedulers and dominates this cell, so the
#: achievable ratio tends to 1.0 as the hook share grows — the gate is
#: parity (the fast path must not *lose* to the naive scheduler, as it
#: did at ~0.9x before the hooks-on deferral generalization), not a
#: multiple.  See benchmarks/README.md for the cost decomposition.
P2P_PROFILED_ACCEPTANCE = {"workload": "p2p-pipeline",
                           "preset": "knl-fabric",
                           "profiler": "critter-online"}

#: the columnar acceptance measurement: the sweep's kernel runs emitted
#: as one ComputeRunOp per panel (struct-of-arrays); its recorded win
#: is wall time against the identical work emitted per-op
#: (``columnar_speedup`` — the schema-v5 row)
COLUMNAR_ACCEPTANCE = {"workload": "cholesky-columnar",
                       "preset": "knl-fabric", "profiler": "null"}

#: --check floors per acceptance key: (full-profile floor, quick floor).
#: Quick floors are looser — CI smoke runs reduced sizes on noisy
#: shared runners.  The profiled-p2p floor is a parity gate with a
#: noise margin, per the P2P_PROFILED_ACCEPTANCE note.
CHECK_FLOORS = {
    "acceptance": (3.0, 2.0),
    "collective_acceptance": (1.0, 1.0),
    "critter_acceptance": (1.0, 1.0),
    "p2p_acceptance": (1.0, 1.0),
    "p2p_profiled_acceptance": (0.9, 0.85),
    "columnar_acceptance": (1.0, 0.9),
}

#: --check floor on ``columnar_speedup`` — the wall-time win of the
#: one-ComputeRunOp-per-panel emission over the identical work emitted
#: per-op, both on the fast path (full-profile floor, quick floor).
#: Measured ~1.5x full / ~1.3x quick on an unloaded noisy preset
#: (dips toward ~1.2x under concurrent machine load); per-kernel noise
#: draws are irreducible there, so the win is the amortized dispatch +
#: generator resumption, not the draw-free cumsum collapse.  Floors
#: are set below the measured values for shared-runner noise headroom.
COLUMNAR_SPEEDUP_FLOORS = (1.15, 1.05)

#: every acceptance measurement, in document/report order:
#: (document key, measurement spec)
ACCEPTANCE_SPECS = (
    ("acceptance", ACCEPTANCE),
    ("collective_acceptance", COLLECTIVE_ACCEPTANCE),
    ("critter_acceptance", CRITTER_ACCEPTANCE),
    ("p2p_acceptance", P2P_ACCEPTANCE),
    ("p2p_profiled_acceptance", P2P_PROFILED_ACCEPTANCE),
    ("columnar_acceptance", COLUMNAR_ACCEPTANCE),
)


@dataclass(frozen=True)
class Workload:
    """A benchmark rank program plus its metadata."""

    name: str
    description: str
    nprocs: int
    program: Callable
    #: machine-model override applied on top of the preset (batching)
    machine_overrides: Tuple[Tuple[str, Any], ...] = ()


# ----------------------------------------------------------------------
# synthetic programs
# ----------------------------------------------------------------------
def _cholesky_sweep(nt: int, tile: int, batched: bool):
    potrf = lapack.potrf_spec(tile)
    trsm = blas.trsm_spec(tile, tile)
    gemm = blas.gemm_spec(tile, tile, tile)

    def program(comm):
        op_potrf = comm.compute(potrf)
        op_trsm = comm.compute(trsm)
        op_gemm = comm.compute(gemm)
        for k in range(nt):
            m = nt - k
            yield op_potrf
            if batched:
                yield comm.compute_batch(trsm, m)
                yield comm.compute_batch(gemm, m)
            else:
                for _ in range(m):
                    yield op_trsm
                for _ in range(m):
                    yield op_gemm
            yield comm.allreduce(nbytes=8 * tile)
        return None

    return program


def _cholesky_columnar(nt: int, tile: int):
    """The sweep's per-panel kernel runs as one :class:`ComputeRunOp` each.

    Identical work to ``_cholesky_sweep(nt, tile, batched=False)`` — the
    engine guarantees the expansion is bit-identical (same decisions,
    draws, and float-op order), which ``run_bench`` cross-checks by
    asserting the two workloads' makespans agree.  What changes is the
    op stream's shape: each panel's ``2m`` compute events collapse into
    one columnar descriptor, so generator resumption and dispatch
    amortize over the whole run and draw-free segments advance the
    clock with one cumulative sum.
    """
    potrf = lapack.potrf_spec(tile)
    trsm = blas.trsm_spec(tile, tile)
    gemm = blas.gemm_spec(tile, tile, tile)

    def program(comm):
        op_potrf = comm.compute(potrf)
        runs = [None] + [comm.compute_run([(trsm, m), (gemm, m)])
                         for m in range(1, nt + 1)]
        ar = comm.allreduce(nbytes=8 * tile)
        for k in range(nt):
            yield op_potrf
            yield runs[nt - k]
            yield ar
        return None

    return program


def _p2p_pipeline(rounds: int, tile: int):
    """Pure-p2p rendezvous mixes: every event is a two-sided match.

    Three phases per round, after the dominant patterns of CANDMC-style
    QR/Cholesky panel exchanges:

    * **ring pipelining** — isend/compute/recv/wait, the buffered
      overlap pattern (blocking recvs meet already-queued isends);
    * **halo exchange** — blocking send/recv with both neighbours in
      even/odd order (sends meet parked recvs and vice versa);
    * **panel pipeline** — a blocking chain down the rank line, the
      naive-parity worst case the inline blocking-send completion
      targets.

    Descriptors are prebuilt (constant tags; FIFO per-channel matching
    keeps pairing exact) so the measurement isolates the engine.
    """
    gemm = blas.gemm_spec(tile, tile, tile)
    small = blas.gemm_spec(tile // 2, tile // 2, tile // 2)
    nb = 8 * tile * tile

    def program(comm):
        me, p = comm.rank, comm.size
        nxt, prv = (me + 1) % p, (me - 1) % p
        op = comm.compute(gemm)
        op_small = comm.compute(small)
        ring_isend = comm.isend(dest=nxt, tag=0, nbytes=nb)
        ring_recv = comm.recv(source=prv, tag=0, nbytes=nb)
        halo_up_send = comm.send(dest=nxt, tag=1, nbytes=nb)
        halo_up_recv = comm.recv(source=prv, tag=1, nbytes=nb)
        halo_dn_send = comm.send(dest=prv, tag=2, nbytes=nb)
        halo_dn_recv = comm.recv(source=nxt, tag=2, nbytes=nb)
        panel_send = comm.send(dest=me + 1, tag=3, nbytes=nb) if me < p - 1 else None
        panel_recv = comm.recv(source=me - 1, tag=3, nbytes=nb) if me > 0 else None
        for r in range(rounds):
            req = yield ring_isend
            yield op
            yield ring_recv
            yield comm.wait(req)
            if me % 2 == 0:
                yield halo_up_send
                yield halo_up_recv
                yield halo_dn_recv
                yield halo_dn_send
            else:
                yield halo_up_recv
                yield halo_up_send
                yield halo_dn_send
                yield halo_dn_recv
            yield op_small
            if panel_recv is not None:
                yield panel_recv
            yield op_small
            if panel_send is not None:
                yield panel_send
        return None

    return program


def _collective_chain(panels: int, tile: int):
    """Panel factorization's collective chain: bcast + tiny compute + allreduce."""
    potrf = lapack.potrf_spec(tile)

    def program(comm):
        op = comm.compute(potrf)
        bc = comm.bcast(root=0, nbytes=8 * tile)
        ar = comm.allreduce(nbytes=8 * tile)
        for _ in range(panels):
            yield bc
            yield op
            yield ar
        return None

    return program


def _critter_heavy(rounds: int, tile: int):
    """p2p + collective mix: every Critter sync-point hook gets hot."""
    gemm = blas.gemm_spec(tile, tile, tile)
    potrf = lapack.potrf_spec(tile)

    def program(comm):
        me, p = comm.rank, comm.size
        nxt, prv = (me + 1) % p, (me - 1) % p
        op_gemm = comm.compute(gemm)
        op_potrf = comm.compute(potrf)
        bc = comm.bcast(root=0, nbytes=8 * tile)
        ar = comm.allreduce(nbytes=8 * tile)
        for r in range(rounds):
            req = yield comm.isend(dest=nxt, tag=r, nbytes=8 * tile)
            yield op_gemm
            yield op_potrf
            yield op_gemm
            yield comm.recv(source=prv, tag=r, nbytes=8 * tile)
            yield comm.wait(req)
            yield bc
            yield op_potrf
            yield ar
        return None

    return program


def _stencil_halo(iters: int, nx: int = 64, ny: int = 64):
    """The 2D stencil halo workload (see :mod:`repro.algorithms.stencil`).

    Bandwidth-bound compute (stencil2d's ~2.4 bytes/flop) plus
    neighbour-only p2p in both nonblocking and red-black blocking
    styles — the roofline regimes' stress workload: under ``mem_beta >
    0`` its compute prices off the memory roof while the Cholesky
    workloads stay on the flop roof.
    """

    def program(comm):
        return stencil_halo_program(comm, nx=nx, ny=ny, iters=iters)

    return program


def _collective_rounds(rounds: int):
    gemm = blas.gemm_spec(16, 16, 16)

    def program(comm):
        op = comm.compute(gemm)
        for _ in range(rounds):
            yield op
            yield comm.bcast(root=0, nbytes=1024)
            yield op
            yield comm.allreduce(nbytes=1024)
            yield comm.barrier()
        return None

    return program


def make_workloads(quick: bool = False) -> List[Workload]:
    nt = 24 if quick else 60
    rounds = 300 if quick else 2000
    return [
        Workload("cholesky-compute",
                 f"compute-heavy tiled Cholesky sweep (nt={nt})",
                 8, _cholesky_sweep(nt, 64, batched=False)),
        Workload("collective-dense",
                 f"bcast/compute/allreduce panel chain ({rounds} panels)",
                 8, _collective_chain(rounds, 64)),
        Workload("critter-heavy",
                 f"isend/compute/recv/wait + bcast/compute/allreduce mix "
                 f"({rounds // 2} rounds)",
                 8, _critter_heavy(rounds // 2, 64)),
        Workload("p2p-pipeline",
                 f"ring + halo-exchange + panel-pipeline p2p mixes "
                 f"({rounds} rounds)",
                 8, _p2p_pipeline(rounds, 32)),
        Workload("stencil-halo",
                 f"2D stencil halo exchange, nonblocking + red-black "
                 f"blocking ({rounds // 2} iters)",
                 8, _stencil_halo(rounds // 2)),
        Workload("collectives",
                 f"bcast/allreduce/barrier rounds ({rounds // 2})",
                 8, _collective_rounds(rounds // 2)),
        Workload("cholesky-columnar",
                 f"the compute sweep as one ComputeRunOp per panel "
                 f"(nt={nt})",
                 8, _cholesky_columnar(nt, 64)),
    ]


def make_batch_workloads(quick: bool = False) -> List[Workload]:
    nt = 24 if quick else 60
    return [
        Workload("cholesky-batch/expanded",
                 "batched ops, batched_compute=False (expanded)",
                 8, _cholesky_sweep(nt, 64, batched=True)),
        Workload("cholesky-batch/aggregate",
                 "batched ops, batched_compute=True (one event per run)",
                 8, _cholesky_sweep(nt, 64, batched=True),
                 machine_overrides=(("batched_compute", True),)),
    ]


# ----------------------------------------------------------------------
# measurement machinery
# ----------------------------------------------------------------------
def count_ops(program: Callable, args: Tuple, machine, noise) -> int:
    """Engine events of one run, counted via a forwarding generator."""
    total = 0

    def counting(comm, *a):
        nonlocal total
        gen = program(comm, *a)
        value = None
        while True:
            try:
                op = gen.send(value)
            except StopIteration as stop:
                return stop.value
            total += 1
            value = yield op

    Simulator(machine, noise=noise).run(counting, args=args, run_seed=1)
    return total


def _profiler_factory(kind: str, exclude=frozenset(),
                      seed_counts=None) -> Callable[[], Any]:
    if kind == "null":
        return lambda: None
    if kind == "critter-online":
        from repro.critter import Critter

        return lambda: Critter(policy="online", eps=0.25, exclude=exclude)
    if kind == "critter-apriori":
        from repro.critter import Critter

        def make():
            c = Critter(policy="apriori", eps=0.25, exclude=exclude)
            if seed_counts is not None:
                c.seed_path_counts(seed_counts)
            return c

        return make
    raise ValueError(f"unknown profiler kind {kind!r}")


def _offline_counts(machine, noise, program, args):
    """Critical-path counts from one never-skip run (apriori seeding)."""
    from repro.critter import Critter

    pre = Critter(policy="never-skip")
    Simulator(machine, noise=noise, profiler=pre).run(program, args=args,
                                                      run_seed=1)
    return pre.last_path_counts


def _time_run(machine, noise, profiler_factory, program, args,
              fast_path: bool, reps: int) -> Tuple[float, float, bool]:
    """(best wall seconds, makespan, used_fast) over ``reps`` fresh runs.

    Cyclic GC is paused around the timed region (standard bench
    hygiene, same as ``timeit``): under a host with a large live
    object graph — e.g. a pytest process — a generational collection
    landing mid-row skews a best-of-few measurement by 30%+.
    """
    best = float("inf")
    makespan = 0.0
    used_fast = False
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            sim = Simulator(machine, noise=noise, profiler=profiler_factory(),
                            fast_path=fast_path)
            t0 = time.perf_counter()  # repro: allow[wall-clock] -- bench measures host wall time by design; never feeds results
            res = sim.run(program, args=args, run_seed=1)
            wall = time.perf_counter() - t0  # repro: allow[wall-clock] -- bench measures host wall time by design; never feeds results
            if wall < best:
                best = wall
            makespan = res.makespan
            used_fast = sim.used_fast_path
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, makespan, used_fast


def _makespan_samples(machine, noise, profiler_factory, program, args,
                      fast_path: bool = True) -> Tuple[List[float], float]:
    """(makespans, best wall seconds) over :data:`MAKESPAN_SEEDS` runs.

    The distribution samples are fresh fast-path runs of the identical
    op stream (the seed changes the noise draws, not the work), so
    their wall times are extra timing observations we already paid for
    — the caller folds the best into the fast row's ``wall_s``.
    """
    samples: List[float] = []
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for seed in MAKESPAN_SEEDS:
            sim = Simulator(machine, noise=noise, profiler=profiler_factory(),
                            fast_path=fast_path)
            t0 = time.perf_counter()  # repro: allow[wall-clock] -- bench measures host wall time by design; never feeds results
            res = sim.run(program, args=args, run_seed=seed)
            wall = time.perf_counter() - t0  # repro: allow[wall-clock] -- bench measures host wall time by design; never feeds results
            if wall < best:
                best = wall
            samples.append(res.makespan)
    finally:
        if gc_was_enabled:
            gc.enable()
    return samples, best


def _paired_wall_ratio(machine_a, machine_b, noise, prog_a, prog_b,
                       pairs: int, args_a: Tuple = (),
                       args_b: Tuple = ()) -> float:
    """best-wall(a) / best-wall(b) over ``pairs`` interleaved runs.

    Row-at-a-time matrix timing gives each program one contiguous
    measurement window; host core-speed drift lasting longer than a
    window (frequency scaling, a noisy neighbor) shows up as a
    spurious 30-50% swing in a cross-row wall ratio.  Alternating
    single runs (A, B, A, B, ...) expose both programs to the same
    fast and slow windows, so the ratio of bests cancels the drift —
    this is how the headline wall-ratio gates are computed.  Both
    programs get one untimed warm-up run; GC is paused around the
    timed region as in :func:`_time_run`.
    """
    for machine, prog, args in ((machine_a, prog_a, args_a),
                                (machine_b, prog_b, args_b)):
        Simulator(machine, noise=noise).run(prog, args=args, run_seed=1)
    best_a = best_b = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(pairs):
            for which, machine, prog, args in (
                    ("a", machine_a, prog_a, args_a),
                    ("b", machine_b, prog_b, args_b)):
                sim = Simulator(machine, noise=noise)
                t0 = time.perf_counter()  # repro: allow[wall-clock] -- bench measures host wall time by design; never feeds results
                sim.run(prog, args=args, run_seed=1)
                wall = time.perf_counter() - t0  # repro: allow[wall-clock] -- bench measures host wall time by design; never feeds results
                if which == "a":
                    best_a = min(best_a, wall)
                else:
                    best_b = min(best_b, wall)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best_a / best_b


def _bench_machine(workload: Workload, preset: str, regime: str):
    """(machine, noise) for a workload row, overrides applied."""
    machine, noise = make_machine(preset, workload.nprocs, seed=3,
                                  regime=regime)
    if workload.machine_overrides:
        machine = dataclasses.replace(machine,
                                      **dict(workload.machine_overrides))
    return machine, noise


def _measure(workload: Workload, preset: str, profiler: str, reps: int,
             args: Tuple = (), nprocs: Optional[int] = None,
             exclude=frozenset(), regime: str = "default") -> Dict[str, Any]:
    if nprocs is None:
        machine, noise = _bench_machine(workload, preset, regime)
    else:
        machine, noise = make_machine(preset, nprocs, seed=3, regime=regime)
        if workload.machine_overrides:
            machine = dataclasses.replace(machine,
                                          **dict(workload.machine_overrides))
    nops = count_ops(workload.program, args, machine, noise)
    seed_counts = None
    if profiler == "critter-apriori":
        # the paper's apriori policy needs one offline full execution
        seed_counts = _offline_counts(machine, noise, workload.program, args)
    factory = _profiler_factory(profiler, exclude, seed_counts)
    # warm the noise model's bias/drift memoization for both schedulers
    Simulator(machine, noise=noise, profiler=factory()).run(
        workload.program, args=args, run_seed=1)
    naive_s, naive_mk, _ = _time_run(machine, noise, factory,
                                     workload.program, args, False, reps)
    fast_s, fast_mk, used_fast = _time_run(machine, noise, factory,
                                           workload.program, args, True, reps)
    if naive_mk != fast_mk:
        raise AssertionError(
            f"scheduler divergence on {workload.name}/{preset}/{profiler}: "
            f"naive makespan {naive_mk!r} != fast makespan {fast_mk!r}"
        )
    samples, sample_wall = _makespan_samples(machine, noise, factory,
                                             workload.program, args)
    if samples[0] != fast_mk:
        raise AssertionError(
            f"seed-1 makespan drifted between timing and sampling on "
            f"{workload.name}/{preset}/{profiler}: "
            f"{samples[0]!r} != {fast_mk!r}"
        )
    # the sampling runs are identical-work fast-path runs: fold their
    # best wall time in, so quick-profile rows are effectively
    # best-of-(reps + len(MAKESPAN_SEEDS)) instead of best-of-reps
    fast_s = min(fast_s, sample_wall)
    return {
        "workload": workload.name,
        "preset": preset,
        "profiler": profiler,
        "regime": regime,
        "nops": nops,
        "fast_path_engaged": used_fast,
        "naive": {"wall_s": naive_s, "ops_per_s": nops / naive_s},
        "fast": {"wall_s": fast_s, "ops_per_s": nops / fast_s},
        "speedup": naive_s / fast_s,
        "makespan": fast_mk,
        "makespan_p50": p50(samples),
        "makespan_p99": p99(samples),
        "makespan_cov": coefficient_of_variation(samples),
    }


def _end_to_end_cases(quick: bool):
    from repro.autotune.configspace import (
        capital_cholesky_space,
        slate_cholesky_space,
    )

    if quick:
        slate = slate_cholesky_space(n=256, t0=32, dt=8, nconf=4)
        capital = capital_cholesky_space(n=128, c=2, b0=4, nconf=10)
    else:
        slate = slate_cholesky_space()
        capital = capital_cholesky_space(n=256, c=2, b0=4, nconf=15)
    return [(slate, 0), (capital, 0)]


def _matches(name: str, patterns: Optional[Sequence[str]]) -> bool:
    """Workload-name filter: substring match against any pattern."""
    return not patterns or any(p in name for p in patterns)


def _acceptance_row(results: List[Dict[str, Any]],
                    spec: Dict[str, str]) -> Optional[Dict[str, Any]]:
    row = next(
        (r for r in results if all(r[k] == v for k, v in spec.items())),
        None,
    )
    if row is None:
        return None
    return {
        **spec,
        "speedup": row["speedup"],
        "fast_ops_per_s": row["fast"]["ops_per_s"],
        "naive_ops_per_s": row["naive"]["ops_per_s"],
    }


def known_workload_names(quick: bool = False) -> List[str]:
    """Every workload name the bench can measure (for filter validation)."""
    names = [w.name for w in make_workloads(quick)]
    names += [w.name for w in make_batch_workloads(quick)]
    names += [f"{space.name}[{idx}]"
              for space, idx in _end_to_end_cases(quick)]
    return names


def run_diagnostics(quick: bool = False,
                    specs: Optional[Sequence[Dict[str, str]]] = None,
                    regime: str = "default") -> Dict[str, Dict[str, Any]]:
    """One diagnosed fast-path run per acceptance measurement.

    The timing matrix never enables counters (they cost one dict
    increment per op); this separate pass re-runs each acceptance
    workload once with :class:`~repro.sim.diagnostics.EngineDiagnostics`
    attached and returns each run's counter/timings block keyed
    ``workload/preset/profiler`` — the machine-readable ``diag``
    section of ``BENCH_engine.json`` (``repro bench-engine --diag``).
    """
    from repro.sim.diagnostics import EngineDiagnostics

    if specs is None:
        specs = [spec for _, spec in ACCEPTANCE_SPECS]
    by_name = {w.name: w for w in make_workloads(quick)}
    out: Dict[str, Dict[str, Any]] = {}
    for spec in specs:
        w = by_name[spec["workload"]]
        machine, noise = make_machine(spec["preset"], w.nprocs, seed=3,
                                      regime=regime)
        factory = _profiler_factory(spec["profiler"])
        diag = EngineDiagnostics()
        Simulator(machine, noise=noise, profiler=factory(),
                  diagnostics=diag).run(w.program, run_seed=1)
        key = "/".join((spec["workload"], spec["preset"], spec["profiler"]))
        out[key] = diag.as_dict()
    return out


def run_bench(quick: bool = False, presets=BENCH_PRESETS,
              profilers=("null", "critter-online"),
              workloads: Optional[Sequence[str]] = None,
              diag: bool = False, regime: str = "default") -> Dict[str, Any]:
    """Run the matrix; returns the JSON-able result document.

    ``workloads`` optionally restricts the run to workloads whose name
    contains any of the given substrings (``repro bench-engine
    --workload ...``); acceptance entries are emitted only for the
    acceptance rows actually measured.  ``diag`` appends a ``diag``
    block with one counter-instrumented run per measured acceptance
    row (see :func:`run_diagnostics`).  ``regime`` runs the whole
    matrix under one of each preset's load regimes (``repro
    bench-engine --regime ...``); the batching and end-to-end sections
    are pinned to ``knl-fabric`` and only run when that preset is in
    ``presets``.
    """
    reps = 2 if quick else 4
    results = [
        _measure(w, preset, prof, reps, regime=regime)
        for w in make_workloads(quick)
        if _matches(w.name, workloads)
        for preset in presets
        for prof in profilers
    ]
    # the profiler workload additionally runs under the apriori policy
    # (offline-seeded counts — the paper's other count-propagation
    # mode); it rides along only when the profiled matrix was requested
    if "critter-online" in profilers:
        results += [
            _measure(w, preset, "critter-apriori", reps, regime=regime)
            for w in make_workloads(quick)
            if w.name == "critter-heavy" and _matches(w.name, workloads)
            for preset in presets
        ]
    # batching: expanded vs aggregate, fast path, no profiler
    batch_ws = [
        w for w in make_batch_workloads(quick)
        if "knl-fabric" in presets and _matches(w.name, workloads)
    ]
    batching = [
        _measure(w, "knl-fabric", "null", reps, regime=regime)
        for w in batch_ws
    ]
    # real algorithm configurations, end to end
    end_to_end = []
    for space, idx in _end_to_end_cases(quick) if "knl-fabric" in presets else []:
        cfg = space.configs[idx]
        w = Workload(f"{space.name}[{idx}]", cfg.label(), space.nprocs,
                     space.program)
        if not _matches(w.name, workloads):
            continue
        end_to_end.append(_measure(w, "knl-fabric", "null", reps,
                                   args=space.args_for(cfg),
                                   exclude=space.exclude, regime=regime))
    doc: Dict[str, Any] = {
        "version": 6,
        "profile": "quick" if quick else "full",
        "regime": regime,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": results,
        "batching": batching,
        "end_to_end": end_to_end,
    }
    # wall-time win of one aggregate event per batch vs expansion —
    # interleaved paired timing, not a cross-row wall ratio (see
    # _paired_wall_ratio for why)
    pairs = 8 if quick else 4
    if len(batching) == 2:
        ma, na = _bench_machine(batch_ws[0], "knl-fabric", regime)
        mb, _ = _bench_machine(batch_ws[1], "knl-fabric", regime)
        doc["batching_speedup"] = _paired_wall_ratio(
            ma, mb, na, batch_ws[0].program, batch_ws[1].program, pairs)
    for key, spec in ACCEPTANCE_SPECS:
        row = _acceptance_row(results, spec)
        if row is not None:
            doc[key] = row
    # the columnar emission must reproduce the per-op sweep exactly;
    # its headline number is the wall-time win at identical work
    per_op = next(
        (r for r in results
         if r["workload"] == "cholesky-compute"
         and r["preset"] == COLUMNAR_ACCEPTANCE["preset"]
         and r["profiler"] == COLUMNAR_ACCEPTANCE["profiler"]), None)
    columnar = next(
        (r for r in results
         if all(r[k] == v for k, v in COLUMNAR_ACCEPTANCE.items())), None)
    if per_op is not None and columnar is not None:
        if per_op["makespan"] != columnar["makespan"]:
            raise AssertionError(
                "columnar emission diverged from the per-op sweep: "
                f"makespan {columnar['makespan']!r} != "
                f"{per_op['makespan']!r}"
            )
        ws = {w.name: w for w in make_workloads(quick)}
        a, b = ws["cholesky-compute"], ws["cholesky-columnar"]
        preset = COLUMNAR_ACCEPTANCE["preset"]
        ma, na = _bench_machine(a, preset, regime)
        mb, _ = _bench_machine(b, preset, regime)
        doc["columnar_speedup"] = _paired_wall_ratio(
            ma, mb, na, a.program, b.program, pairs)
    if diag:
        measured = {(r["workload"], r["preset"], r["profiler"])
                    for r in results}
        specs = [spec for _, spec in ACCEPTANCE_SPECS
                 if (spec["workload"], spec["preset"],
                     spec["profiler"]) in measured]
        doc["diag"] = run_diagnostics(quick, specs, regime=regime)
    return doc


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def _fmt_rows(rows: List[Dict[str, Any]]) -> List[str]:
    out = []
    for r in rows:
        out.append(
            f"{r['workload']:<28} {r['preset']:<13} {r['profiler']:<15} "
            f"{r['nops']:>8} {r['naive']['ops_per_s'] / 1e6:>8.2f} "
            f"{r['fast']['ops_per_s'] / 1e6:>8.2f} {r['speedup']:>7.2f}x"
        )
    return out


def format_bench(data: Dict[str, Any]) -> str:
    header = (f"{'workload':<28} {'preset':<13} {'profiler':<15} "
              f"{'ops':>8} {'naive':>8} {'fast':>8} {'speedup':>8}")
    units = f"{'':<28} {'':<13} {'':<15} {'':>8} {'Mops/s':>8} {'Mops/s':>8}"
    regime = data.get("regime", "default")
    title = (f"engine throughput ({data['profile']} profile"
             + (f", {regime} regime" if regime != "default" else "") + ")")
    lines = [title, header, units]
    lines += _fmt_rows(data["results"])
    if data["batching"]:
        lines.append("")
        lines.append("batched-compute (fast path, knl-fabric):")
        lines += _fmt_rows(data["batching"])
        if "batching_speedup" in data:
            lines.append(f"  aggregate batching wall-time win vs expansion: "
                         f"{data['batching_speedup']:.2f}x")
    if data["end_to_end"]:
        lines.append("")
        lines.append("end-to-end algorithm runs (knl-fabric, no profiler):")
        lines += _fmt_rows(data["end_to_end"])
    for key, _spec in ACCEPTANCE_SPECS:
        acc = data.get(key)
        if acc is None:
            continue
        label = key.replace("_", " ")
        lines.append("")
        lines.append(
            f"{label} ({acc['workload']}/{acc['preset']}/{acc['profiler']}): "
            f"{acc['speedup']:.2f}x fast-path speedup "
            f"({acc['naive_ops_per_s'] / 1e6:.2f} -> "
            f"{acc['fast_ops_per_s'] / 1e6:.2f} Mops/s)"
        )
    if "columnar_speedup" in data:
        lines.append(
            f"  columnar wall-time win vs per-op emission: "
            f"{data['columnar_speedup']:.2f}x"
        )
    return "\n".join(lines)


def format_bench_markdown(data: Dict[str, Any]) -> str:
    """GitHub-flavored naive-vs-fast-vs-profiled comparison table.

    One row per workload x preset: the no-profiler throughput under
    both schedulers, the fast-path speedup, the profiled (critter)
    fast-path throughput, the profiler's overhead factor (no-profiler
    fast wall time vs profiled fast wall time), the load regime the
    matrix ran under, and the no-profiler makespan distribution over
    :data:`MAKESPAN_SEEDS` fresh runs (P50/P99 simulated seconds, CoV).
    Written into the CI job summary by the bench-smoke workflow.
    """
    by_cell: Dict[tuple, Dict[str, Any]] = {}
    order: List[tuple] = []
    for r in data["results"]:
        cell = (r["workload"], r["preset"])
        if cell not in by_cell:
            by_cell[cell] = {}
            order.append(cell)
        by_cell[cell][r["profiler"]] = r
    lines = [
        f"### Engine throughput ({data['profile']} profile, Mops/s)",
        "",
        "| workload | preset | naive | fast | speedup | critter-online fast "
        "| profiler overhead | critter-apriori fast "
        "| regime | P50 | P99 | CoV |",
        "| --- | --- | --- | --- | --- | --- | --- | --- "
        "| --- | --- | --- | --- |",
    ]
    for cell in order:
        rows = by_cell[cell]
        null = rows.get("null")
        critter = rows.get("critter-online")
        apriori = rows.get("critter-apriori")
        naive = f"{null['naive']['ops_per_s'] / 1e6:.2f}" if null else "—"
        fast = f"{null['fast']['ops_per_s'] / 1e6:.2f}" if null else "—"
        speed = f"{null['speedup']:.2f}x" if null else "—"
        prof = f"{critter['fast']['ops_per_s'] / 1e6:.2f}" if critter else "—"
        apri = f"{apriori['fast']['ops_per_s'] / 1e6:.2f}" if apriori else "—"
        if null and critter:
            over = (f"{critter['fast']['wall_s'] / null['fast']['wall_s']:.2f}"
                    "x")
        else:
            over = "—"
        any_row = null or critter or apriori or {}
        reg = any_row.get("regime", data.get("regime", "default"))
        dist = null or {}
        dp50 = (f"{dist['makespan_p50']:.4g}"
                if "makespan_p50" in dist else "—")
        dp99 = (f"{dist['makespan_p99']:.4g}"
                if "makespan_p99" in dist else "—")
        dcov = (f"{dist['makespan_cov']:.3f}"
                if "makespan_cov" in dist else "—")
        lines.append(f"| {cell[0]} | {cell[1]} | {naive} | {fast} | {speed} "
                     f"| {prof} | {over} | {apri} "
                     f"| {reg} | {dp50} | {dp99} | {dcov} |")
    for key, _spec in ACCEPTANCE_SPECS:
        acc = data.get(key)
        if acc is None:
            continue
        label = key.replace("_", " ")
        lines.append("")
        lines.append(
            f"**{label}** ({acc['workload']}/{acc['preset']}/"
            f"{acc['profiler']}): {acc['speedup']:.2f}x fast-path speedup "
            f"({acc['naive_ops_per_s'] / 1e6:.2f} → "
            f"{acc['fast_ops_per_s'] / 1e6:.2f} Mops/s)"
        )
    if "columnar_speedup" in data:
        lines.append("")
        lines.append(
            f"**columnar emission** wall-time win vs per-op emission "
            f"(identical work, fast path): {data['columnar_speedup']:.2f}x"
        )
    lines.append("")
    return "\n".join(lines)


def write_bench(data: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(data, fh, indent=1)
        fh.write("\n")


def main(quick: bool = False, out: str = "BENCH_engine.json",
         check: bool = False,
         workloads: Optional[Sequence[str]] = None,
         markdown: Optional[str] = None,
         diag: bool = False,
         preset: Optional[str] = None,
         regime: str = "default") -> int:
    """CLI driver shared by ``repro bench-engine`` and the bench suite."""
    if preset is not None and preset not in PRESETS:
        # same fail-fast contract as --workload: a typo must not turn
        # into a silent empty (or wrong) matrix
        print(f"FAIL: unknown preset {preset!r}")
        print("valid presets:")
        for name in sorted(PRESETS):
            print(f"  {name}")
        return 2
    if regime not in REGIME_NAMES:
        print(f"FAIL: unknown regime {regime!r}")
        print("valid regimes:")
        for name in REGIME_NAMES:
            print(f"  {name}")
        return 2
    if workloads:
        # fail fast on a pattern that matches nothing: a typo would
        # otherwise produce a silent empty run (or, with --check, a
        # confusing "no acceptance workload" failure)
        names = known_workload_names(quick)
        unknown = [p for p in workloads
                   if not any(p in name for name in names)]
        if unknown:
            print("FAIL: unknown workload pattern(s): "
                  + ", ".join(repr(p) for p in unknown))
            print("valid workload names (patterns match by substring):")
            for name in names:
                print(f"  {name}")
            return 2
    presets = (preset,) if preset is not None else BENCH_PRESETS
    data = run_bench(quick=quick, presets=presets, workloads=workloads,
                     diag=diag, regime=regime)
    print(format_bench(data))
    if diag and "diag" in data:
        from repro.sim.diagnostics import format_counters_table

        for key, block in data["diag"].items():
            print(f"\ndiagnostics: {key}")
            print(format_counters_table(block["counters"]))
    if out:
        write_bench(data, out)
        print(f"\nwrote {out}")
    if markdown:
        with open(markdown, "w") as fh:
            fh.write(format_bench_markdown(data))
            fh.write("\n")
        print(f"wrote {markdown}")
    if check and regime != "default":
        # the floors are calibrated against the default regime's op
        # costs; non-default rows exist for distribution reporting, not
        # regression gating (the CI matrix checks the default leg only)
        print("note: --check floors bind to the default regime; "
              f"skipping floor enforcement for regime {regime!r}")
        check = False
    if check:
        floor_col = 1 if quick else 0
        checked = [(key, data[key]) for key, _spec in ACCEPTANCE_SPECS
                   if key in data]
        if not checked:
            # a --workload filter excluded every acceptance row: exiting
            # green here would silently disable the regression gate
            print("FAIL: --check requested but no acceptance workload was "
                  "measured (workload filter excluded them)")
            return 1
        failed = False
        for key, acc in checked:
            floor = CHECK_FLOORS[key][floor_col]
            if acc["speedup"] < floor:
                print(f"FAIL: {key} speedup {acc['speedup']:.2f}x is below "
                      f"the {floor:.2f}x floor "
                      f"({acc['workload']}/{acc['preset']}/"
                      f"{acc['profiler']})")
                failed = True
        if "columnar_speedup" in data:
            floor = COLUMNAR_SPEEDUP_FLOORS[floor_col]
            if data["columnar_speedup"] < floor:
                print(f"FAIL: columnar wall-time win "
                      f"{data['columnar_speedup']:.2f}x is below the "
                      f"{floor:.2f}x floor")
                failed = True
        if failed:
            return 1
    return 0
