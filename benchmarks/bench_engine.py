"""Engine-throughput bench: the perf trajectory of the simulator core.

Unlike the figure benches (which reproduce the paper's experiments),
this bench measures the *infrastructure*: discrete-event engine events
per second under the naive heap-per-op scheduler vs the
run-to-completion fast path, with and without Critter attached, plus
the batched-compute op's wall-time win.  Results land in
``BENCH_engine.json`` at the repository root so every PR has a recorded
before/after.

Run standalone::

    REPRO_BENCH_PROFILE=smoke pytest benchmarks/bench_engine.py -s

or via the CLI (identical machinery)::

    python -m repro.cli bench-engine [--quick] [--check]
"""

from __future__ import annotations

import os

from bench_profiles import PROFILE
from repro.sim.bench import (
    ACCEPTANCE_SPECS,
    CHECK_FLOORS,
    COLUMNAR_SPEEDUP_FLOORS,
    format_bench,
    run_bench,
    write_bench,
)

BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_engine.json")


def test_engine_fastpath_throughput(benchmark):
    quick = PROFILE == "smoke"
    data = run_bench(quick=quick)
    print()
    print(format_bench(data))
    write_bench(data, BENCH_JSON)

    # every acceptance row must hold its floor: speedup rows against
    # the in-run naive baseline, the profiled-p2p row as a parity gate
    # (hook work is bit-identical under both schedulers and dominates
    # that cell — see benchmarks/README.md)
    floor_col = 1 if quick else 0
    for key, spec in ACCEPTANCE_SPECS:
        row = data[key]
        floor = CHECK_FLOORS[key][floor_col]
        assert row["speedup"] >= floor, (
            f"{key} below its {floor:.2f}x floor on {spec}: "
            f"{row['speedup']:.2f}x"
        )
    # aggregate batching must beat expanded emission, and columnar
    # emission must beat per-op emission of the identical work
    assert data["batching_speedup"] > 1.0
    assert data["columnar_speedup"] >= COLUMNAR_SPEEDUP_FLOORS[floor_col]

    # one representative timed point for pytest-benchmark's report
    from repro.sim.bench import make_workloads
    from repro.sim.engine import Simulator
    from repro.sim.presets import make_machine

    w = next(x for x in make_workloads(quick=True)
             if x.name == "cholesky-compute")
    machine, noise = make_machine("knl-fabric", w.nprocs, seed=3)

    def run_once():
        return Simulator(machine, noise=noise).run(w.program, run_seed=1)

    benchmark.pedantic(run_once, rounds=3, iterations=1)
