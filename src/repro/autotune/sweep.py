"""Tolerance sweeps: the experiment grids behind Figures 4 and 5.

A sweep runs the exhaustive tuner for every (policy, tolerance) pair,
reusing one set of ground-truth full executions across all points (the
truth does not depend on the selective method).  The result object
exposes the exact series the paper plots:

* search time vs. log2(eps) per policy        (Figs. 4a/4b, 5a/5b)
* max-rank kernel time vs. log2(eps)          (Figs. 4c, 5c)
* mean log2 prediction error vs. log2(eps)    (Figs. 4d-f, 5d-f)
* per-configuration error at selected eps     (Figs. 4g/4h, 5g/5h)

The grid is embarrassingly parallel: every (policy, eps, config) cell
is an independent job (eager propagation parallelizes at (policy, eps)
granularity), so the whole sweep is submitted to the runner as one flat
batch — ``tolerance_sweep(..., jobs=N)`` saturates N cores, and
``cache_dir=...`` makes re-runs and overlapping sweeps reuse every
measurement already taken.  Results are bit-identical to serial
execution for any job count.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.autotune.configspace import ConfigSpace
from repro.autotune.metrics import distribution_summary
from repro.autotune.tuner import (
    GroundTruth,
    TuningResult,
    assemble_tuning_result,
    default_machine,
    ground_truth_from_results,
    ground_truth_requests,
    tuning_requests,
)
from repro.runner import (
    ManifestError,
    Runner,
    SweepManifest,
    logging_progress,
    make_runner,
    request_key,
)
from repro.sim.machine import Machine

__all__ = ["SweepResult", "tolerance_sweep", "default_tolerances"]

logger = logging.getLogger("repro.autotune.sweep")


def default_tolerances(lo_exp: int = -10, hi_exp: int = 0) -> List[float]:
    """The paper's tolerance axis: eps = 2^0 .. 2^-10."""
    return [2.0**e for e in range(hi_exp, lo_exp - 1, -1)]


@dataclass(slots=True)
class SweepResult:
    """All tuning results of one space's (policy x tolerance) grid.

    ``ground`` is aligned by configuration index; a ``None`` slot marks
    a configuration whose full-execution job was quarantined by a
    fault-tolerant runner — reference lines then range over the
    surviving configurations, and :meth:`failure_summary` names what
    was skipped at each grid point.
    """

    space_name: str
    policies: List[str]
    tolerances: List[float]
    reps: int
    points: Dict[Tuple[str, float], TuningResult] = field(default_factory=dict)
    ground: List[Optional[GroundTruth]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def full_search_time(self) -> float:
        """The red full-execution reference line."""
        return sum(g.mean_time * self.reps for g in self.ground
                   if g is not None)

    @property
    def full_kernel_time(self) -> float:
        return sum(g.max_rank_kernel_time * self.reps for g in self.ground
                   if g is not None)

    @property
    def full_comp_kernel_time(self) -> float:
        return sum(g.max_rank_comp_time * self.reps for g in self.ground
                   if g is not None)

    def failure_summary(self) -> Dict[Tuple[str, float], List[str]]:
        """Failed-job annotations per grid point (empty when clean)."""
        return {point: list(res.failures)
                for point, res in self.points.items() if res.failures}

    def ground_time_distribution(self) -> Dict[str, float]:
        """P50/P99/CoV/mean over surviving ground-truth config times.

        The spread across configurations is what the tuner navigates;
        reporting it as a distribution (not just the best/mean) keeps
        the sweep's summary honest about how peaked the space is.
        """
        times = [g.mean_time for g in self.ground if g is not None]
        return distribution_summary(times)

    def result(self, policy: str, eps: float) -> TuningResult:
        return self.points[(policy, eps)]

    def series(self, policy: str, metric: str) -> List[float]:
        """Metric values across the tolerance axis for one policy."""
        out = []
        for eps in self.tolerances:
            res = self.points[(policy, eps)]
            out.append(getattr(res, metric))
        return out

    def per_config_errors(self, policy: str, eps: float,
                          metric: str = "exec_error") -> List[float]:
        res = self.points[(policy, eps)]
        return [getattr(o, metric) for o in res.outcomes]

    def log2_tolerances(self) -> List[float]:
        return [math.log2(e) for e in self.tolerances]


def _describe_point(space_name: str, res: TuningResult) -> str:
    """One parseable key=value summary line per grid point."""
    return (f"sweep_point space={space_name} policy={res.policy} "
            f"eps=2^{math.log2(res.eps):+.0f} "
            f"search_time={res.search_time:.6f} "
            f"speedup={res.search_speedup:.3f} "
            f"log2_err={res.mean_log2_exec_error:+.2f}")


def tolerance_sweep(
    space: ConfigSpace,
    machine: Optional[Machine] = None,
    policies: Sequence[str] = ("conditional", "local", "online", "apriori"),
    tolerances: Optional[Sequence[float]] = None,
    reps: int = 5,
    full_reps: int = 3,
    seed: int = 0,
    progress: bool = False,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    runner: Optional[Runner] = None,
    resume: bool = False,
) -> SweepResult:
    """Run the full (policy x tolerance) grid for one space.

    ``jobs``/``cache_dir`` build a default runner (parallel executor and
    content-addressed result cache); pass ``runner`` to share one across
    sweeps.  ``progress`` emits per-job and per-point ``key=value``
    lines through :mod:`logging` (loggers ``repro.runner`` and
    ``repro.autotune.sweep``) instead of printing.

    When the runner has a result cache, the sweep maintains a
    :class:`~repro.runner.SweepManifest` next to it — request keys plus
    completion states, flushed after every job — so a sweep killed
    mid-grid can restart with ``resume=True``: only incomplete jobs
    execute (the cache replays completed ones at zero cost), and the
    manifest's prior progress is reported before work begins.
    ``resume`` requires a cache and an existing manifest for this exact
    grid; anything else raises :class:`~repro.runner.ManifestError`.
    """
    machine = machine or default_machine(space, seed)
    tolerances = list(tolerances if tolerances is not None else default_tolerances())
    if runner is not None and (jobs is not None or cache_dir is not None):
        raise ValueError(
            "pass either a runner or jobs/cache_dir, not both: an explicit "
            "runner already fixes the executor and cache"
        )
    if runner is None:
        runner = make_runner(jobs=jobs, cache_dir=cache_dir,
                             progress=logging_progress() if progress else None)

    # describe the whole campaign up front: ground truth plus one flat
    # batch for the grid (the runner interleaves every (policy, eps)
    # point's jobs across the worker pool)
    gt_requests = ground_truth_requests(space, machine, full_reps, seed)
    grid: List[Tuple[str, float]] = [(p, e) for p in policies for e in tolerances]
    spans: List[Tuple[int, int]] = []
    requests = []
    for policy, eps in grid:
        reqs = tuning_requests(space, machine, policy, eps, reps, seed=seed)
        spans.append((len(requests), len(requests) + len(reqs)))
        requests.extend(reqs)

    manifest = None
    pinned = None
    if runner.cache is not None:
        all_requests = gt_requests + requests
        keys = [request_key(r) for r in all_requests]
        grid_id = SweepManifest.grid_id_for(keys)
        mpath = SweepManifest.path_for(runner.cache.directory, space.name,
                                       grid_id)
        if resume:
            manifest = SweepManifest.load(mpath)  # raises if nothing to resume
            logger.info("resuming sweep: %s", manifest.summary())
        else:
            manifest = SweepManifest(mpath, grid_id)
        manifest.plan(list(zip(keys, all_requests)))
        manifest.save()
        runner.manifest = manifest
        if hasattr(runner.cache, "pin"):
            # a size-bounded store must not evict this sweep's working
            # set out from under it mid-grid
            runner.cache.pin(keys)
            pinned = keys
    elif resume:
        raise ManifestError(
            "resume requires a result cache (cache_dir): the manifest "
            "lives next to it and the cache is what makes completed "
            "jobs free to replay")

    try:
        gt_results = runner.run(gt_requests)
        ground = ground_truth_from_results(gt_results,
                                           nconfigs=len(space.configs))
        sweep = SweepResult(
            space_name=space.name,
            policies=list(policies),
            tolerances=tolerances,
            reps=reps,
            ground=ground,
        )
        results = runner.run(requests)
    finally:
        runner.manifest = None
        if pinned is not None:
            runner.cache.unpin(pinned)
    for (policy, eps), (lo, hi) in zip(grid, spans):
        res = assemble_tuning_result(space, policy, eps, reps,
                                     results[lo:hi], ground)
        sweep.points[(policy, eps)] = res
        for failure in res.failures:
            logger.warning("sweep_point space=%s policy=%s eps=%g "
                           "degraded: %s", space.name, policy, eps, failure)
        if progress:
            logger.info("%s", _describe_point(space.name, res))
    return sweep
