"""Machine model: alpha-beta-gamma costs with per-collective algorithms.

The simulator charges every operation a *base cost* derived from the
classic alpha-beta-gamma model used throughout the paper's BSP
analysis:

* ``alpha`` — per-message latency (seconds),
* ``beta``  — inverse bandwidth (seconds per byte),
* ``gamma`` — time per floating-point operation (seconds).

Collectives use textbook tree / recursive-doubling cost formulas (the
same asymptotics MPICH/Intel MPI implementations achieve), so the BSP
communication/synchronization trade-offs of Section V emerge from the
schedules rather than being hard-coded.

The defaults approximate one Stampede2 KNL core driving an Omni-Path
NIC: ~2 us latency, ~2 GB/s effective per-process bandwidth, ~20 Gflop/s
per-process DGEMM rate.  Absolute values only set the overall time
scale; the reproduction targets shapes, not seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

from repro.kernels.signature import KernelSignature

__all__ = ["CollectiveCosts", "Machine"]


def _log2ceil(p: int) -> int:
    return max(1, math.ceil(math.log2(max(p, 2))))


@dataclass(frozen=True, slots=True)
class CollectiveCosts:
    """Cost formulas for MPI collectives over ``p`` ranks moving ``n`` bytes.

    ``n`` is the *per-rank payload* in bytes (the buffer each rank sends
    or receives, matching the MPI count argument), mirroring how the
    paper parameterizes communication kernels on message size.
    """

    alpha: float
    beta: float

    def p2p(self, nbytes: int) -> float:
        return self.alpha + self.beta * nbytes

    def bcast(self, nbytes: int, p: int) -> float:
        # binomial tree
        return _log2ceil(p) * (self.alpha + self.beta * nbytes)

    def reduce(self, nbytes: int, p: int) -> float:
        # mirrored binomial tree (reduction flops charged to gamma by caller)
        return _log2ceil(p) * (self.alpha + self.beta * nbytes)

    def allreduce(self, nbytes: int, p: int) -> float:
        # recursive halving + doubling
        return 2.0 * _log2ceil(p) * self.alpha + 2.0 * self.beta * nbytes

    def allgather(self, nbytes: int, p: int) -> float:
        # recursive doubling; each rank ends with p*nbytes
        return _log2ceil(p) * self.alpha + self.beta * nbytes * max(p - 1, 1)

    def gather(self, nbytes: int, p: int) -> float:
        return _log2ceil(p) * self.alpha + self.beta * nbytes * max(p - 1, 1)

    def scatter(self, nbytes: int, p: int) -> float:
        return _log2ceil(p) * self.alpha + self.beta * nbytes * max(p - 1, 1)

    def alltoall(self, nbytes: int, p: int) -> float:
        return _log2ceil(p) * self.alpha + self.beta * nbytes * max(p - 1, 1)

    def barrier(self, p: int) -> float:
        return 2.0 * _log2ceil(p) * self.alpha

    def cost(self, name: str, nbytes: int, p: int) -> float:
        """Dispatch by collective name (``"bcast"``, ``"reduce"``, ...)."""
        if name == "barrier":
            return self.barrier(p)
        fn = getattr(self, name, None)
        if fn is None:
            raise ValueError(f"unknown collective {name!r}")
        return fn(nbytes, p)


@dataclass(frozen=True, slots=True)
class Machine:
    """A simulated distributed-memory machine.

    Attributes
    ----------
    nprocs:
        Number of MPI ranks the machine hosts.
    alpha, beta, gamma:
        Latency (s), inverse bandwidth (s/byte), time per flop (s).
    intercept_alpha:
        Latency of one *internal* profiler message (the PMPI-level
        sendrecv/allreduce Critter issues in Fig. 2).  This is the
        irreducible per-kernel cost of selective execution — skipping a
        kernel still pays this overhead.
    skip_overhead:
        Local bookkeeping time charged when a computational kernel is
        skipped (hash lookup + branch in the real tool).
    seed:
        Machine identity seed; combined with kernel signatures to draw
        the per-signature efficiency biases (see
        :class:`~repro.sim.noise.NoiseModel`).  Two machines with
        different seeds rank configurations differently — this is what
        autotuning discovers.
    batched_compute:
        When True, a :class:`~repro.sim.ops.ComputeBatchOp` is charged
        as one aggregate kernel (one noise draw over ``count * flops``)
        instead of being expanded into its per-sub-kernel equivalents.
        A deliberate model coarsening for throughput studies; off by
        default so results stay bit-identical to per-op emission.
    """

    nprocs: int
    alpha: float = 2.0e-6
    beta: float = 5.0e-10
    gamma: float = 5.0e-11
    intercept_alpha: float = 2.0e-8
    skip_overhead: float = 1.0e-8
    seed: int = 0
    batched_compute: bool = False

    def collectives(self) -> CollectiveCosts:
        return CollectiveCosts(self.alpha, self.beta)

    # ------------------------------------------------------------------
    # base (noise-free) costs
    # ------------------------------------------------------------------
    def compute_cost(self, flops: float) -> float:
        """Base cost of a computational kernel performing ``flops`` flops."""
        return self.gamma * float(flops)

    def comm_cost(self, sig: KernelSignature) -> float:
        """Base cost of a communication kernel from its signature.

        The signature's params are ``(nbytes, comm_size, comm_stride)``
        as produced by :func:`repro.kernels.comm_signature`.
        """
        nbytes, p, _stride = sig.params
        cc = self.collectives()
        if sig.name in ("p2p", "send", "recv", "sendrecv", "isend", "irecv"):
            return cc.p2p(nbytes)
        return cc.cost(sig.name, nbytes, p)

    def comm_cost_memo(self) -> Callable[[KernelSignature], float]:
        """A memoized :meth:`comm_cost` bound to this machine.

        ``comm_cost`` is a pure function of (machine, signature), but
        computing it rebuilds the :class:`CollectiveCosts` object and
        re-evaluates the log terms on every call — measurable in the
        engine hot loop, where collective-dense workloads reuse a
        handful of signatures millions of times.  The returned callable
        holds a per-(signature, machine) cache (signatures are interned,
        so probes hit the identity fast path), mirroring the engine's
        per-(signature, run) compute-noise-factor cache.  The machine is
        frozen, so the memo never needs invalidation.
        """
        cache: Dict[KernelSignature, float] = {}
        comm_cost = self.comm_cost

        def cost(sig: KernelSignature) -> float:
            c = cache.get(sig)
            if c is None:
                c = cache[sig] = comm_cost(sig)
            return c

        return cost

    def base_cost(self, sig: KernelSignature, flops: float = 0.0) -> float:
        if sig.is_comm:
            return self.comm_cost(sig)
        return self.compute_cost(flops)

    def internal_cost(self, p: int) -> float:
        """Cost of Critter's internal allreduce among ``p`` ranks."""
        return 2.0 * _log2ceil(p) * self.intercept_alpha
