"""Machine parameter presets.

The defaults of :class:`~repro.sim.machine.Machine` approximate one
Stampede2 KNL core; these presets provide other plausible design points
so noise-sensitivity and machine-dependence studies (e.g. "does the
chosen configuration change across machines?" — the reason autotuning
exists) have ready-made contrasts.

Each preset fixes the alpha/beta/gamma triple and a matching noise
profile; the ``seed`` still controls per-signature efficiency biases,
so two instances of the *same* preset with different seeds rank
configurations differently — exactly like two differently-aged
clusters of the same model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.machine import Machine
from repro.sim.noise import NoiseModel

__all__ = ["MachinePreset", "PRESETS", "make_machine"]


@dataclass(frozen=True, slots=True)
class MachinePreset:
    """A named machine design point."""

    name: str
    description: str
    alpha: float
    beta: float
    gamma: float
    bias_sigma: float
    comp_cv: float
    comm_cv: float
    run_cv: float

    def machine(self, nprocs: int, seed: int = 0) -> Machine:
        return Machine(nprocs=nprocs, alpha=self.alpha, beta=self.beta,
                       gamma=self.gamma, seed=seed)

    def noise(self, seed: int = 0) -> NoiseModel:
        return NoiseModel(bias_sigma=self.bias_sigma, comp_cv=self.comp_cv,
                          comm_cv=self.comm_cv, run_cv=self.run_cv,
                          machine_seed=seed)


PRESETS = {
    # Stampede2-flavoured: slow serial cores, fast fabric, noisy shared
    # network (the paper's host system)
    "knl-fabric": MachinePreset(
        name="knl-fabric",
        description="KNL-class cores on a fat-tree fabric (paper-like)",
        alpha=2.0e-6, beta=5.0e-10, gamma=5.0e-11,
        bias_sigma=0.3, comp_cv=0.08, comm_cv=0.2, run_cv=0.01,
    ),
    # fat x86 cores, commodity network: computation relatively cheap,
    # latency relatively expensive -> larger blocks win
    "epyc-ethernet": MachinePreset(
        name="epyc-ethernet",
        description="server-class cores over 100GbE (latency-heavy)",
        alpha=1.0e-5, beta=1.0e-10, gamma=2.0e-11,
        bias_sigma=0.25, comp_cv=0.05, comm_cv=0.35, run_cv=0.02,
    ),
    # cloud VMs: huge run-to-run drift, noisy neighbours
    "cloud-vm": MachinePreset(
        name="cloud-vm",
        description="virtualized nodes with noisy neighbours",
        alpha=2.0e-5, beta=8.0e-10, gamma=3.0e-11,
        bias_sigma=0.35, comp_cv=0.2, comm_cv=0.5, run_cv=0.05,
    ),
    # an idealized quiet machine: near-deterministic timings (useful as
    # an experimental control)
    "quiet": MachinePreset(
        name="quiet",
        description="noise-free control machine",
        alpha=2.0e-6, beta=5.0e-10, gamma=5.0e-11,
        bias_sigma=0.0, comp_cv=0.0, comm_cv=0.0, run_cv=0.0,
    ),
}


def make_machine(preset: str, nprocs: int, seed: int = 0):
    """Build (Machine, NoiseModel) for a named preset."""
    try:
        p = PRESETS[preset]
    except KeyError:
        raise ValueError(f"unknown preset {preset!r}; choose from {sorted(PRESETS)}") from None
    return p.machine(nprocs, seed), p.noise(seed)
