"""LAPACK kernel models: cost builders + numeric reference routines.

Covers every LAPACK routine the paper's four workloads invoke
(Section V.D): ``potrf``, ``trtri``, ``geqrf``, ``ormqr``, ``getrf``,
and the tiled-QR kernels ``geqrt``/``tpqrt``/``tpmqrt``/``larfb``.

The tiled-QR numeric kernels are implemented via compact-WY Householder
factorizations of (stacked) tiles: the exact LAPACK storage layout of
``tpqrt`` (identity-top pentagonal V) is not reproduced, but the applied
orthogonal transformations are numerically identical, which is what the
schedule-level correctness tests verify.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg as sla

from repro.kernels.roofline import register_kernel_model
from repro.kernels.signature import KernelSignature, comp_signature

__all__ = [
    "potrf_spec", "trtri_spec", "getrf_spec", "geqrf_spec", "ormqr_spec",
    "geqrt_spec", "tpqrt_spec", "tpmqrt_spec", "larfb_spec", "larft_spec",
    "potrf", "trtri", "getrf",
    "householder_T", "qr_factor", "apply_q", "apply_qt",
]

Spec = Tuple[KernelSignature, float]


# ----------------------------------------------------------------------
# cost builders (leading-order real flop counts)
# ----------------------------------------------------------------------
def potrf_spec(n: int) -> Spec:
    """Cholesky factorization of an n x n SPD matrix: n^3/3 flops."""
    return comp_signature("potrf", n), n**3 / 3.0


def trtri_spec(n: int) -> Spec:
    """Triangular inversion: n^3/3 flops."""
    return comp_signature("trtri", n), n**3 / 3.0


def getrf_spec(m: int, n: int) -> Spec:
    """LU factorization: mn^2 - n^3/3 flops."""
    return comp_signature("getrf", m, n), float(m) * n * n - n**3 / 3.0


def geqrf_spec(m: int, n: int) -> Spec:
    """Householder QR of m x n (m >= n): 2mn^2 - 2n^3/3 flops."""
    return comp_signature("geqrf", m, n), 2.0 * m * n * n - 2.0 * n**3 / 3.0


def ormqr_spec(m: int, n: int, k: int) -> Spec:
    """Apply k reflectors (m-vectors) to an m x n matrix: 4mnk - 2nk^2."""
    return comp_signature("ormqr", m, n, k), 4.0 * m * n * k - 2.0 * n * k * k


def geqrt_spec(m: int, n: int) -> Spec:
    """Blocked QR of a tile incl. T formation: geqrf + mn^2/  ~ +n^3/3."""
    return comp_signature("geqrt", m, n), 2.0 * m * n * n - 2.0 * n**3 / 3.0 + n**3 / 3.0


def tpqrt_spec(m: int, n: int) -> Spec:
    """Triangular-pentagonal QR (R on top, m x n block below): 2mn^2 + n^3/3."""
    return comp_signature("tpqrt", m, n), 2.0 * m * n * n + n**3 / 3.0


def tpmqrt_spec(m: int, n: int, k: int) -> Spec:
    """Apply a tpqrt transform to stacked (k x n on m x n) tiles: 4mnk."""
    return comp_signature("tpmqrt", m, n, k), 4.0 * m * n * k


def larfb_spec(m: int, n: int, k: int) -> Spec:
    """Apply a block reflector (m x k) to an m x n matrix: 4mnk."""
    return comp_signature("larfb", m, n, k), 4.0 * m * n * k


def larft_spec(m: int, k: int) -> Spec:
    """Form the triangular T factor of k reflectors of length m: k^2 m."""
    return comp_signature("larft", m, k), float(k) * k * m


# ----------------------------------------------------------------------
# roofline memory-traffic models (8-byte reals; outputs read + written)
# ----------------------------------------------------------------------
# factorizations touch their panel once (in-place update); the
# reflector-apply kernels stream the target matrix plus the reflector
# block.  Flop closures mirror the *_spec formulas above.
register_kernel_model(
    "potrf", lambda n: n**3 / 3.0, lambda n: 8.0 * n * n)
register_kernel_model(
    "trtri", lambda n: n**3 / 3.0, lambda n: 8.0 * n * n)
register_kernel_model(
    "getrf",
    lambda m, n: float(m) * n * n - n**3 / 3.0,
    lambda m, n: 16.0 * m * n,
)
register_kernel_model(
    "geqrf",
    lambda m, n: 2.0 * m * n * n - 2.0 * n**3 / 3.0,
    lambda m, n: 16.0 * m * n,
)
register_kernel_model(
    "ormqr",
    lambda m, n, k: 4.0 * m * n * k - 2.0 * n * k * k,
    lambda m, n, k: 8.0 * (2.0 * m * n + m * k + k * k),
)
register_kernel_model(
    "geqrt",
    lambda m, n: 2.0 * m * n * n - 2.0 * n**3 / 3.0 + n**3 / 3.0,
    lambda m, n: 8.0 * (2.0 * m * n + n * n),
)
register_kernel_model(
    "tpqrt",
    lambda m, n: 2.0 * m * n * n + n**3 / 3.0,
    lambda m, n: 8.0 * (2.0 * m * n + n * n),
)
register_kernel_model(
    "tpmqrt",
    lambda m, n, k: 4.0 * m * n * k,
    lambda m, n, k: 8.0 * (2.0 * m * n + 2.0 * k * n),
)
register_kernel_model(
    "larfb",
    lambda m, n, k: 4.0 * m * n * k,
    lambda m, n, k: 8.0 * (2.0 * m * n + m * k + k * k),
)
register_kernel_model(
    "larft", lambda m, k: float(k) * k * m, lambda m, k: 8.0 * (m * k + k * k))


# ----------------------------------------------------------------------
# numeric reference implementations
# ----------------------------------------------------------------------
def potrf(a: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor of SPD ``a``."""
    return np.linalg.cholesky(a)


def trtri(a: np.ndarray, *, lower: bool = True) -> np.ndarray:
    """Inverse of a triangular matrix."""
    eye = np.eye(a.shape[0], dtype=a.dtype)
    return sla.solve_triangular(a, eye, lower=lower)


def getrf(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """LU with partial pivoting: returns (P, L, U) with a = P L U."""
    return sla.lu(a)


def householder_T(y: np.ndarray, tau: np.ndarray) -> np.ndarray:
    """Form the upper-triangular T of the compact WY representation.

    Given unit-lower-trapezoidal Y (m x k) and scalars tau, builds T with
    Q = I - Y T Y^T via the standard larft recurrence.
    """
    k = y.shape[1]
    t = np.zeros((k, k), dtype=y.dtype)
    for i in range(k):
        t[i, i] = tau[i]
        if i > 0:
            # t[:i, i] = -tau_i * T[:i,:i] @ (Y[:, :i]^T y_i)
            t[:i, i] = -tau[i] * (t[:i, :i] @ (y[:, :i].T @ y[:, i]))
    return t


def qr_factor(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compact-WY Householder QR: returns (Y, T, R) with a = (I - Y T Y^T) R.

    Y is m x n unit-lower-trapezoidal, T is n x n upper-triangular, R is
    n x n upper-triangular (the leading rows of the factored matrix).
    """
    m, n = a.shape
    (qr, tau), r_part = sla.qr(a, mode="raw")
    r = np.triu(r_part[:n, :n]).copy()
    y = np.tril(qr, -1)[:, :n].copy()
    np.fill_diagonal(y, 1.0)
    t = householder_T(y, np.asarray(tau))
    return y, t, r


def apply_q(y: np.ndarray, t: np.ndarray, c: np.ndarray) -> np.ndarray:
    """C <- Q C with Q = I - Y T Y^T."""
    return c - y @ (t @ (y.T @ c))


def apply_qt(y: np.ndarray, t: np.ndarray, c: np.ndarray) -> np.ndarray:
    """C <- Q^T C with Q = I - Y T Y^T."""
    return c - y @ (t.T @ (y.T @ c))
