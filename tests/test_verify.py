"""Verification helpers: matrix generators and tile assembly."""

import numpy as np
import pytest

from repro.algorithms import verify


class TestGenerators:
    def test_random_spd_is_spd(self):
        a = verify.random_spd(24, seed=1)
        assert np.allclose(a, a.T)
        assert np.all(np.linalg.eigvalsh(a) > 0)

    def test_random_spd_deterministic(self):
        assert np.array_equal(verify.random_spd(8, seed=3), verify.random_spd(8, seed=3))

    def test_random_matrix_shape(self):
        assert verify.random_matrix(5, 3, seed=0).shape == (5, 3)


class TestAssembly:
    def test_assemble_tiles(self):
        t0 = {(0, 0): np.ones((2, 2)), (1, 1): 2 * np.ones((2, 2))}
        t1 = {(0, 1): 3 * np.ones((2, 2))}
        out = verify.assemble_tiles([t0, t1], 4, 4, 2)
        assert out[0, 0] == 1 and out[2, 2] == 2 and out[0, 2] == 3
        assert out[2, 0] == 0

    def test_assemble_ragged(self):
        t = {(1, 0): np.full((1, 3), 7.0)}
        out = verify.assemble_tiles([t], 4, 3, 3)
        assert out[3, 0] == 7 and out.shape == (4, 3)

    def test_assemble_skips_none_and_markers(self):
        out = verify.assemble_tiles([None, {}, {"__top__": np.ones((1, 1))}], 2, 2, 1)
        assert np.all(out == 0)


class TestCheckers:
    def test_capital_checker_rejects_bad_factor(self):
        a = verify.random_spd(8, seed=0)
        l_bad = np.tril(np.ones((8, 8)))
        with pytest.raises(AssertionError, match="residual"):
            verify.check_capital_cholesky((l_bad, l_bad), a)

    def test_slate_checker_rejects_bad_tiles(self):
        from repro.algorithms.slate_cholesky import SlateCholeskyConfig

        cfg = SlateCholeskyConfig(n=8, nb=4, pr=1, pc=1, lookahead=0)
        a = verify.random_spd(8, seed=0)
        with pytest.raises(AssertionError):
            verify.check_slate_cholesky([{(0, 0): np.eye(4), (1, 0): np.eye(4),
                                          (1, 1): np.eye(4)}], cfg, a)
