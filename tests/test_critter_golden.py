"""Golden Critter-report regression: the profiler's bit-identity contract.

``tests/golden/critter_golden.json`` pins the full RunReport surface
(predicted path metrics, volumetric averages, most-loaded-rank times,
executed/skipped counts) and every rank's end-of-run path counts, in
exact ``float.hex`` form, for online/eager/apriori policies and the
slack path criterion — captured on the Critter implementation *before*
the copy-on-write path-propagation refactor.

Both schedulers must reproduce the fixtures bit-for-bit: the hot-path
optimizations (COW count tables, cached path values, cached
predictability verdicts) may not change a single decision, metric, or
count.  Any future profiler change that shifts one value here is a
behavioral change and needs a deliberate fixture regeneration
(``python tests/critter_golden_workloads.py --write``) with
justification.
"""

from __future__ import annotations

import pytest

from critter_golden_workloads import (
    GOLDEN_PATH,
    golden_cases,
    load_golden,
    run_case,
)

GOLDEN = load_golden()
CASES = golden_cases()
CASE_IDS = [c["id"] for c in CASES]


def test_fixture_covers_all_cases():
    assert sorted(GOLDEN) == sorted(CASE_IDS)


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_golden_fast_path(case):
    assert run_case(case)["runs"] == GOLDEN[case["id"]]["runs"], (
        f"fast-path Critter reports diverged from {GOLDEN_PATH}"
    )


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_golden_naive_scheduler(case):
    assert run_case(case, fast_path=False)["runs"] == GOLDEN[case["id"]]["runs"], (
        f"naive-scheduler Critter reports diverged from {GOLDEN_PATH}"
    )
