"""CANDMC QR: numeric correctness, BSP structure, config validation."""

import numpy as np
import pytest

from repro.algorithms import verify
from repro.algorithms.candmc_qr import CandmcQRConfig, candmc_qr
from repro.critter import Critter
from repro.sim import Machine, NoiseModel, Simulator, TraceRecorder


def run_numeric(m, n, b, pr, pc, seed=5):
    cfg = CandmcQRConfig(m=m, n=n, b=b, pr=pr, pc=pc)
    a = verify.random_matrix(m, n, seed=seed)
    mac = Machine(nprocs=cfg.nprocs, seed=0)
    res = Simulator(mac).run(candmc_qr, args=(cfg, a), run_seed=1)
    return res, cfg, a


class TestConfigValidation:
    def test_block_must_divide(self):
        with pytest.raises(ValueError, match="divide"):
            CandmcQRConfig(m=100, n=32, b=8, pr=2, pc=2)

    def test_block_grid_constraint(self):
        # paper: b <= min(m/pr, n/pc)
        with pytest.raises(ValueError, match="violates"):
            CandmcQRConfig(m=64, n=16, b=16, pr=2, pc=2)

    def test_label(self):
        assert CandmcQRConfig(64, 32, 8, 2, 2).label() == "b=8 grid=2x2"


class TestNumericCorrectness:
    @pytest.mark.parametrize("b", [4, 8, 16])
    def test_block_sizes(self, b):
        res, cfg, a = run_numeric(64, 32, b, 2, 2)
        verify.check_candmc_qr(res.returns, cfg, a)

    @pytest.mark.parametrize("pr,pc", [(4, 1), (1, 4), (2, 2)])
    def test_grid_shapes(self, pr, pc):
        res, cfg, a = run_numeric(64, 32, 8, pr, pc)
        verify.check_candmc_qr(res.returns, cfg, a)

    def test_tall_skinny(self):
        res, cfg, a = run_numeric(128, 16, 8, 4, 1)
        verify.check_candmc_qr(res.returns, cfg, a)

    def test_r_upper_triangular(self):
        res, cfg, a = run_numeric(64, 32, 8, 2, 2)
        blocks = {}
        for ret in res.returns:
            if ret:
                blocks.update(ret[0])
        r = np.zeros((64, 32))
        for (rb, cb), v in blocks.items():
            r[rb * 8:(rb + 1) * 8, cb * 8:(cb + 1) * 8] = v
        assert np.allclose(np.tril(r, -1), 0, atol=1e-10)

    def test_r_matches_numpy_magnitudes(self):
        res, cfg, a = run_numeric(64, 32, 8, 2, 2)
        blocks = {}
        for ret in res.returns:
            if ret:
                blocks.update(ret[0])
        r = np.zeros((64, 32))
        for (rb, cb), v in blocks.items():
            r[rb * 8:(rb + 1) * 8, cb * 8:(cb + 1) * 8] = v
        _, r_ref = np.linalg.qr(a)
        assert np.allclose(np.abs(np.diag(r[:32])), np.abs(np.diag(r_ref)), rtol=1e-8)


class TestSchedule:
    def _trace(self, b, pr=2, pc=2, m=128, n=64):
        cfg = CandmcQRConfig(m=m, n=n, b=b, pr=pr, pc=pc)
        mac = Machine(nprocs=cfg.nprocs, seed=0)
        tr = TraceRecorder()
        cr = Critter(policy="never-skip")
        sim = Simulator(mac, noise=NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0),
                        profiler=cr, trace=tr)
        sim.run(candmc_qr, args=(cfg,))
        return tr, cr.last_report

    def test_collective_mix(self):
        tr, _ = self._trace(8)
        coll = {e.sig.name for e in tr.by_kind("coll")}
        # TSQR allgather, panel bcast along rows, update allreduce
        assert {"allgather", "bcast", "allreduce"} <= coll

    def test_kernel_mix(self):
        tr, _ = self._trace(8)
        names = {e.sig.name for e in tr.by_kind("comp")}
        assert {"geqrf", "tpqrt", "getrf", "ormqr", "larft", "gemm", "trmm"} <= names

    def test_synchs_scale_inverse_block(self):
        # BSP latency = n/b supersteps
        s8 = self._trace(8)[1].predicted.synchs
        s16 = self._trace(16)[1].predicted.synchs
        assert s8 > 1.5 * s16

    def test_grid_shape_changes_comm_volume(self):
        w1 = self._trace(8, pr=4, pc=1)[1].predicted.words
        w2 = self._trace(8, pr=1, pc=4)[1].predicted.words
        assert w1 != w2
