"""The determinism-contract lint engine.

Every speedup this repository ships is admissible only because results
are bit-identical to a fault-free serial run.  The contracts that keep
that true — seeded RNG streams only, no wall clock on simulation paths,
order-stable iteration before float accumulation or event emission,
both schedulers firing identical profiler hooks, every tuning knob
reaching the content-address key — used to live in reviewers' heads and
after-the-fact fuzz legs.  This package checks them at lint time.

Architecture
------------

* :class:`Rule` — one per-file AST check with an id, a severity, and a
  path scope.  Syntax rules live in :mod:`repro.lint.rules`.
* :class:`Analyzer` — a whole-tree semantic check that inspects
  specific files (the scheduler hook-parity and fingerprint-
  completeness analyzers in :mod:`repro.lint.hookparity` and
  :mod:`repro.lint.fingerprint`).
* :func:`run_lint` — walks a source root, applies rules and analyzers,
  honours ``# repro: allow[<rule-id>] -- justification`` suppressions,
  and returns a :class:`LintReport`.
* :func:`render_json` / :func:`render_human` — output backends.  The
  JSON document is byte-stable across runs on the same tree (findings
  sorted, keys sorted, no timestamps) so CI can diff it as an artifact.

Suppression protocol
--------------------

A finding is suppressed by a comment on the same line — or on a
comment-only line immediately above it (the rule id goes in the
brackets)::

    t0 = perf_counter()  # repro: allow[<rule-id>] -- bench harness

The justification after ``--`` is mandatory: an allow without one is
itself a finding (``suppression-needs-justification``), as is an allow
naming a rule id the registry doesn't know (``unknown-suppression``).
Suppressions are per-rule; ``allow[a,b]`` covers two rules on one line.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "Rule",
    "Analyzer",
    "LintReport",
    "RULES",
    "ANALYZERS",
    "register_rule",
    "register_analyzer",
    "all_rule_ids",
    "run_lint",
    "render_json",
    "render_human",
    "JSON_SCHEMA_VERSION",
]

JSON_SCHEMA_VERSION = 1

#: meta-rules emitted by the engine itself (never suppressible)
META_NEEDS_JUSTIFICATION = "suppression-needs-justification"
META_UNKNOWN_SUPPRESSION = "unknown-suppression"


@dataclass(frozen=True, slots=True)
class Finding:
    """One lint finding, anchored to a file position.

    ``path`` is stored POSIX-relative to the scanned root so the JSON
    output is byte-stable no matter where the tree is checked out.
    """

    rule: str
    severity: str             # "error" | "warning"
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule, self.message)


class Rule:
    """A per-file AST check.

    Subclasses set ``id``, ``severity``, ``description`` and implement
    :meth:`check`, yielding ``(line, col, message)`` triples.
    :meth:`applies` scopes the rule to a subtree of the source root
    (e.g. the set-iteration rule watches ``repro/sim`` and
    ``repro/critter`` only).
    """

    id: str = ""
    severity: str = "error"
    description: str = ""

    def applies(self, rel_path: str) -> bool:
        return True

    def check(self, tree: ast.AST, source: str,
              rel_path: str) -> Iterator[Tuple[int, int, str]]:
        raise NotImplementedError

    def findings(self, tree: ast.AST, source: str,
                 rel_path: str) -> Iterator[Finding]:
        for line, col, message in self.check(tree, source, rel_path):
            yield Finding(self.id, self.severity, rel_path, line, col, message)


@dataclass(frozen=True, slots=True)
class Analyzer:
    """A whole-tree semantic check (hook parity, fingerprint drift)."""

    id: str
    severity: str
    description: str
    #: called with the scan root; yields findings
    run: Callable[[Path], Iterable[Finding]] = field(compare=False)


RULES: Dict[str, Rule] = {}
ANALYZERS: Dict[str, Analyzer] = {}


def register_rule(rule: "Rule | type[Rule]") -> "Rule | type[Rule]":
    instance = rule() if isinstance(rule, type) else rule
    if not instance.id:
        raise ValueError(f"rule {instance!r} has no id")
    if instance.id in RULES or instance.id in ANALYZERS:
        raise ValueError(f"duplicate rule id {instance.id!r}")
    RULES[instance.id] = instance
    return rule


def register_analyzer(analyzer: Analyzer) -> Analyzer:
    if analyzer.id in RULES or analyzer.id in ANALYZERS:
        raise ValueError(f"duplicate rule id {analyzer.id!r}")
    ANALYZERS[analyzer.id] = analyzer
    return analyzer


def all_rule_ids() -> List[str]:
    """Every registered id, syntax rules and semantic analyzers alike."""
    return sorted([*RULES, *ANALYZERS])


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
#: ids are lowercase-kebab only, so prose like ``allow[<rule-id>]`` in
#: documentation never parses as a live suppression
_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<ids>[a-z0-9_, -]*)\]"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)


@dataclass(slots=True)
class _Suppression:
    line: int
    ids: Tuple[str, ...]
    justification: Optional[str]
    #: True when the allow comment is the whole line (covers line+1)
    standalone: bool
    used: bool = False


def _parse_suppressions(source: str) -> List[_Suppression]:
    out: List[_Suppression] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _ALLOW_RE.search(text)
        if m is None:
            continue
        ids = tuple(s.strip() for s in m.group("ids").split(",") if s.strip())
        out.append(_Suppression(
            line=lineno,
            ids=ids,
            justification=m.group("why"),
            standalone=text.lstrip().startswith("#"),
        ))
    return out


def _apply_suppressions(
    findings: List[Finding],
    sups: List[_Suppression],
    rel_path: str,
) -> Tuple[List[Finding], int]:
    """Drop suppressed findings; emit meta-findings for bad allows."""
    by_line: Dict[int, List[_Suppression]] = {}
    for s in sups:
        by_line.setdefault(s.line, []).append(s)
        if s.standalone:
            # a comment-only allow line covers the statement below it
            by_line.setdefault(s.line + 1, []).append(s)

    kept: List[Finding] = []
    suppressed = 0
    known = set(all_rule_ids())
    for f in findings:
        hit = next(
            (s for s in by_line.get(f.line, ())
             if f.rule in s.ids and f.rule in known),
            None,
        )
        if hit is not None:
            hit.used = True
            suppressed += 1
        else:
            kept.append(f)

    for s in sups:
        if s.justification is None and s.ids:
            kept.append(Finding(
                META_NEEDS_JUSTIFICATION, "error", rel_path, s.line, 0,
                f"suppression allow[{','.join(s.ids)}] has no justification; "
                f"write '# repro: allow[...] -- <why this is safe>'",
            ))
        for rid in s.ids:
            if rid not in known:
                kept.append(Finding(
                    META_UNKNOWN_SUPPRESSION, "error", rel_path, s.line, 0,
                    f"suppression names unknown rule id {rid!r} "
                    f"(known: {', '.join(all_rule_ids())})",
                ))
    return kept, suppressed


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
@dataclass(slots=True)
class LintReport:
    root: Path
    findings: List[Finding]
    files_scanned: int
    suppressed: int
    #: ids that actually ran (after --rule filtering)
    active_rules: List[str]

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))


def _iter_py_files(root: Path) -> Iterator[Path]:
    for path in sorted(root.rglob("*.py")):
        if any(part.startswith(".") or part == "__pycache__"
               for part in path.relative_to(root).parts):
            continue
        yield path


def run_lint(
    root: Path,
    rule_filter: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint every ``*.py`` under ``root`` and run the tree analyzers.

    ``rule_filter`` restricts the run to the named rule ids (syntax
    rules and analyzers alike); unknown ids raise ``ValueError`` — the
    CLI maps that to exit code 2.
    """
    # rule/analyzer registration lives in submodule import side effects
    from repro.lint import fingerprint, hookparity, rules  # noqa: F401

    root = Path(root)
    if not root.is_dir():
        raise ValueError(f"lint root {root} is not a directory")
    if rule_filter is not None:
        unknown = sorted(set(rule_filter) - set(all_rule_ids()))
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {', '.join(unknown)}; "
                f"known: {', '.join(all_rule_ids())}")
    selected = None if rule_filter is None else set(rule_filter)

    findings: List[Finding] = []
    suppressed = 0
    files = 0
    for path in _iter_py_files(root):
        rel = path.relative_to(root).as_posix()
        files += 1
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            findings.append(Finding(
                "syntax-error", "error", rel, exc.lineno or 1, 0,
                f"cannot parse: {exc.msg}"))
            continue
        file_findings: List[Finding] = []
        for rule in RULES.values():
            if selected is not None and rule.id not in selected:
                continue
            if not rule.applies(rel):
                continue
            file_findings.extend(rule.findings(tree, source, rel))
        kept, n_sup = _apply_suppressions(
            file_findings, _parse_suppressions(source), rel)
        findings.extend(kept)
        suppressed += n_sup

    for analyzer in ANALYZERS.values():
        if selected is not None and analyzer.id not in selected:
            continue
        analyzer_findings = list(analyzer.run(root))
        # analyzer findings honour the same suppression comments
        by_path: Dict[str, List[Finding]] = {}
        for f in analyzer_findings:
            by_path.setdefault(f.path, []).append(f)
        for rel, fs in by_path.items():
            target = root / rel
            if target.is_file():
                sups = _parse_suppressions(target.read_text(encoding="utf-8"))
                kept, n_sup = _match_only(fs, sups)
                findings.extend(kept)
                suppressed += n_sup
            else:
                findings.extend(fs)

    active = [rid for rid in all_rule_ids()
              if selected is None or rid in selected]
    findings.sort(key=Finding.sort_key)
    return LintReport(root=root, findings=findings, files_scanned=files,
                      suppressed=suppressed, active_rules=active)


def _match_only(findings: List[Finding],
                sups: List[_Suppression]) -> Tuple[List[Finding], int]:
    """Suppression matching without re-emitting the meta-findings.

    File-level rule passes already validated every allow comment in the
    file; analyzer findings only need the drop-if-allowed half.
    """
    by_line: Dict[int, List[_Suppression]] = {}
    for s in sups:
        by_line.setdefault(s.line, []).append(s)
        if s.standalone:
            by_line.setdefault(s.line + 1, []).append(s)
    kept: List[Finding] = []
    suppressed = 0
    for f in findings:
        if any(f.rule in s.ids and s.justification
               for s in by_line.get(f.line, ())):
            suppressed += 1
        else:
            kept.append(f)
    return kept, suppressed


# ----------------------------------------------------------------------
# output backends
# ----------------------------------------------------------------------
def render_json(report: LintReport) -> str:
    """Byte-stable JSON: sorted findings, sorted keys, no timestamps.

    Schema (documented in README "Static analysis & determinism
    contracts"; bump ``version`` on any shape change)::

        {
          "version": 1,
          "tool": "repro-lint",
          "rules": [{"id", "severity", "description"}...],   # sorted by id
          "findings": [{"rule", "severity", "path",
                        "line", "col", "message"}...],       # sorted
          "counts": {"<rule-id>": n, ...},                   # nonzero only
          "files": <files scanned>,
          "suppressed": <suppressed finding count>
        }
    """
    def rule_row(rid: str) -> Dict[str, str]:
        obj = RULES.get(rid) or ANALYZERS.get(rid)
        return {"id": rid, "severity": obj.severity,
                "description": obj.description}

    doc = {
        "version": JSON_SCHEMA_VERSION,
        "tool": "repro-lint",
        "rules": [rule_row(rid) for rid in report.active_rules],
        "findings": [
            {"rule": f.rule, "severity": f.severity, "path": f.path,
             "line": f.line, "col": f.col, "message": f.message}
            for f in report.findings
        ],
        "counts": report.counts(),
        "files": report.files_scanned,
        "suppressed": report.suppressed,
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def render_human(report: LintReport) -> str:
    lines: List[str] = []
    for f in report.findings:
        lines.append(f"{f.path}:{f.line}:{f.col}: "
                     f"{f.severity} [{f.rule}] {f.message}")
    if report.findings:
        lines.append("")
    counts = report.counts()
    if counts:
        width = max(len(r) for r in counts)
        lines.append("findings by rule:")
        for rid, n in counts.items():
            lines.append(f"  {rid:<{width}}  {n}")
        lines.append("")
    lines.append(
        f"{len(report.findings)} finding(s) in {report.files_scanned} "
        f"file(s), {report.suppressed} suppressed"
    )
    return "\n".join(lines) + "\n"
