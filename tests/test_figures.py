"""ASCII chart rendering."""

import math

import pytest

from repro.analysis.figures import ascii_chart, sweep_chart


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart({"a": [1.0, 2.0, 3.0]}, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert any("o" in l for l in lines)
        assert "o=a" in lines[-1]

    def test_two_series_two_markers(self):
        out = ascii_chart({"up": [1, 2, 3], "down": [3, 2, 1]})
        assert "o=up" in out and "x=down" in out
        assert "o" in out and "x" in out

    def test_extremes_on_first_and_last_rows(self):
        out = ascii_chart({"a": [0.0, 10.0]}, height=5, width=10)
        rows = [l for l in out.splitlines() if "|" in l]
        assert "o" in rows[0]    # max on top row
        assert "o" in rows[-1]   # min on bottom row

    def test_y_axis_labels(self):
        out = ascii_chart({"a": [1.0, 5.0]}, height=6)
        assert "5" in out and "1" in out

    def test_log2_scaling(self):
        out = ascii_chart({"a": [1.0, 4.0, 16.0]}, log2_y=True, height=5)
        rows = [l for l in out.splitlines() if "|" in l]
        # log spacing: the middle point lands on the middle row
        mid = rows[len(rows) // 2]
        assert "o" in mid

    def test_x_labels(self):
        out = ascii_chart({"a": [1, 2]}, x_labels=["lo", "hi"])
        assert "lo" in out and "hi" in out

    def test_constant_series(self):
        out = ascii_chart({"a": [2.0, 2.0, 2.0]})
        assert "o" in out

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": [1, 2], "b": [1]})

    def test_empty(self):
        assert ascii_chart({}) == "(empty chart)"

    def test_nonpositive_with_log(self):
        out = ascii_chart({"a": [0.0, 0.0]}, log2_y=True)
        assert out == "(no finite data)"


class TestSweepChart:
    def test_renders_sweep(self):
        from repro.autotune import capital_cholesky_space, tolerance_sweep
        from repro.autotune.tuner import default_machine

        space = capital_cholesky_space(n=64, c=2, b0=4, nconf=3)
        machine = default_machine(space, seed=1)
        sweep = tolerance_sweep(space, machine, policies=("online",),
                                tolerances=[1.0, 2**-4], reps=1, full_reps=1,
                                seed=0)
        out = sweep_chart(sweep, "search_time",
                          reference=sweep.full_search_time)
        assert "search_time" in out
        assert "2^0" in out and "2^-4" in out
        assert "full-exec" in out
