"""Engine edge cases: degenerate communicators, sizes, and programs."""

import numpy as np
import pytest

from repro.kernels.blas import gemm_spec
from repro.sim import DeadlockError, Machine, NoiseModel, Simulator

from conftest import make_quiet_sim


class TestDegenerateCommunicators:
    def test_single_rank_world(self):
        def prog(comm):
            yield comm.compute(gemm_spec(8, 8, 8))
            out = yield comm.allreduce(5, nbytes=8)
            return out

        res = make_quiet_sim(1).run(prog)
        assert res.returns == [5]

    def test_single_member_collectives(self):
        def prog(comm):
            solo = yield comm.split(color=comm.rank, key=0)
            a = yield solo.bcast("x", root=0, nbytes=8)
            b = yield solo.allgather(comm.rank, nbytes=8)
            return (a, b)

        res = make_quiet_sim(3).run(prog)
        assert res.returns[1] == ("x", [1])

    def test_size_two_collective(self):
        def prog(comm):
            out = yield comm.allreduce(comm.rank + 1, nbytes=8)
            return out

        assert make_quiet_sim(2).run(prog).returns == [3, 3]


class TestDegenerateSizes:
    def test_zero_byte_message(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(None, dest=1, nbytes=0)
            elif comm.rank == 1:
                yield comm.recv(source=0, nbytes=0)

        res = make_quiet_sim(2).run(prog)
        assert res.makespan > 0  # still pays latency

    def test_zero_flop_compute(self):
        def prog(comm):
            yield comm.compute((gemm_spec(8, 8, 8)[0], 0.0))

        assert make_quiet_sim(1).run(prog).makespan == 0.0

    def test_empty_program(self):
        def prog(comm):
            return comm.rank
            yield  # pragma: no cover

        res = make_quiet_sim(4).run(prog)
        assert res.makespan == 0.0
        assert res.returns == [0, 1, 2, 3]


class TestRankArgs:
    def test_per_rank_arguments(self):
        def prog(comm, base, extra):
            return base + extra
            yield  # pragma: no cover

        res = make_quiet_sim(3).run(prog, args=(100,),
                                    rank_args=[(i * 10,) for i in range(3)])
        assert res.returns == [100, 110, 120]


class TestReuseAndErrors:
    def test_simulator_reusable_across_runs(self):
        def prog(comm):
            yield comm.allreduce(nbytes=64)

        m = Machine(nprocs=2, seed=0)
        sim = Simulator(m)
        t1 = sim.run(prog, run_seed=1).makespan
        t2 = sim.run(prog, run_seed=1).makespan
        assert t1 == t2

    def test_unknown_op_rejected(self):
        def prog(comm):
            yield "not an op"

        with pytest.raises(TypeError, match="unknown op"):
            make_quiet_sim(1).run(prog)

    def test_partial_collective_deadlock_reported(self):
        def prog(comm):
            if comm.rank != 3:
                yield comm.barrier()

        with pytest.raises(DeadlockError) as exc:
            make_quiet_sim(4).run(prog)
        assert "barrier" in str(exc.value)

    def test_wait_on_foreign_request_deadlocks(self):
        def prog(comm):
            if comm.rank == 0:
                req = yield comm.irecv(source=1, tag=9, nbytes=8)
                yield comm.wait(req)  # never matched

        with pytest.raises(DeadlockError):
            make_quiet_sim(2).run(prog)


class TestManyRanks:
    def test_64_rank_collective(self):
        def prog(comm):
            out = yield comm.allreduce(1, nbytes=8)
            return out

        res = make_quiet_sim(64).run(prog)
        assert res.returns == [64] * 64

    def test_wide_gather(self):
        def prog(comm):
            out = yield comm.gather(comm.rank, root=5, nbytes=8)
            return None if out is None else sum(out)

        res = make_quiet_sim(32).run(prog)
        assert res.returns[5] == sum(range(32))
        assert all(r is None for i, r in enumerate(res.returns) if i != 5)

    def test_deep_split_chain(self):
        def prog(comm):
            current = comm
            while current.size > 1:
                half = current.rank < current.size // 2
                current = yield current.split(color=int(half), key=current.rank)
            return current.world_rank

        res = make_quiet_sim(16).run(prog)
        assert res.returns == list(range(16))
