"""Machine presets."""

import pytest

from repro.sim import PRESETS, Machine, NoiseModel, Simulator, make_machine
from repro.kernels.blas import gemm_spec


class TestPresets:
    def test_all_presets_build(self):
        for name in PRESETS:
            machine, noise = make_machine(name, nprocs=4, seed=1)
            assert isinstance(machine, Machine)
            assert isinstance(noise, NoiseModel)
            assert machine.nprocs == 4

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            make_machine("cray-1", nprocs=4)

    def test_quiet_preset_deterministic(self):
        machine, noise = make_machine("quiet", nprocs=2, seed=3)

        def prog(comm):
            yield comm.compute(gemm_spec(16, 16, 16))
            yield comm.allreduce(nbytes=64)

        t1 = Simulator(machine, noise=noise).run(prog, run_seed=1).makespan
        t2 = Simulator(machine, noise=noise).run(prog, run_seed=2).makespan
        assert t1 == t2  # run seed irrelevant without noise

    def test_presets_rank_differently(self):
        """Different machines prefer different block sizes — the reason
        autotuning exists."""
        from repro.autotune import capital_cholesky_space
        from repro.critter import Critter

        space = capital_cholesky_space(n=128, c=2, b0=4, nconf=5)

        def best_config(preset):
            machine, noise = make_machine(preset, nprocs=8, seed=0)
            times = []
            for cfg in space.configs:
                sim = Simulator(machine, noise=noise)
                times.append(sim.run(space.program, args=(cfg,), run_seed=0).makespan)
            return min(range(len(times)), key=times.__getitem__)

        # latency-heavy machines push the optimum to bigger blocks than
        # the balanced fabric: indexes must not all coincide
        choices = {p: best_config(p) for p in ("knl-fabric", "epyc-ethernet")}
        assert choices["epyc-ethernet"] >= choices["knl-fabric"]

    def test_seed_changes_biases_not_costs(self):
        m1, n1 = make_machine("knl-fabric", nprocs=2, seed=1)
        m2, n2 = make_machine("knl-fabric", nprocs=2, seed=2)
        assert m1.alpha == m2.alpha and m1.gamma == m2.gamma
        sig = gemm_spec(64, 64, 64)[0]
        assert n1.signature_bias(sig) != n2.signature_bias(sig)
