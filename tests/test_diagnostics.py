"""Engine diagnostics: determinism, accounting invariants, zero perturbation."""

import json

import pytest

from repro.kernels.blas import gemm_spec, trsm_spec
from repro.sim.diagnostics import EngineDiagnostics, format_counters_table, op_kind
from repro.sim.engine import Simulator
from repro.sim.presets import make_machine


def mixed_program(comm):
    """p2p + collectives + computes + batch + columnar run."""
    me, p = comm.rank, comm.size
    nxt, prv = (me + 1) % p, (me - 1) % p
    gemm = gemm_spec(16, 16, 16)
    trsm = trsm_spec(16, 16)
    op = comm.compute(gemm)
    for r in range(6):
        req = yield comm.isend(dest=nxt, tag=r, nbytes=256)
        yield op
        yield comm.recv(source=prv, tag=r, nbytes=256)
        yield comm.wait(req)
        if me % 2 == 0:
            yield comm.send(dest=nxt, tag=9, nbytes=64)
            yield comm.recv(source=prv, tag=9, nbytes=64)
        else:
            yield comm.recv(source=prv, tag=9, nbytes=64)
            yield comm.send(dest=nxt, tag=9, nbytes=64)
        yield comm.compute_batch(trsm, 4)
        yield comm.compute_run([(gemm, 3), (trsm, 2)])
        yield comm.bcast(root=0, nbytes=128)
        yield comm.allreduce(nbytes=128)
    return me


def run_once(fast_path=True, profiler=None, diag=None, preset="knl-fabric"):
    machine, noise = make_machine(preset, 4, seed=7)
    sim = Simulator(machine, noise=noise, profiler=profiler,
                    fast_path=fast_path, diagnostics=diag)
    return sim.run(mixed_program, run_seed=11)


def make_critter():
    from repro.critter import Critter

    return Critter(policy="online", eps=0.25)


class TestDeterminism:
    def test_two_seeded_runs_emit_identical_counter_json(self):
        blobs = []
        for _ in range(2):
            d = EngineDiagnostics()
            run_once(diag=d)
            blobs.append(d.counters_json())
        assert blobs[0] == blobs[1]

    def test_profiled_runs_are_also_deterministic(self):
        blobs = []
        for _ in range(2):
            d = EngineDiagnostics()
            run_once(diag=d, profiler=make_critter())
            blobs.append(d.counters_json())
        assert blobs[0] == blobs[1]

    def test_canonical_json_excludes_wall_clock(self):
        d = EngineDiagnostics()
        run_once(diag=d)
        counters = json.loads(d.counters_json())
        assert "wall_s" not in counters
        assert "dispatch_wall_s" not in counters
        assert d.as_dict()["timings"]["wall_s"] > 0.0


class TestNoPerturbation:
    """Counters must never influence scheduling, draws, or hooks."""

    @pytest.mark.parametrize("fast_path", [True, False])
    def test_makespan_identical_with_counters_on_or_off(self, fast_path):
        base = run_once(fast_path=fast_path)
        counted = run_once(fast_path=fast_path, diag=EngineDiagnostics())
        assert counted.makespan == base.makespan
        assert counted.rank_times == base.rank_times

    @pytest.mark.parametrize("fast_path", [True, False])
    def test_profiled_makespan_identical_with_counters(self, fast_path):
        base = run_once(fast_path=fast_path, profiler=make_critter())
        counted = run_once(fast_path=fast_path, profiler=make_critter(),
                           diag=EngineDiagnostics())
        assert counted.makespan == base.makespan


class TestAccountingInvariants:
    def counters(self, **kw):
        d = EngineDiagnostics()
        run_once(diag=d, **kw)
        return d, d.as_dict()["counters"]

    def test_inline_plus_heap_covers_every_op(self):
        _, c = self.counters()
        for kind, total in c["op_totals"].items():
            heap = c["heap_dispatched"].get(kind, 0)
            inline = c["inline_handled"][kind]
            assert inline + heap == total
            assert inline >= 0
        assert (c["total_inline_ops"] + c["total_heap_ops"]
                == c["total_ops"])

    def test_redelivery_is_a_subset_of_heap_dispatches(self):
        _, c = self.counters(profiler=make_critter())
        for kind, n in c["redelivered"].items():
            assert n <= c["heap_dispatched"].get(kind, 0)

    def test_match_breakdown_sums_to_total(self):
        for kw in ({}, {"profiler": make_critter()}):
            _, c = self.counters(**kw)
            assert (c["match_inline"] + c["match_deferred"]
                    + c["match_heap"] == c["match_total"])
            # every recv in the program pairs with exactly one send
            recvs = c["op_totals"].get("recv", 0)
            assert c["match_total"] == recvs

    def test_batch_and_run_fill_counters(self):
        _, c = self.counters()
        nranks, rounds = 4, 6
        assert c["batches"] == nranks * rounds
        assert c["batch_kernels"] == nranks * rounds * 4
        assert c["run_segments"] == nranks * rounds * 2
        assert c["run_kernels"] == nranks * rounds * 5

    def test_naive_scheduler_reports_no_fast_path_activity(self):
        d = EngineDiagnostics()
        run_once(fast_path=False, diag=d)
        c = d.as_dict()["counters"]
        # the naive scheduler round-trips every op through the heap
        assert c["total_inline_ops"] == 0
        assert c["match_inline"] == 0
        assert c["match_deferred"] == 0
        assert c["coll_parks_inline"] == 0
        assert c["fast_resume_fifo"] == 0
        assert c["early_queued"] == {}

    def test_accumulation_and_reset(self):
        d = EngineDiagnostics()
        run_once(diag=d)
        once = json.loads(d.counters_json())
        run_once(diag=d)
        twice = json.loads(d.counters_json())
        assert twice["runs"] == 2
        assert twice["total_ops"] == 2 * once["total_ops"]
        d.reset()
        assert d.as_dict()["counters"]["total_ops"] == 0
        assert d.as_dict()["counters"]["runs"] == 0


class TestWrapper:
    def test_wrap_forwards_sends_and_return_value(self):
        log = []

        def gen():
            got = yield "a"
            log.append(got)
            got = yield "b"
            log.append(got)
            return "done"

        d = EngineDiagnostics()
        wrapped = d.wrap(gen())
        assert next(wrapped) == "a"
        assert wrapped.send(1) == "b"
        with pytest.raises(StopIteration) as stop:
            wrapped.send(2)
        assert stop.value.value == "done"
        assert log == [1, 2]
        assert d.op_totals == {"str": 2}

    def test_run_returns_preserved_under_counting(self):
        res = run_once(diag=EngineDiagnostics())
        assert res.returns == [0, 1, 2, 3]


class TestReporting:
    def test_table_renders_from_round_tripped_json(self):
        d = EngineDiagnostics()
        run_once(diag=d)
        restored = json.loads(d.counters_json())
        table = format_counters_table(restored)
        assert table == d.format_table()
        assert "inline engagement" in table
        assert "batcher fill" in table
        assert "columnar runs" in table

    def test_op_kind_labels(self):
        machine, noise = make_machine("quiet", 2, seed=0)

        labels = []

        def probe(comm):
            ops = [comm.compute(gemm_spec(4, 4, 4)),
                   comm.compute_batch(gemm_spec(4, 4, 4), 2),
                   comm.compute_run([(gemm_spec(4, 4, 4), 2)]),
                   comm.allreduce(nbytes=8),
                   comm.barrier()]
            if comm.rank == 0:
                labels.extend(op_kind(op) for op in ops)
            for op in ops:
                yield op
            return None

        Simulator(machine, noise=noise).run(probe, run_seed=1)
        assert labels[:2] == ["compute", "batch"]
        assert labels[2] == "compute_run"
        assert labels[3:] == ["allreduce", "barrier"]
