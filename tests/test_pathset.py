"""Pathset profiles: max-propagation and volumetric accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.critter.pathset import (
    PathMetrics,
    PathProfile,
    critical_path,
    volumetric_average,
)


class TestPathMetrics:
    def test_merge_max_elementwise(self):
        a = PathMetrics(exec_time=1.0, comp_time=5.0, comm_time=0.0,
                        synchs=3, words=10, flops=100)
        b = PathMetrics(exec_time=2.0, comp_time=1.0, comm_time=4.0,
                        synchs=1, words=20, flops=50)
        a.merge_max(b)
        assert (a.exec_time, a.comp_time, a.comm_time) == (2.0, 5.0, 4.0)
        assert (a.synchs, a.words, a.flops) == (3, 20, 100)

    def test_merge_idempotent(self):
        a = PathMetrics(1, 2, 3, 4, 5, 6)
        c = a.copy()
        a.merge_max(c)
        assert a == c

    def test_copy_independent(self):
        a = PathMetrics(exec_time=1.0)
        b = a.copy()
        b.exec_time = 9.0
        assert a.exec_time == 1.0

    @given(
        vals=st.lists(
            st.tuples(*[st.floats(min_value=0, max_value=1e6) for _ in range(6)]),
            min_size=1, max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_merge_is_supremum(self, vals):
        ms = [PathMetrics(*v) for v in vals]
        acc = PathMetrics()
        for m in ms:
            acc.merge_max(m)
        for field in ("exec_time", "comp_time", "comm_time", "synchs", "words", "flops"):
            assert getattr(acc, field) == max(getattr(m, field) for m in ms)


class TestPathProfile:
    def test_add_compute_executed(self):
        p = PathProfile()
        p.add_compute(predicted=2.0, charged=2.0, flops=100, executed=True)
        assert p.path.exec_time == 2.0
        assert p.path.comp_time == 2.0
        assert p.vol_exec_comp == 2.0
        assert p.executed_kernels == 1

    def test_add_compute_skipped(self):
        p = PathProfile()
        p.add_compute(predicted=2.0, charged=0.001, flops=100, executed=False)
        # prediction uses the mean; wall charge is only the skip overhead
        assert p.path.exec_time == 2.0
        assert p.vol_comp_time == 0.001
        assert p.vol_exec_comp == 0.0
        assert p.skipped_kernels == 1

    def test_add_comm_counts_synch_and_words(self):
        p = PathProfile()
        p.add_comm(predicted=1.0, charged=1.0, nbytes=4096, executed=True, idle=0.5)
        assert p.path.synchs == 1
        assert p.path.words == 4096
        assert p.vol_idle == 0.5
        assert p.vol_exec_comm == 1.0

    def test_kernel_wall_time(self):
        p = PathProfile()
        p.add_compute(1.0, 1.0, 10, True)
        p.add_comm(2.0, 2.0, 8, True, 0.0)
        p.add_compute(1.0, 0.0, 10, False)
        assert p.kernel_wall_time == pytest.approx(3.0)


class TestAggregation:
    def test_critical_path_is_global_max(self):
        ps = [PathProfile() for _ in range(3)]
        for i, p in enumerate(ps):
            p.add_compute(float(i + 1), float(i + 1), 10, True)
        cp = critical_path(ps)
        assert cp.exec_time == 3.0

    def test_volumetric_average(self):
        ps = [PathProfile() for _ in range(2)]
        ps[0].add_compute(2.0, 2.0, 100, True)
        ps[1].add_compute(4.0, 4.0, 300, True)
        vol = volumetric_average(ps)
        assert vol["comp_time"] == pytest.approx(3.0)
        assert vol["flops"] == pytest.approx(200.0)

    def test_volumetric_empty(self):
        assert volumetric_average([])["comp_time"] == 0.0
