#!/usr/bin/env python
"""Autotune Capital's 3D-grid Cholesky across the paper's 15 configurations.

Reproduces the Fig. 4a experiment at example scale: an exhaustive search
over {block size} x {base-case strategy} with every selective-execution
policy, reporting search time, speedup over full execution, prediction
error, and the chosen configuration.

Run:  python examples/autotune_cholesky.py
"""

import math

from repro.analysis import format_table
from repro.autotune import (
    ExhaustiveTuner,
    capital_cholesky_space,
    default_machine,
    measure_ground_truth,
)

POLICIES = ("conditional", "eager", "local", "online", "apriori")
EPS = 2**-3


def main() -> None:
    space = capital_cholesky_space(n=256, c=2, b0=4)
    machine = default_machine(space, seed=7)
    print(f"space: {space.description}, {len(space)} configurations")
    print("measuring ground truth (full executions)...")
    ground = measure_ground_truth(space, machine, full_reps=3, seed=0)
    full_time = sum(g.mean_time * 3 for g in ground)
    noise = max(g.noise_cv for g in ground)
    print(f"full exhaustive search: {full_time:.4f}s simulated "
          f"(environment noise up to {noise:.1%})\n")

    rows = []
    for policy in POLICIES:
        result = ExhaustiveTuner(
            space, machine, policy=policy, eps=EPS, reps=3,
            ground_truth=ground, seed=0,
        ).run()
        best = result.outcomes[result.predicted_best]
        rows.append([
            policy,
            result.search_time,
            result.search_speedup,
            f"2^{result.mean_log2_exec_error:.1f}",
            f"{result.selection_quality:.1%}",
            best.label,
        ])
    print(format_table(
        ["policy", "search_s", "speedup", "mean_err", "sel_quality", "chosen"],
        rows,
        title=f"Exhaustive autotuning at eps = 2^{int(math.log2(EPS))} "
              "(cf. paper Fig. 4a)",
        width=12,
    ))

    truly_best = min(range(len(ground)), key=lambda i: ground[i].mean_time)
    print(f"\ntrue optimum: config {truly_best} "
          f"({space.configs[truly_best].label()}), "
          f"{ground[truly_best].mean_time:.5f}s")


if __name__ == "__main__":
    main()
