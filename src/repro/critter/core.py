"""Critter: online execution-path analysis with selective kernel execution.

This is the paper's contribution (Sections III-IV, Fig. 2), implemented
against the simulator's PMPI-equivalent interception seam:

* every rank owns two kernel sets — ``K`` (statistics of locally
  executed kernels, persistent across runs until reset) and ``K~``
  (kernel execution counts along the rank's current sub-critical path,
  rebuilt each run) — plus a pathset ``P`` of path and volumetric
  metrics;
* on every communication kernel an *internal message* carrying
  ``(execute flag, P.exec_time, K~ keys+freqs)`` is exchanged among the
  participants (``PMPI_Allreduce`` for collectives, ``PMPI_Sendrecv``
  for blocking p2p, buffered snapshot for nonblocking) — the
  longest-path algorithm: ranks on shorter paths adopt the maximal
  path's metrics and kernel frequencies;
* the kernel is then selectively executed: computation kernels by local
  decision, communication kernels only skipped when *all* participants
  deem them predictable; skipped kernels contribute their sample mean
  to the predicted path time;
* under eager propagation, blocking collectives additionally aggregate
  the statistics of predictable kernels across the sub-communicator and
  track coverage through the aggregate-channel algebra; once coverage
  is maximal the kernel is switched off globally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.critter.channels import AggregateRegistry, Channel
from repro.critter.extrapolation import ExtrapolatingModel
from repro.critter.pathset import (
    PathMetrics,
    PathProfile,
    critical_path,
    volumetric_average,
)
from repro.critter.policies import Policy, make_policy
from repro.critter.stats import RunningStat, is_predictable, z_value
from repro.kernels.signature import KernelSignature, comm_signature
from repro.sim.engine import CommGroup, P2PRecord, Simulator
from repro.sim.profiler import Profiler

__all__ = ["Critter", "RunReport"]


@dataclass(slots=True)
class RunReport:
    """Summary of one simulated run under Critter."""

    makespan: float
    predicted: PathMetrics
    volumetric: Dict[str, float]
    max_rank_kernel_time: float
    max_rank_comp_time: float
    executed_kernels: int
    skipped_kernels: int
    run_seed: int = 0

    @property
    def predicted_exec_time(self) -> float:
        return self.predicted.exec_time

    @property
    def predicted_comp_time(self) -> float:
        return self.predicted.comp_time

    @property
    def skip_fraction(self) -> float:
        total = self.executed_kernels + self.skipped_kernels
        return self.skipped_kernels / total if total else 0.0


class Critter(Profiler):
    """The profiling tool: create once, attach to any number of runs.

    Parameters
    ----------
    policy:
        Selective-execution policy name (see
        :mod:`repro.critter.policies`) or a :class:`Policy`.
    eps:
        Confidence tolerance: a kernel stops executing once the relative
        size of its mean's confidence interval is at most ``eps``.
    confidence:
        Confidence level for the intervals (paper uses 95%).
    min_samples:
        Minimum number of measurements before a kernel may be skipped.

    Statistics persist across runs (that is how repeated executions of
    one configuration converge); call :meth:`reset_statistics` between
    configurations, as the paper does for non-eager policies.
    """

    active = True

    def __init__(
        self,
        policy: str | Policy = "online",
        eps: float = 0.05,
        confidence: float = 0.95,
        min_samples: int = 2,
        exclude: frozenset = frozenset(),
        extrapolate: bool = False,
        extrapolation_tolerance: float = 0.1,
        path_criterion: str = "exec",
    ) -> None:
        self.policy = make_policy(policy)
        self.eps = float(eps)
        self.confidence = float(confidence)
        self.z = z_value(self.confidence)
        self.min_samples = int(min_samples)
        #: kernel names never executed selectively (paper: SLATE QR's
        #: BLAS-2 panel kernels are not candidates for selective execution)
        self.exclude = frozenset(exclude)
        #: Section VIII extension: family-level line fitting lets kernels
        #: at never-measured input sizes be predicted and skipped
        self.extrapolation: Optional[ExtrapolatingModel] = (
            ExtrapolatingModel(rel_tolerance=extrapolation_tolerance)
            if extrapolate
            else None
        )
        #: which path's kernel frequencies losers adopt at sync points —
        #: Fig. 2's path-propagation logic "can be modified to reflect
        #: various protocols" (Section II.B): "exec" is the longest-path
        #: algorithm [3], "comm"/"comp" follow those cost metrics'
        #: critical paths, "slack" filters out idle time [4]
        if path_criterion not in ("exec", "comm", "comp", "slack"):
            raise ValueError(
                f"path_criterion must be exec|comm|comp|slack, got {path_criterion!r}"
            )
        self.path_criterion = path_criterion

        self.nprocs: Optional[int] = None
        self.machine = None
        self.registry: Optional[AggregateRegistry] = None

        # persistent across runs (until reset_statistics)
        self._K: Optional[List[Dict[KernelSignature, RunningStat]]] = None
        self._global_off: Set[KernelSignature] = set()
        self._coverage: Dict[KernelSignature, Channel] = {}
        self._apriori: Optional[List[Dict[KernelSignature, int]]] = None

        # per-run state
        self.profiles: List[PathProfile] = []
        self._Kt: List[Dict[KernelSignature, int]] = []
        self._exec_first: List[Set[KernelSignature]] = []
        self._run_seed = 0

        self.reports: List[RunReport] = []
        self.last_report: Optional[RunReport] = None
        #: per-rank path counts of the last run (used to seed apriori)
        self.last_path_counts: List[Dict[KernelSignature, int]] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def inline_safe(self) -> bool:
        """Whether the engine may drive ranks run-to-completion.

        Non-eager Critter decisions read only per-rank state (``K``,
        ``K~``, forced-execution sets) that other ranks' events never
        mutate outside synchronization points involving this rank, so
        inline execution cannot change any decision or draw.  Eager
        propagation breaks this (``_global_off`` flips at *other* ranks'
        sub-communicator collectives), as does extrapolation (a shared
        model observed by every rank); both force the exact-order naive
        scheduler.
        """
        return not self.policy.eager and self.extrapolation is None

    def start_run(self, sim: Simulator, run_seed: int) -> None:
        p = sim.machine.nprocs
        if self.nprocs is None:
            self.nprocs = p
            self._K = [dict() for _ in range(p)]
            self.registry = AggregateRegistry(p)
        elif self.nprocs != p:
            raise ValueError(
                f"Critter instance bound to {self.nprocs} ranks, got {p}; "
                "use a fresh instance (or reset) when the world size changes"
            )
        self.machine = sim.machine
        self.registry.by_group.clear()
        self.profiles = [PathProfile() for _ in range(p)]
        self._Kt = [dict() for _ in range(p)]
        self._exec_first = [set() for _ in range(p)]
        self._run_seed = run_seed

    def end_run(self, sim: Simulator, makespan: float) -> None:
        rep = RunReport(
            makespan=makespan,
            predicted=critical_path(self.profiles),
            volumetric=volumetric_average(self.profiles),
            max_rank_kernel_time=max(p.kernel_wall_time for p in self.profiles),
            max_rank_comp_time=max(p.vol_exec_comp for p in self.profiles),
            executed_kernels=sum(p.executed_kernels for p in self.profiles),
            skipped_kernels=sum(p.skipped_kernels for p in self.profiles),
            run_seed=self._run_seed,
        )
        self.reports.append(rep)
        self.last_report = rep
        self.last_path_counts = [dict(kt) for kt in self._Kt]

    def reset_statistics(self) -> None:
        """Forget all kernel statistics (paper: before each new config)."""
        if self._K is not None:
            for k in self._K:
                k.clear()
        self._global_off.clear()
        self._coverage.clear()
        self._apriori = None
        if self.extrapolation is not None:
            self.extrapolation.reset()

    def seed_path_counts(self, tables: List[Dict[KernelSignature, int]]) -> None:
        """Provide offline critical-path execution counts (apriori policy)."""
        self._apriori = [dict(t) for t in tables]

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def _alpha(self, rank: int, key: KernelSignature) -> int:
        st = self._K[rank].get(key)
        local = st.count if st is not None else 0
        path = self._Kt[rank].get(key, 0)
        offline = self._apriori[rank].get(key) if self._apriori else None
        return self.policy.alpha(local, path, offline)

    def _local_decision(self, rank: int, key: KernelSignature,
                        flops: float = 0.0) -> bool:
        """True = execute; the per-rank part of Fig. 2's ``initialize_msg``."""
        if self.policy.never_skip:
            return True
        if key.name in self.exclude:
            return True
        if self.policy.eager and key in self._global_off:
            return False
        st = self._K[rank].get(key)
        if self.extrapolation is not None and (st is None or st.count < self.min_samples):
            # Section VIII line fitting: an unmeasured size whose family
            # fits tightly may be skipped without its forced execution
            if self.extrapolation.predict(key, flops) is not None:
                return False
        if self.policy.force_first_execution and key not in self._exec_first[rank]:
            return True
        if st is None:
            return True
        return not is_predictable(
            st, self.eps, self.z, self._alpha(rank, key), self.min_samples
        )

    def _path_value(self, rank: int) -> float:
        """The metric by which sync-point path winners are chosen."""
        prof = self.profiles[rank]
        if self.path_criterion == "exec":
            return prof.path.exec_time
        if self.path_criterion == "comm":
            return prof.path.comm_time
        if self.path_criterion == "comp":
            return prof.path.comp_time
        # slack method: discount time spent waiting (idle) — ranks whose
        # progress is mostly wait states lose the path election
        return prof.path.exec_time - prof.vol_idle

    def _stat(self, rank: int, key: KernelSignature) -> RunningStat:
        st = self._K[rank].get(key)
        if st is None:
            st = RunningStat()
            self._K[rank][key] = st
        return st

    def _mean_or_zero(self, rank: int, key: KernelSignature,
                      flops: float = 0.0) -> float:
        st = self._K[rank].get(key)
        if st is not None and st.count:
            return st.mean
        if self.extrapolation is not None:
            pred = self.extrapolation.predict(key, flops)
            if pred is not None:
                return pred
        return 0.0

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------
    def on_world(self, group: CommGroup) -> None:
        self.registry.register_world(group.gid)

    def on_comm_split(self, parent: CommGroup, subgroups: List[CommGroup]) -> None:
        for g in subgroups:
            self.registry.register_split(g.gid, g.world_ranks)

    def intercept_cost(self, nranks: int) -> float:
        return self.machine.internal_cost(nranks) if self.machine else 0.0

    # ------------------------------------------------------------------
    # computational kernels
    # ------------------------------------------------------------------
    def on_compute(self, rank: int, sig: KernelSignature, flops: float) -> bool:
        return self._local_decision(rank, sig, flops)

    def post_compute(
        self, rank: int, sig: KernelSignature, executed: bool, elapsed: float,
        flops: float,
    ) -> None:
        if executed:
            self._stat(rank, sig).update(elapsed)
            self._exec_first[rank].add(sig)
            if self.extrapolation is not None:
                self.extrapolation.observe(sig, flops, elapsed)
            predicted = elapsed
        else:
            predicted = self._mean_or_zero(rank, sig, flops)
        self._Kt[rank][sig] = self._Kt[rank].get(sig, 0) + 1
        self.profiles[rank].add_compute(predicted, elapsed, flops, executed)

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def on_collective(
        self,
        group: CommGroup,
        sig: KernelSignature,
        root: int,
        arrivals: Dict[int, float],
    ) -> bool:
        # the internal allreduce of execute flags: the user communication
        # is skipped only when ALL participants deem it predictable
        return any(self._local_decision(r, sig) for r in group.world_ranks)

    def post_collective(
        self,
        group: CommGroup,
        sig: KernelSignature,
        arrivals: Dict[int, float],
        executed: bool,
        comm_time: float,
        completion: float,
    ) -> None:
        members = group.world_ranks
        # --- longest-path propagation (the internal PMPI_Allreduce) ---
        winner = max(members, key=self._path_value)
        wvalue = self._path_value(winner)
        wpath = self.profiles[winner].path.copy()
        wcounts = dict(self._Kt[winner])
        for r in members:
            if r != winner and self._path_value(r) < wvalue:
                self._Kt[r] = dict(wcounts)
            self.profiles[r].path.merge_max(wpath)
        # --- selective execution accounting ---
        start = max(arrivals.values())
        nbytes = sig.params[0]
        if executed and self.extrapolation is not None:
            self.extrapolation.observe(sig, 0.0, comm_time)
        for r in members:
            if executed:
                self._stat(r, sig).update(comm_time)
                self._exec_first[r].add(sig)
                predicted = comm_time
            else:
                predicted = self._mean_or_zero(r, sig)
            self._Kt[r][sig] = self._Kt[r].get(sig, 0) + 1
            self.profiles[r].add_comm(
                predicted,
                comm_time if executed else 0.0,
                nbytes,
                executed,
                start - arrivals[r],
            )
        # --- eager propagation: aggregate statistics along the channel ---
        if self.policy.eager:
            self._aggregate_statistics(group)

    def _aggregate_statistics(self, group: CommGroup) -> None:
        """Fig. 2 ``aggregate_statistics``: share predictable kernels' stats.

        Merges every participant's statistics for kernels any of them
        deems predictable, distributes the merged statistics back, and
        extends the kernel's channel coverage; full coverage switches
        the kernel off globally.
        """
        channel = self.registry.channel_of(group.gid)
        if channel is None:
            return
        members = group.world_ranks
        candidates: Set[KernelSignature] = set()
        for r in members:
            for key, st in self._K[r].items():
                if key in self._global_off:
                    continue
                if is_predictable(st, self.eps, self.z, 1, self.min_samples):
                    candidates.add(key)
        for key in candidates:
            old_cov = self._coverage.get(key)
            cov = self.registry.extend_coverage(old_cov, channel)
            if old_cov is not None and cov.size == old_cov.size:
                # channel adds no new processors: re-merging the same
                # (already shared) statistics would double-count samples
                continue
            merged = RunningStat()
            for r in members:
                st = self._K[r].get(key)
                if st is not None:
                    merged.merge(st)
            for r in members:
                self._K[r][key] = merged.copy()
            self._coverage[key] = cov
            if self.registry.covers_world(cov):
                self._global_off.add(key)

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    @staticmethod
    def _endpoint_key(sig: KernelSignature, sending: bool) -> KernelSignature:
        return comm_signature("send" if sending else "recv", *sig.params)

    def on_p2p_post(self, record: P2PRecord) -> None:
        if record.kind == "isend":
            # buffered internal message: snapshot the sender's path state
            r = record.world_rank
            record.snapshot = (self.profiles[r].path.copy(), dict(self._Kt[r]))

    def on_p2p(self, sig: KernelSignature, send: P2PRecord, recv: P2PRecord) -> bool:
        skey = self._endpoint_key(sig, True)
        rkey = self._endpoint_key(sig, False)
        return self._local_decision(send.world_rank, skey) or self._local_decision(
            recv.world_rank, rkey
        )

    def post_p2p(
        self,
        sig: KernelSignature,
        send: P2PRecord,
        recv: P2PRecord,
        executed: bool,
        comm_time: float,
        completion: float,
    ) -> None:
        s, r = send.world_rank, recv.world_rank
        # --- path propagation ---
        if send.kind == "send":
            # blocking pair: the internal PMPI_Sendrecv exchanges paths both ways
            sp, sc = self.profiles[s].path.copy(), dict(self._Kt[s])
            rp, rc = self.profiles[r].path.copy(), dict(self._Kt[r])
            sv, rv = self._path_value(s), self._path_value(r)
            if rv > sv:
                self._Kt[s] = dict(rc)
            elif sv > rv:
                self._Kt[r] = dict(sc)
            self.profiles[s].path.merge_max(rp)
            self.profiles[r].path.merge_max(sp)
        else:
            # buffered (isend): only the receiver learns the sender's path,
            # from the snapshot taken at post time (PMPI_Bsend semantics)
            snap = send.snapshot
            if snap is not None:
                snap_path, snap_counts = snap
                if snap_path.exec_time > self.profiles[r].path.exec_time:
                    self._Kt[r] = dict(snap_counts)
                self.profiles[r].path.merge_max(snap_path)
        # --- accounting per endpoint ---
        start = max(send.post_time, recv.post_time)
        nbytes = sig.params[0]
        for rank, key, posted, blocking, kind in (
            (s, self._endpoint_key(sig, True), send.post_time, send.blocking,
             send.kind),
            (r, self._endpoint_key(sig, False), recv.post_time, recv.blocking,
             recv.kind),
        ):
            if executed:
                self._stat(rank, key).update(comm_time)
                self._exec_first[rank].add(key)
                if self.extrapolation is not None:
                    self.extrapolation.observe(key, 0.0, comm_time)
                predicted = comm_time
            else:
                predicted = self._mean_or_zero(rank, key)
            self._Kt[rank][key] = self._Kt[rank].get(key, 0) + 1
            idle = (start - posted) if blocking else 0.0
            # a buffered isend returns immediately: the sender's path and
            # wall time do not absorb the transfer (Fig. 2: its kernel
            # time is observed at MPI_Wait, which overlaps computation)
            if kind == "isend":
                predicted = 0.0
                charged = 0.0
            else:
                charged = comm_time if executed else 0.0
            self.profiles[rank].add_comm(predicted, charged, nbytes, executed, idle)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line description for reports."""
        return f"Critter(policy={self.policy.name}, eps={self.eps:g}, conf={self.confidence:g})"
