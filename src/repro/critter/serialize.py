"""Persistence of Critter's kernel performance models.

The paper's eager-propagation results show that "reusing kernel
performance models across multiple configurations can yield significant
speedups"; the natural next step for a production tool is reusing them
across *tuning sessions* (the same machine is retuned after every
software release).  This module serializes a Critter instance's learned
state — per-rank kernel statistics, the eager switch-off set, and
channel coverage — to plain JSON and restores it, so a later session
starts with converged models.

Only statistics are persisted: pathsets and per-run structures are
rebuilt on the next run.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.critter.core import Critter
from repro.critter.stats import RunningStat
from repro.kernels.signature import KernelSignature

__all__ = ["critter_state_to_dict", "load_critter_state", "save_critter_state",
           "read_critter_state"]


def _sig_to_obj(sig: KernelSignature) -> Dict[str, Any]:
    return {"kind": sig.kind, "name": sig.name, "params": list(sig.params)}


def _sig_from_obj(obj: Dict[str, Any]) -> KernelSignature:
    return KernelSignature(obj["kind"], obj["name"],
                           tuple(int(p) for p in obj["params"]))


def _stat_to_obj(st: RunningStat) -> Dict[str, Any]:
    return {
        "count": st.count,
        "mean": st.mean,
        "m2": st._m2,
        "min": st.minimum,
        "max": st.maximum,
    }


def _stat_from_obj(obj: Dict[str, Any]) -> RunningStat:
    st = RunningStat()
    st.count = int(obj["count"])
    st.mean = float(obj["mean"])
    st._m2 = float(obj["m2"])
    st.minimum = float(obj["min"])
    st.maximum = float(obj["max"])
    return st


def critter_state_to_dict(critter: Critter) -> Dict[str, Any]:
    """Snapshot the persistent statistical state of a Critter."""
    if critter._K is None:
        raise ValueError("Critter has not attached to any run yet")
    return {
        "version": 1,
        "nprocs": critter.nprocs,
        "policy": critter.policy.name,
        "eps": critter.eps,
        "confidence": critter.confidence,
        "kernels": [
            [
                {"sig": _sig_to_obj(sig), "stat": _stat_to_obj(st)}
                for sig, st in rank_k.items()
            ]
            for rank_k in critter._K
        ],
        "global_off": [_sig_to_obj(s) for s in sorted(
            critter._global_off, key=lambda s: (s.kind, s.name, s.params))],
    }


def load_critter_state(critter: Critter, state: Dict[str, Any]) -> None:
    """Restore statistics saved by :func:`critter_state_to_dict`.

    The target Critter must be unattached or bound to the same world
    size as the snapshot.
    """
    if state.get("version") != 1:
        raise ValueError(f"unsupported state version {state.get('version')!r}")
    nprocs = int(state["nprocs"])
    if critter.nprocs is None:
        # pre-bind: mimic what start_run would establish
        from repro.critter.channels import AggregateRegistry

        critter.nprocs = nprocs
        critter._K = [dict() for _ in range(nprocs)]
        critter.registry = AggregateRegistry(nprocs)
    elif critter.nprocs != nprocs:
        raise ValueError(
            f"snapshot is for {nprocs} ranks, Critter bound to {critter.nprocs}"
        )
    for rank, entries in enumerate(state["kernels"]):
        table = critter._K[rank]
        table.clear()
        for entry in entries:
            table[_sig_from_obj(entry["sig"])] = _stat_from_obj(entry["stat"])
    critter._global_off = {_sig_from_obj(o) for o in state.get("global_off", [])}
    # the restore replaced every stat object: drop the per-communicator
    # cached stat rows / skip thresholds and mark statistics as changed
    critter._gstats.clear()
    critter._stat_gen += 1


def save_critter_state(critter: Critter, path: str) -> str:
    """Write the Critter's statistical state as JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(critter_state_to_dict(critter), f)
    return path


def read_critter_state(critter: Critter, path: str) -> None:
    """Load JSON state produced by :func:`save_critter_state`."""
    with open(path, "r", encoding="utf-8") as f:
        load_critter_state(critter, json.load(f))
