"""Pathsets: per-processor critical-path profiles and volumetric totals.

The pathset ``P`` of Section II.B stores aggregate statistics along a
specific execution path.  Critter maintains, per rank:

* **path metrics** — propagated with the longest-path algorithm: at
  every synchronization point each metric is replaced by the maximum
  over the participating processors, so at program end the global
  maximum over ranks is that metric's critical-path cost.  Each metric
  rides its *own* critical path (the path maximizing communication cost
  may differ from the one maximizing execution time — Fig. 1).

* **volumetric metrics** — plain per-rank accumulations, never
  propagated; averaging them over ranks gives the "volumetric avg"
  series of Fig. 3, and per-rank maxima give the "most loaded
  processor" kernel-time metrics of Figs. 4c / 5c.

* **path counts** (``K~``) — the kernel execution frequencies along the
  rank's current sub-critical path, held in a copy-on-write
  :class:`PathCountTable` so that losers of a path election adopt the
  winner's whole table by reference instead of deep-copying it.

``exec_time`` / ``comp_time`` / ``comm_time`` are *predicted* times:
executed kernels contribute their measured duration, skipped kernels
their sample mean — this is exactly how the tool predicts a
configuration's execution time while skipping most of its work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

__all__ = [
    "PathCountTable",
    "PathMetrics",
    "PathProfile",
    "critical_path",
    "volumetric_average",
]


class PathCountTable:
    """Copy-on-write kernel-frequency table (one rank's ``K~``).

    Layout: a **base** dict that is immutable once shared (adopters
    point at the very same object; nobody ever writes to a base) plus a
    small private **delta** dict holding this rank's increments since
    the base was taken.  The merged view is "delta wins, base fills".

    * :meth:`adopt` — wholesale adoption of a winner's snapshot at a
      synchronization point: re-points ``base`` and drops the local
      delta.  O(1) regardless of table size, where the pre-COW code
      paid a full ``dict(...)`` copy per losing rank.
    * :meth:`snapshot` — freeze the current contents for sharing
      (winner side of an election, ``isend`` internal-message buffers,
      ``last_path_counts``): collapses the delta into a fresh base at
      most once per sync point and returns that base.  Callers must
      treat the returned dict as immutable.
    * :meth:`increment` — the only mutation, always into the delta, so
      a shared base can never change underneath another rank.

    ``version`` stamps wholesale adoptions.  Increments never bump it:
    a path count can only *grow* between adoptions, and predictability
    is monotone in the count, so a skip verdict confirmed at version
    ``v`` stays valid until the version changes or the kernel's
    statistics do (see ``Critter.on_compute``).

    The read surface (``get``/``[]``/``in``/iteration/``items``) is
    dict-like so reports and tests can treat a table as the mapping it
    replaces.
    """

    __slots__ = ("_base", "_delta", "version")

    def __init__(self, base: Dict = None) -> None:
        self._base: Dict = {} if base is None else base
        self._delta: Dict = {}
        self.version = 0

    # -- reads -------------------------------------------------------------
    def get(self, key, default=0):
        v = self._delta.get(key)
        if v is not None:
            return v
        return self._base.get(key, default)

    def __getitem__(self, key):
        v = self._delta.get(key)
        if v is not None:
            return v
        return self._base[key]

    def __contains__(self, key) -> bool:
        return key in self._delta or key in self._base

    def __iter__(self) -> Iterator:
        return iter(self.snapshot())

    def __len__(self) -> int:
        if not self._delta:
            return len(self._base)
        return len(self.snapshot())

    def __bool__(self) -> bool:
        return bool(self._delta) or bool(self._base)

    def keys(self):
        return self.snapshot().keys()

    def items(self):
        return self.snapshot().items()

    def __repr__(self) -> str:
        return f"PathCountTable({self.snapshot()!r}, version={self.version})"

    # -- writes ------------------------------------------------------------
    def increment(self, key) -> None:
        """Count one more occurrence of ``key`` along this rank's path."""
        delta = self._delta
        v = delta.get(key)
        if v is None:
            v = self._base.get(key, 0)
        delta[key] = v + 1

    def snapshot(self) -> Dict:
        """Frozen shareable contents; collapses the delta at most once."""
        if self._delta:
            base = dict(self._base)
            base.update(self._delta)
            self._base = base
            self._delta = {}
        return self._base

    def adopt(self, base: Dict) -> None:
        """Wholesale adoption of another table's snapshot (by reference)."""
        self._base = base
        if self._delta:
            self._delta = {}
        self.version += 1


@dataclass(slots=True)
class PathMetrics:
    """Max-propagated per-path metrics."""

    exec_time: float = 0.0   # predicted execution time (comp + comm + idle-free)
    comp_time: float = 0.0   # predicted computation-kernel time
    comm_time: float = 0.0   # predicted communication-kernel time
    synchs: float = 0.0      # number of synchronizations (BSP supersteps)
    words: float = 0.0       # bytes communicated
    flops: float = 0.0       # floating-point operations

    def merge_max(self, other: "PathMetrics") -> None:
        """Longest-path propagation: each metric takes the pairwise max.

        Idempotent and commutative (a pairwise max), so merging a path
        that was itself just merged is identical to merging its
        pre-merge snapshot — the property that lets the sync-point
        propagation loops skip the defensive copies they used to take.
        """
        if other.exec_time > self.exec_time:
            self.exec_time = other.exec_time
        if other.comp_time > self.comp_time:
            self.comp_time = other.comp_time
        if other.comm_time > self.comm_time:
            self.comm_time = other.comm_time
        if other.synchs > self.synchs:
            self.synchs = other.synchs
        if other.words > self.words:
            self.words = other.words
        if other.flops > self.flops:
            self.flops = other.flops

    def copy(self) -> "PathMetrics":
        return PathMetrics(
            self.exec_time, self.comp_time, self.comm_time,
            self.synchs, self.words, self.flops,
        )


@dataclass(slots=True)
class PathProfile:
    """One rank's pathset: path metrics plus volumetric accumulations."""

    path: PathMetrics = field(default_factory=PathMetrics)

    # volumetric (per-rank, not propagated)
    vol_comp_time: float = 0.0       # wall time charged in computation kernels
    vol_comm_time: float = 0.0       # wall time charged in communication kernels
    vol_exec_comp: float = 0.0       # wall time in *executed* computation kernels
    vol_exec_comm: float = 0.0       # wall time in *executed* communication kernels
    vol_idle: float = 0.0            # wait time at synchronization points
    vol_words: float = 0.0
    vol_synchs: float = 0.0
    vol_flops: float = 0.0
    executed_kernels: int = 0
    skipped_kernels: int = 0

    #: cached sync-point path value + dirty flag.  The path election at
    #: every collective/p2p sync point ranks members by one criterion
    #: metric; caching it here makes that O(1) per member per sync point
    #: instead of recomputed per comparison.  Every mutation that can
    #: move the value (``add_compute``/``add_comm``/``merge_path``)
    #: raises the dirty flag; ``Critter._path_value`` owns the refill
    #: (the cached value is only meaningful to the single Critter
    #: instance driving this profile, whose criterion is fixed).
    pv_cache: float = 0.0
    pv_dirty: bool = True

    # -- accumulation helpers ---------------------------------------------
    def add_compute(self, predicted: float, charged: float, flops: float,
                    executed: bool) -> None:
        self.path.exec_time += predicted
        self.path.comp_time += predicted
        self.path.flops += flops
        self.vol_comp_time += charged
        self.vol_flops += flops
        self.pv_dirty = True
        if executed:
            self.vol_exec_comp += charged
            self.executed_kernels += 1
        else:
            self.skipped_kernels += 1

    def add_comm(self, predicted: float, charged: float, nbytes: float,
                 executed: bool, idle: float) -> None:
        self.path.exec_time += predicted
        self.path.comm_time += predicted
        self.path.words += nbytes
        self.path.synchs += 1.0
        self.vol_comm_time += charged
        self.vol_words += nbytes
        self.vol_synchs += 1.0
        self.vol_idle += idle
        self.pv_dirty = True
        if executed:
            self.vol_exec_comm += charged
            self.executed_kernels += 1
        else:
            self.skipped_kernels += 1

    def merge_path(self, other: PathMetrics) -> None:
        """Longest-path propagation into this profile (dirties the cache)."""
        self.path.merge_max(other)
        self.pv_dirty = True

    @property
    def kernel_wall_time(self) -> float:
        """Wall time this rank spent inside executed kernels."""
        return self.vol_exec_comp + self.vol_exec_comm

    def copy_path(self) -> PathMetrics:
        return self.path.copy()


def critical_path(profiles: List[PathProfile]) -> PathMetrics:
    """Final critical-path metrics: global max of every path metric."""
    out = PathMetrics()
    for p in profiles:
        out.merge_max(p.path)
    return out


def volumetric_average(profiles: List[PathProfile]) -> Dict[str, float]:
    """Per-rank averages of volumetric metrics (Fig. 3's second series)."""
    n = max(len(profiles), 1)
    return {
        "comp_time": sum(p.vol_comp_time for p in profiles) / n,
        "comm_time": sum(p.vol_comm_time for p in profiles) / n,
        "idle": sum(p.vol_idle for p in profiles) / n,
        "words": sum(p.vol_words for p in profiles) / n,
        "synchs": sum(p.vol_synchs for p in profiles) / n,
        "flops": sum(p.vol_flops for p in profiles) / n,
    }
