"""Reporting helpers for benchmark output."""

from repro.analysis.figures import ascii_chart, sweep_chart
from repro.analysis.report import fmt, format_table, save_csv

__all__ = ["fmt", "format_table", "save_csv", "ascii_chart", "sweep_chart"]
