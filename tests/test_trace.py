"""TraceRecorder: event capture and query helpers."""

import pytest

from repro.kernels.blas import gemm_spec
from repro.sim import Machine, NoiseModel, Simulator, TraceRecorder


def traced_run(program, nprocs=2):
    m = Machine(nprocs=nprocs, seed=0)
    tr = TraceRecorder()
    sim = Simulator(
        m,
        noise=NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0),
        trace=tr,
    )
    res = sim.run(program)
    return res, tr


def simple_prog(comm):
    yield comm.compute(gemm_spec(8, 8, 8))
    yield comm.allreduce(nbytes=64)
    if comm.rank == 0:
        yield comm.send(None, dest=1, nbytes=32)
    elif comm.rank == 1:
        yield comm.recv(source=0, nbytes=32)


class TestTraceCapture:
    def test_event_kinds(self):
        _, tr = traced_run(simple_prog)
        assert len(tr.by_kind("comp")) == 2
        assert len(tr.by_kind("coll")) == 1
        assert len(tr.by_kind("p2p")) == 1

    def test_event_fields(self):
        _, tr = traced_run(simple_prog)
        ev = tr.by_kind("p2p")[0]
        assert ev.ranks == (0, 1)
        assert ev.executed
        assert ev.end == ev.start + ev.duration

    def test_by_rank(self):
        _, tr = traced_run(simple_prog)
        assert len(tr.by_rank(0)) == 3  # comp + coll + p2p
        assert len(tr.by_rank(1)) == 3

    def test_kernel_histogram(self):
        _, tr = traced_run(simple_prog)
        hist = tr.kernel_histogram()
        sig = gemm_spec(8, 8, 8)[0]
        assert hist[sig] == 2

    def test_counts_and_totals(self):
        _, tr = traced_run(simple_prog)
        assert tr.executed_count() == len(tr)
        assert tr.skipped_count() == 0
        assert tr.total_time() > 0
        assert tr.total_time("comp") <= tr.total_time()

    def test_clear(self):
        _, tr = traced_run(simple_prog)
        tr.clear()
        assert len(tr) == 0

    def test_iteration(self):
        _, tr = traced_run(simple_prog)
        assert sum(1 for _ in tr) == len(tr)

    def test_trace_records_skips(self):
        from repro.critter import Critter

        m = Machine(nprocs=2, seed=0)
        tr = TraceRecorder()
        cr = Critter(policy="conditional", eps=0.5)

        def prog(comm):
            for _ in range(30):
                yield comm.compute(gemm_spec(8, 8, 8))

        for rep in range(3):
            Simulator(m, profiler=cr, trace=tr).run(prog, run_seed=rep)
        assert tr.skipped_count() > 0
        assert tr.executed_count() > 0
