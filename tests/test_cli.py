"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tune_defaults(self):
        args = build_parser().parse_args(["tune", "capital_cholesky"])
        assert args.policy == "online"
        assert args.eps == -3

    def test_rejects_unknown_space(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "nonexistent_space"])

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "capital_cholesky",
                                       "--policy", "magic"])


class TestSpaces:
    def test_lists_all_four(self, capsys):
        assert main(["spaces"]) == 0
        out = capsys.readouterr().out
        for name in ("capital_cholesky", "slate_cholesky", "candmc_qr", "slate_qr"):
            assert name in out


class TestProfile:
    def test_profiles_config(self, capsys):
        assert main(["profile", "capital_cholesky", "--config", "2"]) == 0
        out = capsys.readouterr().out
        assert "critical-path time" in out
        assert "total(ms)" in out  # kernel table rendered

    def test_bad_config_index(self, capsys):
        assert main(["profile", "capital_cholesky", "--config", "99"]) == 2


class TestTune:
    def test_tune_small_space(self, capsys, monkeypatch):
        # shrink the space for test speed
        from repro.autotune import capital_cholesky_space
        import repro.cli as cli

        monkeypatch.setitem(
            cli.SPACES, "capital_cholesky",
            lambda: capital_cholesky_space(n=64, c=2, b0=4, nconf=4),
        )
        assert main(["tune", "capital_cholesky", "--reps", "2",
                     "--full-reps", "2", "--eps", "-2"]) == 0
        out = capsys.readouterr().out
        assert "chosen: config" in out
        assert "speedup" in out


class TestSweep:
    def test_sweep_with_chart(self, capsys, monkeypatch):
        from repro.autotune import capital_cholesky_space
        import repro.cli as cli

        monkeypatch.setitem(
            cli.SPACES, "capital_cholesky",
            lambda: capital_cholesky_space(n=64, c=2, b0=4, nconf=3),
        )
        assert main(["sweep", "capital_cholesky", "--policies", "online",
                     "--exponents", "0,-4", "--reps", "1", "--full-reps", "1",
                     "--chart"]) == 0
        out = capsys.readouterr().out
        assert "search_time vs tolerance" in out
        assert "full-exec" in out
        assert "o=online" in out  # the chart legend
