"""Processor grids: 2D and 3D cartesian decompositions of COMM_WORLD.

Grid communicators are carved with ``MPI_Comm_split`` so Critter's
aggregate-channel machinery sees exactly the communicator constructions
the real libraries perform: rows/columns of a 2D grid, and rows /
columns / fibers / layers of a 3D grid, all with cartesian strides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.comm import Comm

__all__ = ["Grid2D", "Grid3D", "make_grid2d", "make_grid3d"]


@dataclass(slots=True)
class Grid2D:
    """A pr x pc grid; rank = ri * pc + ci (row-major).

    ``row`` spans the ranks with equal ``ri`` (varying column index);
    ``col`` spans the ranks with equal ``ci``.
    """

    comm: Comm
    pr: int
    pc: int
    ri: int
    ci: int
    row: Comm
    col: Comm


def make_grid2d(comm: Comm, pr: int, pc: int):
    """Build a 2D grid (generator; use ``yield from``)."""
    if pr * pc != comm.size:
        raise ValueError(f"grid {pr}x{pc} != comm size {comm.size}")
    ri, ci = divmod(comm.rank, pc)
    row = yield comm.split(color=ri, key=ci)
    col = yield comm.split(color=ci, key=ri)
    return Grid2D(comm=comm, pr=pr, pc=pc, ri=ri, ci=ci, row=row, col=col)


@dataclass(slots=True)
class Grid3D:
    """A c x c x c grid; rank = k * c^2 + i * c + j.

    ``k`` indexes the grid layer (depth), ``(i, j)`` the position within
    a layer.  Communicators:

    * ``row``   — fixed (k, i), varying j  (stride 1, size c)
    * ``col``   — fixed (k, j), varying i  (stride c, size c)
    * ``fiber`` — fixed (i, j), varying k  (stride c^2, size c)
    * ``layer`` — fixed k, all (i, j)      (strides (1, c), size c^2)
    """

    comm: Comm
    c: int
    i: int
    j: int
    k: int
    row: Comm
    col: Comm
    fiber: Comm
    layer: Comm


def make_grid3d(comm: Comm, c: int):
    """Build a 3D grid (generator; use ``yield from``)."""
    if c**3 != comm.size:
        raise ValueError(f"grid {c}^3 != comm size {comm.size}")
    k, rem = divmod(comm.rank, c * c)
    i, j = divmod(rem, c)
    row = yield comm.split(color=k * c + i, key=j)
    col = yield comm.split(color=k * c + j, key=i)
    fiber = yield comm.split(color=i * c + j, key=k)
    layer = yield comm.split(color=k, key=i * c + j)
    return Grid3D(comm=comm, c=c, i=i, j=j, k=k, row=row, col=col,
                  fiber=fiber, layer=layer)
