"""Machine parameter presets and their load regimes.

The defaults of :class:`~repro.sim.machine.Machine` approximate one
Stampede2 KNL core; these presets provide other plausible design points
so noise-sensitivity and machine-dependence studies (e.g. "does the
chosen configuration change across machines?" — the reason autotuning
exists) have ready-made contrasts.

Each preset fixes the alpha/beta/gamma triple and a matching noise
profile; the ``seed`` still controls per-signature efficiency biases,
so two instances of the *same* preset with different seeds rank
configurations differently — exactly like two differently-aged
clusters of the same model.

Every preset additionally carries a table of **load regimes**
(:class:`~repro.sim.machine.LoadRegime`): multiplicative operating
points modeling ambient cluster load, after CORTEX's observation that
latency distributions are regime-dependent.  Highlights:

* The ``"default"`` regime of every preset uses unit factors, no
  roofline ceiling and the preset's ambient CoVs — **bit-identical**
  to the pre-regime model (golden fixtures pin this).
* ``epyc-ethernet``'s ``"idle"`` regime reproduces CORTEX's "Idle
  Paradox": an idle machine runs compute ~2.3x *slower* than a loaded
  one because DVFS parks the cores at their lowest clocks.
* Non-default regimes of the fat-core presets enable the roofline
  memory ceiling (``mem_beta``), so bandwidth-bound kernels (trsm
  panels, stencil halos) price above flop-bound gemm under load.
* ``quiet`` keeps all CoVs at zero in every regime — its non-default
  regimes exercise regime factors and the roofline ceiling fully
  deterministically (an experimental control).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.sim.machine import LoadRegime, Machine
from repro.sim.noise import NoiseModel

__all__ = [
    "MachinePreset",
    "PRESETS",
    "REGIME_NAMES",
    "make_machine",
]

#: the regime vocabulary every preset provides, in canonical order
REGIME_NAMES: Tuple[str, ...] = ("default", "idle", "medium", "heavy")


@dataclass(frozen=True, slots=True)
class MachinePreset:
    """A named machine design point."""

    name: str
    description: str
    alpha: float
    beta: float
    gamma: float
    bias_sigma: float
    comp_cv: float
    comm_cv: float
    run_cv: float
    regimes: Tuple[LoadRegime, ...] = (LoadRegime("default"),)

    def regime(self, name: str) -> LoadRegime:
        """Look up a regime by name, failing fast with the valid names."""
        for r in self.regimes:
            if r.name == name:
                return r
        valid = sorted(r.name for r in self.regimes)
        raise ValueError(f"unknown regime {name!r}; choose from {valid}")

    def machine(self, nprocs: int, seed: int = 0,
                regime: str = "default") -> Machine:
        r = self.regime(regime)
        return Machine(nprocs=nprocs, alpha=self.alpha, beta=self.beta,
                       gamma=self.gamma, seed=seed,
                       comp_scale=r.comp_factor, comm_scale=r.comm_factor,
                       mem_beta=r.mem_beta, regime=r.name)

    def noise(self, seed: int = 0, regime: str = "default") -> NoiseModel:
        r = self.regime(regime)
        return NoiseModel(
            bias_sigma=self.bias_sigma,
            comp_cv=self.comp_cv if r.comp_cv is None else r.comp_cv,
            comm_cv=self.comm_cv if r.comm_cv is None else r.comm_cv,
            run_cv=self.run_cv if r.run_cv is None else r.run_cv,
            machine_seed=seed,
            regime=r.name,
        )


PRESETS = {
    # Stampede2-flavoured: slow serial cores, fast fabric, noisy shared
    # network (the paper's host system).  mem_beta=1.8e-10 puts
    # gemm(64,64,64) (0.25 B/flop -> 4.5e-11 s/flop) under the gamma
    # roof while trsm(64,64) (0.3125 B/flop -> 5.6e-11) tips over it.
    "knl-fabric": MachinePreset(
        name="knl-fabric",
        description="KNL-class cores on a fat-tree fabric (paper-like)",
        alpha=2.0e-6, beta=5.0e-10, gamma=5.0e-11,
        bias_sigma=0.3, comp_cv=0.08, comm_cv=0.2, run_cv=0.01,
        regimes=(
            LoadRegime("default"),
            LoadRegime("idle", comp_factor=1.15, comm_factor=0.9,
                       mem_beta=1.8e-10, comp_cv=0.12, comm_cv=0.1),
            LoadRegime("medium", comp_factor=1.0, comm_factor=1.25,
                       mem_beta=1.8e-10, comm_cv=0.25),
            LoadRegime("heavy", comp_factor=1.1, comm_factor=2.0,
                       mem_beta=2.5e-10, comp_cv=0.15, comm_cv=0.45,
                       run_cv=0.02),
        ),
    ),
    # fat x86 cores, commodity network: computation relatively cheap,
    # latency relatively expensive -> larger blocks win.  The idle
    # regime is the CORTEX Idle Paradox point: DVFS on an unloaded
    # server parks cores at base clocks, ~2.3x slower compute.
    "epyc-ethernet": MachinePreset(
        name="epyc-ethernet",
        description="server-class cores over 100GbE (latency-heavy)",
        alpha=1.0e-5, beta=1.0e-10, gamma=2.0e-11,
        bias_sigma=0.25, comp_cv=0.05, comm_cv=0.35, run_cv=0.02,
        regimes=(
            LoadRegime("default"),
            LoadRegime("idle", comp_factor=2.3, comm_factor=0.85,
                       mem_beta=9.0e-11, comp_cv=0.1, comm_cv=0.2),
            LoadRegime("medium", comp_factor=1.0, comm_factor=1.3,
                       mem_beta=9.0e-11, comm_cv=0.4),
            LoadRegime("heavy", comp_factor=1.05, comm_factor=2.5,
                       mem_beta=1.2e-10, comp_cv=0.1, comm_cv=0.6,
                       run_cv=0.04),
        ),
    ),
    # cloud VMs: huge run-to-run drift, noisy neighbours
    "cloud-vm": MachinePreset(
        name="cloud-vm",
        description="virtualized nodes with noisy neighbours",
        alpha=2.0e-5, beta=8.0e-10, gamma=3.0e-11,
        bias_sigma=0.35, comp_cv=0.2, comm_cv=0.5, run_cv=0.05,
        regimes=(
            LoadRegime("default"),
            LoadRegime("idle", comp_factor=1.3, comm_factor=0.95,
                       mem_beta=1.1e-10, comp_cv=0.15, comm_cv=0.3),
            LoadRegime("medium", comp_factor=1.1, comm_factor=1.4,
                       mem_beta=1.1e-10),
            LoadRegime("heavy", comp_factor=1.25, comm_factor=2.2,
                       mem_beta=1.5e-10, comp_cv=0.3, comm_cv=0.7,
                       run_cv=0.08),
        ),
    ),
    # an idealized quiet machine: near-deterministic timings (useful as
    # an experimental control); non-default regimes keep zero CoVs so
    # regime factors and the roofline ceiling can be tested exactly
    "quiet": MachinePreset(
        name="quiet",
        description="noise-free control machine",
        alpha=2.0e-6, beta=5.0e-10, gamma=5.0e-11,
        bias_sigma=0.0, comp_cv=0.0, comm_cv=0.0, run_cv=0.0,
        regimes=(
            LoadRegime("default"),
            LoadRegime("idle", comp_factor=2.0, comm_factor=0.9,
                       mem_beta=2.0e-10),
            LoadRegime("medium", comp_factor=1.0, comm_factor=1.25,
                       mem_beta=2.0e-10),
            LoadRegime("heavy", comp_factor=1.1, comm_factor=2.0,
                       mem_beta=2.5e-10),
        ),
    ),
}


def make_machine(preset: str, nprocs: int, seed: int = 0,
                 regime: str = "default"):
    """Build (Machine, NoiseModel) for a named preset and load regime."""
    try:
        p = PRESETS[preset]
    except KeyError:
        raise ValueError(f"unknown preset {preset!r}; choose from {sorted(PRESETS)}") from None
    return p.machine(nprocs, seed, regime), p.noise(seed, regime)
