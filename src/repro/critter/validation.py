"""Empirical validation of the framework's statistical machinery.

The paper's guarantees rest on two statistical claims (Section III.A):

1. kernel timings are i.i.d. draws from a distribution with finite mean
   and variance, so the normal-theory confidence interval of the sample
   mean has (asymptotically) its nominal coverage;
2. the combined time of ``alpha`` same-signature kernels along a path
   has its relative uncertainty reduced by ``sqrt(alpha)``.

These utilities measure both properties *inside* the reproduction:
:func:`ci_coverage` replays many independent sampling experiments
against a noise model and reports how often the interval contains the
true mean (should track the nominal confidence level), and
:func:`aggregate_error_reduction` measures how prediction error of a
sum of kernels shrinks with the number of terms.  The test suite holds
the framework to both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.critter.stats import RunningStat, z_value
from repro.kernels.signature import KernelSignature, comp_signature
from repro.sim.noise import NoiseModel

__all__ = ["CoverageResult", "ci_coverage", "aggregate_error_reduction"]


@dataclass(frozen=True, slots=True)
class CoverageResult:
    """Outcome of a confidence-interval coverage experiment."""

    nominal: float      # requested confidence level
    observed: float     # fraction of intervals containing the true mean
    trials: int
    samples_per_trial: int

    @property
    def gap(self) -> float:
        return self.observed - self.nominal


def ci_coverage(
    noise: Optional[NoiseModel] = None,
    sig: Optional[KernelSignature] = None,
    confidence: float = 0.95,
    samples_per_trial: int = 30,
    trials: int = 2000,
    base_cost: float = 1e-3,
    seed: int = 0,
) -> CoverageResult:
    """Empirical coverage of the kernel-mean confidence interval.

    Each trial draws ``samples_per_trial`` kernel timings from the
    noise model, forms the CI Critter would use, and checks whether it
    contains the distribution's true mean.
    """
    noise = noise or NoiseModel()
    sig = sig or comp_signature("gemm", 64, 64, 64)
    z = z_value(confidence)
    true_mean = noise.true_mean(sig, base_cost)
    rng = np.random.Generator(np.random.PCG64(seed))
    hits = 0
    for _ in range(trials):
        st = RunningStat()
        for _ in range(samples_per_trial):
            # run_cv drift is systematic within a run; coverage is a
            # per-run property, so draw with a fixed run seed
            st.update(noise.sample(sig, base_cost, rng, run_seed=0))
        half = st.ci_halfwidth(z)
        if abs(st.mean - true_mean * noise.run_drift(sig, 0)) <= half:
            hits += 1
    return CoverageResult(
        nominal=confidence,
        observed=hits / trials,
        trials=trials,
        samples_per_trial=samples_per_trial,
    )


def aggregate_error_reduction(
    noise: Optional[NoiseModel] = None,
    sig: Optional[KernelSignature] = None,
    alphas: tuple = (1, 4, 16, 64),
    trials: int = 1000,
    samples: int = 10,
    base_cost: float = 1e-3,
    seed: int = 0,
) -> dict:
    """Relative error of predicting the sum of ``alpha`` kernels.

    For each ``alpha``: estimate the kernel mean from ``samples`` draws,
    predict the combined time ``alpha * mean_hat``, and compare against
    a fresh realization of the actual sum.  Returns the RMS relative
    error per alpha — the paper's sqrt(alpha) claim predicts a falling
    curve (estimator error and realization noise both average out).
    """
    noise = noise or NoiseModel()
    sig = sig or comp_signature("gemm", 64, 64, 64)
    # repro: allow[seed-derivation] -- fixed xor tag predates derive_seed; validation curves pin the stream
    rng = np.random.Generator(np.random.PCG64(seed ^ 0xC0FFEE))
    out = {}
    for alpha in alphas:
        sq = 0.0
        for _ in range(trials):
            st = RunningStat()
            for _ in range(samples):
                st.update(noise.sample(sig, base_cost, rng, run_seed=1))
            predicted = alpha * st.mean
            actual = sum(
                noise.sample(sig, base_cost, rng, run_seed=1) for _ in range(alpha)
            )
            sq += ((predicted - actual) / actual) ** 2
        out[alpha] = math.sqrt(sq / trials)
    return out
