"""End-to-end integration: the full paper pipeline on miniature problems."""

import math

import pytest

from repro.algorithms import verify
from repro.autotune import (
    ExhaustiveTuner,
    candmc_qr_space,
    measure_ground_truth,
    slate_qr_space,
    tolerance_sweep,
)
from repro.autotune.tuner import default_machine
from repro.critter import Critter
from repro.sim import Machine, Simulator


class TestQRSpacesEndToEnd:
    def test_candmc_mini_tuning(self):
        space = candmc_qr_space(m=256, n=64, p=4, pr0=2, b0=2, nconf=10)
        machine = default_machine(space, seed=19)
        ground = measure_ground_truth(space, machine, full_reps=2, seed=0)
        res = ExhaustiveTuner(space, machine, policy="online", eps=2**-3,
                              reps=2, ground_truth=ground, seed=0).run()
        assert res.search_speedup >= 1.0
        assert res.selection_quality > 0.85
        assert all(math.isfinite(o.exec_error) for o in res.outcomes)

    def test_slate_qr_mini_tuning_with_exclusion(self):
        space = slate_qr_space(m=64, n=32, p=4, pr0=2, nb0=8, dnb=2, w0=2,
                               nconf=9)
        assert "geqr2" in space.exclude
        machine = default_machine(space, seed=19)
        ground = measure_ground_truth(space, machine, full_reps=2, seed=0)
        res = ExhaustiveTuner(space, machine, policy="conditional", eps=0.5,
                              reps=2, ground_truth=ground, seed=0).run()
        # speedup exists but is bounded by the excluded panel kernels
        assert res.search_speedup > 1.0
        skips = [o.skip_fraction for o in res.outcomes]
        assert max(skips) < 1.0


class TestSweepEndToEnd:
    def test_error_tolerance_relationship(self):
        from repro.autotune import capital_cholesky_space

        space = capital_cholesky_space(n=128, c=2, b0=4, nconf=5)
        machine = default_machine(space, seed=23)
        sweep = tolerance_sweep(
            space, machine, policies=("online",),
            tolerances=[1.0, 2**-4, 2**-8], reps=3, full_reps=3, seed=0,
        )
        errs = sweep.series("online", "mean_log2_exec_error")
        times = sweep.series("online", "search_time")
        # tighter tolerance: slower search
        assert times[2] > times[0]
        # and at least as accurate (allow noise slack)
        assert errs[2] <= errs[0] + 0.5

    def test_eager_full_pipeline_on_capital(self):
        from repro.autotune import capital_cholesky_space

        space = capital_cholesky_space(n=128, c=2, b0=4, nconf=10)
        machine = default_machine(space, seed=29)
        ground = measure_ground_truth(space, machine, full_reps=2, seed=0)
        eager = ExhaustiveTuner(space, machine, policy="eager", eps=2**-2,
                                reps=3, ground_truth=ground, seed=0).run()
        cond = ExhaustiveTuner(space, machine, policy="conditional", eps=2**-2,
                               reps=3, ground_truth=ground, seed=0).run()
        # the paper's headline: eager >> conditional for bulk-synchronous
        assert eager.search_time < cond.search_time
        # later configs reuse models: their skip fractions approach 1
        late = eager.outcomes[-1].skip_fraction
        assert late > 0.9


class TestNumericUnderTuning:
    def test_selective_execution_with_live_data(self):
        """Numeric correctness is preserved while Critter skips kernels."""
        from repro.algorithms.slate_cholesky import SlateCholeskyConfig, slate_cholesky

        cfg = SlateCholeskyConfig(n=48, nb=8, pr=2, pc=2, lookahead=1)
        a = verify.random_spd(48, seed=31)
        machine = Machine(nprocs=4, seed=31)
        cr = Critter(policy="online", eps=0.5)
        res = None
        for rep in range(3):
            res = Simulator(machine, profiler=cr, execute_skipped_fns=True).run(
                slate_cholesky, args=(cfg, a), run_seed=rep
            )
        assert cr.last_report.skip_fraction > 0.3
        verify.check_slate_cholesky(res.returns, cfg, a)

    def test_predicted_time_close_to_truth_quiet_noise(self):
        """With noise off, prediction converges to the exact runtime."""
        from repro.autotune import capital_cholesky_space
        from repro.sim import NoiseModel

        space = capital_cholesky_space(n=128, c=2, b0=8, nconf=3)
        machine = default_machine(space, seed=0)
        quiet = NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0)
        for config in space.configs:
            full = Critter(policy="never-skip")
            t_full = Simulator(machine, noise=quiet, profiler=full).run(
                space.program, args=(config,), run_seed=0).makespan
            cr = Critter(policy="conditional", eps=0.5)
            for rep in range(2):
                Simulator(machine, noise=quiet, profiler=cr).run(
                    space.program, args=(config,), run_seed=rep)
            err = abs(cr.last_report.predicted_exec_time - t_full) / t_full
            # residual gap = interception overhead (not part of the
            # kernel-sum prediction); small at paper scale, ~<10% at
            # this miniature problem size
            assert err < 0.12, config.label()
