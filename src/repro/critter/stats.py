"""Single-pass kernel performance statistics and confidence intervals.

Implements Section III.A of the paper: each kernel signature gets a
running (Welford) estimate of the mean and variance of its execution
time, built with "standard single-pass algorithms ... during program
execution".  A kernel is deemed *predictable* once the relative size of
its sample mean's confidence interval drops below the tolerance
``eps``; knowing the kernel occurs ``alpha`` times along the current
sub-critical path shrinks the interval by a further ``sqrt(alpha)``
(the paper assigns the combined time of the alpha occurrences a
variance reduced by that factor).

Cached predictability verdicts
------------------------------

``is_predictable`` sits on every pre-execution decision, so it must not
pay a sqrt and two divisions per call.  ``relative_ci`` is monotone
non-increasing in ``alpha`` — ``ci_halfwidth`` divides by
``sqrt(count * alpha)``, and IEEE-754 sqrt/division are correctly
rounded, hence monotone — so each verdict bounds a whole half-line of
alphas: a True at ``alpha0`` stays True for every ``alpha >= alpha0``
until the statistics change, and a False at ``alpha1`` stays False for
every ``alpha <= alpha1``.  :class:`RunningStat` caches those two
sentinel alphas (tagged with the ``(eps, z)`` they were computed for)
and ``update``/``merge`` invalidate them; queries between the sentinels
fall back to the exact computation, so every verdict returned is
bit-identical to the uncached formula.
"""

from __future__ import annotations

import math
from statistics import NormalDist

__all__ = ["RunningStat", "z_value", "relative_ci", "is_predictable"]

_INV_CDF = NormalDist().inv_cdf


def z_value(confidence: float) -> float:
    """Two-sided normal critical value for a confidence level in (0,1).

    Computed with the stdlib's :meth:`statistics.NormalDist.inv_cdf`
    (Wichura's AS241 algorithm) so importing the decision hot path does
    not pull in scipy — which matters for cold starts and the runner's
    worker-process spawns.  Values agree with ``scipy.stats.norm.ppf``
    to within a few ulp (pinned by ``tests/test_critter_cow.py``
    against recorded scipy values).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    return float(_INV_CDF(0.5 + confidence / 2.0))


class RunningStat:
    """Welford single-pass mean/variance accumulator.

    Supports :meth:`merge` (Chan's parallel update) so statistics
    gathered on different processors can be aggregated, as eager
    propagation requires.

    Beyond the moments, a few hot-path fields ride along:

    * ``last_exec_run`` — the profiler run serial in which this kernel
      last executed (Critter's per-run forced-execution bookkeeping;
      replaces a per-rank set lookup with an attribute compare).
    * ``_pt_eps``/``_pt_z``/``_pt_true``/``_pt_false`` — the cached
      predictability-verdict sentinels (see module docstring).
      ``_pt_eps`` doubles as the validity flag: any negative value
      means "no cached verdicts".
    * ``_skip_version`` — the path-count-table version for which
      Critter last confirmed a skip verdict (see
      ``Critter.on_compute``); invalidated with the sentinels.
    """

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum",
                 "last_exec_run", "_pt_eps", "_pt_z", "_pt_true",
                 "_pt_false", "_skip_version")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.last_exec_run = 0
        self._pt_eps = -1.0
        self._pt_z = 0.0
        self._pt_true = math.inf
        self._pt_false = 0
        self._skip_version = -1

    def update(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x
        self._pt_eps = -1.0
        self._skip_version = -1

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 until two samples exist)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        return self.mean * self.count

    def merge(self, other: "RunningStat") -> None:
        """Fold another accumulator into this one (order-insensitive)."""
        if other.count == 0:
            return
        self._pt_eps = -1.0
        self._skip_version = -1
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        n1, n2 = self.count, other.count
        delta = other.mean - self.mean
        n = n1 + n2
        self.mean += delta * n2 / n
        self._m2 += other._m2 + delta * delta * n1 * n2 / n
        self.count = n
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def copy(self) -> "RunningStat":
        c = RunningStat()
        c.count = self.count
        c.mean = self.mean
        c._m2 = self._m2
        c.minimum = self.minimum
        c.maximum = self.maximum
        c.last_exec_run = self.last_exec_run
        return c

    def ci_halfwidth(self, z: float, alpha: int = 1) -> float:
        """Confidence-interval half-width of the sample mean.

        ``alpha`` is the kernel's execution count along the current
        sub-critical path; the paper scales the variance of the combined
        time by 1/sqrt(alpha), shrinking the interval by sqrt(alpha).
        """
        if self.count < 2:
            return math.inf
        return z * self.std / math.sqrt(self.count * max(alpha, 1))

    def __repr__(self) -> str:
        return (
            f"RunningStat(count={self.count}, mean={self.mean:.3e}, "
            f"std={self.std:.3e})"
        )


def relative_ci(stat: RunningStat, z: float, alpha: int = 1) -> float:
    """The paper's eps~: CI size divided by the sample mean."""
    if stat.count < 2 or stat.mean <= 0.0:
        return math.inf
    return stat.ci_halfwidth(z, alpha) / stat.mean


def is_predictable(
    stat: RunningStat,
    eps: float,
    z: float,
    alpha: int = 1,
    min_samples: int = 2,
) -> bool:
    """Whether a kernel's mean is predictable to tolerance ``eps``.

    Verdicts are cached on ``stat`` via the alpha sentinels (module
    docstring); cache hits never diverge from the exact
    ``relative_ci(stat, z, alpha) <= eps`` evaluation.
    """
    if stat.count < max(min_samples, 2):
        return False
    if alpha < 1:
        alpha = 1
    if stat._pt_eps == eps and stat._pt_z == z:
        if alpha >= stat._pt_true:
            return True
        if alpha <= stat._pt_false:
            return False
    else:
        stat._pt_eps = eps
        stat._pt_z = z
        stat._pt_true = math.inf
        stat._pt_false = 0
    verdict = relative_ci(stat, z, alpha) <= eps
    if verdict:
        if alpha < stat._pt_true:
            stat._pt_true = alpha
    elif alpha > stat._pt_false:
        stat._pt_false = alpha
    return verdict
