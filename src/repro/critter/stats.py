"""Single-pass kernel performance statistics and confidence intervals.

Implements Section III.A of the paper: each kernel signature gets a
running (Welford) estimate of the mean and variance of its execution
time, built with "standard single-pass algorithms ... during program
execution".  A kernel is deemed *predictable* once the relative size of
its sample mean's confidence interval drops below the tolerance
``eps``; knowing the kernel occurs ``alpha`` times along the current
sub-critical path shrinks the interval by a further ``sqrt(alpha)``
(the paper assigns the combined time of the alpha occurrences a
variance reduced by that factor).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.stats import norm

__all__ = ["RunningStat", "z_value", "relative_ci", "is_predictable"]


def z_value(confidence: float) -> float:
    """Two-sided normal critical value for a confidence level in (0,1)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    return float(norm.ppf(0.5 + confidence / 2.0))


class RunningStat:
    """Welford single-pass mean/variance accumulator.

    Supports :meth:`merge` (Chan's parallel update) so statistics
    gathered on different processors can be aggregated, as eager
    propagation requires.
    """

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def update(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 until two samples exist)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        return self.mean * self.count

    def merge(self, other: "RunningStat") -> None:
        """Fold another accumulator into this one (order-insensitive)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        n1, n2 = self.count, other.count
        delta = other.mean - self.mean
        n = n1 + n2
        self.mean += delta * n2 / n
        self._m2 += other._m2 + delta * delta * n1 * n2 / n
        self.count = n
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def copy(self) -> "RunningStat":
        c = RunningStat()
        c.count = self.count
        c.mean = self.mean
        c._m2 = self._m2
        c.minimum = self.minimum
        c.maximum = self.maximum
        return c

    def ci_halfwidth(self, z: float, alpha: int = 1) -> float:
        """Confidence-interval half-width of the sample mean.

        ``alpha`` is the kernel's execution count along the current
        sub-critical path; the paper scales the variance of the combined
        time by 1/sqrt(alpha), shrinking the interval by sqrt(alpha).
        """
        if self.count < 2:
            return math.inf
        return z * self.std / math.sqrt(self.count * max(alpha, 1))

    def __repr__(self) -> str:
        return (
            f"RunningStat(count={self.count}, mean={self.mean:.3e}, "
            f"std={self.std:.3e})"
        )


def relative_ci(stat: RunningStat, z: float, alpha: int = 1) -> float:
    """The paper's eps~: CI size divided by the sample mean."""
    if stat.count < 2 or stat.mean <= 0.0:
        return math.inf
    return stat.ci_halfwidth(z, alpha) / stat.mean


def is_predictable(
    stat: RunningStat,
    eps: float,
    z: float,
    alpha: int = 1,
    min_samples: int = 2,
) -> bool:
    """Whether a kernel's mean is predictable to tolerance ``eps``."""
    if stat.count < max(min_samples, 2):
        return False
    return relative_ci(stat, z, alpha) <= eps
