"""Discrete-event engine: rank coroutines, matching, rendezvous, timing.

The engine advances one virtual clock per rank.  Rank programs are
generators; every yielded op descriptor is translated into simulated
time using the :class:`~repro.sim.machine.Machine` cost model, the
:class:`~repro.sim.noise.NoiseModel`, and the attached
:class:`~repro.sim.profiler.Profiler` (whose decisions implement
selective execution).

Timing semantics (all hooks receive exact arrival times):

* ``compute``   — local; charges the sampled kernel time (or the skip
  overhead when the profiler elides execution).
* collectives   — synchronous rendezvous: all participants complete at
  ``max(arrivals) + intercept + cost``; per-rank idle time is
  ``max(arrivals) - arrival``.
* blocking p2p  — rendezvous of the two endpoints, completing at
  ``max(post times) + intercept + cost``.
* ``isend``     — buffered: the sender continues immediately (paying
  only local interception cost); the transfer completes the matching
  request at ``max(post times) + intercept + cost``.
* ``wait``      — resumes at ``max(now, request completions)``
  (waitall); waitany resumes on the earliest known completion.

Scheduling: run-to-completion fast path
---------------------------------------

Two schedulers produce bit-identical results (pinned by the golden
tests in ``tests/test_engine_golden.py``):

* the **naive** scheduler round-trips every op through the global event
  heap — one ``heappush``/``heappop`` plus a generator re-entry per op;
* the **fast path** keeps driving a resumed rank's generator inline —
  advancing its local clock and sampling noise from its own RNG stream
  in the same order — for consecutive :class:`ComputeOp`/
  :class:`ComputeBatchOp` events, immediately-resolvable waits,
  **blocking p2p rendezvous whose matching endpoint is already
  parked** (see below), buffered ``isend`` posts whose match is parked
  in a blocking ``recv``, and **non-final collective arrivals**.  The
  heap is touched only when the rank reaches a genuinely blocking (or
  cross-rank-order-sensitive) op, which is then re-queued at the
  rank's local time so it dispatches at its exact global position.

Identity holds because every inlined event is *rank-local*: it reads
and writes only this rank's clock, RNG stream, and (for ``inline_safe``
profilers) per-rank profiler state.  Per-rank profiler state may be
*structurally shared* — Critter's copy-on-write path-count tables alias
one frozen snapshot dict across ranks — as long as shared objects are
immutable and every mutation lands in rank-private storage, with
structural changes (snapshot collapse, adoption) confined to hooks of
sync points involving that rank; see ``Critter.inline_safe``.  Anything that could interleave
with another rank's RNG stream or order-sensitive profiler state — a
collective *completion*, blocking p2p, a match against a pending
``irecv`` (whose poster may still be drawing from its RNG),
multi-request waitany — goes through the heap exactly as before.  The
fast path is disabled when a trace recorder is attached (trace files
pin global event order) or when the profiler does not declare
:attr:`~repro.sim.profiler.Profiler.inline_safe`.

Blocking p2p rendezvous (the dominant event kind of pure pipeline
workloads — CANDMC-style QR/Cholesky panel exchanges are send/recv
chains) completes **inline** when the matching endpoint is already
parked: a ``send`` arriving at a parked ``recv`` (and symmetrically a
``recv`` arriving at a parked ``send`` or an already-queued ``isend``)
computes the completion ``max(send_post, recv_post) + cost`` rank-
locally and keeps driving the arriving rank from that time, while the
other endpoint rides the heap to the completion's exact naive
position.  This is sound because a queued record is an immutable fact
(absolute post time, single consumer per channel, FIFO = program
order) and the cost draw comes from the receiver's RNG stream, whose
next draw is this one at any processing position — the receiver is
either the inline rank itself or parked until this very match.  The
gating mirrors the isend path: the receiving side must hold no
unmatched irecvs, and with profiler hooks active neither endpoint may
hold pending isends (and the parked peer no pending irecvs), since a
third rank's match could otherwise take non-commuting hooks at an
earlier global position.  With hooks off the fast path additionally
queues unmatched sends/recvs **early** (parking blocking ops in
place, no heap trip): pairing and completion are processing-order
independent, with one exception — an *irecv* poster keeps drawing
after its post, so an irecv that observes an early-queued send with a
later post time defers the match to that post time via
:class:`_FinishP2P`, exactly where the naive scheduler runs it.

Collective arrivals deserve a note, because they are the dominant event
kind of collective-dense workloads (panel factorizations are bcast/
allreduce chains).  A rank entering a collective that cannot complete
yet (fewer than ``group.size`` entries pending) has exactly one side
effect: recording its own ``(arrival time, op)`` in the communicator's
pending slot.  That is rank-local — the arrival time is this rank's
clock regardless of when other ranks are dispatched — so the fast path
parks such ranks in place, with no heap round-trip.  What is *not*
rank-local is the completion (profiler hooks over all members, a noise
draw from the lowest member's RNG stream, resume pushes), so only the
final arrival pays event-queue cost: it is dispatched at its exact
global position, and if an inlined entry carries a *later* arrival time
than the final heap-dispatched arrival, the completion itself rides the
heap to ``max(arrivals)`` (see :class:`_FinishColl`) — the position the
naive scheduler would have used, keeping every window event ordered
identically.

Known limit — exact event-time ties: the heap breaks ties at equal
float times by push sequence, and the fast path pushes fewer
intermediate events, so two ranks reaching blocking ops at the
*bit-identical* simulated time via different-length event chains can
dispatch in a different order than under the naive scheduler.  Ties
originating from one shared completion (a collective or p2p rendezvous
resuming several ranks at once) are pushed inside a single dispatch in
both schedulers and keep their order; the divergent kind requires two
independently accumulated clocks colliding exactly — constructible in
zero-noise machine models, measure-zero under any nonzero
per-invocation noise.  The observable effect is order-of-discovery
semantics (e.g. which request ``waitany`` reports first, which is
implementation-defined anyway; see :class:`~repro.sim.ops.WaitOp`).
Keeping the naive scheduler's ``(time, seq)`` order is deliberate: a
schedule-independent ``(time, rank)`` order would close this gap but
changes tie interleavings relative to the pre-fast-path engine,
breaking the golden bit-identity contract with recorded results.
"""

from __future__ import annotations

import heapq
import math
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.signature import KernelSignature, comm_signature, p2p_signature
from repro.sim.comm import Comm
from repro.sim.diagnostics import EngineDiagnostics, op_kind
from repro.sim.machine import Machine
from repro.sim.noise import NoiseModel
from repro.sim.ops import (
    CollOp,
    ComputeBatchOp,
    ComputeOp,
    ComputeRunOp,
    P2POp,
    Request,
    SplitOp,
    WaitOp,
)
from repro.sim.profiler import NullProfiler, Profiler
from repro.sim.trace import TraceRecorder

__all__ = ["Simulator", "SimResult", "CommGroup", "P2PRecord", "DeadlockError"]


class DeadlockError(RuntimeError):
    """Raised when no rank can make progress but some have not finished."""


class CommGroup:
    """Engine-side state shared by all members of a communicator.

    Collective bookkeeping is a single pending slot plus a sequence
    counter: because every member parks in a collective until *all*
    members arrived, at most one collective can ever be pending per
    communicator — no per-member counter dicts, no pending-map churn.
    """

    __slots__ = ("gid", "world_ranks", "sorted_ranks", "stride", "parent",
                 "coll_seq", "pending", "size", "sig_stride", "_sig_cache")

    def __init__(self, gid: int, world_ranks: Tuple[int, ...],
                 parent: Optional["CommGroup"] = None) -> None:
        self.gid = gid
        self.world_ranks = world_ranks
        self.sorted_ranks = tuple(sorted(world_ranks))
        self.parent = parent
        #: communicator size (plain attribute: hot-loop read)
        self.size = len(world_ranks)
        #: number of collectives (incl. splits) completed on this comm
        self.coll_seq = 0
        #: the at-most-one collective currently gathering participants
        self.pending: Optional["_CollPending"] = None
        self.stride = self._compute_stride()
        self.sig_stride = max(self.stride, 1)
        #: (name, nbytes) -> interned collective KernelSignature
        self._sig_cache: Dict[Tuple[str, int], KernelSignature] = {}

    def _compute_stride(self) -> int:
        rs = self.sorted_ranks
        if len(rs) < 2:
            return 0
        return min(b - a for a, b in zip(rs, rs[1:]))

    def coll_signature(self, name: str, nbytes: int) -> KernelSignature:
        """Per-group memo of this comm's collective signatures."""
        key = (name, nbytes)
        sig = self._sig_cache.get(key)
        if sig is None:
            sig = self._sig_cache[key] = comm_signature(
                name, nbytes, self.size, self.sig_stride)
        return sig

    def __repr__(self) -> str:
        return f"CommGroup(gid={self.gid}, size={self.size}, stride={self.stride})"


class _CollPending:
    """A collective (or split) waiting for all participants."""

    __slots__ = ("name", "entries", "tmax")

    def __init__(self, name: str) -> None:
        self.name = name
        self.entries: Dict[int, Tuple[float, Any]] = {}  # world rank -> (time, op)
        #: latest arrival time so far (incremental max; arrivals are >= 0)
        self.tmax = 0.0


class _FinishColl:
    """Deferred collective completion, riding the heap to max(arrivals).

    When fast-path ranks parked inline with later arrival times than the
    final heap-dispatched arrival, finishing the collective at the
    trigger's position would run its completion (profiler hooks, the
    noise draw from the lowest member's RNG) ahead of window events the
    naive scheduler orders first.  The completion is instead wrapped in
    this marker and redelivered at the latest arrival time — the exact
    global position the naive scheduler uses.
    """

    __slots__ = ("group", "pend")

    def __init__(self, group: "CommGroup", pend: "_CollPending") -> None:
        self.group = group
        self.pend = pend


class _FinishP2P:
    """Deferred p2p match, riding the heap to the queued record's post time.

    The fast path may queue a p2p record ahead of its global position
    (rank-local early queuing: sends/isends and recvs with hooks off;
    blocking sends, blocking recvs, and clean-window isend posts with
    an inline-safe profiler attached).
    A *blocking* consumer posted with clean windows (no irecvs
    outstanding; no isends either while hooks are on) can consume such
    a record at any processing position — the consumer is parked
    between its post and the completion with a frozen RNG stream and
    frozen profiler state, so the cost draw and the match hooks land
    identically regardless.  Not so when the consumer keeps executing
    or its streams have pending interleaved events:

    * an **irecv**/**isend** consumer keeps running (and drawing, and
      taking hooks) after its post;
    * a blocking consumer under an open **irecv** window still owes
      that irecv's future match draw (and hooks) first;
    * with hooks on, a blocking consumer with **pending isends** owes
      those matches' hooks first (a third rank may take them at any
      earlier global position).

    A match whose queued record carries a later post time than such a
    consumer must not run at the consumer's dispatch: it is wrapped in
    this marker and pushed at the record's post time — the exact global
    position where the naive scheduler (record poster dispatched there)
    runs the match, so hooks fire at ``max(consumer dispatch, record
    post time)`` exactly as naive orders them.
    The consumer's ``pending_irecvs`` stays elevated until the marker
    fires (``gate`` names its world rank), keeping every op of that
    rank heap-ordered through the deferral window exactly as an
    unmatched irecv would.  Unlike :class:`_Redeliver`, the marker is
    *not* a rank event: both event loops run the match without touching
    any rank's clock (either endpoint may be parked at its final time —
    or finished — when the marker pops, and ``rank_times`` reports
    ``st.time`` verbatim).
    """

    __slots__ = ("send", "recv", "gate", "dec_isend")

    def __init__(self, send: "P2PRecord", recv: "P2PRecord",
                 gate: int, dec_isend: bool = False) -> None:
        self.send = send
        self.recv = recv
        self.gate = gate
        #: the send record is a *queued* isend whose poster's
        #: ``pending_isends`` window must close when this match fires
        #: (not at queue-pop: the window is what keeps the poster's
        #: remaining hooks heap-ordered through the deferral)
        self.dec_isend = dec_isend


class _Redeliver:
    """Heap payload: an op captured inline, to dispatch at its own time.

    When the fast path has advanced a rank's local clock past the pop
    that resumed it and then meets a blocking op, dispatching in place
    would run the op ahead of other ranks' earlier events.  Instead the
    op rides the heap to the rank's current local time and is dispatched
    there — the exact global position the naive scheduler would use.
    """

    __slots__ = ("op",)

    def __init__(self, op: Any) -> None:
        self.op = op


@dataclass(slots=True)
class P2PRecord:
    """Engine/profiler-shared record of one posted p2p endpoint."""

    kind: str  # send | isend | recv | irecv
    world_rank: int
    comm_rank: int
    peer_world: int
    tag: int
    #: payload size; ``None`` on receive records whose poster declared
    #: no size (unknown).  Charged costs always use the sender's size.
    nbytes: Optional[int]
    post_time: float
    group: CommGroup
    payload: Any = None
    blocking: bool = True
    request: Optional[Request] = None
    snapshot: Any = None  # filled by profilers (path state at post time)
    #: hooks-on early-queued blocking recv whose poster's pending-isend
    #: window was open at post: any consumer processing it before its
    #: post time must defer the match there (the naive match site),
    #: because the poster's state still has earlier hook sites in
    #: flight — see the fast path's recv park and _FinishP2P
    defer: bool = False


class _RankState:
    __slots__ = ("rank", "gen", "gen_send", "time", "rng", "rng_normal",
                 "zbuf", "finished", "retval", "waiting",
                 "park_reason", "pending_irecvs", "pending_isends")

    def __init__(self, rank: int, gen: Any, rng: np.random.Generator) -> None:
        self.rank = rank
        self.gen = gen
        #: bound methods cached once — the fast path re-enters the
        #: generator and draws noise millions of times per run
        self.gen_send = gen.send
        self.time = 0.0
        self.rng = rng
        self.rng_normal = rng.standard_normal
        #: buffered standard-normal draws.  ``Generator.standard_normal``
        #: costs ~400 ns per scalar call but ~14 ns per value when drawn
        #: 512 at a time, and numpy's vectorized ziggurat emits the
        #: bit-identical value sequence as repeated scalar calls on the
        #: same state — so every engine draw site refills through this
        #: buffer.  The block is stored *reversed* so consumption is a
        #: plain ``list.pop()`` (no cursor attribute to maintain).  All
        #: draws from a rank's stream MUST go through the buffer (a
        #: direct ``rng.standard_normal()`` would skip the prefetched
        #: values).
        self.zbuf: List[float] = []
        self.finished = False
        self.retval: Any = None
        # (wait_posted_time, [requests], mode) when parked in a wait
        self.waiting: Optional[Tuple[float, List[Request], str]] = None
        #: why the rank is parked: a string, or the blocking op itself
        #: (formatted lazily by _describe_park — park happens millions
        #: of times, deadlock reporting once)
        self.park_reason: Any = None
        #: queued-but-unmatched irecv posts.  While nonzero, the fast
        #: path takes NO inline ops for this rank: a peer's send may
        #: match the irecv at any earlier global position, drawing from
        #: *this* rank's RNG stream and mutating its profiler state, so
        #: the rank's own draws/hooks must stay globally ordered.
        self.pending_irecvs = 0
        #: queued-but-unmatched isend posts; blocks peers from inline-
        #: matching this rank while profiler hooks are active (a third
        #: rank's recv may take this rank's profiler hooks at an earlier
        #: global position)
        self.pending_isends = 0

    def next_normal(self) -> float:
        """Next standard-normal draw of this rank's stream (buffered)."""
        buf = self.zbuf
        if not buf:
            buf = self.zbuf = self.rng_normal(512)[::-1].tolist()
        return buf.pop()


def _warn_p2p_size_mismatch(tag: int, send_rank: int, send_nbytes: int,
                            recv_rank: int, recv_nbytes: int) -> None:
    """Flag a declared receive size disagreeing with the matched sender.

    Shared by the heap rendezvous (:meth:`Simulator._rendezvous`) and
    the fast path's scalar inline rendezvous so the two cannot drift:
    same message, same category, and — with ``stacklevel=1`` pinning
    the attribution to this helper itself — the same (module, lineno)
    key in Python's once-per-location warning registry, whichever
    rendezvous path fired it.
    """
    warnings.warn(
        f"p2p size mismatch (tag {tag}): rank {send_rank} "
        f"sent {send_nbytes} B but rank {recv_rank} posted a "
        f"{recv_nbytes} B receive; costing the sender's size",
        RuntimeWarning, stacklevel=1)


def _describe_park(reason: Any) -> str:
    """Render a rank's park reason for deadlock reports.

    Park sites store the blocking op itself instead of formatting a
    message eagerly (parking is a hot-loop event; deadlock reporting is
    a once-per-crash event).
    """
    if reason is None:
        return "blocked"
    if isinstance(reason, str):
        return reason
    if isinstance(reason, CollOp):
        g = reason.comm.group
        return f"collective {reason.name} on comm {g.gid} seq {g.coll_seq}"
    if isinstance(reason, P2POp):
        peer = reason.comm.group.world_ranks[reason.peer]
        return f"blocking {reason.kind} peer={peer} tag={reason.tag}"
    if isinstance(reason, SplitOp):
        return f"comm_split on comm {reason.comm.group.gid}"
    if isinstance(reason, WaitOp):
        return f"wait on {len(reason.requests)} request(s)"
    return repr(reason)


@dataclass(slots=True)
class SimResult:
    """Outcome of one simulated run."""

    makespan: float
    rank_times: List[float]
    returns: List[Any]
    run_seed: int

    @property
    def nprocs(self) -> int:
        return len(self.rank_times)


class Simulator:
    """Drives rank programs over a simulated machine.

    Parameters
    ----------
    machine:
        Cost model (also fixes the number of ranks).
    noise:
        Timing noise process; defaults to :class:`NoiseModel` with the
        machine's seed.
    profiler:
        Interposition tool (Critter or the default NullProfiler).
    execute_skipped_fns:
        When True, numeric callbacks of *skipped* kernels still run (so
        data stays valid in data-carrying experiments); the charged time
        is still only the skip overhead, matching the tool's economics.
    trace:
        Optional :class:`TraceRecorder` capturing every event.  A trace
        pins global event order, so attaching one disables the fast
        path.
    fast_path:
        Enable the run-to-completion scheduler (see module docstring).
        On by default; it only engages when the profiler declares
        ``inline_safe``.  Results are bit-identical either way — the
        switch exists for benchmarking and as an escape hatch.
    """

    def __init__(
        self,
        machine: Machine,
        noise: Optional[NoiseModel] = None,
        profiler: Optional[Profiler] = None,
        *,
        execute_skipped_fns: bool = False,
        trace: Optional[TraceRecorder] = None,
        fast_path: bool = True,
        diagnostics: Optional[EngineDiagnostics] = None,
    ) -> None:
        self.machine = machine
        self.noise = noise if noise is not None else NoiseModel(machine_seed=machine.seed)
        self.profiler = profiler if profiler is not None else NullProfiler()
        self.execute_skipped_fns = execute_skipped_fns
        self.trace = trace
        self.fast_path = fast_path
        #: opt-in counter sink (see :mod:`repro.sim.diagnostics`);
        #: ``None`` keeps every counting site compiled out of the hot
        #: paths.  Counters never influence scheduling, so results are
        #: bit-identical with diagnostics on or off.
        self.diagnostics = diagnostics
        #: whether the last run actually used the fast path
        self.used_fast_path = False
        self.run_seed = 0
        # run state
        self._states: List[_RankState] = []
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._seq = 0
        self._next_gid = 0
        self._groups: Dict[int, CommGroup] = {}
        self._p2p_sends: Dict[Tuple[int, int, int, int], Deque[P2PRecord]] = {}
        self._p2p_recvs: Dict[Tuple[int, int, int, int], Deque[P2PRecord]] = {}
        #: per-run cache of (bias, drift, lognormal params) by signature
        self._noise_factors: Dict[KernelSignature, tuple] = {}
        #: per-(signature, machine) memo of Machine.comm_cost — the
        #: machine is fixed for the simulator's lifetime, so the memo
        #: survives across runs (unlike the per-run noise factors)
        self._comm_cost = machine.comm_cost_memo()
        #: per-(signature, machine) memo of Machine.time_per_flop —
        #: same lifetime argument: the machine is frozen, so the
        #: roofline price per signature never changes
        self._time_per_flop = machine.time_per_flop_memo()
        #: recomputed per run (tracks profiler swaps); False is only a
        #: conservative placeholder until then
        self._hooks_off = False
        self._post_isend_only = False
        self._icost2 = 0.0
        self._on_wait: Optional[Callable[..., Any]] = None
        #: fast-path resume FIFO (None under the naive scheduler): when
        #: a collective completes with an empty heap and empty FIFO,
        #: member resumes bypass the heap entirely — see _run_fast
        self._fast_resumes: Optional[Deque[Tuple[float, int, Any]]] = None
        self.world: Optional[CommGroup] = None

    # ------------------------------------------------------------------
    def run(
        self,
        program: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        rank_args: Optional[Sequence[Tuple[Any, ...]]] = None,
        run_seed: int = 0,
    ) -> SimResult:
        """Execute ``program(comm, *args)`` SPMD on all ranks.

        ``rank_args`` optionally supplies per-rank extra positional
        arguments (appended after ``args``).
        """
        p = self.machine.nprocs
        self.run_seed = int(run_seed)
        self._states = []
        self._heap = []
        self._seq = 0
        self._next_gid = 0
        self._groups = {}
        self._p2p_sends = {}
        self._p2p_recvs = {}
        self._noise_factors = {}

        self.world = self._make_group(tuple(range(p)), parent=None)
        self.profiler.start_run(self, self.run_seed)
        self.profiler.on_world(self.world)

        use_fast = (self.fast_path and self.trace is None
                    and bool(self.profiler.inline_safe))
        self.used_fast_path = use_fast
        self._fast_resumes = deque() if use_fast else None
        # NullProfiler hooks are no-ops with zero intercept cost; skip
        # them wholesale in the rendezvous paths (observationally
        # identical, measurably cheaper)
        self._hooks_off = type(self.profiler) is NullProfiler
        #: profilers that only care about isend posts let both
        #: schedulers elide the other on_p2p_post calls (same gate on
        #: both paths, so hook sequences stay identical)
        self._post_isend_only = bool(
            getattr(self.profiler, "p2p_post_isend_only", False))
        #: intercept_cost is a pure function of (profiler, machine,
        #: nranks) — resolve the per-match pair cost once per run
        self._icost2 = (0.0 if self._hooks_off
                        else self.profiler.intercept_cost(2))
        #: skip the per-completion wait hook when the profiler keeps
        #: the base class's no-op
        self._on_wait = (None if type(self.profiler).on_wait is Profiler.on_wait
                         else self.profiler.on_wait)

        diag = self.diagnostics
        t_start = diag._clock() if diag is not None else 0.0
        for r in range(p):
            # repro: allow[seed-derivation] -- bit-exact per-rank stream; engine golden traces pin it
            rng = np.random.Generator(np.random.PCG64(((self.run_seed & 0xFFFFFF) << 24) ^ (r + 1)))
            extra = tuple(rank_args[r]) if rank_args is not None else ()
            gen = program(Comm(self.world, r), *args, *extra)
            if diag is not None:
                gen = diag.wrap(gen)
            self._states.append(_RankState(r, gen, rng))
            self._push(0.0, r, None)

        heap = self._heap
        states = self._states
        pop = heapq.heappop
        if use_fast:
            self._run_fast(heap, states, pop)
        else:
            dispatch = self._dispatch_op if diag is None else self._dispatch
            while heap:
                t, _, r, value = pop(heap)
                tv = type(value)
                if tv is _FinishP2P:
                    # deferred p2p match: not a rank event, no clock
                    # assignment (see _FinishP2P)
                    states[value.gate].pending_irecvs -= 1
                    if value.dec_isend:
                        states[value.send.world_rank].pending_isends -= 1
                    if diag is not None:
                        diag.match_deferred += 1
                    self._match_p2p(value.send, value.recv)
                    continue
                st = states[r]
                st.time = t
                if tv is _Redeliver:
                    # step-wise ComputeBatchOp expansion (order-
                    # sensitive profilers) rides the heap between
                    # sub-kernels
                    if diag is not None:
                        diag.count_redeliver(value.op)
                    dispatch(st, value.op)
                    continue
                try:
                    op = st.gen.send(value)
                except StopIteration as stop:
                    st.finished = True
                    st.retval = stop.value
                    continue
                dispatch(st, op)

        if diag is not None:
            diag.runs += 1
            diag.heap_pushes += self._seq
            diag.wall_s += diag._clock() - t_start

        unfinished = [s.rank for s in self._states if not s.finished]
        if unfinished:
            details = "; ".join(
                f"rank {s.rank}: {_describe_park(s.park_reason)}"
                for s in self._states
                if not s.finished
            )
            raise DeadlockError(f"deadlock — unfinished ranks {unfinished}: {details}")

        rank_times = [s.time for s in self._states]
        makespan = max(rank_times)
        self.profiler.end_run(self, makespan)
        return SimResult(
            makespan=makespan,
            rank_times=rank_times,
            returns=[s.retval for s in self._states],
            run_seed=self.run_seed,
        )

    # ------------------------------------------------------------------
    # run-to-completion fast path
    # ------------------------------------------------------------------
    def _run_fast(self, heap: list, states: List[_RankState], pop) -> None:
        """The fast-path event loop: drive resumed ranks inline.

        After a heap pop resumes a rank, its generator keeps being
        driven in place for rank-local events (computes, batches,
        resolvable waits, isend posts matching a parked receiver); the
        heap is touched only at genuinely blocking or cross-rank-order-
        sensitive ops, which are dispatched at the rank's current local
        time — either directly (when no earlier-or-tied heap event is
        pending) or re-queued via :class:`_Redeliver` so they run at
        their exact global position.
        """
        prof = self.profiler
        hooks_off = type(prof) is NullProfiler
        machine = self.machine
        time_per_flop = self._time_per_flop
        skip_overhead = machine.skip_overhead
        exec_skipped = self.execute_skipped_fns
        factors = self._noise_factors
        noise_factors = self.noise.factors
        run_seed = self.run_seed
        exp = math.exp
        p2p_recvs = self._p2p_recvs
        p2p_sends = self._p2p_sends
        comm_cost = self._comm_cost
        p2p_sig = p2p_signature
        icost1 = prof.intercept_cost(1)
        on_compute = prof.on_compute
        post_compute = prof.post_compute
        on_p2p_post = prof.on_p2p_post
        post_isend_only = self._post_isend_only
        push = self._push
        diag = self.diagnostics
        dispatch = self._dispatch_op if diag is None else self._dispatch
        coll_enter = self._coll_enter
        fast_resumes = self._fast_resumes
        popleft = fast_resumes.popleft
        # last-signature factor memo: signatures are interned and op
        # streams are long runs of one signature, so a pointer compare
        # short-circuits the dict probe (and the factor-tuple unpack)
        # on the dominant path
        last_sig = None
        last_bias = last_drift = last_mu = last_s = 0.0
        last_g = 0.0
        last_noisy = False

        while True:
            # collective completions with nothing else in flight hand
            # their member resumes straight to this loop (push order ==
            # the naive scheduler's pop order), bypassing the heap
            if fast_resumes:
                t, rank, value = popleft()
                if diag is not None:
                    diag.fast_resume_fifo += 1
                st = states[rank]
                st.time = t
            elif heap:
                t, _, rank, value = pop(heap)
                tv = type(value)
                if tv is _FinishP2P:
                    # deferred p2p match: not a rank event, no clock
                    # assignment (see _FinishP2P)
                    states[value.gate].pending_irecvs -= 1
                    if value.dec_isend:
                        states[value.send.world_rank].pending_isends -= 1
                    if diag is not None:
                        diag.match_deferred += 1
                    self._match_p2p(value.send, value.recv)
                    continue
                st = states[rank]
                st.time = t
                if tv is _Redeliver:
                    if diag is not None:
                        diag.count_redeliver(value.op)
                    dispatch(st, value.op)
                    continue
            else:
                break
            gen_send = st.gen_send
            # the rank's clock lives in the local `now` while its
            # generator is driven inline; every branch that leaves the
            # compute hot path (or reads the clock through self/st)
            # syncs `st.time = now` first and re-captures `now` after
            # advancing.  ~one attribute load+store per op saved on the
            # dominant compute chain.
            now = st.time
            while True:
                try:
                    op = gen_send(value)
                except StopIteration as stop:
                    st.time = now
                    st.finished = True
                    st.retval = stop.value
                    break
                cls = type(op)
                if st.pending_irecvs:
                    # an unmatched irecv is out: any peer send can match
                    # it at an earlier global position (consuming this
                    # rank's RNG, mutating its profiler state), so every
                    # op stays heap-ordered until the irecvs match
                    cls = None
                if cls is ComputeOp:
                    sig = op.sig
                    if sig is not last_sig:
                        fac = factors.get(sig)
                        if fac is None:
                            fac = factors[sig] = noise_factors(sig, run_seed)
                        last_sig = sig
                        last_bias, last_drift, params = fac
                        last_g = time_per_flop(sig)
                        last_noisy = params is not None
                        if last_noisy:
                            last_mu, last_s = params
                    if hooks_off:
                        # identical float-op sequence to NoiseModel.sample
                        # (int->float conversion in `last_g * flops` matches
                        # compute_cost's explicit float(); last_g is the
                        # regime/roofline time-per-flop, == gamma when the
                        # default regime's unit factors are in effect)
                        mean = last_g * op.flops * last_bias * last_drift
                        if last_noisy:
                            buf = st.zbuf
                            if not buf:
                                buf = st.zbuf = \
                                    st.rng_normal(512)[::-1].tolist()
                            now += mean * exp(last_mu + last_s * buf.pop())
                        else:
                            now += mean
                        fn = op.fn
                        value = None if fn is None else fn(*op.args)
                        continue
                    st.time = now
                    flops = op.flops
                    execute = on_compute(rank, sig, flops)
                    result = None
                    if execute:
                        mean = last_g * flops * last_bias * last_drift
                        if last_noisy:
                            elapsed = mean * exp(
                                last_mu + last_s * st.next_normal())
                        else:
                            elapsed = mean
                        if op.fn is not None:
                            result = op.fn(*op.args)
                    else:
                        elapsed = skip_overhead
                        if op.fn is not None and exec_skipped:
                            result = op.fn(*op.args)
                    post_compute(rank, sig, execute, elapsed, flops)
                    now = st.time = now + elapsed
                    value = result
                    continue
                elif cls is WaitOp:
                    mode = op.mode
                    reqs = op.requests
                    if len(reqs) == 1:
                        # single-request waits dominate p2p-heavy op
                        # streams; skip the genexp/``all`` machinery
                        rq = reqs[0]
                        if rq.done:
                            if rq.completion > now:
                                now = rq.completion
                            st.time = now
                            if mode == "all":
                                value = [rq.value]
                            elif mode == "any":
                                value = (0, rq.value)
                            else:
                                value = rq.value
                            continue
                        st.time = now
                        st.waiting = (now, [rq], mode)
                        st.park_reason = op
                        break
                    if mode == "all":
                        if all(rq.done for rq in reqs):
                            # resolved: jump the local clock to the last
                            # completion and continue, no heap trip
                            resume = now
                            for rq in reqs:
                                if rq.completion > resume:
                                    resume = rq.completion
                            now = st.time = resume
                            value = [rq.value for rq in reqs]
                            continue
                        # unresolved: park here.  Completions carry
                        # absolute times, so parking "early" in global
                        # order produces the identical resume event.
                        st.time = now
                        st.waiting = (now, list(reqs), mode)
                        st.park_reason = op
                        break
                    # multi-request waitany resolves against completion
                    # *discovery* order — strictly heap business
                elif cls is CollOp:
                    st.time = now
                    group = op.comm.group
                    pend = group.pending
                    if (0 if pend is None else len(pend.entries)) + 1 < group.size:
                        # non-final arrival: the only side effect is
                        # recording this rank's own (time, op) entry —
                        # rank-local, so park in place with no heap
                        # round-trip.  The completing arrival (and the
                        # completion's cross-rank effects) stays heap-
                        # ordered below.  Common case inlined; first
                        # arrival / name mismatch takes the slow helper.
                        if diag is not None:
                            diag.coll_parks_inline += 1
                        if pend is not None and pend.name == op.name:
                            pend.entries[group.world_ranks[op.comm.rank]] = \
                                (st.time, op)
                            if st.time > pend.tmax:
                                pend.tmax = st.time
                            st.park_reason = op
                        else:
                            coll_enter(group, st, op)
                        break
                    # final arrival: falls through to the exact-position
                    # dispatch below, where _do_collective defers the
                    # completion to max(arrivals) if an inlined entry
                    # carries a later time
                elif (cls is P2POp and op.kind != "irecv"
                      and (hooks_off or st.pending_isends == 0)):
                    # irecv posts stay strictly heap business: once an
                    # unmatched irecv is out, every event of this rank
                    # is order-sensitive (see pending_irecvs above), and
                    # queuing the irecv early would let a peer's send
                    # draw from this rank's RNG stream ahead of inline
                    # compute draws the naive scheduler orders first.
                    # A hooks-on rank with an open pending-isend window
                    # skips the probe outright: every inline variant
                    # below requires clean windows, so the op heads
                    # straight for its exact heap position (tail).
                    st.time = now
                    kind = op.kind
                    comm = op.comm
                    group = comm.group
                    world_ranks = group.world_ranks
                    crank = comm.rank
                    me_world = world_ranks[crank]
                    peer_world = world_ranks[op.peer]
                    if kind == "recv":
                        key = (group.gid, peer_world, me_world, op.tag)
                        queue = p2p_sends.get(key)
                        srec = queue[0] if queue else None
                        if srec is not None:
                            # a queued send record is an immutable fact:
                            # it carries its absolute post time, only
                            # this rank can consume this key, and the
                            # sender appends in program order — so the
                            # pairing and the completion time are the
                            # same at any processing position.  The
                            # cost draw comes from *this* rank's RNG
                            # stream (rank-local; no unmatched irecv of
                            # ours can interleave — guarded above).
                            if hooks_off:
                                # scalar rendezvous: no records, no
                                # intercepts, no trace (the fast path
                                # never runs with one) — the identical
                                # float-op sequence of _comm_sample over
                                # the shared memos
                                snb = srec.nbytes
                                rnb = op.nbytes
                                if rnb is not None and rnb != snb:
                                    _warn_p2p_size_mismatch(
                                        op.tag, srec.world_rank, snb,
                                        me_world, rnb)
                                stride = abs(srec.world_rank - me_world) or 1
                                sig = p2p_sig(snb, stride)
                                fac = factors.get(sig)
                                if fac is None:
                                    fac = factors[sig] = noise_factors(
                                        sig, run_seed)
                                bias, drift, params = fac
                                mean = comm_cost(sig) * bias * drift
                                if params is None:
                                    cost = mean
                                else:
                                    cost = mean * exp(
                                        params[0]
                                        + params[1] * st.next_normal())
                                completion = max(srec.post_time, st.time) + cost
                                queue.popleft()
                                if diag is not None:
                                    diag.match_total += 1
                                    diag.match_inline += 1
                                sender = states[srec.world_rank]
                                # the other endpoint rides the heap to
                                # the completion's exact naive position
                                if srec.kind == "send":
                                    sender.park_reason = None
                                    push(completion, srec.world_rank, None)
                                else:
                                    sender.pending_isends -= 1
                                    self._complete_request(srec.request,
                                                           completion, None)
                                now = st.time = completion
                                value = srec.payload
                                continue
                            # with hooks active a buffered isend match
                            # stays heap-ordered (its poster keeps
                            # running past the post, so the match hooks
                            # belong at the record's post time — the
                            # heap/deferral path below); a *parked*
                            # blocking sender qualifies when it has no
                            # pending isends (a third rank's recv could
                            # take their hooks at an earlier global
                            # position) and holds no unmatched irecv
                            # (its Critter state must not be touchable
                            # by any earlier event).  This rank's own
                            # windows are clean by the branch precheck.
                            sender = states[srec.world_rank]
                            if (srec.kind == "send"
                                    and sender.pending_isends == 0
                                    and sender.pending_irecvs == 0):
                                rec = P2PRecord(
                                    "recv", me_world, crank,
                                    peer_world, op.tag, op.nbytes,
                                    st.time, group,
                                )
                                if not post_isend_only:
                                    on_p2p_post(rec)
                                queue.popleft()
                                if diag is not None:
                                    diag.match_inline += 1
                                completion = self._rendezvous(srec, rec)
                                sender.park_reason = None
                                push(completion, srec.world_rank, None)
                                now = st.time = completion
                                value = srec.payload
                                continue
                        else:
                            # nothing to consume: queue the receive and
                            # park in place.  The record carries this
                            # rank's absolute post time, so a peer's
                            # later-processed send pairs and costs
                            # identically to the naive ordering.  With
                            # hooks active this is sound only when the
                            # parked rank is *frozen* — no pending
                            # isends (a third rank's match would take
                            # this rank's hooks first) and no pending
                            # irecvs (both guarded by the branch
                            # prechecks); a consumer whose own state is
                            # not frozen defers the match to this
                            # record's post time (_FinishP2P), the
                            # exact naive match site.
                            rec = P2PRecord(
                                "recv", me_world, crank,
                                peer_world, op.tag, op.nbytes,
                                st.time, group,
                            )
                            if not (hooks_off or post_isend_only):
                                on_p2p_post(rec)
                            pending = p2p_recvs.get(key)
                            if pending is None:
                                pending = p2p_recvs[key] = deque()
                            pending.append(rec)
                            if diag is not None:
                                diag.count_early_queue("recv")
                            st.park_reason = op
                            break
                    else:  # send / isend
                        key = (group.gid, me_world, peer_world, op.tag)
                        queue = p2p_recvs.get(key)
                        rrec = queue[0] if queue else None
                        if (
                            rrec is not None
                            and rrec.kind == "recv"
                            # matching a *parked* blocking receiver is
                            # rank-local enough: the peer cannot draw
                            # from its RNG stream or take profiler hooks
                            # until this very match resumes it, so
                            # matching early preserves all orderings.  A
                            # pending irecv gives no such guarantee (an
                            # earlier-time send may match it, drawing
                            # from the receiver's stream), nor does an
                            # empty queue under active hooks (an irecv
                            # may yet arrive before this op's global
                            # position).
                            and states[rrec.world_rank].pending_irecvs == 0
                        ):
                            if hooks_off:
                                # scalar rendezvous, send and isend
                                # alike; the cost draw comes from the
                                # receiver's stream (parked: its next
                                # draw is this one at any position)
                                snb = op.nbytes
                                rnb = rrec.nbytes
                                if rnb is not None and rnb != snb:
                                    _warn_p2p_size_mismatch(
                                        op.tag, me_world, snb,
                                        rrec.world_rank, rnb)
                                receiver = states[rrec.world_rank]
                                stride = abs(me_world - rrec.world_rank) or 1
                                sig = p2p_sig(snb, stride)
                                fac = factors.get(sig)
                                if fac is None:
                                    fac = factors[sig] = noise_factors(
                                        sig, run_seed)
                                bias, drift, params = fac
                                mean = comm_cost(sig) * bias * drift
                                if params is None:
                                    cost = mean
                                else:
                                    cost = mean * exp(
                                        params[0]
                                        + params[1] * receiver.next_normal())
                                completion = max(now, rrec.post_time) + cost
                                queue.popleft()
                                if diag is not None:
                                    diag.match_total += 1
                                    diag.match_inline += 1
                                receiver.park_reason = None
                                push(completion, rrec.world_rank, op.payload)
                                if kind == "send":
                                    # blocking send completes inline:
                                    # keep driving this rank from the
                                    # rendezvous completion
                                    now = st.time = completion
                                    value = None
                                    continue
                                value = Request(rank, "isend",
                                                True, completion)
                                continue
                            # with profiler hooks active, queued
                            # unmatched isends on the receiver block
                            # inlining: a third rank's recv can match
                            # them at an earlier global position, and
                            # that hook's stat updates on the shared
                            # send signature (and its path-count
                            # increments) do not commute with the
                            # snapshot/decision this match takes now
                            # (this rank's window is clean by the
                            # branch precheck).  An isend consuming an
                            # early-queued recv record with a *later*
                            # post time keeps running past the match
                            # site, so its match rides the heap (and
                            # defers) instead — only a blocking send
                            # may match it here.
                            if (states[rrec.world_rank].pending_isends == 0
                                    and (kind == "send"
                                         or rrec.post_time <= now)):
                                rec = P2PRecord(
                                    kind, me_world, crank,
                                    peer_world, op.tag, op.nbytes,
                                    st.time, group, op.payload,
                                    kind == "send",
                                )
                                if kind == "isend" or not post_isend_only:
                                    on_p2p_post(rec)
                                if diag is not None:
                                    diag.match_inline += 1
                                if kind == "isend":
                                    req = Request(rank, "isend",
                                                  False, 0.0, None, rec)
                                    rec.request = req
                                    now = st.time = now + icost1
                                    self._match_p2p(rec, queue.popleft())
                                    value = req
                                    continue
                                # blocking send: complete the rendezvous
                                # rank-locally and keep driving this
                                # rank from the completion time; the
                                # receiver rides the heap to the same
                                # position
                                queue.popleft()
                                receiver = states[rrec.world_rank]
                                completion = self._rendezvous(rec, rrec)
                                receiver.park_reason = None
                                push(completion, rrec.world_rank, rec.payload)
                                now = st.time = completion
                                value = None
                                continue
                        elif rrec is None:
                            # no posted receive to consume: queue the
                            # send early (absolute post time; only the
                            # peer's recv on this key can consume it, in
                            # FIFO = program order), park blocking sends
                            # in place, let isends continue.  With
                            # hooks active the poster's windows are
                            # clean (branch precheck + the irecv guard
                            # above), so the record's post-time snapshot
                            # is frozen-equivalent to the naive post: a
                            # blocking send parks frozen and a
                            # clean-window blocking consumer may match
                            # it anywhere; an isend poster keeps
                            # running, so every hooks-on consumer of
                            # its record defers the match to the
                            # record's post time — the exact naive
                            # match site (_FinishP2P) — and its
                            # pending-isend window keeps the poster's
                            # later p2p ops heap-ordered till then.
                            rec = P2PRecord(
                                kind, me_world, crank,
                                peer_world, op.tag, op.nbytes,
                                st.time, group, op.payload,
                                kind == "send",
                            )
                            if not hooks_off and (kind == "isend"
                                                  or not post_isend_only):
                                on_p2p_post(rec)
                            pending = p2p_sends.get(key)
                            if pending is None:
                                pending = p2p_sends[key] = deque()
                            pending.append(rec)
                            if diag is not None:
                                diag.count_early_queue(kind)
                            if kind == "isend":
                                st.pending_isends += 1
                                req = Request(rank, "isend",
                                              False, 0.0, None, rec)
                                rec.request = req
                                if not hooks_off:
                                    # naive resumes the poster at
                                    # post + intercept_cost(1)
                                    now = st.time = now + icost1
                                value = req
                                continue
                            st.park_reason = op
                            break
                elif cls is ComputeBatchOp:
                    st.time = now
                    elapsed, result = self._batch_run(st, op)
                    now = st.time = now + elapsed
                    value = result
                    continue
                elif cls is ComputeRunOp:
                    # columnar run: rank-local like a batch — decisions,
                    # draws, and the clock walk all stay on this rank
                    st.time = now
                    elapsed, result = self._run_segments(st, op)
                    now = st.time = now + elapsed
                    value = result
                    continue
                elif cls is P2POp and op.kind == "recv" and post_isend_only:
                    # hooks-on blocking recv under an open pending-isend
                    # window (every other non-irecv p2p case took the
                    # branch above).  The match hooks must fire at
                    # max(recv dispatch time, sender post time) — the
                    # naive site — but the dispatch hop itself is pure
                    # heap traffic: consume the queued sender record
                    # here and push the deferred match directly at its
                    # site (_FinishP2P), or park early with a
                    # defer-marked record so the consuming sender's
                    # dispatch defers to this post time the same way.
                    # Sound only for isend-only post profilers: there
                    # is no recv post hook to misplace.
                    st.time = now
                    comm = op.comm
                    group = comm.group
                    world_ranks = group.world_ranks
                    crank = comm.rank
                    me_world = world_ranks[crank]
                    peer_world = world_ranks[op.peer]
                    key = (group.gid, peer_world, me_world, op.tag)
                    queue = p2p_sends.get(key)
                    rec = P2PRecord(
                        "recv", me_world, crank,
                        peer_world, op.tag, op.nbytes,
                        now, group,
                    )
                    st.park_reason = op
                    if queue:
                        srec = queue.popleft()
                        st.pending_irecvs += 1
                        fire = srec.post_time
                        if fire < now:
                            fire = now
                        push(fire, rank,
                             _FinishP2P(srec, rec, rank,
                                        srec.kind == "isend"))
                    else:
                        rec.defer = True
                        pending = p2p_recvs.get(key)
                        if pending is None:
                            pending = p2p_recvs[key] = deque()
                        pending.append(rec)
                        if diag is not None:
                            diag.count_early_queue("recv")
                    break
                # blocking or order-sensitive: dispatch at the rank's
                # local time — in place when no pending event is earlier
                # or tied (a tied heap event would win by sequence
                # number; queued FIFO resumes are always at this chain's
                # resume time, i.e. earlier once the clock advanced),
                # else via redelivery
                st.time = now
                if now > t and (fast_resumes
                                or (heap and heap[0][0] <= now)):
                    push(now, rank, _Redeliver(op))
                else:
                    dispatch(st, op)
                break

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _push(self, time: float, rank: int, value: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, rank, value))

    def _make_group(self, world_ranks: Tuple[int, ...],
                    parent: Optional[CommGroup]) -> CommGroup:
        g = CommGroup(self._next_gid, world_ranks, parent)
        self._next_gid += 1
        self._groups[g.gid] = g
        return g

    def _dispatch(self, st: _RankState, op: Any) -> None:
        diag = self.diagnostics
        if diag is not None:
            t0 = diag._clock()
            self._dispatch_op(st, op)
            kind = op_kind(op)
            d = diag.heap_dispatched
            d[kind] = d.get(kind, 0) + 1
            w = diag.dispatch_wall
            w[kind] = w.get(kind, 0.0) + (diag._clock() - t0)
            return
        self._dispatch_op(st, op)

    def _dispatch_op(self, st: _RankState, op: Any) -> None:
        if isinstance(op, ComputeOp):
            self._do_compute(st, op)
        elif isinstance(op, P2POp):
            self._do_p2p(st, op)
        elif isinstance(op, CollOp):
            self._do_collective(st, op)
        elif isinstance(op, SplitOp):
            self._do_split(st, op)
        elif isinstance(op, WaitOp):
            self._do_wait(st, op)
        elif isinstance(op, ComputeBatchOp):
            self._do_compute_batch(st, op)
        elif isinstance(op, ComputeRunOp):
            self._do_compute_run(st, op)
        elif isinstance(op, _FinishColl):
            self._finish_collective(op.group, op.pend)
        else:
            raise TypeError(f"rank {st.rank} yielded unknown op {op!r}")

    # -- compute ---------------------------------------------------------
    def _do_compute(self, st: _RankState, op: ComputeOp) -> None:
        prof = self.profiler
        execute = prof.on_compute(st.rank, op.sig, op.flops)
        result = None
        if execute:
            # memoized time_per_flop * float(flops) == compute_cost,
            # same float-op sequence
            elapsed = self._kernel_sample(
                st, op.sig, self._time_per_flop(op.sig) * float(op.flops))
            if op.fn is not None:
                result = op.fn(*op.args)
        else:
            elapsed = self.machine.skip_overhead
            if op.fn is not None and self.execute_skipped_fns:
                result = op.fn(*op.args)
        prof.post_compute(st.rank, op.sig, execute, elapsed, op.flops)
        if self.trace is not None:
            self.trace.record("comp", (st.rank,), op.sig, st.time, elapsed, execute)
        self._push(st.time + elapsed, st.rank, result)

    def _do_compute_batch(self, st: _RankState, op: ComputeBatchOp) -> None:
        if (op.count > 1 and not self.machine.batched_compute
                and (self.trace is not None or not self.profiler.inline_safe)):
            # an order-sensitive observer (eager/extrapolating Critter,
            # trace recorder) must see sub-kernels at their exact global
            # heap positions, exactly as per-op emission behaved before
            # batching existed: run one sub-kernel here and redeliver
            # the remainder at its completion time
            prof = self.profiler
            execute = prof.on_compute(st.rank, op.sig, op.flops)
            if execute:
                elapsed = self._kernel_sample(
                    st, op.sig,
                    self._time_per_flop(op.sig) * float(op.flops))
            else:
                elapsed = self.machine.skip_overhead
            prof.post_compute(st.rank, op.sig, execute, elapsed, op.flops)
            if self.trace is not None:
                self.trace.record("comp", (st.rank,), op.sig, st.time, elapsed,
                                  execute)
            rest = ComputeBatchOp(op.sig, op.flops, op.count - 1, op.fn, op.args)
            self._push(st.time + elapsed, st.rank, _Redeliver(rest))
            return
        elapsed, result = self._batch_run(st, op)
        self._push(st.time + elapsed, st.rank, result)

    def _batch_run(self, st: _RankState, op: ComputeBatchOp) -> Tuple[float, Any]:
        """Total elapsed time + resume value of a batch starting at ``st.time``."""
        prof = self.profiler
        machine = self.machine
        sig = op.sig
        diag = self.diagnostics
        if diag is not None:
            diag.batches += 1
            diag.batch_kernels += op.count
        if machine.batched_compute:
            # one aggregate kernel: one decision, one noise draw
            total = float(op.flops) * op.count
            execute = prof.on_compute(st.rank, sig, total)
            result = None
            if execute:
                elapsed = self._kernel_sample(
                    st, sig, self._time_per_flop(sig) * total)
                if op.fn is not None:
                    result = op.fn(*op.args)
            else:
                elapsed = machine.skip_overhead
                if op.fn is not None and self.execute_skipped_fns:
                    result = op.fn(*op.args)
            prof.post_compute(st.rank, sig, execute, elapsed, total)
            if self.trace is not None:
                self.trace.record("comp", (st.rank,), sig, st.time, elapsed, execute)
            return elapsed, result
        # expansion: `count` back-to-back sub-kernels, bit-identical to
        # yielding them as individual ComputeOps.  The run shares one
        # signature, so the noise factors are resolved once and the
        # draws stream off the rank's buffer — the per-sub-kernel float
        # sequence is unchanged.
        flops = op.flops
        rank = st.rank
        trace = self.trace
        cursor = st.time
        execute = True
        fac = self._noise_factors.get(sig)
        if fac is None:
            fac = self._noise_factors[sig] = self.noise.factors(
                sig, self.run_seed)
        bias, drift, params = fac
        mean = self._time_per_flop(sig) * float(flops) * bias * drift
        exp = math.exp
        if self._hooks_off and trace is None:
            # no hooks, no trace: nothing observes the sub-kernels, so
            # only the clock walk and the draws remain
            if params is None:
                for _ in range(op.count):
                    cursor += mean
            else:
                mu = params[0]
                s = params[1]
                buf = st.zbuf
                rng_normal = st.rng_normal
                for _ in range(op.count):
                    if not buf:
                        buf = st.zbuf = rng_normal(512)[::-1].tolist()
                    cursor += mean * exp(mu + s * buf.pop())
        else:
            skip_overhead = machine.skip_overhead
            on_compute = prof.on_compute
            post_compute = prof.post_compute
            next_normal = st.next_normal
            for _ in range(op.count):
                execute = on_compute(rank, sig, flops)
                if not execute:
                    elapsed = skip_overhead
                elif params is None:
                    elapsed = mean
                else:
                    elapsed = mean * exp(params[0] + params[1] * next_normal())
                post_compute(rank, sig, execute, elapsed, flops)
                if trace is not None:
                    trace.record("comp", (rank,), sig, cursor, elapsed, execute)
                cursor = cursor + elapsed
        result = None
        if op.fn is not None and (execute or self.execute_skipped_fns):
            result = op.fn(*op.args)
        return cursor - st.time, result

    def _do_compute_run(self, st: _RankState, op: ComputeRunOp) -> None:
        if (not self.machine.batched_compute
                and (self.trace is not None or not self.profiler.inline_safe)
                and (len(op.counts) > 1 or op.counts[0] > 1)):
            # order-sensitive observers see sub-kernels at their exact
            # global heap positions, exactly like the step-wise
            # ComputeBatchOp expansion above: run the first sub-kernel
            # here and redeliver the remainder at its completion time
            prof = self.profiler
            sig = op.sigs[0]
            flops = op.flops[0]
            execute = prof.on_compute(st.rank, sig, flops)
            if execute:
                elapsed = self._kernel_sample(
                    st, sig, self._time_per_flop(sig) * float(flops))
            else:
                elapsed = self.machine.skip_overhead
            prof.post_compute(st.rank, sig, execute, elapsed, flops)
            if self.trace is not None:
                self.trace.record("comp", (st.rank,), sig, st.time, elapsed,
                                  execute)
            if op.counts[0] > 1:
                rest = ComputeRunOp(op.sigs, op.flops,
                                    (op.counts[0] - 1,) + op.counts[1:],
                                    op.fn, op.args)
            else:
                rest = ComputeRunOp(op.sigs[1:], op.flops[1:], op.counts[1:],
                                    op.fn, op.args)
            self._push(st.time + elapsed, st.rank, _Redeliver(rest))
            return
        elapsed, result = self._run_segments(st, op)
        self._push(st.time + elapsed, st.rank, result)

    def _run_segments(self, st: _RankState,
                      op: ComputeRunOp) -> Tuple[float, Any]:
        """Total elapsed time + resume value of a run starting at ``st.time``.

        Each segment follows :meth:`_batch_run` exactly — the same
        float-op sequence, decisions, and draw order as an equivalent
        sequence of per-segment :class:`ComputeBatchOp`\\ s — with the
        segments advancing a local cursor the way back-to-back batches
        advance ``st.time``.  The columnar win is structural: one
        generator resumption amortizes over the whole run, the noise
        factors resolve once per segment, and a draw-free segment
        collapses its clock walk into a single vectorized cumulative
        sum (bit-identical to the scalar adds: ``np.cumsum``
        accumulates left-to-right in float64).
        """
        prof = self.profiler
        machine = self.machine
        tpf = self._time_per_flop
        factors = self._noise_factors
        noise_factors = self.noise.factors
        run_seed = self.run_seed
        trace = self.trace
        rank = st.rank
        start = cursor = st.time
        execute = True
        exp = math.exp
        diag = self.diagnostics
        if diag is not None:
            diag.run_segments += len(op.counts)
            diag.run_kernels += sum(op.counts)
        if machine.batched_compute:
            # one aggregate kernel per segment: one decision, one draw
            for sig, flops, count in zip(op.sigs, op.flops, op.counts):
                total = float(flops) * count
                execute = prof.on_compute(rank, sig, total)
                if execute:
                    elapsed = self._kernel_sample(
                        st, sig, tpf(sig) * total)
                else:
                    elapsed = machine.skip_overhead
                prof.post_compute(rank, sig, execute, elapsed, total)
                if trace is not None:
                    trace.record("comp", (rank,), sig, cursor, elapsed,
                                 execute)
                cursor = cursor + elapsed
        elif self._hooks_off and trace is None:
            # no hooks, no trace: only the clock walk and draws remain
            for sig, flops, count in zip(op.sigs, op.flops, op.counts):
                fac = factors.get(sig)
                if fac is None:
                    fac = factors[sig] = noise_factors(sig, run_seed)
                bias, drift, params = fac
                mean = tpf(sig) * float(flops) * bias * drift
                if params is None:
                    if count >= 32:
                        # draw-free columnar segment: one cumulative sum
                        # replaces `count` Python-level adds
                        steps = np.empty(count)
                        steps.fill(mean)
                        steps[0] = cursor + mean
                        cursor = float(np.cumsum(steps)[-1])
                    else:
                        for _ in range(count):
                            cursor += mean
                else:
                    mu, s = params
                    buf = st.zbuf
                    rng_normal = st.rng_normal
                    for _ in range(count):
                        if not buf:
                            buf = st.zbuf = rng_normal(512)[::-1].tolist()
                        cursor += mean * exp(mu + s * buf.pop())
        else:
            skip_overhead = machine.skip_overhead
            on_compute = prof.on_compute
            post_compute = prof.post_compute
            next_normal = st.next_normal
            for sig, flops, count in zip(op.sigs, op.flops, op.counts):
                fac = factors.get(sig)
                if fac is None:
                    fac = factors[sig] = noise_factors(sig, run_seed)
                bias, drift, params = fac
                mean = tpf(sig) * float(flops) * bias * drift
                for _ in range(count):
                    execute = on_compute(rank, sig, flops)
                    if not execute:
                        elapsed = skip_overhead
                    elif params is None:
                        elapsed = mean
                    else:
                        elapsed = mean * exp(
                            params[0] + params[1] * next_normal())
                    post_compute(rank, sig, execute, elapsed, flops)
                    if trace is not None:
                        trace.record("comp", (rank,), sig, cursor, elapsed,
                                     execute)
                    cursor = cursor + elapsed
        result = None
        if op.fn is not None and (execute or self.execute_skipped_fns):
            result = op.fn(*op.args)
        return cursor - start, result

    # -- point-to-point ----------------------------------------------------
    def _do_p2p(self, st: _RankState, op: P2POp) -> None:
        group: CommGroup = op.comm.group
        me_world = group.world_ranks[op.comm.rank]
        peer_world = group.world_ranks[op.peer]
        rec = P2PRecord(
            op.kind, me_world, op.comm.rank,
            peer_world, op.tag, op.nbytes,
            st.time, group, op.payload,
            op.kind in ("send", "recv"),
        )
        if op.kind == "isend" or not self._post_isend_only:
            self.profiler.on_p2p_post(rec)
        if op.kind in ("isend", "irecv"):
            req = Request(st.rank, op.kind, False, 0.0, None, rec)
            rec.request = req
            # buffered post: local interception bookkeeping only
            self._push(st.time + self.profiler.intercept_cost(1),
                       st.rank, req)
        else:
            st.park_reason = op

        if op.kind in ("send", "isend"):
            key = (group.gid, me_world, peer_world, op.tag)
            queue = self._p2p_recvs.get(key)
            if queue:
                matched = queue.popleft()
                if matched.kind == "irecv":
                    self._states[matched.world_rank].pending_irecvs -= 1
                if matched.post_time > st.time and not self._hooks_off and (
                        op.kind == "isend" or st.pending_irecvs
                        or st.pending_isends or matched.defer):
                    # a hooks-on early-queued *recv* record observed
                    # before the receive's global position by a sender
                    # that keeps running (isend) or whose profiler state
                    # has pending interleaved events: the match hooks
                    # must fire at the receive's post time, the naive
                    # match site (with hooks off an immediate match is
                    # sound — only the parked receiver's stream is
                    # drawn from; see _FinishP2P)
                    st.pending_irecvs += 1
                    self._push(matched.post_time, st.rank,
                               _FinishP2P(rec, matched, st.rank))
                else:
                    self._match_p2p(rec, matched)
            else:
                pending = self._p2p_sends.get(key)
                if pending is None:
                    pending = self._p2p_sends[key] = deque()
                pending.append(rec)
                if op.kind == "isend":
                    st.pending_isends += 1
        else:
            key = (group.gid, peer_world, me_world, op.tag)
            queue = self._p2p_sends.get(key)
            if queue:
                matched = queue.popleft()
                if matched.post_time > st.time and (
                        op.kind == "irecv" or st.pending_irecvs
                        or (not self._hooks_off
                            and (st.pending_isends
                                 or matched.kind == "isend"))):
                    # fast-path early-queued send observed before the
                    # send's global position by a receiver whose RNG
                    # stream (or profiler state) has pending
                    # interleaved events — an irecv poster keeps
                    # drawing after the post, a blocking recv posted
                    # under an open irecv window still has that
                    # irecv's future match draw due first, and with
                    # hooks on a pending isend's match hooks may land
                    # first: defer the match (and its draw from this
                    # rank's stream) to the send's post time — see
                    # _FinishP2P.  A blocking recv with clean windows
                    # parks with a frozen stream (its next draw is this
                    # match at any processing position), so it matches
                    # in place — except against a hooks-on early-queued
                    # *isend* record, whose poster keeps running past
                    # the post: its match hooks must fire at the isend's
                    # post time, the naive match site, and the poster's
                    # pending-isend window must stay open till then.
                    st.pending_irecvs += 1
                    self._push(matched.post_time, st.rank,
                               _FinishP2P(matched, rec, st.rank,
                                          matched.kind == "isend"))
                else:
                    if matched.kind == "isend":
                        self._states[matched.world_rank].pending_isends -= 1
                    self._match_p2p(matched, rec)
            else:
                pending = self._p2p_recvs.get(key)
                if pending is None:
                    pending = self._p2p_recvs[key] = deque()
                pending.append(rec)
                if op.kind == "irecv":
                    st.pending_irecvs += 1

    def _comm_sample(self, sig: KernelSignature, rng_rank: int) -> float:
        """Sampled cost of one communication kernel, drawing (if the
        noise model draws at all) from ``rng_rank``'s stream.

        Inlined ``NoiseModel.sample`` over the cached per-(signature,
        run) factors and the per-(signature, machine) base-cost memo —
        the identical float-op sequence (see :meth:`NoiseModel.factors`),
        minus the memo lookups.  Both rendezvous paths (p2p matches and
        collective completions) share this helper so the bit-identity
        contract lives in one place.
        """
        fac = self._noise_factors.get(sig)
        if fac is None:
            fac = self._noise_factors[sig] = self.noise.factors(
                sig, self.run_seed)
        bias, drift, params = fac
        mean = self._comm_cost(sig) * bias * drift
        if params is None:
            return mean
        z = self._states[rng_rank].next_normal()
        return mean * math.exp(params[0] + params[1] * z)

    def _kernel_sample(self, st: _RankState, sig: KernelSignature,
                       base: float) -> float:
        """Sampled cost of one computational kernel for ``st``.

        Inlined ``NoiseModel.sample`` over the cached per-(signature,
        run) factors — the identical float-op sequence (``(base * bias)
        * drift`` with the same association), drawing through the
        rank's buffered stream.  Every compute path (naive dispatch,
        batch expansion, the fast loop's inline block) funnels noise
        through these cached factors so the schedulers cannot drift.
        """
        fac = self._noise_factors.get(sig)
        if fac is None:
            fac = self._noise_factors[sig] = self.noise.factors(
                sig, self.run_seed)
        bias, drift, params = fac
        mean = base * bias * drift
        if params is None:
            return mean
        return mean * math.exp(params[0] + params[1] * st.next_normal())

    def _rendezvous(self, send: P2PRecord, recv: P2PRecord) -> float:
        """Rendezvous core shared by the heap and inline match paths.

        Validates declared sizes, takes the profiler's execution
        decision, samples the transfer cost (drawing — if the noise
        model draws at all — from the *receiver's* RNG stream), fires
        the post hooks and the trace record, and returns the completion
        time ``max(post times) [+ intercept] + cost``.  Endpoint
        resumption is the caller's business: the heap path pushes both
        endpoints, the inline path continues one of them in place.
        Keeping decision/draw/warning in one helper is what makes the
        two paths bit-identical by construction.
        """
        prof = self.profiler
        diag = self.diagnostics
        if diag is not None:
            diag.match_total += 1
        if recv.nbytes is not None and recv.nbytes != send.nbytes:
            _warn_p2p_size_mismatch(send.tag, send.world_rank, send.nbytes,
                                    recv.world_rank, recv.nbytes)
        stride = abs(send.world_rank - recv.world_rank) or 1
        sig = p2p_signature(send.nbytes, stride)
        hooks_off = self._hooks_off
        execute = True if hooks_off else prof.on_p2p(sig, send, recv)
        cost = self._comm_sample(sig, recv.world_rank) if execute else 0.0
        start = max(send.post_time, recv.post_time)
        if hooks_off:
            completion = start + cost
        else:
            completion = start + self._icost2 + cost
            prof.post_p2p(sig, send, recv, execute, cost, completion)
        if self.trace is not None:
            self.trace.record(
                "p2p", (send.world_rank, recv.world_rank), sig, start, cost, execute
            )
        return completion

    def _match_p2p(self, send: P2PRecord, recv: P2PRecord) -> None:
        completion = self._rendezvous(send, recv)
        # sender side
        if send.kind == "send":
            self._states[send.world_rank].park_reason = None
            self._push(completion, send.world_rank, None)
        else:
            self._complete_request(send.request, completion, None)
        # receiver side
        if recv.kind == "recv":
            self._states[recv.world_rank].park_reason = None
            self._push(completion, recv.world_rank, send.payload)
        else:
            recv.request.value = send.payload
            self._complete_request(recv.request, completion, send.payload)

    def _complete_request(self, req: Request, completion: float, value: Any) -> None:
        req.done = True
        req.completion = completion
        if req.kind == "irecv":
            req.value = value
        st = self._states[req.rank]
        on_wait = self._on_wait
        if on_wait is not None:
            on_wait(req.rank, req, completion)
        if st.waiting is not None:
            self._check_wait(st)

    def _do_wait(self, st: _RankState, op: WaitOp) -> None:
        if not op.requests and op.mode != "all":
            # Comm.waitany rejects this at build time; guard direct
            # WaitOp construction too — an empty one/any wait has no
            # winner and would park the rank forever
            raise ValueError(
                f"wait(mode={op.mode!r}) requires at least one request")
        st.waiting = (st.time, list(op.requests), op.mode)
        st.park_reason = op
        self._check_wait(st)

    def _check_wait(self, st: _RankState) -> None:
        posted, reqs, mode = st.waiting
        if mode in ("one", "any") and len(reqs) > 1:
            # waitany: resume on the earliest completion *known* at this
            # evaluation (ties broken by request order).  Evaluations
            # happen at wait post time and at each completion event, so
            # a request whose match the event loop has not yet processed
            # cannot win — see WaitOp's docstring.
            ready = [(r.completion, i) for i, r in enumerate(reqs) if r.done]
            if not ready:
                return
            completion, i = min(ready)
            st.waiting = None
            st.park_reason = None
            value = (i, reqs[i].value) if mode == "any" else reqs[i].value
            self._push(max(posted, completion), st.rank, value)
            return
        if not all(r.done for r in reqs):
            return
        st.waiting = None
        st.park_reason = None
        resume = max([posted] + [r.completion for r in reqs])
        if mode == "all":
            value = [r.value for r in reqs]
        elif mode == "any":
            value = (0, reqs[0].value)
        else:
            value = reqs[0].value
        self._push(resume, st.rank, value)

    # -- collectives --------------------------------------------------------
    def _coll_enter(self, group: CommGroup, st: _RankState, op: CollOp) -> _CollPending:
        """Record one rank's arrival at a collective; returns the slot."""
        me_world = group.world_ranks[op.comm.rank]
        pend = group.pending
        if pend is None:
            pend = group.pending = _CollPending(op.name)
        elif pend.name != op.name:
            raise RuntimeError(
                f"collective mismatch on comm {group.gid} seq {group.coll_seq}: "
                f"{pend.name} vs {op.name} (rank {me_world})"
            )
        pend.entries[me_world] = (st.time, op)
        if st.time > pend.tmax:
            pend.tmax = st.time
        st.park_reason = op
        return pend

    def _do_collective(self, st: _RankState, op: CollOp) -> None:
        group: CommGroup = op.comm.group
        pend = self._coll_enter(group, st, op)
        if len(pend.entries) == group.size:
            group.pending = None
            group.coll_seq += 1
            if pend.tmax > st.time:
                # a fast-path rank parked inline with a later arrival
                # time than this heap-dispatched final arrival: finish
                # at the latest arrival's exact global position, where
                # the naive scheduler would have run the completion
                self._push(pend.tmax, st.rank, _Redeliver(_FinishColl(group, pend)))
            else:
                self._finish_collective(group, pend)

    def _finish_collective(self, group: CommGroup, pend: _CollPending) -> None:
        prof = self.profiler
        entries = pend.entries
        name = pend.name
        hooks_off = self._hooks_off
        # one pass: validation (root agreement, nbytes lo/hi, payloads)
        # fused with the arrivals map the profiler hooks receive
        arrivals: Optional[Dict[int, float]] = None if hooks_off else {}
        vals = iter(entries.items())
        wr0, (t0, op0) = next(vals)
        if arrivals is not None:
            arrivals[wr0] = t0
        root = op0.root
        nb_hi = op0.nbytes
        nz_lo = op0.nbytes or 0  # lowest *declared* (nonzero) size
        has_payload = op0.payload is not None
        for wr, (t, opx) in vals:
            if arrivals is not None:
                arrivals[wr] = t
            if opx.root != root:
                raise RuntimeError(
                    f"collective root mismatch on comm {group.gid} ({name}): "
                    f"participants passed roots "
                    f"{sorted({e[1].root for e in entries.values()})}"
                )
            nb = opx.nbytes
            if nb:
                if nb > nb_hi:
                    nb_hi = nb
                if nb < nz_lo or not nz_lo:
                    nz_lo = nb
            if opx.payload is not None:
                has_payload = True
        if nz_lo != nb_hi and nz_lo:
            # zero means "no local payload / unspecified" (e.g. non-root
            # ranks of a numeric-mode bcast), which is not a conflict;
            # two *declared* sizes disagreeing is
            warnings.warn(
                f"collective {name} on comm {group.gid}: participants disagree "
                f"on nbytes (min declared {nz_lo}, max {nb_hi}); costing the max",
                RuntimeWarning, stacklevel=2)
        sig = group.coll_signature(name, nb_hi)
        start = pend.tmax
        if hooks_off:
            execute = True
        else:
            execute = prof.on_collective(group, sig, root, arrivals)
        cost = self._comm_sample(sig, group.sorted_ranks[0]) if execute else 0.0
        if hooks_off:
            completion = start + cost
        else:
            completion = start + prof.intercept_cost(group.size) + cost
            prof.post_collective(group, sig, arrivals, execute, cost, completion)
        if self.trace is not None:
            if arrivals is None:
                arrivals = {wr: e[0] for wr, e in entries.items()}
            self.trace.record(
                "coll", tuple(sorted(arrivals)), sig, start, cost, execute
            )
        # resumed ranks' stale park_reason is never read: deadlock
        # reports only cover ranks still parked at exit, which re-set it
        # at their park site
        if not has_payload and name != "allgather":
            # symbolic fast path: no data rides the collective, every
            # rank resumes with None (allgather still materializes its
            # list-of-Nones result below)
            results = None
        else:
            results = self._collective_results(group, name, entries, root)
        fr = self._fast_resumes
        if fr is not None and not fr and not self._heap:
            # fast path with nothing else in flight (always the case
            # for world-communicator collectives — every rank is parked
            # here): hand the resumes straight to the scheduler loop.
            # Identical to pushing then immediately popping them (the
            # naive pop order of p same-time pushes is push order),
            # minus the heap traffic.
            append = fr.append
            if results is None:
                for wr in group.world_ranks:
                    append((completion, wr, None))
            else:
                for wr in group.world_ranks:
                    append((completion, wr, results[wr]))
            return
        seq = self._seq
        heap = self._heap
        for wr in group.world_ranks:
            seq += 1
            heapq.heappush(
                heap,
                (completion, seq, wr, None if results is None else results[wr]))
        self._seq = seq

    @staticmethod
    def _reduce_payloads(payloads: List[Any]) -> Any:
        vals = [p for p in payloads if p is not None]
        if not vals:
            return None
        acc = vals[0]
        if isinstance(acc, np.ndarray):
            # accumulate into one working copy instead of allocating a
            # fresh array per participant
            acc = acc.copy()
            for v in vals[1:]:
                if isinstance(v, np.ndarray) and np.can_cast(v.dtype, acc.dtype):
                    np.add(acc, v, out=acc)
                else:
                    acc = acc + v
            return acc
        for v in vals[1:]:
            acc = acc + v
        return acc

    def _collective_results(
        self,
        group: CommGroup,
        name: str,
        entries: Dict[int, Tuple[float, CollOp]],
        root: int,
    ) -> Dict[int, Any]:
        """Per-world-rank resume values.

        The symbolic no-payload shortcut (every rank resumes with None)
        lives in ``_finish_collective``, the single caller — this method
        only runs when some payload exists or the collective is an
        allgather (which materializes a list-of-Nones result even
        without payloads).
        """
        wr_by_comm_rank = group.world_ranks
        root_world = wr_by_comm_rank[root]
        ordered = [entries[wr][1].payload for wr in wr_by_comm_rank]
        out: Dict[int, Any] = {}
        if name == "bcast":
            val = entries[root_world][1].payload
            for wr in wr_by_comm_rank:
                out[wr] = val
        elif name == "reduce":
            total = self._reduce_payloads(ordered)
            for wr in wr_by_comm_rank:
                out[wr] = total if wr == root_world else None
        elif name == "allreduce":
            total = self._reduce_payloads(ordered)
            for wr in wr_by_comm_rank:
                out[wr] = total
        elif name == "gather":
            for wr in wr_by_comm_rank:
                out[wr] = list(ordered) if wr == root_world else None
        elif name == "allgather":
            for wr in wr_by_comm_rank:
                out[wr] = list(ordered)
        elif name == "scatter":
            chunks = entries[root_world][1].payload
            for i, wr in enumerate(wr_by_comm_rank):
                out[wr] = None if chunks is None else chunks[i]
        elif name == "alltoall":
            for i, wr in enumerate(wr_by_comm_rank):
                if all(p is None for p in ordered):
                    out[wr] = None
                else:
                    out[wr] = [p[i] if p is not None else None for p in ordered]
        elif name == "barrier":
            for wr in wr_by_comm_rank:
                out[wr] = None
        else:
            raise ValueError(f"unknown collective {name!r}")
        return out

    # -- split ----------------------------------------------------------------
    def _do_split(self, st: _RankState, op: SplitOp) -> None:
        group: CommGroup = op.comm.group
        me_world = group.world_ranks[op.comm.rank]
        pend = group.pending
        if pend is None:
            pend = group.pending = _CollPending("__split__")
        elif pend.name != "__split__":
            raise RuntimeError(
                f"collective mismatch on comm {group.gid} seq {group.coll_seq}: "
                f"{pend.name} vs split (rank {me_world})"
            )
        pend.entries[me_world] = (st.time, op)
        st.park_reason = op
        if len(pend.entries) == group.size:
            group.pending = None
            group.coll_seq += 1
            self._finish_split(group, pend)

    def _finish_split(self, group: CommGroup, pend: _CollPending) -> None:
        prof = self.profiler
        entries = pend.entries
        # group members by color, ordered by (key, world rank) like MPI
        by_color: Dict[int, List[Tuple[int, int]]] = {}
        for wr, (_, op) in entries.items():
            if op.color is None:
                continue
            by_color.setdefault(op.color, []).append((op.key, wr))
        subgroups: Dict[int, CommGroup] = {}
        for color, members in sorted(by_color.items()):
            members.sort()
            ranks = tuple(wr for _, wr in members)
            subgroups[color] = self._make_group(ranks, parent=group)
        prof.on_comm_split(group, list(subgroups.values()))
        # MPI_Comm_split is an allgather of (color, key) internally
        cost = self.machine.collectives().allgather(8, group.size)
        start = max(t for t, _ in entries.values())
        completion = start + prof.intercept_cost(group.size) + cost
        for wr, (_, op) in entries.items():
            self._states[wr].park_reason = None
            if op.color is None:
                self._push(completion, wr, None)
            else:
                sub = subgroups[op.color]
                self._push(completion, wr, Comm(sub, sub.world_ranks.index(wr)))
