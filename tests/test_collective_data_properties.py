"""Property tests: collective data semantics over random payloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_quiet_sim


@given(
    nprocs=st.sampled_from([2, 3, 4, 5]),
    values=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_property_allreduce_is_sum(nprocs, values):
    vals = [values.draw(st.integers(min_value=-1000, max_value=1000))
            for _ in range(nprocs)]

    def prog(comm):
        out = yield comm.allreduce(vals[comm.rank], nbytes=8)
        return out

    res = make_quiet_sim(nprocs).run(prog)
    assert res.returns == [sum(vals)] * nprocs


@given(nprocs=st.sampled_from([2, 4]), root=st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_property_bcast_from_any_root(nprocs, root):
    root = root % nprocs

    def prog(comm):
        payload = ("secret", comm.rank) if comm.rank == root else None
        out = yield comm.bcast(payload, root=root, nbytes=16)
        return out

    res = make_quiet_sim(nprocs).run(prog)
    assert all(r == ("secret", root) for r in res.returns)


@given(nprocs=st.sampled_from([2, 3, 4]))
@settings(max_examples=20, deadline=None)
def test_property_gather_scatter_roundtrip(nprocs):
    def prog(comm):
        gathered = yield comm.gather(comm.rank * 2, root=0, nbytes=8)
        chunks = gathered if comm.rank == 0 else None
        back = yield comm.scatter(chunks, root=0, nbytes=8)
        return back

    res = make_quiet_sim(nprocs).run(prog)
    assert res.returns == [r * 2 for r in range(nprocs)]


@given(nprocs=st.sampled_from([2, 4]))
@settings(max_examples=20, deadline=None)
def test_property_alltoall_is_transpose(nprocs):
    def prog(comm):
        row = [(comm.rank, j) for j in range(comm.size)]
        out = yield comm.alltoall(row, nbytes=8)
        return out

    res = make_quiet_sim(nprocs).run(prog)
    for i in range(nprocs):
        assert res.returns[i] == [(j, i) for j in range(nprocs)]


@given(
    nprocs=st.sampled_from([2, 4]),
    n=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=30, deadline=None)
def test_property_numpy_allreduce_matches_sum(nprocs, n):
    def prog(comm):
        vec = np.full(n, float(comm.rank + 1))
        out = yield comm.allreduce(vec)
        return out

    res = make_quiet_sim(nprocs).run(prog)
    expect = np.full(n, float(sum(range(1, nprocs + 1))))
    for r in res.returns:
        assert np.array_equal(r, expect)


def test_examples_compile():
    """Every example script must at least byte-compile."""
    import glob
    import os
    import py_compile

    examples = glob.glob(os.path.join(os.path.dirname(__file__), "..",
                                      "examples", "*.py"))
    assert len(examples) >= 6
    for path in examples:
        py_compile.compile(path, doraise=True)
