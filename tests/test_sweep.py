"""Tolerance sweeps: grid structure, series extraction, reference lines."""

import math

import pytest

from repro.autotune import (
    capital_cholesky_space,
    default_tolerances,
    tolerance_sweep,
)
from repro.autotune.tuner import default_machine


@pytest.fixture(scope="module")
def sweep():
    space = capital_cholesky_space(n=64, c=2, b0=4, nconf=4)
    machine = default_machine(space, seed=3)
    return tolerance_sweep(
        space,
        machine,
        policies=("conditional", "online"),
        tolerances=[1.0, 2**-3, 2**-6],
        reps=2,
        full_reps=2,
        seed=0,
    )


class TestDefaults:
    def test_default_tolerances_paper_axis(self):
        ts = default_tolerances()
        assert len(ts) == 11
        assert ts[0] == 1.0
        assert ts[-1] == 2**-10

    def test_custom_range(self):
        assert default_tolerances(lo_exp=-4) == [1.0, 0.5, 0.25, 0.125, 0.0625]


class TestSweepStructure:
    def test_all_points_present(self, sweep):
        assert set(sweep.points) == {
            (p, e) for p in ("conditional", "online") for e in (1.0, 2**-3, 2**-6)
        }

    def test_series_length(self, sweep):
        s = sweep.series("online", "search_time")
        assert len(s) == 3
        assert all(v > 0 for v in s)

    def test_series_metrics(self, sweep):
        for metric in ("search_time", "mean_log2_exec_error", "kernel_time",
                       "comp_kernel_time", "search_speedup", "selection_quality"):
            assert len(sweep.series("conditional", metric)) == 3

    def test_per_config_errors(self, sweep):
        errs = sweep.per_config_errors("online", 2**-3)
        assert len(errs) == 4
        assert all(e >= 0 for e in errs)

    def test_log2_tolerances(self, sweep):
        assert sweep.log2_tolerances() == [0.0, -3.0, -6.0]

    def test_result_accessor(self, sweep):
        r = sweep.result("conditional", 1.0)
        assert r.policy == "conditional" and r.eps == 1.0


class TestReferenceLines:
    def test_full_search_time_positive(self, sweep):
        assert sweep.full_search_time > 0

    def test_full_line_upper_bounds_selective(self, sweep):
        # selective execution can only be faster than full execution
        for p in ("conditional", "online"):
            for t in sweep.series(p, "search_time"):
                assert t < sweep.full_search_time * 1.2

    def test_kernel_reference_lines(self, sweep):
        assert sweep.full_kernel_time > sweep.full_comp_kernel_time > 0

    def test_search_time_trend(self, sweep):
        s = sweep.series("conditional", "search_time")
        # tighter tolerance never dramatically cheaper than loose
        assert s[-1] > s[0] * 0.8
