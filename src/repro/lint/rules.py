"""Syntax-level determinism-contract rules.

Each rule here is a pure AST check over one file.  They encode the
contracts that keep every run bit-identical to a fault-free serial
reference (see README "Static analysis & determinism contracts"):

* ``unseeded-random``   — module-level ``random``/``np.random`` global
  state draws; every stream must be an explicitly seeded generator.
* ``wall-clock``        — ``time.*``/``datetime.now`` references outside
  the runner's timeout layer; simulated time is the only clock
  simulation code may read.
* ``set-iteration``     — iterating a ``set`` in ``sim/``/``critter/``;
  set order is address-dependent under interned signatures (identity
  hashing), so it may not feed accumulation or event emission.
* ``mutable-default``   — mutable default arguments (cross-call shared
  state that aliases results between jobs).
* ``broad-except``      — bare ``except`` or ``except Exception`` that
  swallows (no re-raise): these can eat :class:`JobExecutionError` and
  turn an attributable failure into silent divergence.
* ``seed-derivation``   — ad-hoc arithmetic on seed values feeding an
  RNG constructor; use :func:`repro.runner.seeds.derive_seed`, which is
  collision-free by construction.
* ``bare-os-replace``   — publish-by-rename outside the store layer;
  without the fsync-file-then-directory discipline of
  :func:`repro.runner.store.write_atomic`, a crash can publish an
  empty or torn file under the final name.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.lint.engine import Rule, register_rule

__all__ = [
    "UnseededRandomRule",
    "WallClockRule",
    "SetIterationRule",
    "MutableDefaultRule",
    "BroadExceptRule",
    "SeedDerivationRule",
    "BareOsReplaceRule",
]


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
@register_rule
class UnseededRandomRule(Rule):
    id = "unseeded-random"
    severity = "error"
    description = ("global-state RNG draw (random.* / np.random.*): only "
                   "explicitly seeded generators are reproducible")

    #: module-level functions that read or mutate the global Mersenne
    #: Twister / legacy numpy RandomState
    STDLIB = frozenset({
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "seed", "gauss", "normalvariate", "betavariate",
        "expovariate", "lognormvariate", "vonmisesvariate", "paretovariate",
        "weibullvariate", "triangular", "getrandbits", "randbytes",
    })
    NUMPY = frozenset({
        "rand", "randn", "random", "random_sample", "ranf", "sample",
        "randint", "random_integers", "seed", "choice", "shuffle",
        "permutation", "uniform", "normal", "standard_normal", "exponential",
        "poisson", "binomial", "beta", "gamma", "bytes", "get_state",
        "set_state",
    })

    def check(self, tree: ast.AST, source: str,
              rel_path: str) -> Iterator[Tuple[int, int, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is None:
                continue
            if name.startswith("random.") and name[7:] in self.STDLIB:
                yield (node.lineno, node.col_offset,
                       f"{name}() draws from the global random stream; "
                       f"use random.Random(derive_seed(...)) instead")
            for prefix in ("np.random.", "numpy.random."):
                if name.startswith(prefix) and name[len(prefix):] in self.NUMPY:
                    yield (node.lineno, node.col_offset,
                           f"{name}() uses numpy's global RandomState; "
                           f"use np.random.default_rng(derive_seed(...))")


# ----------------------------------------------------------------------
@register_rule
class WallClockRule(Rule):
    id = "wall-clock"
    severity = "error"
    description = ("wall-clock read outside the runner's timeout layer: "
                   "simulation results must not depend on real time")

    TIME_FNS = frozenset({
        "time", "monotonic", "perf_counter", "process_time",
        "time_ns", "monotonic_ns", "perf_counter_ns", "process_time_ns",
    })
    DATETIME_FNS = frozenset({"now", "utcnow", "today"})
    #: the runner's fault-tolerance layer measures real elapsed time by
    #: design (job timeouts, retry backoff) — the one sanctioned clock
    ALLOWED_PATHS = frozenset({"repro/runner/resilience.py"})

    def applies(self, rel_path: str) -> bool:
        return rel_path not in self.ALLOWED_PATHS

    def check(self, tree: ast.AST, source: str,
              rel_path: str) -> Iterator[Tuple[int, int, str]]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self.TIME_FNS:
                        yield (node.lineno, node.col_offset,
                               f"from time import {alias.name}: wall-clock "
                               f"access on a simulation path")
                continue
            if not isinstance(node, ast.Attribute):
                continue
            name = _dotted(node)
            if name is None:
                continue
            if name.startswith("time.") and name[5:] in self.TIME_FNS:
                yield (node.lineno, node.col_offset,
                       f"{name} reads the wall clock; simulated time is the "
                       f"only clock simulation code may observe")
            elif (name.split(".", 1)[0] in ("datetime", "date")
                  and name.rsplit(".", 1)[-1] in self.DATETIME_FNS):
                yield (node.lineno, node.col_offset,
                       f"{name} reads the wall clock; simulated time is the "
                       f"only clock simulation code may observe")


# ----------------------------------------------------------------------
@register_rule
class SetIterationRule(Rule):
    id = "set-iteration"
    severity = "error"
    description = ("iterating a set in sim//critter/: interned signatures "
                   "hash by identity, so set order is address-dependent and "
                   "must not feed accumulation or event emission")

    SCOPES = ("repro/sim/", "repro/critter/")

    def applies(self, rel_path: str) -> bool:
        return rel_path.startswith(self.SCOPES)

    @staticmethod
    def _is_set_expr(node: ast.AST, set_names: Set[str],
                     set_attrs: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")):
            return True
        if isinstance(node, ast.Name) and node.id in set_names:
            return True
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self" and node.attr in set_attrs):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            # set algebra on set operands
            return (SetIterationRule._is_set_expr(node.left, set_names,
                                                  set_attrs)
                    or SetIterationRule._is_set_expr(node.right, set_names,
                                                     set_attrs))
        return False

    @staticmethod
    def _ann_is_set(ann: ast.AST) -> bool:
        base = ann.value if isinstance(ann, ast.Subscript) else ann
        name = _dotted(base)
        return name is not None and name.rsplit(".", 1)[-1] in (
            "set", "Set", "MutableSet", "frozenset", "FrozenSet")

    def check(self, tree: ast.AST, source: str,
              rel_path: str) -> Iterator[Tuple[int, int, str]]:
        # self attributes assigned/annotated as sets anywhere in a class
        set_attrs: Set[str] = set()
        for node in ast.walk(tree):
            target = value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                if self._ann_is_set(node.annotation):
                    value = ast.Call(func=ast.Name(id="set", ctx=ast.Load()),
                                     args=[], keywords=[])
                else:
                    value = node.value
            if (target is not None and value is not None
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and self._is_set_expr(value, set(), set())):
                set_attrs.add(target.attr)

        emitted: Set[Tuple[int, int]] = set()
        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Module)):
                continue
            set_names: Set[str] = set()
            # first pass: local names bound to set expressions or
            # annotated as sets
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    if self._is_set_expr(node.value, set_names, set_attrs):
                        set_names.add(node.targets[0].id)
                elif isinstance(node, ast.AnnAssign) \
                        and isinstance(node.target, ast.Name) \
                        and self._ann_is_set(node.annotation):
                    set_names.add(node.target.id)
            # second pass: iteration sites
            for node in ast.walk(fn):
                iters = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    if self._is_set_expr(it, set_names, set_attrs) \
                            and (it.lineno, it.col_offset) not in emitted:
                        # the Module walk re-visits function bodies:
                        # emit each site once
                        emitted.add((it.lineno, it.col_offset))
                        yield (it.lineno, it.col_offset,
                               "iteration over a set: order is address-"
                               "dependent; iterate an insertion-ordered "
                               "dict or sorted() the elements")


# ----------------------------------------------------------------------
@register_rule
class MutableDefaultRule(Rule):
    id = "mutable-default"
    severity = "error"
    description = ("mutable default argument: state shared across calls "
                   "aliases results between jobs")

    def check(self, tree: ast.AST, source: str,
              rel_path: str) -> Iterator[Tuple[int, int, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for default in (*node.args.defaults, *node.args.kw_defaults):
                if default is None:
                    continue
                bad = None
                if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                    bad = type(default).__name__.lower()
                elif (isinstance(default, ast.Call)
                      and isinstance(default.func, ast.Name)
                      and default.func.id in ("list", "dict", "set",
                                              "bytearray", "deque")):
                    bad = f"{default.func.id}()"
                if bad is not None:
                    yield (default.lineno, default.col_offset,
                           f"mutable default ({bad}) in {node.name}(): "
                           f"use None and create inside the body")


# ----------------------------------------------------------------------
@register_rule
class BroadExceptRule(Rule):
    id = "broad-except"
    severity = "error"
    description = ("bare/broad except that swallows: can eat "
                   "JobExecutionError and hide attributable failures")

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(n, ast.Raise) for n in ast.walk(handler))

    def check(self, tree: ast.AST, source: str,
              rel_path: str) -> Iterator[Tuple[int, int, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield (node.lineno, node.col_offset,
                       "bare 'except:' swallows everything, including "
                       "JobExecutionError; name the exceptions or re-raise")
                continue
            names = []
            types = (node.type.elts if isinstance(node.type, ast.Tuple)
                     else [node.type])
            for t in types:
                name = _dotted(t)
                if name is not None:
                    names.append(name.rsplit(".", 1)[-1])
            if any(n in ("Exception", "BaseException") for n in names) \
                    and not self._reraises(node):
                yield (node.lineno, node.col_offset,
                       f"'except {'/'.join(names)}' without re-raise "
                       f"swallows JobExecutionError; narrow the type or "
                       f"re-raise after handling")


# ----------------------------------------------------------------------
@register_rule
class BareOsReplaceRule(Rule):
    id = "bare-os-replace"
    severity = "error"
    description = ("publish-by-rename outside the store layer: os.replace "
                   "without the fsync discipline can publish a torn file; "
                   "use repro.runner.store.write_atomic")

    RENAMES = frozenset({"os.replace", "os.rename", "os.renames"})
    #: the one module allowed to call os.replace directly — it *is* the
    #: atomic-publish implementation (write_atomic, quarantine_entry)
    ALLOWED_PATHS = frozenset({"repro/runner/store.py"})

    def applies(self, rel_path: str) -> bool:
        return rel_path not in self.ALLOWED_PATHS

    def check(self, tree: ast.AST, source: str,
              rel_path: str) -> Iterator[Tuple[int, int, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name in self.RENAMES:
                yield (node.lineno, node.col_offset,
                       f"{name}() publishes a file without the fsync-file-"
                       f"then-directory discipline; use "
                       f"repro.runner.store.write_atomic (or "
                       f"quarantine_entry) so crashes cannot publish torn "
                       f"data")


# ----------------------------------------------------------------------
@register_rule
class SeedDerivationRule(Rule):
    id = "seed-derivation"
    severity = "error"
    description = ("ad-hoc arithmetic seed derivation feeding an RNG: use "
                   "repro.runner.seeds.derive_seed (sha256, collision-free "
                   "by construction)")

    RNG_CTORS = frozenset({
        "Random", "SystemRandom", "default_rng", "PCG64", "PCG64DXSM",
        "MT19937", "Philox", "SFC64", "SeedSequence", "RandomState",
    })

    @staticmethod
    def _mentions_seed(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and "seed" in sub.id.lower():
                return True
            if isinstance(sub, ast.Attribute) and "seed" in sub.attr.lower():
                return True
        return False

    def check(self, tree: ast.AST, source: str,
              rel_path: str) -> Iterator[Tuple[int, int, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            fname = _dotted(node.func)
            if fname is None \
                    or fname.rsplit(".", 1)[-1] not in self.RNG_CTORS:
                continue
            for arg in node.args:
                if isinstance(arg, ast.BinOp) and self._mentions_seed(arg):
                    yield (arg.lineno, arg.col_offset,
                           f"arithmetic seed derivation passed to "
                           f"{fname}(): ad-hoc '*'/'+'-mixing collides; "
                           f"use derive_seed(seed, *labels)")
