"""Golden engine workloads: the bit-identity contract of the simulator.

This module enumerates a matrix of small-but-representative simulation
cases — every machine preset crossed with the selective-execution
policies, over all four algorithm spaces plus a synthetic program that
exercises the whole p2p/wait/collective surface.  For each case it runs
the simulator and reports ``SimResult.makespan`` / ``rank_times`` (and
Critter's executed/skipped kernel counts) in exact ``float.hex`` form.

``tests/golden/engine_golden.json`` holds the values captured from the
engine *before* the run-to-completion fast path was introduced; the
golden tests replay every case with the fast path on and off and demand
bit-identical results.  Any engine change that alters a single RNG draw,
a cost formula, or an event ordering that feeds back into timing will
trip these tests.

Regenerate the fixture (only on an engine known to be correct!) with::

    PYTHONPATH=src python tests/golden_workloads.py --write
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.algorithms.stencil import stencil_halo_program
from repro.autotune.configspace import (
    candmc_qr_space,
    capital_cholesky_space,
    slate_cholesky_space,
    slate_qr_space,
)
from repro.critter import Critter
from repro.kernels import blas, lapack
from repro.sim import Simulator
from repro.sim.presets import PRESETS, make_machine

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "engine_golden.json")

MACHINE_SEED = 13
PRESET_NAMES = tuple(sorted(PRESETS))


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def mixed_program(comm, nrounds: int = 3):
    """Synthetic program covering p2p/wait/collective/split semantics.

    Exercises: per-rank-distinct computes (divergent clocks), the
    irecv+isend+overlap+waitall pattern, blocking pairwise send/recv,
    isend completed by a blocking recv then reaped by a single wait,
    allreduce/barrier rendezvous, and comm_split with sub-communicator
    collectives.  Requires an even number of ranks.
    """
    me, p = comm.rank, comm.size
    nxt, prv = (me + 1) % p, (me - 1) % p
    for r in range(nrounds):
        rreq = yield comm.irecv(source=prv, tag=10 + r, nbytes=64)
        sreq = yield comm.isend(dest=nxt, tag=10 + r, nbytes=64)
        yield comm.compute(blas.gemm_spec(8 + me, 8, 8))
        yield comm.waitall([rreq, sreq])
        yield comm.compute(blas.gemm_spec(8, 8, 8))
        if me % 2 == 0:
            yield comm.send(dest=me + 1, tag=99, nbytes=32)
        else:
            yield comm.recv(source=me - 1, tag=99, nbytes=32)
        yield comm.allreduce(nbytes=128)
        req = yield comm.isend(dest=nxt, tag=200 + r, nbytes=16)
        yield comm.recv(source=prv, tag=200 + r, nbytes=16)
        yield comm.wait(req)
        yield comm.barrier()
    sub = yield comm.split(color=me % 2, key=me)
    yield sub.bcast(root=0, nbytes=256)
    yield sub.allgather(nbytes=32)
    yield comm.compute(lapack.potrf_spec(16 + me))
    yield comm.barrier()
    return float(me)


def coll_chain_program(comm, nrounds: int = 4):
    """Collective-dense program pinning the inline-arrival fast path.

    Per round: per-rank-skewed computes (divergent arrival times, so the
    final *heap-dispatched* arrival of a collective frequently carries
    an earlier time than an inline-parked one — driving the deferred-
    completion path), world bcast/allreduce/reduce chains with varying
    roots, sub-communicator bcast/allreduce on split comms (non-member
    ranks active in the completion window), and back-to-back collectives
    (exercising the heap-bypassing resume FIFO).  The tail adds a
    collective entered while an irecv is outstanding (pending-irecv
    ranks stay heap-ordered) and payload-carrying gather/scatter/
    alltoall, the last with per-peer nbytes inferred from the payload.
    """
    me, p = comm.rank, comm.size
    sub = yield comm.split(color=me % 2, key=me)
    for r in range(nrounds):
        yield comm.compute(blas.gemm_spec(6 + ((me + r) % p), 8, 8))
        yield comm.bcast(root=r % p, nbytes=256)
        yield comm.allreduce(nbytes=64)
        yield sub.bcast(root=0, nbytes=128)
        yield comm.compute(blas.gemm_spec(8, 8, 6 + (me % 3)))
        yield sub.allreduce(nbytes=32)
        yield comm.reduce(root=(r + 1) % p, nbytes=96)
        yield comm.barrier()
    nxt, prv = (me + 1) % p, (me - 1) % p
    rreq = yield comm.irecv(source=prv, tag=5, nbytes=16)
    yield comm.barrier()
    sreq = yield comm.isend(dest=nxt, tag=5, nbytes=16)
    yield comm.waitall([rreq, sreq])
    yield comm.gather(payload=float(me), root=0, nbytes=48)
    out = yield comm.scatter(
        [float(i) for i in range(p)] if me == 0 else None, root=0)
    yield comm.alltoall([float(me * p + j) for j in range(p)])
    yield comm.barrier()
    return out


def p2p_pipeline_program(comm, nrounds: int = 3):
    """Pure-p2p program pinning the inline rendezvous fast path.

    Three phases per the CANDMC-style panel-exchange op mix the inline
    blocking-send completion targets:

    * **ring pipelining** — isend/compute/recv/wait, so blocking recvs
      meet already-queued isends (rank-local completion, request reaped
      by a later wait) with per-rank-skewed computes driving run-ahead;
    * **blocking halo exchange** — even ranks send-then-recv, odd ranks
      recv-then-send, covering both inline directions (a send arriving
      at a parked recv and a recv arriving at a parked send) plus the
      early-park of the unmatched side;
    * **panel pipeline** — a blocking send/recv chain down the rank
      line (no wraparound), the naive-parity worst case of pure
      two-sided rendezvous.

    The tail posts an irecv before a blocking exchange so ranks with
    unmatched irecvs demonstrably fall back to full heap ordering, then
    reaps it via waitany.  Requires an even number of ranks.
    """
    me, p = comm.rank, comm.size
    nxt, prv = (me + 1) % p, (me - 1) % p
    for r in range(nrounds):
        sreq = yield comm.isend(me * 10 + r, dest=nxt, tag=r, nbytes=64)
        yield comm.compute(blas.gemm_spec(8 + ((me + r) % 3), 8, 8))
        got = yield comm.recv(source=prv, tag=r, nbytes=64)
        assert got == prv * 10 + r
        yield comm.wait(sreq)
    for r in range(nrounds):
        if me % 2 == 0:
            yield comm.send(float(me), dest=nxt, tag=100 + r, nbytes=32)
            yield comm.recv(source=prv, tag=100 + r, nbytes=32)
        else:
            yield comm.recv(source=prv, tag=100 + r, nbytes=32)
            yield comm.send(float(me), dest=nxt, tag=100 + r, nbytes=32)
        yield comm.compute(blas.gemm_spec(6 + me, 8, 8))
    for r in range(nrounds):
        if me > 0:
            yield comm.recv(source=me - 1, tag=200 + r, nbytes=128)
        yield comm.compute(lapack.potrf_spec(10 + r))
        if me < p - 1:
            yield comm.send(dest=me + 1, tag=200 + r, nbytes=128)
    rreq = yield comm.irecv(source=prv, tag=400, nbytes=16)
    if me % 2 == 0:
        yield comm.send(dest=nxt, tag=300, nbytes=48)
        yield comm.recv(source=prv, tag=300, nbytes=48)
    else:
        yield comm.recv(source=prv, tag=300, nbytes=48)
        yield comm.send(dest=nxt, tag=300, nbytes=48)
    sreq = yield comm.isend(float(me), dest=nxt, tag=400, nbytes=16)
    idx, val = yield comm.waitany([rreq, sreq])
    yield comm.waitall([rreq, sreq])
    yield comm.barrier()
    return float(me)


def stencil_halo_case_program(comm):
    """Small instance of the 2D stencil halo workload.

    Covers the alternating nonblocking/red-black halo styles plus the
    bandwidth-bound stencil compute — under a non-default regime
    (``mem_beta > 0``) its cost comes off the memory roof, so the
    regime-pinned golden cases pin the roofline pricing path too.
    """
    return stencil_halo_program(comm, nx=32, ny=32, iters=4, points=5,
                                reduce_every=2)


class _MixedSpace:
    """Duck-typed stand-in for a ConfigSpace over ``mixed_program``."""

    name = "mixed_p2p"
    program = staticmethod(mixed_program)
    nprocs = 4
    exclude = frozenset()

    @staticmethod
    def args_for(_config: Any) -> tuple:
        return ()


class _CollChainSpace:
    """Duck-typed stand-in for a ConfigSpace over ``coll_chain_program``."""

    name = "coll_chain"
    program = staticmethod(coll_chain_program)
    nprocs = 4
    exclude = frozenset()

    @staticmethod
    def args_for(_config: Any) -> tuple:
        return ()


class _P2PPipelineSpace:
    """Duck-typed stand-in for a ConfigSpace over ``p2p_pipeline_program``."""

    name = "p2p_pipeline"
    program = staticmethod(p2p_pipeline_program)
    nprocs = 4
    exclude = frozenset()

    @staticmethod
    def args_for(_config: Any) -> tuple:
        return ()


class _StencilHaloSpace:
    """Duck-typed stand-in for a ConfigSpace over the stencil workload."""

    name = "stencil_halo"
    program = staticmethod(stencil_halo_case_program)
    nprocs = 4
    exclude = frozenset()

    @staticmethod
    def args_for(_config: Any) -> tuple:
        return ()


_SYNTHETIC_SPACES = {"mixed_p2p": _MixedSpace, "coll_chain": _CollChainSpace,
                     "p2p_pipeline": _P2PPipelineSpace,
                     "stencil_halo": _StencilHaloSpace}


def _small_spaces() -> Dict[str, Any]:
    """Reduced-size instances of the four algorithm spaces."""
    return {
        "capital_cholesky": capital_cholesky_space(n=128, c=2, b0=8, nconf=10),
        "slate_cholesky": slate_cholesky_space(n=128, t0=32, dt=16, nconf=4),
        "candmc_qr": candmc_qr_space(m=128, n=32, p=8, pr0=2, b0=2, nconf=3),
        "slate_qr": slate_qr_space(m=64, n=32, p=4, pr0=2, nb0=8, dnb=4,
                                   w0=2, nconf=6),
    }


#: (space, config index) per algorithm — chosen to cover base-case
#: strategy 1 and 2 (capital), lookahead pipelining (slate), the tpqrt
#: reduction tree (candmc) and inner-blocked geqr2 panels (slate_qr)
_CONFIG_PICKS = {
    "capital_cholesky": (0, 6),
    "slate_cholesky": (1,),
    "candmc_qr": (0,),
    "slate_qr": (2,),
}

#: policy matrix: never-skip pins pure profiling overhead, conditional /
#: online pin the skip decision sequences, eager pins the aggregate
#: channel path (which runs on the naive scheduler by design)
_POLICY_MATRIX = [
    ("slate_cholesky", 1, ("never-skip", "conditional", "online"), PRESET_NAMES),
    ("capital_cholesky", 0, ("conditional", "online", "eager"), PRESET_NAMES),
    ("candmc_qr", 0, ("online",), ("knl-fabric", "quiet")),
    ("slate_qr", 2, ("online",), ("knl-fabric", "quiet")),
]


def golden_cases() -> List[Dict[str, Any]]:
    """The full case matrix as plain dicts (JSON-able identities)."""
    cases: List[Dict[str, Any]] = []
    spaces = _small_spaces()
    for preset in PRESET_NAMES:
        for name, picks in _CONFIG_PICKS.items():
            for idx in picks:
                cases.append({
                    "id": f"{name}[{idx}]/{preset}/null",
                    "space": name, "config": idx, "preset": preset,
                    "policy": None, "run_seeds": [7],
                })
        cases.append({
            "id": f"mixed_p2p/{preset}/null",
            "space": "mixed_p2p", "config": None, "preset": preset,
            "policy": None, "run_seeds": [7],
        })
        cases.append({
            "id": f"coll_chain/{preset}/null",
            "space": "coll_chain", "config": None, "preset": preset,
            "policy": None, "run_seeds": [7],
        })
        cases.append({
            "id": f"p2p_pipeline/{preset}/null",
            "space": "p2p_pipeline", "config": None, "preset": preset,
            "policy": None, "run_seeds": [7],
        })
    for name, idx, policies, presets in _POLICY_MATRIX:
        for preset in presets:
            for pol in policies:
                cases.append({
                    "id": f"{name}[{idx}]/{preset}/{pol}",
                    "space": name, "config": idx, "preset": preset,
                    "policy": pol, "run_seeds": [0, 1, 2],
                })
    cases.append({
        "id": "mixed_p2p/knl-fabric/online",
        "space": "mixed_p2p", "config": None, "preset": "knl-fabric",
        "policy": "online", "run_seeds": [0, 1, 2],
    })
    # collective-dense under a skipping profiler (noisy + draw-free: the
    # zero-noise preset is where exact-tie scheduling bugs would surface)
    for preset in ("knl-fabric", "quiet"):
        cases.append({
            "id": f"coll_chain/{preset}/online",
            "space": "coll_chain", "config": None, "preset": preset,
            "policy": "online", "run_seeds": [0, 1, 2],
        })
    # pure-p2p rendezvous under a skipping profiler (the inline
    # blocking-send completion path; quiet again pins exact-tie order)
    for preset in ("knl-fabric", "quiet"):
        cases.append({
            "id": f"p2p_pipeline/{preset}/online",
            "space": "p2p_pipeline", "config": None, "preset": preset,
            "policy": "online", "run_seeds": [0, 1, 2],
        })
    # the bandwidth-bound stencil halo workload (noisy + draw-free, bare
    # and under a skipping profiler)
    for preset in ("knl-fabric", "quiet"):
        cases.append({
            "id": f"stencil_halo/{preset}/null",
            "space": "stencil_halo", "config": None, "preset": preset,
            "policy": None, "run_seeds": [7],
        })
        cases.append({
            "id": f"stencil_halo/{preset}/online",
            "space": "stencil_halo", "config": None, "preset": preset,
            "policy": "online", "run_seeds": [0, 1, 2],
        })
    # regime-pinned cases: non-default load regimes must stay as stable
    # as the default streams — these pin the regime noise salt, the
    # comp/comm scale factors, and the roofline (mem_beta) pricing of
    # the bandwidth-bound stencil kernel
    for preset, regime in (("knl-fabric", "heavy"), ("quiet", "idle")):
        cases.append({
            "id": f"stencil_halo/{preset}@{regime}/null",
            "space": "stencil_halo", "config": None, "preset": preset,
            "regime": regime, "policy": None, "run_seeds": [7],
        })
    return cases


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def run_case(case: Dict[str, Any], **sim_kwargs: Any) -> Dict[str, Any]:
    """Execute one golden case; extra kwargs are passed to Simulator."""
    if case["space"] in _SYNTHETIC_SPACES:
        space: Any = _SYNTHETIC_SPACES[case["space"]]()
        args: tuple = ()
    else:
        space = _small_spaces()[case["space"]]
        args = space.args_for(space.configs[case["config"]])
    machine, noise = make_machine(case["preset"], space.nprocs,
                                  seed=MACHINE_SEED,
                                  regime=case.get("regime", "default"))
    profiler: Optional[Critter] = None
    if case["policy"] is not None:
        profiler = Critter(policy=case["policy"], eps=0.25, min_samples=2,
                           exclude=space.exclude)
    runs = []
    for seed in case["run_seeds"]:
        sim = Simulator(machine, noise=noise, profiler=profiler, **sim_kwargs)
        res = sim.run(space.program, args=args, run_seed=seed)
        rec = {
            "seed": seed,
            "makespan": res.makespan.hex(),
            "rank_times": [t.hex() for t in res.rank_times],
        }
        if profiler is not None:
            rec["executed"] = profiler.last_report.executed_kernels
            rec["skipped"] = profiler.last_report.skipped_kernels
        runs.append(rec)
    return {"id": case["id"], "runs": runs}


def capture(path: str = GOLDEN_PATH) -> None:
    # captured on the naive heap scheduler: the fixture is the reference
    # both schedulers are then replayed against
    entries = [run_case(c, fast_path=False) for c in golden_cases()]
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump({"version": 1, "machine_seed": MACHINE_SEED,
                   "entries": entries}, fh, indent=1)
    print(f"wrote {len(entries)} golden entries to {path}")


def load_golden(path: str = GOLDEN_PATH) -> Dict[str, Any]:
    with open(path) as fh:
        data = json.load(fh)
    if data.get("version") != 1:
        raise ValueError(f"unsupported golden version {data.get('version')!r}")
    return {e["id"]: e for e in data["entries"]}


if __name__ == "__main__":
    import sys

    if "--write" not in sys.argv:
        raise SystemExit("refusing to run without --write "
                         "(this overwrites the golden fixture)")
    capture()
