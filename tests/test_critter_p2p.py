"""Critter point-to-point interception: endpoint keys, votes, skipping."""

import pytest

from repro.critter import Critter
from repro.kernels.signature import comm_signature
from repro.sim import Machine, Simulator


def pingpong(comm, iters=15, nbytes=4096):
    peer = 1 - comm.rank
    for i in range(iters):
        if comm.rank == 0:
            yield comm.send(None, dest=peer, tag=i, nbytes=nbytes)
        else:
            yield comm.recv(source=peer, tag=i, nbytes=nbytes)


def isend_stream(comm, iters=15, nbytes=4096):
    if comm.rank == 0:
        reqs = []
        for i in range(iters):
            reqs.append((yield comm.isend(None, dest=1, tag=i, nbytes=nbytes)))
        yield comm.waitall(reqs)
    else:
        for i in range(iters):
            yield comm.recv(source=0, tag=i, nbytes=nbytes)


class TestEndpointKeys:
    def test_send_and_recv_tracked_separately(self):
        m = Machine(nprocs=2, seed=0)
        cr = Critter(policy="never-skip")
        Simulator(m, profiler=cr).run(pingpong, run_seed=0)
        skey = comm_signature("send", 4096, 2, 1)
        rkey = comm_signature("recv", 4096, 2, 1)
        assert cr._K[0][skey].count == 15
        assert cr._K[1][rkey].count == 15
        assert skey not in cr._K[1]

    def test_p2p_stride_in_signature(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(None, dest=3, nbytes=64)
            elif comm.rank == 3:
                yield comm.recv(source=0, nbytes=64)

        m = Machine(nprocs=4, seed=0)
        cr = Critter(policy="never-skip")
        Simulator(m, profiler=cr).run(prog)
        assert comm_signature("send", 64, 2, 3) in cr._K[0]


class TestSelectiveP2P:
    def test_p2p_skipped_when_both_endpoints_agree(self):
        m = Machine(nprocs=2, seed=0)
        cr = Critter(policy="conditional", eps=0.8)
        for rep in range(3):
            Simulator(m, profiler=cr).run(pingpong, run_seed=rep)
        assert cr.last_report.skipped_kernels > 0

    def test_skipped_p2p_faster(self):
        m = Machine(nprocs=2, seed=0)
        cr = Critter(policy="conditional", eps=0.8)
        first = Simulator(m, profiler=cr).run(pingpong, run_seed=0).makespan
        for rep in range(1, 3):
            last = Simulator(m, profiler=cr).run(pingpong, run_seed=rep).makespan
        assert last < first

    def test_one_sided_knowledge_insufficient(self):
        # fresh receiver statistics (reset between runs on one side is
        # impossible per-rank, so emulate via never-skip exclusion):
        # the vote requires BOTH endpoints predictable; excluding the
        # receiver's kernel name keeps it always-execute
        m = Machine(nprocs=2, seed=0)
        cr = Critter(policy="conditional", eps=0.8, exclude=frozenset({"recv"}))
        for rep in range(3):
            Simulator(m, profiler=cr).run(pingpong, run_seed=rep)
        # receiver always votes execute -> no p2p kernel ever skipped
        assert cr.last_report.skipped_kernels == 0

    def test_nonblocking_stream_skipped(self):
        m = Machine(nprocs=2, seed=0)
        cr = Critter(policy="conditional", eps=0.8)
        for rep in range(3):
            Simulator(m, profiler=cr).run(isend_stream, run_seed=rep)
        assert cr.last_report.skipped_kernels > 0


class TestP2PPathExchange:
    def test_blocking_pair_exchanges_paths(self):
        from repro.kernels.blas import gemm_spec

        def prog(comm):
            if comm.rank == 0:
                for _ in range(10):
                    yield comm.compute(gemm_spec(32, 32, 32))
                yield comm.send(None, dest=1, nbytes=8)
            else:
                yield comm.recv(source=0, nbytes=8)

        m = Machine(nprocs=2, seed=0)
        cr = Critter(policy="never-skip")
        Simulator(m, profiler=cr).run(prog)
        # receiver inherited the sender's compute-heavy path
        assert cr.profiles[1].path.comp_time == pytest.approx(
            cr.profiles[0].path.comp_time
        )

    def test_path_counts_adopted_from_longer_path(self):
        from repro.kernels.blas import gemm_spec

        sig = gemm_spec(32, 32, 32)[0]

        def prog(comm):
            if comm.rank == 0:
                for _ in range(10):
                    yield comm.compute(gemm_spec(32, 32, 32))
                yield comm.send(None, dest=1, nbytes=8)
            else:
                yield comm.recv(source=0, nbytes=8)

        m = Machine(nprocs=2, seed=0)
        cr = Critter(policy="online")
        Simulator(m, profiler=cr).run(prog)
        # rank 1 executed no gemm locally but its sub-critical path did
        assert cr._Kt[1].get(sig, 0) == 10
