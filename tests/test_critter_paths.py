"""Critical-path propagation: predicted paths vs. simulated makespans."""

import pytest

from repro.critter import Critter
from repro.kernels.blas import gemm_spec
from repro.sim import Machine, Simulator


def full_run(prog, nprocs, seed=0, run_seed=0, args=()):
    m = Machine(nprocs=nprocs, seed=seed)
    cr = Critter(policy="never-skip")
    res = Simulator(m, profiler=cr).run(prog, args=args, run_seed=run_seed)
    return res, cr.last_report


class TestExecTimePath:
    def test_single_rank_path_equals_kernel_sum(self):
        def prog(comm):
            for _ in range(10):
                yield comm.compute(gemm_spec(32, 32, 32))

        res, rep = full_run(prog, 1)
        assert rep.predicted_exec_time == pytest.approx(res.makespan)

    def test_path_tracks_slowest_rank(self):
        def prog(comm):
            for _ in range(5 if comm.rank == 2 else 1):
                yield comm.compute(gemm_spec(32, 32, 32))
            yield comm.barrier()

        res, rep = full_run(prog, 4)
        # predicted path excludes interception overhead but must be close
        assert rep.predicted_exec_time == pytest.approx(res.makespan, rel=0.05)

    def test_imbalanced_path_not_average(self):
        def prog(comm):
            n = 10 if comm.rank == 0 else 1
            for _ in range(n):
                yield comm.compute(gemm_spec(32, 32, 32))
            yield comm.allreduce(nbytes=64)

        res, rep = full_run(prog, 4)
        vol_avg = rep.volumetric["comp_time"]
        assert rep.predicted.comp_time > 2 * vol_avg

    def test_path_propagates_through_p2p_chain(self):
        # rank 0 is slow, then sends to 1, 1 to 2, ...: the path must
        # carry rank 0's compute time to the last rank
        def prog(comm):
            if comm.rank == 0:
                for _ in range(10):
                    yield comm.compute(gemm_spec(32, 32, 32))
                yield comm.send(None, dest=1, nbytes=8)
            else:
                yield comm.recv(source=comm.rank - 1, nbytes=8)
                if comm.rank < comm.size - 1:
                    yield comm.send(None, dest=comm.rank + 1, nbytes=8)

        res, rep = full_run(prog, 4)
        assert rep.predicted_exec_time == pytest.approx(res.makespan, rel=0.05)

    def test_isend_does_not_propagate_back(self):
        # receiver is slow; the buffered sender must not inherit the
        # receiver's long path
        def prog(comm):
            if comm.rank == 0:
                req = yield comm.isend(None, dest=1, nbytes=8)
                yield comm.wait(req)
                return None
            for _ in range(10):
                yield comm.compute(gemm_spec(32, 32, 32))
            yield comm.recv(source=0, nbytes=8)

        m = Machine(nprocs=2, seed=0)
        cr = Critter(policy="never-skip")
        Simulator(m, profiler=cr).run(prog)
        p0, p1 = cr.profiles[0].path, cr.profiles[1].path
        assert p1.comp_time > p0.comp_time


class TestMetricSpecificPaths:
    def test_comm_and_comp_paths_differ(self):
        # rank 0: heavy compute; rank 1: heavy p2p traffic with rank 2.
        # the comm-cost critical path and comp-cost path live on
        # different ranks (Fig. 1's point)
        def prog(comm):
            if comm.rank == 0:
                for _ in range(20):
                    yield comm.compute(gemm_spec(48, 48, 48))
            elif comm.rank == 1:
                for i in range(20):
                    yield comm.send(None, dest=2, tag=i, nbytes=1 << 16)
            elif comm.rank == 2:
                for i in range(20):
                    yield comm.recv(source=1, tag=i, nbytes=1 << 16)
            yield comm.barrier()

        _, rep = full_run(prog, 4)
        assert rep.predicted.comp_time > 0
        assert rep.predicted.comm_time > 0
        # the global path metrics are maxima of different ranks' paths
        assert rep.predicted.exec_time <= (
            rep.predicted.comp_time + rep.predicted.comm_time
        ) * 1.01

    def test_synch_count_along_path(self):
        def prog(comm):
            for _ in range(7):
                yield comm.barrier()

        _, rep = full_run(prog, 4)
        assert rep.predicted.synchs == 7

    def test_words_accumulate(self):
        def prog(comm):
            yield comm.allreduce(nbytes=1000)
            yield comm.allreduce(nbytes=500)

        _, rep = full_run(prog, 4)
        assert rep.predicted.words == 1500

    def test_flops_along_path(self):
        def prog(comm):
            n = 3 if comm.rank == 0 else 1
            for _ in range(n):
                yield comm.compute(gemm_spec(10, 10, 10))  # 2000 flops
            yield comm.barrier()

        _, rep = full_run(prog, 2)
        assert rep.predicted.flops == pytest.approx(6000)


class TestVolumetricMetrics:
    def test_idle_recorded_for_early_arrivals(self):
        def prog(comm):
            if comm.rank == 0:
                for _ in range(10):
                    yield comm.compute(gemm_spec(32, 32, 32))
            yield comm.barrier()

        m = Machine(nprocs=4, seed=0)
        cr = Critter(policy="never-skip")
        Simulator(m, profiler=cr).run(prog)
        assert cr.profiles[0].vol_idle == pytest.approx(0.0, abs=1e-12)
        assert all(cr.profiles[r].vol_idle > 0 for r in (1, 2, 3))

    def test_max_rank_kernel_time(self):
        def prog(comm):
            n = 5 if comm.rank == 1 else 1
            for _ in range(n):
                yield comm.compute(gemm_spec(32, 32, 32))

        _, rep = full_run(prog, 4)
        assert rep.max_rank_kernel_time == pytest.approx(rep.max_rank_comp_time)
        assert rep.max_rank_comp_time > 0
