"""Configuration spaces: exact paper enumeration formulas (Section V.C)."""

import math

import pytest

from repro.autotune.configspace import (
    candmc_qr_space,
    capital_cholesky_space,
    slate_cholesky_space,
    slate_qr_space,
    SPACES,
)


class TestCapitalSpace:
    def test_count(self):
        assert len(capital_cholesky_space()) == 15

    def test_paper_formula_block_sizes(self):
        # paper scale: b = 128 * 2^(v%5)
        space = capital_cholesky_space(n=16384, c=8, b0=128)
        blocks = [c.block for c in space.configs]
        assert blocks[:5] == [128, 256, 512, 1024, 2048]
        assert blocks[5:10] == blocks[:5]

    def test_paper_formula_strategies(self):
        # strategy = ceil((v+1)/5) in {1, 2, 3}
        space = capital_cholesky_space()
        strategies = [c.base_strategy for c in space.configs]
        assert strategies == [1] * 5 + [2] * 5 + [3] * 5

    def test_paper_scale_nprocs(self):
        assert capital_cholesky_space(n=16384, c=8, b0=128).nprocs == 512

    def test_scaled_preserves_nb_ratios(self):
        paper = capital_cholesky_space(n=16384, c=8, b0=128)
        scaled = capital_cholesky_space()
        for p, s in zip(paper.configs, scaled.configs):
            assert p.n // p.block == (s.n // s.block) * (p.n // p.block) // (s.n // s.block)
            assert (p.n / p.block) / (s.n / s.block) == pytest.approx(
                (paper.configs[0].n / paper.configs[0].block)
                / (scaled.configs[0].n / scaled.configs[0].block)
            )


class TestSlateCholeskySpace:
    def test_count(self):
        assert len(slate_cholesky_space()) == 20

    def test_paper_formula(self):
        # tile = 256 + 64 * floor(v/2), depth = v%2
        space = slate_cholesky_space(n=65536, pr=32, pc=32, t0=256, dt=64)
        assert [c.nb for c in space.configs[:4]] == [256, 256, 320, 320]
        assert [c.lookahead for c in space.configs[:4]] == [0, 1, 0, 1]
        assert space.configs[-1].nb == 256 + 64 * 9
        assert space.nprocs == 1024

    def test_every_config_distinct(self):
        labels = slate_cholesky_space().labels()
        assert len(set(labels)) == 20


class TestCandmcSpace:
    def test_count(self):
        assert len(candmc_qr_space()) == 15

    def test_paper_formula(self):
        space = candmc_qr_space(m=131072, n=8192, p=4096, pr0=64, b0=8)
        assert [c.b for c in space.configs[:5]] == [8, 16, 32, 64, 128]
        grids = [(c.pr, c.pc) for c in space.configs[::5]]
        assert grids == [(64, 64), (128, 32), (256, 16)]
        assert space.nprocs == 4096

    def test_constraint_satisfied_scaled(self):
        for c in candmc_qr_space().configs:
            assert c.b <= min(c.m // c.pr, c.n // c.pc)

    def test_grid_volume_constant(self):
        for c in candmc_qr_space().configs:
            assert c.pr * c.pc == 16


class TestSlateQRSpace:
    def test_count(self):
        assert len(slate_qr_space()) == 63

    def test_paper_formula(self):
        space = slate_qr_space(m=65536, n=4096, p=256, pr0=64, nb0=256, dnb=64, w0=8)
        ws = [c.w for c in space.configs[:3]]
        assert ws == [8, 16, 32]
        nbs = [c.nb for c in space.configs[::3]][:7]
        assert nbs == [256, 320, 384, 448, 512, 576, 640]
        grids = [(c.pr, c.pc) for c in space.configs[::21]]
        assert grids == [(64, 4), (32, 8), (16, 16)]

    def test_panel_width_cycles(self):
        space = slate_qr_space()
        assert space.configs[0].nb == space.configs[21].nb

    def test_exclusion_configured(self):
        assert "geqr2" in slate_qr_space().exclude


class TestRegistry:
    def test_all_four_spaces(self):
        assert set(SPACES) == {
            "capital_cholesky", "slate_cholesky", "candmc_qr", "slate_qr"
        }

    def test_factories_produce_spaces(self):
        for name, fn in SPACES.items():
            space = fn()
            assert space.name == name
            assert len(space.configs) > 0
            assert space.nprocs >= 4
            assert space.description
