"""Operation descriptors yielded by rank programs to the engine.

Rank programs never touch the engine directly: they ``yield`` one of
these descriptors (constructed through the :class:`~repro.sim.comm.Comm`
helpers) and are resumed with the operation's result once the simulated
operation completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Tuple

from repro.kernels.signature import KernelSignature

__all__ = [
    "ComputeOp",
    "P2POp",
    "CollOp",
    "SplitOp",
    "WaitOp",
    "Request",
    "COLLECTIVES",
]

#: collective names understood by the engine / machine model
COLLECTIVES = (
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "scatter",
    "alltoall",
    "barrier",
)


@dataclass(slots=True)
class ComputeOp:
    """A computational kernel (BLAS/LAPACK call or user code region).

    ``fn(*args)`` optionally performs the real numeric work; the engine
    calls it when the kernel executes (and, if the simulator is created
    with ``execute_skipped_fns=True``, even when Critter skips it, so
    data-carrying runs stay numerically valid).
    """

    sig: KernelSignature
    flops: float
    fn: Optional[Callable[..., Any]] = None
    args: Tuple[Any, ...] = ()


@dataclass(slots=True)
class P2POp:
    """A point-to-point operation. ``kind`` in {send, recv, isend, irecv}."""

    kind: str
    comm: Any  # Comm (avoid circular import)
    peer: int  # peer rank, local to ``comm``
    tag: int = 0
    payload: Any = None
    nbytes: int = 0


@dataclass(slots=True)
class CollOp:
    """A blocking collective on ``comm``.

    ``nbytes`` is the per-rank payload size in bytes (the MPI count);
    ``payload`` carries real data in numeric mode (root's buffer for
    bcast/scatter, each rank's contribution otherwise).
    """

    name: str
    comm: Any
    root: int = 0
    payload: Any = None
    nbytes: int = 0


@dataclass(slots=True)
class SplitOp:
    """``MPI_Comm_split``: collective over the parent communicator."""

    comm: Any
    color: Optional[int]
    key: int


@dataclass(slots=True)
class WaitOp:
    """Wait for one or more outstanding nonblocking requests."""

    requests: Sequence["Request"]
    #: "all" returns a list of results; "one" expects a single request
    mode: str = "all"


@dataclass(slots=True)
class Request:
    """Handle for a nonblocking operation.

    ``record`` is the engine-internal message record; ``value`` holds
    the received payload for irecv once complete.
    """

    rank: int
    kind: str
    done: bool = False
    completion: float = 0.0
    value: Any = None
    record: Any = None
