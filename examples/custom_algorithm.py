#!/usr/bin/env python
"""Bring your own algorithm: write a rank program, then tune it.

The framework is not tied to the paper's four factorizations.  Any
generator-style SPMD program against the :class:`repro.sim.Comm` API can
be profiled and selectively executed.  This example implements a tunable
ring-allreduce (segment size = the tuning parameter), defines a custom
configuration space for it, and autotunes the segment size with Critter.

Run:  python examples/custom_algorithm.py
"""

import math
from dataclasses import dataclass

from repro.analysis import format_table
from repro.autotune import ConfigSpace, ExhaustiveTuner, default_machine
from repro.autotune.tuner import measure_ground_truth
from repro.kernels.signature import comp_signature


@dataclass(frozen=True)
class RingAllreduceConfig:
    """Reduce ``nbytes`` of data with ring segments of ``segment`` bytes."""

    nbytes: int
    segment: int

    def label(self) -> str:
        return f"seg={self.segment}"


def ring_allreduce(comm, config: RingAllreduceConfig):
    """Segmented ring allreduce + a local reduction kernel per step.

    Small segments pipeline better (less per-step data) but pay more
    message latencies — a classic autotuning trade-off.
    """
    p = comm.size
    nseg = max(1, config.nbytes // config.segment)
    right = (comm.rank + 1) % p
    left = (comm.rank - 1) % p
    reduce_spec = (comp_signature("ring_reduce", config.segment),
                   config.segment / 8.0)
    for step in range(2 * (p - 1)):
        for seg in range(nseg):
            tag = step * nseg + seg
            req = yield comm.isend(None, dest=right, tag=tag,
                                   nbytes=config.segment)
            yield comm.recv(source=left, tag=tag, nbytes=config.segment)
            yield comm.wait(req)
        if step < p - 1:  # reduce-scatter phase does local sums
            yield comm.compute(reduce_spec)


def main() -> None:
    nbytes = 1 << 18
    configs = tuple(
        RingAllreduceConfig(nbytes=nbytes, segment=1 << s) for s in range(12, 19)
    )
    space = ConfigSpace(
        name="ring_allreduce",
        program=ring_allreduce,
        configs=configs,
        nprocs=8,
        description=f"segmented ring allreduce of {nbytes // 1024} KB on 8 ranks",
    )
    machine = default_machine(space, seed=3)
    print(f"space: {space.description}")
    ground = measure_ground_truth(space, machine, full_reps=3, seed=0)

    result = ExhaustiveTuner(
        space, machine, policy="online", eps=2**-4, reps=3,
        ground_truth=ground, seed=0,
    ).run()

    rows = [
        [o.label, g.mean_time * 1e3, o.predicted.exec_time * 1e3,
         100 * o.exec_error, f"{o.skip_fraction:.0%}"]
        for o, g in zip(result.outcomes, ground)
    ]
    print(format_table(
        ["config", "true_ms", "predicted_ms", "err_%", "skipped"],
        rows,
        title="Tuning the segment size (online propagation, eps = 2^-4)",
    ))
    best = result.outcomes[result.predicted_best]
    print(f"\nchosen: {best.label}  "
          f"(search speedup {result.search_speedup:.2f}x, "
          f"selection quality {result.selection_quality:.1%})")


if __name__ == "__main__":
    main()
