"""Kernel performance-model extrapolation across input sizes.

Section VIII of the paper identifies the key extension to its
methodology: "Extrapolation of individual kernel performance models to
characterize kernel performance across varying input sizes can benefit
a wide class of algorithms, including CANDMC's pipelined QR
factorization algorithm.  Such line-fitting approaches can permit
kernel execution to be more selective."

The problem it solves: CANDMC-style algorithms execute kernels on a
gradually shrinking trailing matrix, producing *many distinct
signatures* each observed only a few times — per-signature confidence
intervals never tighten, so selective execution stalls (the paper's
Fig. 5a shows the resulting 1.2x ceiling).

This module implements the line-fitting approach: kernels are grouped
into *families* (same routine name), and each family gets a least-
squares model of execution time against the kernel's analytic
complexity (flops for computation kernels, a latency/bandwidth pair for
communication kernels).  Once a family's fit is tight — relative RMS
residual below the tolerance, with enough distinct sizes observed — any
signature in the family can be predicted (and skipped) *without ever
having been measured*.

``ExtrapolatingModel`` is self-contained and consumed by
:class:`repro.critter.core.Critter` when ``extrapolate=True``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kernels.signature import KernelSignature

__all__ = ["FamilyFit", "ExtrapolatingModel"]


@dataclass(slots=True)
class _FamilyData:
    """Per-(routine-name) observations: features -> mean time."""

    # signature -> (features, sum_t, count)
    obs: Dict[KernelSignature, Tuple[Tuple[float, ...], float, int]] = field(
        default_factory=dict
    )

    def add(self, sig: KernelSignature, features: Tuple[float, ...], t: float) -> None:
        cur = self.obs.get(sig)
        if cur is None:
            self.obs[sig] = (features, t, 1)
        else:
            f, s, c = cur
            self.obs[sig] = (f, s + t, c + 1)


@dataclass(slots=True)
class FamilyFit:
    """A fitted linear model t(features) for one kernel family."""

    coeffs: Tuple[float, ...]
    rel_rms: float        # relative RMS residual over the fit points
    n_points: int         # distinct signatures fitted

    def predict(self, features: Tuple[float, ...]) -> float:
        return sum(c * x for c, x in zip(self.coeffs, features))


def _solve_least_squares(rows: List[Tuple[float, ...]], ys: List[float]) -> Optional[Tuple[float, ...]]:
    """Tiny dense normal-equation solver (numpy-free hot path not needed
    here; fitting happens rarely)."""
    import numpy as np

    a = np.asarray(rows, dtype=float)
    y = np.asarray(ys, dtype=float)
    try:
        coeffs, *_ = np.linalg.lstsq(a, y, rcond=None)
    except np.linalg.LinAlgError:  # pragma: no cover - degenerate input
        return None
    return tuple(float(c) for c in coeffs)


class ExtrapolatingModel:
    """Family-level regression models of kernel execution time.

    Parameters
    ----------
    min_points:
        Minimum number of *distinct signatures* a family needs before a
        fit is attempted (fits through fewer points would be trivially
        exact and wildly unreliable off the support).
    rel_tolerance:
        Maximum relative RMS residual for a fit to be considered
        trustworthy for prediction of unseen sizes.
    support_margin:
        How far outside the observed complexity range predictions are
        trusted: a size is predictable only when its complexity feature
        lies within ``[min/margin, max*margin]`` of the measured
        support.  This makes an extrapolating tuner *sample* the size
        axis logarithmically instead of fitting three neighbouring
        sizes and extrapolating across orders of magnitude.
    """

    def __init__(self, min_points: int = 3, rel_tolerance: float = 0.1,
                 support_margin: float = 4.0) -> None:
        self.min_points = int(min_points)
        self.rel_tolerance = float(rel_tolerance)
        self.support_margin = float(support_margin)
        self._families: Dict[str, _FamilyData] = {}
        self._fits: Dict[str, Optional[FamilyFit]] = {}
        self._dirty: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def features_of(sig: KernelSignature, flops: float) -> Tuple[float, ...]:
        """Model features: [1, complexity] per kernel kind.

        Computation kernels regress time on (constant, flops);
        communication kernels on (constant, bytes) — the alpha-beta
        model the machine actually follows, so families fit well when
        timings are consistent.
        """
        if sig.is_comm:
            nbytes = float(sig.params[0])
            return (1.0, nbytes)
        return (1.0, float(flops))

    def observe(self, sig: KernelSignature, flops: float, t: float) -> None:
        """Record one measured execution."""
        fam = self._families.get(sig.name)
        if fam is None:
            fam = _FamilyData()
            self._families[sig.name] = fam
        fam.add(sig, self.features_of(sig, flops), t)
        self._dirty[sig.name] = True

    # ------------------------------------------------------------------
    def fit(self, name: str) -> Optional[FamilyFit]:
        """(Re)fit a family; returns None when not fittable yet."""
        fam = self._families.get(name)
        if fam is None or len(fam.obs) < self.min_points:
            return None
        if not self._dirty.get(name, True) and name in self._fits:
            return self._fits[name]
        rows, ys = [], []
        for features, total, count in fam.obs.values():
            rows.append(features)
            ys.append(total / count)
        coeffs = _solve_least_squares(rows, ys)
        if coeffs is None:
            self._fits[name] = None
            return None
        # relative RMS residual across fit points
        sq = 0.0
        used = 0
        for features, total, count in fam.obs.values():
            mean = total / count
            if mean <= 0:
                continue
            pred = sum(c * x for c, x in zip(coeffs, features))
            sq += ((pred - mean) / mean) ** 2
            used += 1
        rel_rms = math.sqrt(sq / used) if used else math.inf
        fit = FamilyFit(coeffs=coeffs, rel_rms=rel_rms, n_points=len(fam.obs))
        self._fits[name] = fit
        self._dirty[name] = False
        return fit

    def predict(self, sig: KernelSignature, flops: float) -> Optional[float]:
        """Predicted mean time for a (possibly never-measured) kernel.

        Returns None unless the family's fit satisfies the tolerance,
        the requested size lies within the supported complexity range
        (times the margin), and the prediction is positive.
        """
        fit = self.fit(sig.name)
        if fit is None or fit.rel_rms > self.rel_tolerance:
            return None
        features = self.features_of(sig, flops)
        lo, hi = self._support(sig.name)
        x = features[-1]
        if not (lo / self.support_margin <= x <= hi * self.support_margin):
            return None
        value = fit.predict(features)
        return value if value > 0.0 else None

    def _support(self, name: str) -> Tuple[float, float]:
        """Observed [min, max] of the complexity feature for a family."""
        fam = self._families.get(name)
        if fam is None or not fam.obs:
            return (math.inf, -math.inf)
        xs = [features[-1] for features, _, _ in fam.obs.values()]
        return (min(xs), max(xs))

    def family_sizes(self) -> Dict[str, int]:
        """Distinct-signature counts per family (diagnostics)."""
        return {name: len(f.obs) for name, f in self._families.items()}

    def reset(self) -> None:
        self._families.clear()
        self._fits.clear()
        self._dirty.clear()
