"""Alternative path-propagation protocols (Section II.B).

Fig. 2's blue-text propagation logic "can be modified to reflect
various protocols": the default longest-path algorithm elects the
maximum-execution-time path, but communication-cost paths and the
slack method (filtering idle time) are equally valid elections for
the kernel-frequency adoption.
"""

import pytest

from repro.critter import Critter
from repro.kernels.blas import gemm_spec
from repro.sim import Machine, Simulator

GEMM = gemm_spec(96, 96, 96)[0]


def two_worlds(comm):
    """Rank 0: compute-heavy path.  Rank 1: comm-heavy path (with 2).

    After the final barrier, the exec-time winner is rank 0 (whose gemms
    outweigh the message chain), while the comm-time winner is rank
    1/2's chain (rank 0 communicates nothing before the barrier).
    """
    if comm.rank == 0:
        for _ in range(12):
            yield comm.compute(gemm_spec(96, 96, 96))
    elif comm.rank == 1:
        for i in range(10):
            yield comm.send(None, dest=2, tag=i, nbytes=1 << 14)
    elif comm.rank == 2:
        for i in range(10):
            yield comm.recv(source=1, tag=i, nbytes=1 << 14)
    yield comm.barrier()


def run_with_criterion(criterion):
    m = Machine(nprocs=4, seed=2)
    cr = Critter(policy="never-skip", path_criterion=criterion)
    Simulator(m, profiler=cr).run(two_worlds, run_seed=0)
    return cr


class TestCriteria:
    def test_exec_criterion_adopts_compute_path(self):
        cr = run_with_criterion("exec")
        # rank 3 (idle) adopted the compute-heavy winner's frequencies
        assert cr._Kt[3].get(GEMM, 0) == 12

    def test_comm_criterion_adopts_message_path(self):
        cr = run_with_criterion("comm")
        # losers adopt the winner's ~K wholesale (Fig. 2): the winning
        # path belongs to the message chain, carrying p2p frequencies
        p2p_keys = [k for k in cr._Kt[3] if k.name in ("send", "recv")]
        assert p2p_keys and cr._Kt[3][p2p_keys[0]] == 10
        # and the gemm path was NOT adopted by rank 3
        assert cr._Kt[3].get(GEMM, 0) == 0

    def test_comp_criterion(self):
        cr = run_with_criterion("comp")
        assert cr._Kt[3].get(GEMM, 0) == 12

    def test_slack_criterion_discounts_idle(self):
        # rank 3 waits the whole run; under slack it can never win the
        # election, so it must inherit someone's frequencies
        cr = run_with_criterion("slack")
        assert cr._Kt[3]  # adopted a non-idle path

    def test_invalid_criterion_rejected(self):
        with pytest.raises(ValueError, match="path_criterion"):
            Critter(path_criterion="vibes")

    def test_default_is_exec(self):
        assert Critter().path_criterion == "exec"

    def test_metrics_unaffected_by_criterion(self):
        # merge_max is per-metric regardless of the election: the final
        # critical-path metrics are identical under any criterion
        a = run_with_criterion("exec").last_report.predicted
        b = run_with_criterion("comm").last_report.predicted
        assert a.exec_time == b.exec_time
        assert a.comm_time == b.comm_time
        assert a.flops == b.flops


class TestRegionKernels:
    def test_region_declares_custom_kernel(self):
        from repro.sim import TraceRecorder

        def prog(comm):
            out = yield comm.region("block_to_cyclic", 256, flops=256 * 256,
                                    fn=lambda: "converted")
            return out

        m = Machine(nprocs=2, seed=0)
        tr = TraceRecorder()
        res = Simulator(m, trace=tr).run(prog)
        assert res.returns[0] == "converted"
        names = {e.sig.name for e in tr.by_kind("comp")}
        assert "block_to_cyclic" in names

    def test_region_selectively_executed(self):
        def prog(comm):
            for _ in range(20):
                yield comm.region("solver_loop", 64, flops=1e5)

        m = Machine(nprocs=2, seed=0)
        cr = Critter(policy="conditional", eps=0.5)
        for rep in range(2):
            Simulator(m, profiler=cr).run(prog, run_seed=rep)
        assert cr.last_report.skipped_kernels > 0
