"""Capital's recursive Cholesky on a 3D processor grid (Section V.A).

The algorithm recursively factors the SPD matrix::

    [A11      ]   [L11     ] [L11^T L21^T]        [I  ]   [L11     ] [L11^-1       ]
    [A21  A22 ] = [L21  L22] [      L22^T]  ,     [  I] = [L21  L22] [S21    L22^-1]

computing both ``L`` and ``L^-1`` (the inverse panels feed the
matrix-product updates).  Aside from the recursive calls it performs
triangular matrix products (``L21 = A21 L11^-T``, ``S21 = -L22^-1 L21
L11^-1``) and a symmetric rank-k update (``A22 - L21 L21^T``), all as
communication-efficient 3D-grid matrix multiplications: broadcasts
along two grid dimensions and a reduction along the third, with each of
the ``c = p^(1/3)`` layers holding a cyclic copy of the operands.

Base-case problems (dimension <= block size ``b``) are solved with
sequential LAPACK under one of the paper's three strategies:

1. gather the base-case matrix onto one process of a single layer,
   factor there, scatter back across the layer, broadcast along depth;
2. all-gather within *every* layer and factor redundantly everywhere;
3. all-gather within a single layer, factor redundantly across that
   layer, broadcast along the depth of the grid.

BSP cost (paper eq.): Theta(alpha n/b + beta (n^2/p^(2/3) + n b) +
gamma (n^3/p + n b^2)) — a genuine latency/bandwidth/compute trade-off
in the block size, which is why the optimum must be tuned.

Numeric mode: the full matrix rides on world rank 0 (replication taken
to its extreme) and every kernel's numeric callback operates on that
copy, so the recursion's mathematics is verified against numpy while
communication is charged for the true distributed layout.  Block-to-
cyclic distribution kernels are intercepted as custom ``blk2cyc``
kernels, as the paper does with Critter's code-region API.

Batching note: unlike the SLATE schedules, this algorithm emits **no**
same-signature kernel runs — every compute (3D-product block, base-case
potrf/trtri, blk2cyc) is separated by grid collectives, so
:class:`~repro.algorithms.batching.ComputeRunBatcher` adoption cannot
apply bit-identically (verified by tracing per-rank op streams).  Its
engine-throughput lever is instead the collective-arrival fast path:
the schedule is dominated by row/column/fiber/layer bcast-reduce
chains, exactly the event mix the engine dispatches inline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.algorithms.grids import Grid3D, make_grid3d
from repro.kernels import blas, lapack
from repro.kernels.signature import comp_signature
from repro.sim.comm import Comm

__all__ = ["CapitalCholeskyConfig", "capital_cholesky"]


@dataclass(frozen=True, slots=True)
class CapitalCholeskyConfig:
    """Tuning configuration of Capital's Cholesky."""

    n: int              # matrix dimension
    block: int          # base-case block size b
    c: int              # grid edge; p = c^3
    base_strategy: int  # 1 | 2 | 3

    @property
    def nprocs(self) -> int:
        return self.c**3

    def __post_init__(self) -> None:
        if self.base_strategy not in (1, 2, 3):
            raise ValueError("base_strategy must be 1, 2, or 3")
        if self.n % self.block != 0:
            raise ValueError(f"block {self.block} must divide n {self.n}")

    def label(self) -> str:
        return f"b={self.block} strat={self.base_strategy}"


def _blk2cyc_spec(sz: int):
    """Block-to-cyclic redistribution intercepted as a custom kernel."""
    return comp_signature("blk2cyc", sz), float(sz) * sz


class _NumState:
    """Numeric carrier state (world rank 0 only)."""

    __slots__ = ("W", "L", "V")

    def __init__(self, a: np.ndarray) -> None:
        n = a.shape[0]
        self.W = a.astype(float).copy()   # working copy (trailing updates)
        self.L = np.zeros((n, n))
        self.V = np.zeros((n, n))         # L^-1


def capital_cholesky(comm: Comm, config: CapitalCholeskyConfig,
                     a: Optional[np.ndarray] = None):
    """Rank program: factor ``a`` (or a symbolic n x n matrix).

    Returns ``(L, Linv)`` on world rank 0 in numeric mode, else None.
    """
    grid = yield from make_grid3d(comm, config.c)
    state = _NumState(a) if (a is not None and comm.world_rank == 0) else None
    yield from _cholesky_recursive(grid, config, 0, config.n, state)
    if state is not None:
        return state.L, state.V
    return None


def _cholesky_recursive(grid: Grid3D, config: CapitalCholeskyConfig,
                        i0: int, sz: int, state: Optional[_NumState]):
    if sz <= config.block:
        yield from _base_case(grid, config, i0, sz, state)
        return
    h = sz // 2
    i1 = i0 + h

    yield from _cholesky_recursive(grid, config, i0, h, state)

    # L21 = A21 * L11^-T   (triangular product on the 3D grid)
    def f_l21(s=state, a=i0, b=i1, w=h):
        s.L[b:b + w, a:a + w] = s.W[b:b + w, a:a + w] @ s.V[a:a + w, a:a + w].T
    yield from _matmul3d(grid, blas.trmm_spec, (h, h), f_l21 if state else None)

    # A22 -= L21 * L21^T   (symmetric rank-k update)
    def f_syrk(s=state, a=i0, b=i1, w=h):
        l21 = s.L[b:b + w, a:a + w]
        s.W[b:b + w, b:b + w] -= l21 @ l21.T
    yield from _matmul3d(grid, blas.syrk_spec, (h, h), f_syrk if state else None)

    yield from _cholesky_recursive(grid, config, i1, h, state)

    # S21 = -L22^-1 * (L21 * L11^-1): two 3D products building L^-1
    def f_t(s=state, a=i0, b=i1, w=h):
        s.V[b:b + w, a:a + w] = s.L[b:b + w, a:a + w] @ s.V[a:a + w, a:a + w]
    yield from _matmul3d(grid, blas.trmm_spec, (h, h), f_t if state else None)

    def f_s21(s=state, a=i0, b=i1, w=h):
        s.V[b:b + w, a:a + w] = -s.V[b:b + w, b:b + w] @ s.V[b:b + w, a:a + w]
    yield from _matmul3d(grid, blas.trmm_spec, (h, h), f_s21 if state else None)


def _matmul3d(grid: Grid3D, spec_builder, dims, fn):
    """3D-algorithm matrix product of an s x s update (s = dims[0]).

    Per processor: broadcast the A-operand share along the grid row,
    the B-operand share along the grid column, multiply local blocks,
    reduce contributions along the fiber (depth) dimension.
    """
    s = dims[0]
    c = grid.c
    loc = max(1, math.ceil(s / c))
    share = 8 * loc * loc
    yield grid.row.bcast(root=0, nbytes=share)
    yield grid.col.bcast(root=0, nbytes=share)
    if spec_builder is blas.syrk_spec:
        spec = blas.syrk_spec(loc, loc)
    elif spec_builder is blas.trmm_spec:
        spec = blas.trmm_spec(loc, loc)
    else:
        spec = blas.gemm_spec(loc, loc, loc)
    yield grid.comm.compute(spec, fn=fn)
    yield grid.fiber.reduce(root=0, nbytes=share)


def _base_case(grid: Grid3D, config: CapitalCholeskyConfig,
               i0: int, sz: int, state: Optional[_NumState]):
    """Solve a base-case block with the configured strategy."""
    c = grid.c
    share = 8 * max(1, math.ceil(sz / c)) ** 2  # per-rank cyclic share

    def f_base(s=state, a=i0, w=sz):
        blk = s.W[a:a + w, a:a + w]
        lb = lapack.potrf(blk)
        s.L[a:a + w, a:a + w] = lb
        s.V[a:a + w, a:a + w] = lapack.trtri(lb)

    # block-to-cyclic redistribution (custom intercepted kernel)
    yield grid.comm.compute(_blk2cyc_spec(sz))

    strat = config.base_strategy
    if strat == 1:
        # gather onto one process of layer 0, factor, scatter, depth-bcast
        if grid.k == 0:
            yield grid.layer.gather(root=0, nbytes=share)
            if grid.i == 0 and grid.j == 0:
                yield grid.comm.compute(lapack.potrf_spec(sz), fn=f_base if state else None)
                yield grid.comm.compute(lapack.trtri_spec(sz))
            yield grid.layer.scatter(root=0, nbytes=share)
        yield grid.fiber.bcast(root=0, nbytes=share)
    elif strat == 2:
        # all-gather within every layer; factor redundantly everywhere
        yield grid.layer.allgather(nbytes=share)
        yield grid.comm.compute(
            lapack.potrf_spec(sz),
            fn=f_base if (state and grid.comm.world_rank == 0) else None,
        )
        yield grid.comm.compute(lapack.trtri_spec(sz))
    else:
        # all-gather within layer 0, factor redundantly there, depth-bcast
        if grid.k == 0:
            yield grid.layer.allgather(nbytes=share)
            yield grid.comm.compute(
                lapack.potrf_spec(sz),
                fn=f_base if (state and grid.comm.world_rank == 0) else None,
            )
            yield grid.comm.compute(lapack.trtri_spec(sz))
        yield grid.fiber.bcast(root=0, nbytes=share)
