"""Kernel signatures and analytic BLAS/LAPACK cost models.

A *kernel* in the paper's terminology is a routine together with a
particular input signature (matrix dimensions for computation, message
size and sub-communicator shape for communication).  This package
provides:

* :class:`~repro.kernels.signature.KernelSignature` — the hashable
  identity under which Critter accumulates performance statistics,
* flop-count cost models for every BLAS/LAPACK routine the paper's four
  workloads invoke (``gemm``, ``syrk``, ``trsm``, ``trmm``, ``potrf``,
  ``trtri``, ``geqrf``/``geqrt``, ``tpqrt``, ``tpmqrt``, ``ormqr``,
  ``larfb``, ``getrf``),
* numeric reference implementations of those routines (used by the
  algorithms' data-carrying mode so distributed schedules can be
  verified against ``numpy``).
"""

from repro.kernels.signature import (
    KernelSignature,
    comm_signature,
    comp_signature,
    stable_hash,
)
from repro.kernels import blas, lapack

__all__ = [
    "KernelSignature",
    "comm_signature",
    "comp_signature",
    "stable_hash",
    "blas",
    "lapack",
]
