"""Schedule structure: operation counts against closed-form expectations."""

import math

import pytest

from repro.algorithms.capital_cholesky import CapitalCholeskyConfig, capital_cholesky
from repro.algorithms.slate_cholesky import SlateCholeskyConfig, slate_cholesky
from repro.algorithms.slate_qr import SlateQRConfig, slate_qr
from repro.sim import Machine, NoiseModel, Simulator, TraceRecorder


def traced(program, cfg, nprocs):
    m = Machine(nprocs=nprocs, seed=0)
    tr = TraceRecorder()
    sim = Simulator(m, noise=NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0),
                    trace=tr)
    sim.run(program, args=(cfg,))
    return tr


class TestCapitalStructure:
    def test_base_case_count(self):
        # the recursion reaches exactly n/b base cases, each with one
        # blk2cyc + one potrf (+ trtri) per participating rank set
        cfg = CapitalCholeskyConfig(n=128, block=16, c=2, base_strategy=2)
        tr = traced(capital_cholesky, cfg, 8)
        blk2cyc = [e for e in tr.by_kind("comp") if e.sig.name == "blk2cyc"]
        # strategy 2: all 8 ranks issue the conversion at each base case
        assert len(blk2cyc) == (128 // 16) * 8

    def test_matmul_collective_count_scales_with_recursion(self):
        # every internal recursion node issues 4 3D products, each with
        # 2 bcast calls + 1 reduce call; each call rendezvouses once per
        # communicator *group* (c^2 rows / cols / fibers on a c^3 grid);
        # internal nodes = n/b - 1
        cfg = CapitalCholeskyConfig(n=128, block=16, c=2, base_strategy=2)
        tr = traced(capital_cholesky, cfg, 8)
        colls = tr.by_kind("coll")
        bcasts = [e for e in colls if e.sig.name == "bcast"]
        reduces = [e for e in colls if e.sig.name == "reduce"]
        internal = 128 // 16 - 1
        groups = 2 * 2  # c^2 communicators per grid dimension
        assert len(reduces) == internal * 4 * groups
        assert len(bcasts) == internal * 4 * 2 * groups

    def test_strategy_changes_collective_mix(self):
        mixes = {}
        for strat in (1, 2, 3):
            cfg = CapitalCholeskyConfig(n=64, block=16, c=2, base_strategy=strat)
            tr = traced(capital_cholesky, cfg, 8)
            mixes[strat] = sorted({e.sig.name for e in tr.by_kind("coll")})
        assert "gather" in mixes[1] and "scatter" in mixes[1]
        assert "allgather" in mixes[2] and "gather" not in mixes[2]
        assert "allgather" in mixes[3] and "bcast" in mixes[3]


class TestSlateCholeskyStructure:
    def test_producer_consumer_sets_agree(self):
        # every isent panel tile is received exactly once: no leaked
        # sends (they would deadlock) and no duplicate transfers
        cfg = SlateCholeskyConfig(n=96, nb=16, pr=2, pc=2, lookahead=1)
        tr = traced(slate_cholesky, cfg, 4)
        # every p2p trace event represents a matched (send, recv) pair
        p2p = tr.by_kind("p2p")
        pairs = {(e.ranks, e.start) for e in p2p}
        assert len(pairs) == len(p2p)

    def test_gemm_count_is_strictly_lower_triangular(self):
        cfg = SlateCholeskyConfig(n=96, nb=16, pr=2, pc=2, lookahead=0)
        tr = traced(slate_cholesky, cfg, 4)
        t = 6  # tiles
        hist = {}
        for e in tr.by_kind("comp"):
            hist[e.sig.name] = hist.get(e.sig.name, 0) + 1
        # gemm count = sum over k of pairs (i > j > k)
        expect = sum((t - k - 1) * (t - k - 2) // 2 for k in range(t))
        assert hist["gemm"] == expect


class TestSlateQRStructure:
    def test_chain_length(self):
        cfg = SlateQRConfig(m=96, n=48, nb=16, w=8, pr=2, pc=2)
        tr = traced(slate_qr, cfg, 4)
        hist = {}
        for e in tr.by_kind("comp"):
            hist[e.sig.name] = hist.get(e.sig.name, 0) + 1
        mt, nt = 6, 3
        # one tpqrt per sub-diagonal tile of each panel column
        assert hist["tpqrt"] == sum(mt - k - 1 for k in range(nt))
        # pair updates: for each k, (mt-k-1) chain steps x (nt-k-1) columns
        assert hist["tpmqrt"] == sum((mt - k - 1) * (nt - k - 1) for k in range(nt))

    def test_w_does_not_change_flops(self):
        # inner blocking splits work without changing total panel flops
        totals = []
        for w in (4, 16):
            cfg = SlateQRConfig(m=64, n=32, nb=16, w=w, pr=2, pc=2)
            tr = traced(slate_qr, cfg, 4)
            totals.append(sum(e.duration for e in tr.by_kind("comp")
                              if e.sig.name == "geqr2"))
        assert totals[0] == pytest.approx(totals[1], rel=1e-9)
