"""Evaluation metrics (Section VI.A).

The paper evaluates Critter by: relative prediction error per
configuration, mean relative prediction error across configurations
(plotted as log2), autotuning speedup across the configuration space,
and the quality of the selected (predicted-optimal) configuration.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "relative_error",
    "mean_log2_error",
    "log2_error",
    "speedup",
    "selection_quality",
    "ERROR_FLOOR",
]

#: errors are floored here before taking log2 (exact predictions happen
#: in quiet-noise tests; the paper's axes likewise bottom out at 2^-10)
ERROR_FLOOR = 2.0**-14


def relative_error(predicted: float, truth: float) -> float:
    """|predicted - truth| / truth (0 truth with 0 prediction -> 0)."""
    if truth == 0.0:
        return 0.0 if predicted == 0.0 else math.inf
    return abs(predicted - truth) / abs(truth)


def log2_error(err: float, floor: float = ERROR_FLOOR) -> float:
    return math.log2(max(err, floor))


def mean_log2_error(errors: Iterable[float], floor: float = ERROR_FLOOR) -> float:
    """Mean of log2 relative errors — the y-axis of Figs. 4d-f / 5d-f."""
    errs = list(errors)
    if not errs:
        return log2_error(0.0, floor)
    return sum(log2_error(e, floor) for e in errs) / len(errs)


def speedup(baseline_time: float, tuned_time: float) -> float:
    """Autotuning speedup: baseline search time / accelerated search time."""
    if tuned_time <= 0.0:
        return math.inf
    return baseline_time / tuned_time


def selection_quality(
    predicted_times: Sequence[float], true_times: Sequence[float]
) -> float:
    """Fraction of optimal performance achieved by the predicted winner.

    1.0 means Critter selected the truly optimal configuration; the
    paper reports >= 0.99 for Cholesky and 1.0 for QR.
    """
    if not predicted_times or len(predicted_times) != len(true_times):
        raise ValueError("prediction/truth length mismatch")
    chosen = min(range(len(predicted_times)), key=predicted_times.__getitem__)
    best = min(true_times)
    if true_times[chosen] <= 0.0:
        return 1.0
    return best / true_times[chosen]
