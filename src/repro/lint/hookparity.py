"""Scheduler hook-parity analyzer.

The engine keeps two schedulers: the naive one round-trips every op
through the global event heap and dispatches it to a per-op handler
(``_do_compute``, ``_do_p2p``, ...); the fast path (``_run_fast``)
drives rank-local runs of ops inline, duplicating the handlers' hook
calls in its hot loop.  Bit-identity requires both to fire the *same*
profiler hooks — the invariant PR 6 debugged by hand when the
profiled-p2p cell silently diverged.

This analyzer extracts, from the AST of ``repro/sim/engine.py``:

1. the naive dispatch table — ``isinstance(op, X)`` branches of
   ``_dispatch_op`` mapped to their handler methods;
2. the fast path's inline regions — the ``cls is X`` branches of
   ``_run_fast``'s inner loop;
3. per-method profiler-hook reference sets, resolved through the local
   aliasing idioms the hot loop uses (``on_compute = prof.on_compute``;
   ``dispatch = self._dispatch_op if ... else self._dispatch``;
   the ``self._on_wait`` instance alias), and a method-level call graph
   that also treats constructing a continuation marker
   (``_FinishP2P``/``_FinishColl``) as an edge to its heap handler.

Two checks fail the lint:

* **per-op parity** — for every op class X that the fast path handles
  inline *with hook-visible effects* (at least one hook reference in
  the branch), the transitive hook set of the inline region must equal
  the transitive hook set of the naive handler for X.  Branches that
  only do bookkeeping and defer to the shared dispatch (waits,
  collective parks) are exempt: they run the handler itself, so parity
  is the identity.
* **wholesale reachability** — the union of hooks reachable from the
  fast entry point must equal the union reachable from the naive loop
  entries; a hook only one scheduler can ever fire is a divergence no
  fuzz leg is guaranteed to hit.

The analyzer is deliberately loud about its own blind spots: if the
Simulator class, the dispatch table, or the inline branches cannot be
located (a rename or restructuring), that is itself a finding — the
gate degrades to *failed*, never to *silently passing*.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import Analyzer, Finding, register_analyzer

__all__ = ["check_hook_parity", "PARITY_HOOKS"]

RULE_ID = "hook-parity"
ENGINE_REL = "repro/sim/engine.py"

#: observation hooks that must fire identically under both schedulers.
#: Lifecycle hooks (start_run/end_run/on_world) run in the shared
#: prologue/epilogue and intercept_cost is a pure cost query — neither
#: is scheduler-path state.
PARITY_HOOKS = frozenset({
    "on_compute", "post_compute",
    "on_collective", "post_collective",
    "on_p2p_post", "on_p2p", "post_p2p",
    "on_wait", "on_comm_split",
})

#: instance attributes that alias a profiler hook (bound once in run())
INSTANCE_HOOK_ALIASES = {"_on_wait": "on_wait"}

#: heap continuation markers: constructing one defers the op to the
#: named handler at a later heap position
CONTINUATION_HANDLERS = {
    "_FinishP2P": "_match_p2p",
    "_FinishColl": "_finish_collective",
}

SIMULATOR_CLASS = "Simulator"
FAST_ENTRY = "_run_fast"
NAIVE_DISPATCH = "_dispatch_op"
#: the naive loop body in run() calls these directly
NAIVE_ENTRIES = ("_dispatch", "_dispatch_op", "_match_p2p")


@dataclass(slots=True)
class _MethodInfo:
    hooks: Set[str] = field(default_factory=set)
    edges: Set[str] = field(default_factory=set)


def _hook_of_attr(node: ast.Attribute) -> Optional[str]:
    """Hook name if this attribute reference is a profiler hook."""
    if node.attr in PARITY_HOOKS:
        # skip references through a class object (e.g. the
        # ``type(self.profiler).on_wait is Profiler.on_wait`` probe)
        recv = node.value
        if isinstance(recv, ast.Name) and recv.id[:1].isupper():
            return None
        if isinstance(recv, ast.Call) and isinstance(recv.func, ast.Name) \
                and recv.func.id == "type":
            return None
        return node.attr
    if node.attr in INSTANCE_HOOK_ALIASES \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return INSTANCE_HOOK_ALIASES[node.attr]
    return None


class _RefCollector(ast.NodeVisitor):
    """Collects hook references and method edges from an AST region.

    ``aliases`` maps local names to the (hooks, methods) their binding
    expression referenced; a Name load of an alias imports its
    contents.  Attribute references resolve directly.
    """

    def __init__(self, method_names: Set[str],
                 aliases: Dict[str, Tuple[Set[str], Set[str]]]) -> None:
        self.method_names = method_names
        self.aliases = aliases
        self.hooks: Set[str] = set()
        self.edges: Set[str] = set()

    def visit_Attribute(self, node: ast.Attribute) -> None:
        hook = _hook_of_attr(node)
        if hook is not None:
            self.hooks.add(hook)
        elif isinstance(node.value, ast.Name) and node.value.id == "self" \
                and node.attr in self.method_names:
            self.edges.add(node.attr)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            if node.id in self.aliases:
                hooks, methods = self.aliases[node.id]
                self.hooks.update(hooks)
                self.edges.update(methods)
            elif node.id in CONTINUATION_HANDLERS:
                self.edges.add(CONTINUATION_HANDLERS[node.id])


def _collect_aliases(
    fn: ast.FunctionDef, method_names: Set[str]
) -> Dict[str, Tuple[Set[str], Set[str]]]:
    """Local-name bindings that carry hook or method references."""
    aliases: Dict[str, Tuple[Set[str], Set[str]]] = {}
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            continue
        hooks: Set[str] = set()
        methods: Set[str] = set()
        for sub in ast.walk(node.value):
            if isinstance(sub, ast.Attribute):
                hook = _hook_of_attr(sub)
                if hook is not None:
                    hooks.add(hook)
                elif isinstance(sub.value, ast.Name) \
                        and sub.value.id == "self" \
                        and sub.attr in method_names:
                    methods.add(sub.attr)
        if hooks or methods:
            aliases[node.targets[0].id] = (hooks, methods)
    return aliases


def _collect_region(nodes: List[ast.stmt], method_names: Set[str],
                    aliases: Dict[str, Tuple[Set[str], Set[str]]],
                    ) -> Tuple[Set[str], Set[str]]:
    col = _RefCollector(method_names, aliases)
    for n in nodes:
        col.visit(n)
    return col.hooks, col.edges


def _closure_hooks(entry_methods: Set[str],
                   info: Dict[str, _MethodInfo]) -> Set[str]:
    seen: Set[str] = set()
    stack = list(entry_methods)
    hooks: Set[str] = set()
    while stack:
        m = stack.pop()
        if m in seen or m not in info:
            continue
        seen.add(m)
        hooks.update(info[m].hooks)
        stack.extend(info[m].edges)
    return hooks


def _dispatch_table(fn: ast.FunctionDef) -> Dict[str, str]:
    """``{op class name: handler method}`` from the isinstance chain."""
    table: Dict[str, str] = {}
    for node in ast.walk(fn):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not (isinstance(test, ast.Call)
                and isinstance(test.func, ast.Name)
                and test.func.id == "isinstance"
                and len(test.args) == 2
                and isinstance(test.args[1], ast.Name)):
            continue
        op_cls = test.args[1].id
        for sub in node.body:
            for call in ast.walk(sub):
                if isinstance(call, ast.Call) \
                        and isinstance(call.func, ast.Attribute) \
                        and isinstance(call.func.value, ast.Name) \
                        and call.func.value.id == "self":
                    table[op_cls] = call.func.attr
                    break
            if op_cls in table:
                break
    return table


def _fast_branches(fn: ast.FunctionDef,
                   op_classes: Set[str]) -> Dict[str, List[ast.stmt]]:
    """``{op class name: [branch bodies]}`` for the ``cls is X`` chain."""
    branches: Dict[str, List[ast.stmt]] = {}

    def class_of_test(test: ast.AST) -> Optional[str]:
        for sub in ast.walk(test):
            if isinstance(sub, ast.Compare) \
                    and len(sub.ops) == 1 and isinstance(sub.ops[0], ast.Is) \
                    and isinstance(sub.comparators[0], ast.Name) \
                    and sub.comparators[0].id in op_classes:
                return sub.comparators[0].id
        return None

    for node in ast.walk(fn):
        if not isinstance(node, ast.If):
            continue
        op_cls = class_of_test(node.test)
        if op_cls is not None:
            branches.setdefault(op_cls, []).extend(node.body)
    return branches


def check_hook_parity(root: Path) -> Iterator[Finding]:
    """Run the analyzer against ``<root>/repro/sim/engine.py``."""
    path = root / ENGINE_REL
    if not path.is_file():
        # nothing to check in this tree (e.g. linting a fixture dir)
        return

    def fail(line: int, message: str) -> Finding:
        return Finding(RULE_ID, "error", ENGINE_REL, line, 0, message)

    tree = ast.parse(path.read_text(encoding="utf-8"), filename=ENGINE_REL)
    sim = next((n for n in tree.body if isinstance(n, ast.ClassDef)
                and n.name == SIMULATOR_CLASS), None)
    if sim is None:
        yield fail(1, f"cannot locate class {SIMULATOR_CLASS}: the "
                      f"hook-parity gate needs updating for this refactor")
        return

    methods: Dict[str, ast.FunctionDef] = {
        n.name: n for n in sim.body if isinstance(n, ast.FunctionDef)
    }
    for required in (FAST_ENTRY, NAIVE_DISPATCH):
        if required not in methods:
            yield fail(sim.lineno,
                       f"cannot locate Simulator.{required}: the hook-parity "
                       f"gate needs updating for this refactor")
            return
    method_names = set(methods)

    # per-method hook references and call-graph edges
    info: Dict[str, _MethodInfo] = {}
    alias_maps: Dict[str, Dict[str, Tuple[Set[str], Set[str]]]] = {}
    for name, fn in methods.items():
        aliases = _collect_aliases(fn, method_names)
        alias_maps[name] = aliases
        hooks, edges = _collect_region(fn.body, method_names, aliases)
        info[name] = _MethodInfo(hooks=hooks, edges=edges)

    # --- wholesale reachability parity --------------------------------
    fast_all = _closure_hooks({FAST_ENTRY}, info)
    naive_all = _closure_hooks(
        {m for m in NAIVE_ENTRIES if m in methods}, info)
    if fast_all != naive_all:
        only_fast = sorted(fast_all - naive_all)
        only_naive = sorted(naive_all - fast_all)
        parts = []
        if only_naive:
            parts.append(f"only the naive scheduler can fire "
                         f"{', '.join(only_naive)}")
        if only_fast:
            parts.append(f"only the fast path can fire "
                         f"{', '.join(only_fast)}")
        yield fail(methods[FAST_ENTRY].lineno,
                   f"scheduler hook sets diverge: {'; '.join(parts)} — "
                   f"both paths must be able to fire the identical "
                   f"profiler hook set")

    # --- per-op inline-region parity ----------------------------------
    table = _dispatch_table(methods[NAIVE_DISPATCH])
    if not table:
        yield fail(methods[NAIVE_DISPATCH].lineno,
                   f"cannot extract the op dispatch table from "
                   f"{NAIVE_DISPATCH}: the hook-parity gate needs updating")
        return
    branches = _fast_branches(methods[FAST_ENTRY], set(table))
    if not branches:
        yield fail(methods[FAST_ENTRY].lineno,
                   f"cannot locate the inline 'cls is <Op>' branches in "
                   f"{FAST_ENTRY}: the hook-parity gate needs updating")
        return

    fast_aliases = alias_maps[FAST_ENTRY]
    for op_cls in sorted(branches):
        body = branches[op_cls]
        hooks, edges = _collect_region(body, method_names, fast_aliases)
        # the fallback dispatch inside a branch hands the op to its own
        # naive handler, not to the whole table
        edges = {table[op_cls] if e in (NAIVE_DISPATCH, "_dispatch") else e
                 for e in edges}
        inline_hooks = hooks | _closure_hooks(edges, info)
        if not inline_hooks:
            # bookkeeping-only branch: the op defers to the shared
            # handler, which IS the naive path — parity by identity
            continue
        handler = table[op_cls]
        naive_hooks = info[handler].hooks | _closure_hooks(
            info[handler].edges, info)
        if inline_hooks != naive_hooks:
            missing_fast = sorted(naive_hooks - inline_hooks)
            extra_fast = sorted(inline_hooks - naive_hooks)
            parts = []
            if missing_fast:
                parts.append(
                    f"the fast path never fires {', '.join(missing_fast)} "
                    f"(naive handler {handler} does)")
            if extra_fast:
                parts.append(
                    f"the fast path fires {', '.join(extra_fast)} that "
                    f"{handler} never does")
            yield fail(
                body[0].lineno if body else methods[FAST_ENTRY].lineno,
                f"{op_cls}: inline fast-path hooks != naive handler "
                f"{handler} hooks — {'; '.join(parts)}")


register_analyzer(Analyzer(
    id=RULE_ID,
    severity="error",
    description=("fast and naive scheduler paths in sim/engine.py must "
                 "fire identical profiler hook sets (per op kind and "
                 "wholesale)"),
    run=check_hook_parity,
))
