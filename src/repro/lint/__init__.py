"""Determinism-contract linter: AST rules + semantic analyzers.

``repro lint`` (see :mod:`repro.cli`) drives :func:`run_lint` over a
source root; importing this package registers every rule.  See
:mod:`repro.lint.engine` for the architecture and the suppression
protocol, :mod:`repro.lint.rules` for the syntax rules, and
:mod:`repro.lint.hookparity` / :mod:`repro.lint.fingerprint` for the
two semantic analyzers.
"""

from repro.lint.engine import (
    ANALYZERS,
    RULES,
    Analyzer,
    Finding,
    LintReport,
    Rule,
    all_rule_ids,
    render_human,
    render_json,
    run_lint,
)

# importing the rule modules registers them
from repro.lint import fingerprint, hookparity, rules  # noqa: E402,F401

__all__ = [
    "ANALYZERS",
    "RULES",
    "Analyzer",
    "Finding",
    "LintReport",
    "Rule",
    "all_rule_ids",
    "render_human",
    "render_json",
    "run_lint",
]
