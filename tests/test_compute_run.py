"""ComputeRunOp: columnar emission must be bit-identical to per-op streams."""

import dataclasses

import pytest

from repro.kernels.blas import gemm_spec, trsm_spec
from repro.sim import TraceRecorder
from repro.sim.engine import Simulator
from repro.sim.presets import make_machine


GEMM = gemm_spec(24, 24, 24)
TRSM = trsm_spec(24, 24)


def sweep(style):
    """One panel loop emitted per-op, per-segment batches, or columnar."""

    def program(comm):
        op_g = comm.compute(GEMM)
        op_t = comm.compute(TRSM)
        for k in range(5):
            m = 5 - k
            if style == "per-op":
                for _ in range(m):
                    yield op_t
                for _ in range(m):
                    yield op_g
                for _ in range(40):
                    yield op_g
            elif style == "batch":
                yield comm.compute_batch(TRSM, m)
                yield comm.compute_batch(GEMM, m)
                yield comm.compute_batch(GEMM, 40)
            else:
                yield comm.compute_run([(TRSM, m), (GEMM, m), (GEMM, 40)])
            yield comm.allreduce(nbytes=64)
        return None

    return program


def run(style, preset="knl-fabric", fast_path=True, profiler=None,
        batched=False, trace=None):
    machine, noise = make_machine(preset, 4, seed=5)
    if batched:
        machine = dataclasses.replace(machine, batched_compute=True)
    sim = Simulator(machine, noise=noise, profiler=profiler,
                    fast_path=fast_path, trace=trace)
    return sim.run(sweep(style), run_seed=9)


def make_critter():
    from repro.critter import Critter

    return Critter(policy="online", eps=0.25)


class TestBitIdentity:
    @pytest.mark.parametrize("preset", ["knl-fabric", "quiet"])
    @pytest.mark.parametrize("fast_path", [True, False])
    def test_columnar_matches_per_op_and_batch(self, preset, fast_path):
        expect = run("per-op", preset=preset, fast_path=fast_path)
        for style in ("batch", "run"):
            res = run(style, preset=preset, fast_path=fast_path)
            assert res.makespan == expect.makespan
            assert res.rank_times == expect.rank_times

    @pytest.mark.parametrize("fast_path", [True, False])
    def test_columnar_matches_under_critter(self, fast_path):
        expect = run("per-op", fast_path=fast_path, profiler=make_critter())
        res = run("run", fast_path=fast_path, profiler=make_critter())
        assert res.makespan == expect.makespan

    def test_columnar_matches_batch_when_machine_batches(self):
        # batched_compute=True: one aggregate kernel per segment — the
        # run must agree with the equivalent per-segment batch ops
        expect = run("batch", batched=True)
        res = run("run", batched=True)
        assert res.makespan == expect.makespan

    def test_trace_forces_exact_expansion(self):
        # a trace pins global event order: the run falls back to the
        # step-wise expansion, still bit-identical and fully recorded
        base = run("run")
        tr = TraceRecorder()
        res = run("run", trace=tr)
        assert res.makespan == base.makespan
        comp = [ev for ev in tr.events if ev.kind == "comp"]
        # every sub-kernel of every segment shows up individually:
        # per rank and panel the run covers m + m + 40 kernels
        per_rank = sum(2 * (5 - k) + 40 for k in range(5))
        assert len(comp) == 4 * per_rank

    def test_schedulers_agree_on_columnar_streams(self):
        fast = run("run", fast_path=True)
        naive = run("run", fast_path=False)
        assert fast.makespan == naive.makespan


class TestResultDelivery:
    def test_fn_result_is_the_resume_value(self):
        machine, noise = make_machine("quiet", 2, seed=1)

        def program(comm):
            got = yield comm.compute_run([(GEMM, 2)],
                                         fn=lambda a: a * 2, args=(21,))
            return got

        res = Simulator(machine, noise=noise).run(program, run_seed=1)
        assert res.returns == [42, 42]


class TestValidation:
    def comm_of(self):
        from repro.sim.comm import Comm
        from repro.sim.engine import CommGroup

        return Comm(CommGroup(gid=0, world_ranks=(0, 1)), 0)

    def test_rejects_empty_segments(self):
        with pytest.raises(ValueError, match="at least one segment"):
            self.comm_of().compute_run([])

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError, match="count >= 1"):
            self.comm_of().compute_run([(GEMM, 0)])

    def test_rejects_bad_specs(self):
        with pytest.raises(TypeError, match="KernelSignature"):
            self.comm_of().compute_run([(("gemm", 1.0), 3)])
