"""Fine-grained Fig. 2 semantics: vote scopes, independence, determinism."""

import pytest

from repro.critter import Critter
from repro.kernels.blas import gemm_spec
from repro.kernels.signature import comm_signature
from repro.sim import Machine, NoiseModel, Simulator, TraceRecorder


class TestComputeDecisionIndependence:
    def test_ranks_decide_computation_independently(self):
        """By default, processors determine whether to execute
        computational kernels independently (Section III.B): a rank that
        has converged skips while a fresh rank still executes."""
        m = Machine(nprocs=2, seed=3)

        def uneven(comm, heavy_rank):
            # only one rank runs the kernel often enough to converge
            reps = 12 if comm.rank == heavy_rank else 2
            for _ in range(reps):
                yield comm.compute(gemm_spec(24, 24, 24))

        cr = Critter(policy="conditional", eps=0.4)
        tr = TraceRecorder()
        for rep in range(2):
            Simulator(m, profiler=cr, trace=tr).run(uneven, args=(0,),
                                                    run_seed=rep)
        skipped_by_rank = {0: 0, 1: 0}
        for e in tr.by_kind("comp"):
            if not e.executed:
                skipped_by_rank[e.ranks[0]] += 1
        assert skipped_by_rank[0] > 0
        # rank 1 had only 2+2 invocations: first forced, CI needs two
        # samples, so very little (possibly nothing) is skipped
        assert skipped_by_rank[0] > skipped_by_rank[1]


class TestCommVoteScope:
    def test_collective_requires_unanimity(self):
        """Communication kernels are skipped only if every rank in the
        sub-communicator deems them predictable; excluding one rank's
        compute stream keeps its stats diverging is impossible for
        collectives (shared timing), so emulate with min_samples."""
        m = Machine(nprocs=4, seed=3)

        def prog(comm):
            for _ in range(8):
                yield comm.allreduce(nbytes=1024)

        # all ranks share collective samples: after 2+ samples all agree
        cr = Critter(policy="conditional", eps=0.9)
        tr = TraceRecorder()
        for rep in range(2):
            Simulator(m, profiler=cr, trace=tr).run(prog, run_seed=rep)
        colls = tr.by_kind("coll")
        assert any(not e.executed for e in colls)
        # a skipped collective still synchronized all four ranks
        skipped = [e for e in colls if not e.executed][0]
        assert len(skipped.ranks) == 4

    def test_p2p_requires_both_endpoints(self):
        m = Machine(nprocs=2, seed=3)

        def prog(comm):
            for i in range(6):
                if comm.rank == 0:
                    yield comm.send(None, dest=1, tag=i, nbytes=2048)
                else:
                    yield comm.recv(source=0, tag=i, nbytes=2048)

        # receiver never allowed to skip -> no p2p kernel ever skipped
        cr = Critter(policy="conditional", eps=0.9, exclude=frozenset({"recv"}))
        tr = TraceRecorder()
        for rep in range(3):
            Simulator(m, profiler=cr, trace=tr).run(prog, run_seed=rep)
        assert all(e.executed for e in tr.by_kind("p2p"))


class TestSkippedCollectiveStillSynchronizes:
    def test_internal_allreduce_rendezvous(self):
        """Skipping the user collective must not desynchronize ranks:
        the internal profiling allreduce still runs (Fig. 2)."""
        m = Machine(nprocs=4, seed=5)

        def prog(comm):
            # rank-dependent compute then a collective, repeatedly
            for _ in range(6):
                for _ in range(comm.rank + 1):
                    yield comm.compute(gemm_spec(16, 16, 16))
                yield comm.barrier()

        cr = Critter(policy="conditional", eps=0.9)
        res1 = Simulator(m, profiler=cr).run(prog, run_seed=0)
        res2 = Simulator(m, profiler=cr).run(prog, run_seed=1)
        # in the second (heavily skipped) run ranks still finish together
        spread = max(res2.rank_times) - min(res2.rank_times)
        assert spread < res2.makespan * 0.5 + 1e-9


class TestSweepDeterminism:
    def test_bitwise_reproducible(self):
        from repro.autotune import capital_cholesky_space, tolerance_sweep
        from repro.autotune.tuner import default_machine

        space = capital_cholesky_space(n=64, c=2, b0=4, nconf=3)
        machine = default_machine(space, seed=13)

        def run():
            return tolerance_sweep(space, machine, policies=("online",),
                                   tolerances=[1.0, 2**-4], reps=2,
                                   full_reps=2, seed=7)

        s1, s2 = run(), run()
        for key in s1.points:
            r1, r2 = s1.points[key], s2.points[key]
            assert r1.search_time == r2.search_time
            assert [o.exec_error for o in r1.outcomes] == (
                [o.exec_error for o in r2.outcomes])


class TestEagerOnRealGrid:
    def test_eager_switches_off_via_3d_grid_channels(self):
        """Capital Cholesky builds row/col/fiber/layer channels; eager
        propagation must assemble world coverage from them (no world
        collectives occur after MPI_Init)."""
        from repro.algorithms.capital_cholesky import (
            CapitalCholeskyConfig,
            capital_cholesky,
        )

        cfg = CapitalCholeskyConfig(n=64, block=16, c=2, base_strategy=2)
        m = Machine(nprocs=8, seed=2)
        cr = Critter(policy="eager", eps=0.6)
        for rep in range(2):
            Simulator(m, profiler=cr).run(capital_cholesky, args=(cfg,),
                                          run_seed=rep)
        assert len(cr._global_off) > 0
        # a third run should be much faster (most kernels globally off)
        t3 = Simulator(m, profiler=cr).run(capital_cholesky, args=(cfg,),
                                           run_seed=9).makespan
        full = Critter(policy="never-skip")
        tf = Simulator(m, profiler=full).run(capital_cholesky, args=(cfg,),
                                             run_seed=9).makespan
        assert t3 < tf / 2
