"""Determinism-contract linter: rules, analyzers, CLI, stability.

Three layers of coverage:

* per-rule good/bad fixture pairs — every syntax rule fires on its bad
  snippet and stays silent on the idiomatic good one;
* analyzer mutation checks — seeded edits to copies of the *real*
  sources (a profiler hook dropped from one scheduler path, a phantom
  ``RunRequest`` field) must flip the linter to failing with the right
  rule id, and the unmutated copies must pass;
* contract checks on the shipped tree — ``repro lint`` exits 0, the
  JSON rendering is byte-stable, and the CLI maps clean/dirty/usage to
  exit codes 0/1/2.
"""

import json
from pathlib import Path

from repro.cli import main as cli_main
from repro.lint import render_json, run_lint
from repro.lint.fingerprint import check_fingerprint_completeness
from repro.lint.hookparity import check_hook_parity
from repro.runner.seeds import derive_seed, derive_unit

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"


# ----------------------------------------------------------------------
# fixture-tree helpers
# ----------------------------------------------------------------------
def make_tree(tmp_path: Path, files: dict) -> Path:
    """Write ``{rel_path: source}`` under a fresh root and return it."""
    root = tmp_path / "tree"
    for rel, source in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(source)
    return root


def rule_hits(root: Path, rule: str):
    report = run_lint(root, rule_filter=[rule])
    return [f for f in report.findings if f.rule == rule]


# ----------------------------------------------------------------------
# syntax rules: one bad / one good fixture per rule
# ----------------------------------------------------------------------
class TestUnseededRandom:
    def test_flags_global_stdlib_and_numpy_state(self, tmp_path):
        root = make_tree(tmp_path, {"repro/x.py": (
            "import random\n"
            "import numpy as np\n"
            "a = random.random()\n"
            "random.shuffle([1, 2])\n"
            "b = np.random.rand(3)\n"
        )})
        hits = rule_hits(root, "unseeded-random")
        assert sorted(f.line for f in hits) == [3, 4, 5]

    def test_seeded_generators_pass(self, tmp_path):
        root = make_tree(tmp_path, {"repro/x.py": (
            "import random\n"
            "import numpy as np\n"
            "rng = random.Random(7)\n"
            "a = rng.random()\n"
            "g = np.random.default_rng(7)\n"
            "b = g.normal()\n"
        )})
        assert rule_hits(root, "unseeded-random") == []


class TestWallClock:
    def test_flags_time_and_datetime(self, tmp_path):
        root = make_tree(tmp_path, {"repro/sim/x.py": (
            "import time\n"
            "import datetime\n"
            "t = time.time()\n"
            "p = time.perf_counter()\n"
            "d = datetime.datetime.now()\n"
        )})
        hits = rule_hits(root, "wall-clock")
        assert sorted(f.line for f in hits) == [3, 4, 5]

    def test_timeout_layer_is_allowlisted(self, tmp_path):
        root = make_tree(tmp_path, {"repro/runner/resilience.py": (
            "import time\n"
            "deadline = time.monotonic() + 5.0\n"
        )})
        assert rule_hits(root, "wall-clock") == []


class TestSetIteration:
    BAD = (
        "def total(sigs):\n"
        "    seen = set(sigs)\n"
        "    acc = 0.0\n"
        "    for s in seen:\n"
        "        acc += s.cost\n"
        "    return acc\n"
    )

    def test_flags_accumulation_over_set_in_sim(self, tmp_path):
        root = make_tree(tmp_path, {"repro/sim/x.py": self.BAD})
        hits = rule_hits(root, "set-iteration")
        assert len(hits) == 1 and hits[0].line == 4

    def test_out_of_scope_paths_ignored(self, tmp_path):
        # determinism of runner-side sets is covered by content
        # addressing, not iteration order: the rule only watches
        # the simulation and critter subtrees
        root = make_tree(tmp_path, {"repro/runner/x.py": self.BAD})
        assert rule_hits(root, "set-iteration") == []

    def test_sorted_iteration_passes(self, tmp_path):
        root = make_tree(tmp_path, {"repro/sim/x.py": (
            "def total(sigs):\n"
            "    acc = 0.0\n"
            "    for s in sorted(set(sigs)):\n"
            "        acc += s.cost\n"
            "    return acc\n"
        )})
        assert rule_hits(root, "set-iteration") == []


class TestMutableDefault:
    def test_flags_list_dict_set_defaults(self, tmp_path):
        root = make_tree(tmp_path, {"repro/x.py": (
            "def f(a=[]):\n    return a\n"
            "def g(b={}):\n    return b\n"
            "def h(c=set()):\n    return c\n"
        )})
        hits = rule_hits(root, "mutable-default")
        assert sorted(f.line for f in hits) == [1, 3, 5]

    def test_none_sentinel_passes(self, tmp_path):
        root = make_tree(tmp_path, {"repro/x.py": (
            "def f(a=None, b=(), c=0):\n    return a, b, c\n"
        )})
        assert rule_hits(root, "mutable-default") == []


class TestBroadExcept:
    def test_flags_bare_and_swallowed_exception(self, tmp_path):
        root = make_tree(tmp_path, {"repro/x.py": (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except:\n"
            "        pass\n"
            "def h():\n"
            "    try:\n"
            "        g()\n"
            "    except Exception:\n"
            "        return None\n"
        )})
        hits = rule_hits(root, "broad-except")
        assert sorted(f.line for f in hits) == [4, 9]

    def test_narrow_or_reraising_passes(self, tmp_path):
        root = make_tree(tmp_path, {"repro/x.py": (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except ValueError:\n"
            "        pass\n"
            "    except Exception:\n"
            "        log()\n"
            "        raise\n"
        )})
        assert rule_hits(root, "broad-except") == []


class TestSeedDerivation:
    def test_flags_arithmetic_seed_mixing(self, tmp_path):
        root = make_tree(tmp_path, {"repro/x.py": (
            "import random\n"
            "def f(seed):\n"
            "    return random.Random(seed * 7919 + 13)\n"
        )})
        hits = rule_hits(root, "seed-derivation")
        assert len(hits) == 1 and hits[0].line == 3

    def test_derive_seed_passes(self, tmp_path):
        root = make_tree(tmp_path, {"repro/x.py": (
            "import random\n"
            "from repro.runner.seeds import derive_seed\n"
            "def f(seed):\n"
            "    return random.Random(derive_seed(seed, 'search'))\n"
        )})
        assert rule_hits(root, "seed-derivation") == []


class TestBareOsReplace:
    def test_flags_publish_by_rename_outside_the_store(self, tmp_path):
        root = make_tree(tmp_path, {"repro/runner/mycache.py": (
            "import os\n"
            "def publish(tmp, path):\n"
            "    os.replace(tmp, path)\n"
            "    os.rename(tmp, path)\n"
        )})
        hits = rule_hits(root, "bare-os-replace")
        assert [h.line for h in hits] == [3, 4]
        assert "write_atomic" in hits[0].message

    def test_store_module_is_the_sanctioned_home(self, tmp_path):
        root = make_tree(tmp_path, {"repro/runner/store.py": (
            "import os\n"
            "def write_atomic(tmp, path):\n"
            "    os.replace(tmp, path)\n"
        )})
        assert rule_hits(root, "bare-os-replace") == []

    def test_write_atomic_call_passes(self, tmp_path):
        root = make_tree(tmp_path, {"repro/runner/other.py": (
            "from repro.runner.store import write_atomic\n"
            "def publish(path, data):\n"
            "    write_atomic(path, data)\n"
        )})
        assert rule_hits(root, "bare-os-replace") == []


# ----------------------------------------------------------------------
# suppression protocol
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_justified_allow_suppresses(self, tmp_path):
        root = make_tree(tmp_path, {"repro/x.py": (
            "import time\n"
            "t = time.time()  # repro: allow[wall-clock] -- test harness\n"
        )})
        report = run_lint(root)
        assert report.clean
        assert report.suppressed == 1

    def test_standalone_allow_covers_next_line(self, tmp_path):
        root = make_tree(tmp_path, {"repro/x.py": (
            "import time\n"
            "# repro: allow[wall-clock] -- test harness\n"
            "t = time.time()\n"
        )})
        report = run_lint(root)
        assert report.clean and report.suppressed == 1

    def test_unjustified_allow_is_a_finding(self, tmp_path):
        root = make_tree(tmp_path, {"repro/x.py": (
            "import time\n"
            "t = time.time()  # repro: allow[wall-clock]\n"
        )})
        report = run_lint(root)
        rules = {f.rule for f in report.findings}
        assert "suppression-needs-justification" in rules
        # the allow still matched, so the wall-clock hit itself is gone
        assert "wall-clock" not in rules

    def test_unknown_rule_id_is_a_finding(self, tmp_path):
        root = make_tree(tmp_path, {"repro/x.py": (
            "x = 1  # repro: allow[no-such-rule] -- whatever\n"
        )})
        report = run_lint(root)
        assert {f.rule for f in report.findings} == {"unknown-suppression"}

    def test_allow_does_not_cover_other_rules(self, tmp_path):
        root = make_tree(tmp_path, {"repro/x.py": (
            "import random\n"
            "a = random.random()  # repro: allow[wall-clock] -- wrong id\n"
        )})
        report = run_lint(root)
        assert "unseeded-random" in {f.rule for f in report.findings}


# ----------------------------------------------------------------------
# hook-parity analyzer: mutations of the real engine
# ----------------------------------------------------------------------
FAST_POST_COMPUTE = (
    "                    post_compute(rank, sig, execute, elapsed, flops)\n"
)
NAIVE_POST_COMPUTE = (
    "        prof.post_compute(st.rank, op.sig, execute, elapsed, op.flops)\n"
)


def engine_tree(tmp_path: Path, mutate=None) -> Path:
    """Copy the real engine into a scratch tree, optionally mutated."""
    src = (SRC_ROOT / "repro/sim/engine.py").read_text()
    if mutate is not None:
        mutated = mutate(src)
        assert mutated != src, "mutation needle did not match engine.py"
        src = mutated
    return make_tree(tmp_path, {"repro/sim/engine.py": src})


class TestHookParity:
    def test_shipped_engine_is_parity_clean(self, tmp_path):
        root = engine_tree(tmp_path)
        assert list(check_hook_parity(root)) == []

    def test_fast_path_hook_removal_is_caught(self, tmp_path):
        root = engine_tree(
            tmp_path, lambda s: s.replace(FAST_POST_COMPUTE, "", 1))
        findings = list(check_hook_parity(root))
        assert findings, "dropped fast-path post_compute went unnoticed"
        assert all(f.rule == "hook-parity" for f in findings)
        assert any("post_compute" in f.message for f in findings)

    def test_naive_path_hook_removal_is_caught(self, tmp_path):
        root = engine_tree(
            tmp_path, lambda s: s.replace(NAIVE_POST_COMPUTE, "", 1))
        findings = list(check_hook_parity(root))
        assert findings, "dropped naive-path post_compute went unnoticed"
        assert any("post_compute" in f.message for f in findings)

    def test_missing_engine_is_skipped(self, tmp_path):
        # linting a partial tree (fixtures, vendored subsets) is fine;
        # the analyzer only fires on a tree that has the engine
        root = make_tree(tmp_path, {"repro/other.py": "x = 1\n"})
        assert list(check_hook_parity(root)) == []

    def test_unrecognizable_engine_is_loud(self, tmp_path):
        # an engine.py the analyzer cannot parse structurally must be
        # a finding, not silence — silence is what passing looks like
        root = make_tree(
            tmp_path, {"repro/sim/engine.py": "class NotTheSimulator:\n"
                                              "    pass\n"})
        findings = list(check_hook_parity(root))
        assert findings
        assert all(f.rule == "hook-parity" for f in findings)


# ----------------------------------------------------------------------
# fingerprint-completeness analyzer: phantom-field drift
# ----------------------------------------------------------------------
NOISE_FIELD = "    noise: Optional[NoiseModel] = None\n"
REGIME_FIELD = '    regime: str = "default"\n'


def fingerprint_tree(tmp_path: Path, mutate_jobs=None, mutate_machine=None,
                     mutate_noise=None) -> Path:
    files = {}
    for rel in ("repro/runner/jobs.py", "repro/sim/machine.py",
                "repro/sim/noise.py"):
        files[rel] = (SRC_ROOT / rel).read_text()
    for rel, mutate in (("repro/runner/jobs.py", mutate_jobs),
                        ("repro/sim/machine.py", mutate_machine),
                        ("repro/sim/noise.py", mutate_noise)):
        if mutate is None:
            continue
        mutated = mutate(files[rel])
        assert mutated != files[rel], f"mutation needle did not match {rel}"
        files[rel] = mutated
    return make_tree(tmp_path, files)


class TestFingerprintCompleteness:
    def test_shipped_fingerprint_is_complete(self, tmp_path):
        root = fingerprint_tree(tmp_path)
        assert list(check_fingerprint_completeness(root)) == []

    def test_phantom_request_field_is_caught(self, tmp_path):
        root = fingerprint_tree(
            tmp_path,
            lambda s: s.replace(
                NOISE_FIELD, NOISE_FIELD + "    phantom_knob: int = 0\n", 1))
        findings = list(check_fingerprint_completeness(root))
        assert findings, "unfingerprinted RunRequest field went unnoticed"
        assert all(f.rule == "fingerprint-completeness" for f in findings)
        assert any("phantom_knob" in f.message for f in findings)

    def test_phantom_machine_regime_field_is_caught(self, tmp_path, capsys):
        # a regime-flavoured Machine field that request_fingerprint does
        # not read would let two differently-loaded machines share memo
        # entries — the analyzer must flag it and `repro lint` must gate
        root = fingerprint_tree(
            tmp_path,
            mutate_machine=lambda s: s.replace(
                REGIME_FIELD, REGIME_FIELD
                + '    turbo_regime: str = "default"\n', 1))
        findings = list(check_fingerprint_completeness(root))
        assert any("turbo_regime" in f.message for f in findings)
        assert cli_main(["lint", "--root", str(root)]) == 1
        capsys.readouterr()

    def test_phantom_noise_regime_field_is_caught(self, tmp_path, capsys):
        root = fingerprint_tree(
            tmp_path,
            mutate_noise=lambda s: s.replace(
                REGIME_FIELD, REGIME_FIELD
                + '    load_regime: str = "default"\n', 1))
        findings = list(check_fingerprint_completeness(root))
        assert any("load_regime" in f.message for f in findings)
        assert cli_main(["lint", "--root", str(root)]) == 1
        capsys.readouterr()

    def test_missing_jobs_module_is_skipped(self, tmp_path):
        root = make_tree(tmp_path, {"repro/other.py": "x = 1\n"})
        assert list(check_fingerprint_completeness(root)) == []

    def test_unrecognizable_jobs_module_is_loud(self, tmp_path):
        root = fingerprint_tree(
            tmp_path,
            lambda s: s.replace("class RunRequest:", "class Renamed:", 1))
        findings = list(check_fingerprint_completeness(root))
        assert findings
        assert all(f.rule == "fingerprint-completeness" for f in findings)


# ----------------------------------------------------------------------
# the shipped tree, the JSON contract, and the CLI
# ----------------------------------------------------------------------
class TestShippedTree:
    def test_src_is_lint_clean(self):
        report = run_lint(SRC_ROOT)
        assert report.clean, "\n".join(
            f"{f.path}:{f.line} [{f.rule}] {f.message}"
            for f in report.findings)

    def test_json_is_byte_stable(self):
        a = render_json(run_lint(SRC_ROOT))
        b = render_json(run_lint(SRC_ROOT))
        assert a == b

    def test_json_schema_shape(self, tmp_path):
        root = make_tree(tmp_path, {"repro/x.py": "import time\nt = time.time()\n"})
        doc = json.loads(render_json(run_lint(root)))
        assert doc["version"] == 1
        assert doc["tool"] == "repro-lint"
        assert set(doc) == {"version", "tool", "rules", "findings",
                            "counts", "files", "suppressed"}
        assert doc["counts"] == {"wall-clock": 1}
        (finding,) = doc["findings"]
        assert set(finding) == {"rule", "severity", "path", "line",
                                "col", "message"}
        assert finding["path"] == "repro/x.py"  # posix-relative

    def test_findings_sorted(self, tmp_path):
        root = make_tree(tmp_path, {
            "repro/b.py": "import time\nt = time.time()\n",
            "repro/a.py": "import random\nr = random.random()\n",
        })
        report = run_lint(root)
        keys = [f.sort_key() for f in report.findings]
        assert keys == sorted(keys)


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"repro/x.py": "x = 1\n"})
        assert cli_main(["lint", "--root", str(root)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"repro/x.py": "import time\nt = time.time()\n"})
        assert cli_main(["lint", "--root", str(root)]) == 1
        assert "wall-clock" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"repro/x.py": "x = 1\n"})
        assert cli_main(["lint", "--root", str(root),
                         "--rule", "no-such-rule"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_rule_filter_restricts(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"repro/x.py": (
            "import time\nimport random\n"
            "t = time.time()\nr = random.random()\n"
        )})
        assert cli_main(["lint", "--root", str(root),
                         "--rule", "unseeded-random"]) == 1
        out = capsys.readouterr().out
        assert "unseeded-random" in out and "wall-clock" not in out

    def test_json_format(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"repro/x.py": "x = 1\n"})
        assert cli_main(["lint", "--root", str(root), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "repro-lint"

    def test_default_root_is_shipped_tree(self, capsys):
        assert cli_main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out


# ----------------------------------------------------------------------
# seed derivation helpers
# ----------------------------------------------------------------------
class TestSeeds:
    def test_derive_seed_deterministic_and_distinct(self):
        assert derive_seed(0, "a") == derive_seed(0, "a")
        assert derive_seed(0, "a") != derive_seed(0, "b")
        assert derive_seed(0, "a") != derive_seed(1, "a")
        assert derive_seed(0, "a", 1) != derive_seed(0, "a", 2)

    def test_derive_seed_fits_rng_constructors(self):
        import random
        s = derive_seed(12345, "random-search")
        assert 0 <= s < 2**63
        random.Random(s)  # accepted as-is

    def test_derive_unit_range_and_determinism(self):
        vals = [derive_unit("fault", s, "key", 0) for s in range(50)]
        assert all(0.0 <= v < 1.0 for v in vals)
        assert len(set(vals)) == 50
        assert derive_unit("fault", 3, "k", 1) == derive_unit("fault", 3, "k", 1)

    def test_blob_format_matches_legacy_hashers(self):
        # faults._hash01 and the resilience backoff jitter hashed
        # sha256(":".join(str(part))) before seeds.py centralized them;
        # the helper must reproduce those draws bit-for-bit so old
        # fault plans replay identically
        import hashlib

        def legacy(*parts):
            blob = ":".join(str(p) for p in parts).encode("utf-8")
            h = hashlib.sha256(blob).digest()
            return int.from_bytes(h[:8], "big") / 2.0**64

        for parts in [("fault", 0, "abc", 1), ("action", 9, "k", 2),
                      (5, "req-key", 3)]:
            assert derive_unit(*parts) == legacy(*parts)

    def test_faults_alias_points_at_helper(self):
        from repro.runner import faults
        assert faults._hash01 is derive_unit
