"""Autotuning evaluation metrics."""

import math

import pytest

from repro.autotune.metrics import (
    ERROR_FLOOR,
    log2_error,
    mean_log2_error,
    relative_error,
    selection_quality,
    speedup,
)


class TestRelativeError:
    def test_basic(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)

    def test_symmetric_sign(self):
        assert relative_error(0.9, 1.0) == pytest.approx(0.1)

    def test_zero_truth_zero_pred(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_zero_truth_nonzero_pred(self):
        assert relative_error(1.0, 0.0) == math.inf


class TestLogErrors:
    def test_log2(self):
        assert log2_error(0.25) == -2.0

    def test_floor_applied(self):
        assert log2_error(0.0) == math.log2(ERROR_FLOOR)
        assert log2_error(1e-30) == math.log2(ERROR_FLOOR)

    def test_mean(self):
        assert mean_log2_error([0.25, 0.0625]) == pytest.approx(-3.0)

    def test_mean_empty(self):
        assert mean_log2_error([]) == math.log2(ERROR_FLOOR)


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_zero_tuned(self):
        assert speedup(10.0, 0.0) == math.inf


class TestSelectionQuality:
    def test_perfect_selection(self):
        pred = [3.0, 1.0, 2.0]
        true = [3.1, 0.9, 2.2]
        assert selection_quality(pred, true) == 1.0

    def test_suboptimal_selection(self):
        pred = [1.0, 2.0]   # picks config 0
        true = [2.0, 1.0]   # config 1 was truly best
        assert selection_quality(pred, true) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            selection_quality([1.0], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            selection_quality([], [])
