"""Results-digest generation from benchmark CSVs."""

import os

import pytest

from repro.analysis.summary import (
    SeriesFile,
    error_summary,
    load_series,
    render_summary,
    selection_summary,
    speedup_summary,
)


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "fig4a_capital_search_time.csv").write_text(
        "policy,1.0,0.0625\n"
        "conditional,0.01,0.05\n"
        "eager,0.002,0.04\n"
        "full-exec,0.06,0.06\n"
    )
    (d / "fig4e_capital_exec_error.csv").write_text(
        "policy,1.0,0.0625\n"
        "conditional,-3.0,-5.0\n"
    )
    (d / "selection_quality_capital_cholesky.csv").write_text(
        "policy,2^0,2^-4\n"
        "conditional,1.0,0.97\n"
        "online,1.0,1.0\n"
    )
    return str(d)


class TestLoadSeries:
    def test_parse(self, results_dir):
        sf = load_series(os.path.join(results_dir, "fig4a_capital_search_time.csv"))
        assert sf.tolerances == [1.0, 0.0625]
        assert sf.policies == ["conditional", "eager"]
        assert sf.reference == 0.06

    def test_no_reference(self, results_dir):
        sf = load_series(os.path.join(results_dir, "fig4e_capital_exec_error.csv"))
        assert sf.reference is None


class TestSummaries:
    def test_speedups(self, results_dir):
        sf = load_series(os.path.join(results_dir, "fig4a_capital_search_time.csv"))
        rows = dict((p, (lo, hi)) for p, lo, hi in speedup_summary(sf))
        assert rows["conditional"][0] == pytest.approx(6.0)
        assert rows["eager"][0] == pytest.approx(30.0)

    def test_speedup_requires_reference(self):
        sf = SeriesFile("x", [1.0], {"a": [1.0]})
        with pytest.raises(ValueError):
            speedup_summary(sf)

    def test_errors(self, results_dir):
        sf = load_series(os.path.join(results_dir, "fig4e_capital_exec_error.csv"))
        assert error_summary(sf) == [("conditional", -3.0, -5.0)]

    def test_selection(self, results_dir):
        worst = selection_summary(
            os.path.join(results_dir, "selection_quality_capital_cholesky.csv"))
        assert worst == pytest.approx(0.97)


class TestRender:
    def test_render_contains_sections(self, results_dir):
        md = render_summary(results_dir)
        assert "# Benchmark results digest" in md
        assert "speedups" in md
        assert "| fig4a_capital_search_time | eager | 30.00x" in md
        assert "| capital_cholesky | 0.970 |" in md

    def test_render_against_real_results(self):
        # the repo's own results directory (produced by the bench suite)
        if not os.path.isdir("results"):
            pytest.skip("bench results not present")
        md = render_summary("results")
        assert "digest" in md
