"""Block-cyclic tile maps: ownership, extents, enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.distribution import TileMap, band_rows, num_tiles, tile_dim


class TestTileArithmetic:
    def test_num_tiles_exact(self):
        assert num_tiles(64, 16) == 4

    def test_num_tiles_ragged(self):
        assert num_tiles(65, 16) == 5
        assert num_tiles(15, 16) == 1

    def test_tile_dim(self):
        assert tile_dim(0, 16, 60) == 16
        assert tile_dim(3, 16, 60) == 12

    def test_band_rows(self):
        assert list(band_rows(1, 8, 20)) == [8, 9, 10, 11, 12, 13, 14, 15]
        assert list(band_rows(2, 8, 20)) == [16, 17, 18, 19]


class TestOwnership:
    def test_block_cyclic_owner(self):
        tm = TileMap(m=64, n=64, nb=8, pr=2, pc=2)
        assert tm.owner(0, 0) == 0
        assert tm.owner(0, 1) == 1
        assert tm.owner(1, 0) == 2
        assert tm.owner(2, 2) == 0
        assert tm.owner(3, 1) == 3

    def test_owner_coords(self):
        tm = TileMap(m=64, n=64, nb=8, pr=2, pc=4)
        assert tm.owner_coords(5, 6) == (1, 2)
        assert tm.owner(5, 6) == 1 * 4 + 2

    def test_tile_shape_ragged(self):
        tm = TileMap(m=20, n=12, nb=8, pr=2, pc=2)
        assert tm.tile_shape(0, 0) == (8, 8)
        assert tm.tile_shape(2, 1) == (4, 4)
        assert tm.tile_nbytes(2, 1) == 8 * 16

    def test_tiles_of_partition(self):
        tm = TileMap(m=32, n=32, nb=8, pr=2, pc=2)
        seen = {}
        for rank in range(4):
            for t in tm.tiles_of(rank):
                assert t not in seen
                seen[t] = rank
        assert len(seen) == tm.mt * tm.nt

    def test_tiles_of_lower_only(self):
        tm = TileMap(m=32, n=32, nb=8, pr=2, pc=2)
        for rank in range(4):
            for (i, j) in tm.tiles_of(rank, lower_only=True):
                assert i >= j

    def test_col_tiles(self):
        tm = TileMap(m=64, n=64, nb=8, pr=2, pc=2)
        # rank 0 = grid (0,0): owns col-0 tiles with even i
        assert tm.col_tiles(0, 0) == [0, 2, 4, 6]
        assert tm.col_tiles(0, 0, i_min=3) == [4, 6]
        # rank 1 = grid (0,1) does not own column 0
        assert tm.col_tiles(1, 0) == []

    def test_row_tiles(self):
        tm = TileMap(m=64, n=64, nb=8, pr=2, pc=2)
        assert tm.row_tiles(0, 0) == [0, 2, 4, 6]
        assert tm.row_tiles(0, 0, j_min=1) == [2, 4, 6]
        assert tm.row_tiles(0, 0, j_min=1, j_max=4) == [2, 4]
        assert tm.row_tiles(2, 0) == []  # grid row 1 doesn't own tile row 0


@given(
    m=st.integers(min_value=8, max_value=200),
    nb=st.integers(min_value=1, max_value=32),
    pr=st.integers(min_value=1, max_value=4),
    pc=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=80, deadline=None)
def test_property_partition_complete_and_disjoint(m, nb, pr, pc):
    tm = TileMap(m=m, n=m, nb=nb, pr=pr, pc=pc)
    seen = set()
    for rank in range(pr * pc):
        tiles = list(tm.tiles_of(rank))
        assert len(set(tiles)) == len(tiles)
        assert not (seen & set(tiles))
        seen |= set(tiles)
        for (i, j) in tiles:
            assert tm.owner(i, j) == rank
    assert len(seen) == tm.mt * tm.nt
    # extents tile the matrix exactly
    assert sum(tile_dim(i, nb, m) for i in range(tm.mt)) == m
