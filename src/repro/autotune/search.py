"""Search strategies over configuration spaces.

The paper evaluates Critter under *exhaustive* search ("As our framework
can be applied to accelerate any configuration-space search strategy, we
use exhaustive search to evaluate the efficiency of Critter") — but the
acceleration composes with any enumeration order and any pruning rule.
This module provides the strategies a practical tuner would use, all
sharing the per-configuration measurement protocol of
:class:`~repro.autotune.tuner.ExhaustiveTuner`:

* :class:`ExhaustiveSearch`   — visit everything (the paper's baseline),
* :class:`RandomSearch`       — a uniformly sampled subset,
* :class:`SuccessiveHalving`  — measure cheaply everywhere, keep the
  predicted-best half, re-measure with more repetitions, repeat; the
  natural fit for Critter, whose *predictions* are cheap and whose
  accuracy grows with repetitions.

Measurements are described as runner jobs and submitted in batches —
every configuration a strategy visits in one round is independent, so
a parallel runner measures a whole round concurrently (and a cached
runner reuses measurements across strategies).  Eager propagation is
the exception: its statistics flow across configurations through one
shared profiler, so it is measured inline, sequentially.

Each strategy returns a :class:`SearchResult` with the total tuning
cost, the chosen configuration, and the selection quality against the
supplied ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.autotune.configspace import ConfigSpace
from repro.autotune.tuner import GroundTruth, _seed_for
from repro.critter.core import Critter
from repro.critter.policies import make_policy
from repro.runner import TUNE_CONFIG, Runner, RunnerError, RunRequest
from repro.runner.seeds import derive_seed
from repro.sim.engine import Simulator
from repro.sim.machine import Machine

__all__ = ["SearchResult", "ExhaustiveSearch", "RandomSearch", "SuccessiveHalving"]


@dataclass(slots=True)
class SearchResult:
    """Outcome of one search strategy run."""

    strategy: str
    chosen: int                       # configuration index
    tuning_time: float                # total simulated search cost
    evaluations: int                  # number of selective runs performed
    predictions: Dict[int, float]     # config index -> predicted time
    ground: Optional[List[GroundTruth]] = None
    #: configs whose measurement jobs were quarantined (skipped, not fatal)
    failures: List[str] = field(default_factory=list)

    @property
    def selection_quality(self) -> float:
        if not self.ground:
            raise ValueError("ground truth required for selection quality")
        best = min(g.mean_time for g in self.ground)
        return best / self.ground[self.chosen].mean_time


class _StrategyBase:
    """Shared measurement machinery."""

    def __init__(
        self,
        space: ConfigSpace,
        machine: Machine,
        policy: str = "online",
        eps: float = 2**-3,
        seed: int = 0,
        ground_truth: Optional[List[GroundTruth]] = None,
        runner: Optional[Runner] = None,
    ) -> None:
        self.space = space
        self.machine = machine
        self.policy = make_policy(policy)
        self.eps = eps
        self.seed = seed
        self.ground = ground_truth
        self.runner = runner if runner is not None else Runner()
        self._critter = Critter(policy=self.policy, eps=eps, exclude=space.exclude)
        self.evaluations = 0
        #: annotations for measurements a fault-tolerant runner quarantined
        self.failures: List[str] = []

    # ------------------------------------------------------------------
    def _measure_batch(
        self, indices: Sequence[int], reps: int, rep_offset: int = 0
    ) -> Dict[int, Tuple[float, float]]:
        """Measure ``reps`` selective executions of each configuration.

        Returns ``{index: (wall cost, predicted execution time)}``.  For
        statistics-resetting policies every configuration is an
        independent job; eager propagation measures inline through the
        strategy's shared Critter.  Configurations whose job a
        fault-tolerant runner quarantined are absent from the returned
        mapping and annotated in ``self.failures`` — a strategy then
        simply searches over the survivors.
        """
        if not self.policy.resets_between_configs:
            return {idx: self._measure_inline(idx, reps, rep_offset)
                    for idx in indices}
        requests = [
            RunRequest(
                kind=TUNE_CONFIG, space=self.space, machine=self.machine,
                seed=self.seed, reps=reps, config_index=idx,
                policy=self.policy.name, eps=float(self.eps),
                rep_offset=rep_offset,
            )
            for idx in indices
        ]
        out: Dict[int, Tuple[float, float]] = {}
        for idx, res in zip(indices, self.runner.run(requests)):
            if res.failed:
                self.failures.append(
                    res.error or f"config {idx}: measurement failed")
                continue
            cr = res.outputs[0]
            self.evaluations += reps
            out[idx] = (cr.tuning_time, cr.predicted.exec_time)
        return out

    def _measure_inline(self, idx: int, reps: int,
                        rep_offset: int = 0) -> Tuple[float, float]:
        """Sequential measurement through the persistent Critter."""
        if self.policy.resets_between_configs:
            self._critter.reset_statistics()
        cost = 0.0
        for rep in range(reps):
            res = Simulator(self.machine, profiler=self._critter).run(
                self.space.program,
                args=self.space.args_for(self.space.configs[idx]),
                run_seed=_seed_for(self.seed, idx, rep_offset + rep),
            )
            cost += res.makespan
            self.evaluations += 1
        return cost, self._critter.last_report.predicted_exec_time

    def _measure(self, idx: int, reps: int, rep_offset: int = 0) -> Tuple[float, float]:
        """Run ``reps`` selective executions of config ``idx``.

        Returns (wall cost, predicted execution time)."""
        return self._measure_batch([idx], reps, rep_offset)[idx]

    def _best(self, preds: Dict[int, float]) -> int:
        if not preds:
            raise RunnerError(
                f"{self.name} search: every measurement failed "
                f"({len(self.failures)} quarantined jobs); first failure: "
                f"{self.failures[0] if self.failures else 'unknown'}")
        return min(preds, key=preds.get)

    def _finish(self, total: float, preds: Dict[int, float]) -> SearchResult:
        return SearchResult(self.name, self._best(preds), total,
                            self.evaluations, preds, self.ground,
                            failures=list(self.failures))


class ExhaustiveSearch(_StrategyBase):
    """The paper's protocol: every configuration, equal repetitions."""

    name = "exhaustive"

    def run(self, reps: int = 3) -> SearchResult:
        measured = self._measure_batch(list(range(len(self.space))), reps)
        total = sum(cost for cost, _ in measured.values())
        preds = {idx: pred for idx, (_, pred) in measured.items()}
        return self._finish(total, preds)


class RandomSearch(_StrategyBase):
    """Uniformly sample a budget of configurations."""

    name = "random"

    def run(self, budget: int, reps: int = 3) -> SearchResult:
        rng = random.Random(derive_seed(self.seed, "random-search"))
        budget = min(budget, len(self.space))
        picks = rng.sample(range(len(self.space)), budget)
        measured = self._measure_batch(picks, reps)
        total = sum(cost for cost, _ in measured.values())
        preds = {idx: pred for idx, (_, pred) in measured.items()}
        return self._finish(total, preds)


class SuccessiveHalving(_StrategyBase):
    """Measure everything cheaply, halve on predictions, deepen reps.

    Critter's statistics persist within a configuration between rounds
    (non-eager policies reset only when a *different* configuration is
    measured), so surviving configurations get progressively cheaper
    *and* more accurately predicted — the synergy the paper's Section
    VII anticipates between pruning-based tuners and selective
    execution.  Each round's survivors are measured as one parallel
    batch.
    """

    name = "successive-halving"

    def run(self, base_reps: int = 1, eta: int = 2) -> SearchResult:
        alive = list(range(len(self.space)))
        total = 0.0
        preds: Dict[int, float] = {}
        reps = base_reps
        round_no = 0
        while alive:
            measured = self._measure_batch(alive, reps,
                                           rep_offset=round_no * 16)
            for idx, (cost, pred) in measured.items():
                total += cost
                preds[idx] = pred
            # a quarantined measurement leaves its config without a
            # prediction this round: drop it from the bracket
            alive = [i for i in alive if i in preds]
            if len(alive) <= 1:
                break
            alive.sort(key=lambda i: preds[i])
            alive = alive[: max(1, len(alive) // eta)]
            reps *= eta
            round_no += 1
        return self._finish(total, preds)
