"""repro — reproduction of "Accelerating Distributed-Memory Autotuning
via Statistical Analysis of Execution Paths" (Hutter & Solomonik,
IPDPS 2021, arXiv:2103.01304).

The package implements the paper's Critter framework end to end:

* :mod:`repro.sim` — a discrete-event simulator of a distributed-memory
  MPI machine (the Stampede2 substitute),
* :mod:`repro.kernels` — kernel signatures and BLAS/LAPACK cost models,
* :mod:`repro.critter` — the approximate-autotuning framework: online
  critical-path analysis, statistical kernel profiles, selective
  execution policies, aggregate channels,
* :mod:`repro.algorithms` — the four dense factorization workloads
  (Capital / SLATE Cholesky, CANDMC / SLATE QR),
* :mod:`repro.autotune` — configuration spaces, exhaustive tuner, and
  tolerance sweeps reproducing the paper's evaluation,
* :mod:`repro.bsp` — analytic BSP cost models,
* :mod:`repro.analysis` — result table/CSV helpers.

Quickstart::

    from repro import Machine, Simulator, Critter
    from repro.autotune import capital_cholesky_space, ExhaustiveTuner

    space = capital_cholesky_space()
    tuner = ExhaustiveTuner(space, policy="online", eps=2**-4)
    result = tuner.run()
    print(result.search_speedup, result.selection_quality)
"""

from repro.critter import Critter, RunReport
from repro.sim import (
    Comm,
    DeadlockError,
    Machine,
    NoiseModel,
    NullProfiler,
    Profiler,
    SimResult,
    Simulator,
    TraceRecorder,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Critter",
    "RunReport",
    "Machine",
    "NoiseModel",
    "Simulator",
    "SimResult",
    "Comm",
    "Profiler",
    "NullProfiler",
    "TraceRecorder",
    "DeadlockError",
]
