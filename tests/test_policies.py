"""Policy traits and alpha (execution-count) selection."""

import pytest

from repro.critter.policies import POLICY_NAMES, Policy, make_policy


class TestRegistry:
    def test_all_paper_policies_present(self):
        for name in ("conditional", "eager", "local", "online", "apriori"):
            assert make_policy(name).name == name

    def test_full_alias(self):
        assert make_policy("full").never_skip
        assert make_policy("never-skip").never_skip

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("bogus")

    def test_passthrough(self):
        p = make_policy("online")
        assert make_policy(p) is p

    def test_policy_names_list(self):
        assert set(POLICY_NAMES) == {"conditional", "eager", "local", "online", "apriori"}


class TestTraits:
    def test_eager_persists_and_skips_first(self):
        p = make_policy("eager")
        assert p.eager
        assert not p.force_first_execution
        assert not p.resets_between_configs

    def test_non_eager_policies_reset(self):
        for name in ("conditional", "local", "online", "apriori"):
            p = make_policy(name)
            assert p.resets_between_configs
            assert p.force_first_execution

    def test_apriori_needs_offline(self):
        assert make_policy("apriori").needs_offline_counts
        assert not make_policy("online").needs_offline_counts


class TestAlpha:
    def test_conditional_ignores_counts(self):
        p = make_policy("conditional")
        assert p.alpha(local_count=50, path_count=100, offline_count=200) == 1

    def test_eager_ignores_counts(self):
        assert make_policy("eager").alpha(9, 9, 9) == 1

    def test_local_uses_local(self):
        assert make_policy("local").alpha(7, 100, None) == 7

    def test_online_uses_path(self):
        assert make_policy("online").alpha(7, 100, None) == 100

    def test_apriori_uses_offline(self):
        assert make_policy("apriori").alpha(7, 100, 33) == 33

    def test_apriori_defaults_to_one_without_table(self):
        assert make_policy("apriori").alpha(7, 100, None) == 1

    def test_alpha_floor_is_one(self):
        for name in ("local", "online", "apriori"):
            assert make_policy(name).alpha(0, 0, 0) == 1

    def test_unknown_count_source(self):
        p = Policy("x", "weird")
        with pytest.raises(ValueError):
            p.alpha(1, 1, 1)
