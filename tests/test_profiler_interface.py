"""The Profiler interception seam: hook ordering and default behavior."""

import pytest

from repro.kernels.blas import gemm_spec
from repro.sim import Machine, NoiseModel, NullProfiler, Profiler, Simulator


class RecordingProfiler(Profiler):
    """Records every hook invocation in order."""

    def __init__(self):
        self.events = []

    def start_run(self, sim, run_seed):
        self.events.append(("start_run", run_seed))

    def end_run(self, sim, makespan):
        self.events.append(("end_run", makespan))

    def on_world(self, group):
        self.events.append(("on_world", group.size))

    def on_comm_split(self, parent, subgroups):
        self.events.append(("on_comm_split", len(subgroups)))

    def on_compute(self, rank, sig, flops):
        self.events.append(("on_compute", rank, sig.name))
        return True

    def post_compute(self, rank, sig, executed, elapsed, flops):
        self.events.append(("post_compute", rank, executed))

    def on_collective(self, group, sig, root, arrivals):
        self.events.append(("on_collective", sig.name, len(arrivals)))
        return True

    def post_collective(self, group, sig, arrivals, executed, comm_time, completion):
        self.events.append(("post_collective", sig.name, executed))

    def on_p2p_post(self, record):
        self.events.append(("on_p2p_post", record.kind))

    def on_p2p(self, sig, send, recv):
        self.events.append(("on_p2p", send.world_rank, recv.world_rank))
        return True

    def post_p2p(self, sig, send, recv, executed, comm_time, completion):
        self.events.append(("post_p2p", executed))


def program(comm):
    yield comm.compute(gemm_spec(8, 8, 8))
    sub = yield comm.split(color=comm.rank % 2, key=comm.rank)
    yield sub.allreduce(nbytes=64)
    if comm.rank == 0:
        yield comm.send(None, dest=1, nbytes=32)
    elif comm.rank == 1:
        yield comm.recv(source=0, nbytes=32)


@pytest.fixture
def recorded():
    prof = RecordingProfiler()
    m = Machine(nprocs=4, seed=0)
    Simulator(m, profiler=prof).run(program, run_seed=3)
    return prof.events


class TestHookOrdering:
    def test_lifecycle_brackets(self, recorded):
        assert recorded[0] == ("start_run", 3)
        assert recorded[1] == ("on_world", 4)
        assert recorded[-1][0] == "end_run"

    def test_pre_before_post(self, recorded):
        kinds = [e[0] for e in recorded]
        assert kinds.index("on_compute") < kinds.index("post_compute")
        assert kinds.index("on_collective") < kinds.index("post_collective")
        assert kinds.index("on_p2p") < kinds.index("post_p2p")

    def test_split_reported_once_with_two_groups(self, recorded):
        splits = [e for e in recorded if e[0] == "on_comm_split"]
        assert splits == [("on_comm_split", 2)]

    def test_compute_hooks_per_rank(self, recorded):
        assert sum(1 for e in recorded if e[0] == "on_compute") == 4

    def test_collective_sees_all_arrivals(self, recorded):
        colls = [e for e in recorded if e[0] == "on_collective"]
        # two sub-communicators of size 2
        assert sorted(c[2] for c in colls) == [2, 2]

    def test_p2p_records_posted_before_match(self, recorded):
        kinds = [e[0] for e in recorded]
        assert kinds.index("on_p2p_post") < kinds.index("on_p2p")


class TestDefaults:
    def test_null_profiler_executes_everything(self):
        m = Machine(nprocs=2, seed=0)
        res = Simulator(m, profiler=NullProfiler()).run(program, run_seed=0)
        assert res.makespan > 0

    def test_base_profiler_hooks_return_execute(self):
        p = Profiler()
        assert p.on_compute(0, gemm_spec(4, 4, 4)[0], 1.0) is True
        assert p.intercept_cost(8) == 0.0

    def test_profiler_decisions_respected(self):
        class SkipEverything(Profiler):
            def on_compute(self, rank, sig, flops):
                return False

        m = Machine(nprocs=1, seed=0)

        def prog(comm):
            yield comm.compute(gemm_spec(64, 64, 64))

        quiet = NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0)
        t_skip = Simulator(m, noise=quiet, profiler=SkipEverything()).run(prog).makespan
        t_full = Simulator(m, noise=quiet).run(prog).makespan
        assert t_skip < t_full
        assert t_skip == pytest.approx(m.skip_overhead)
