"""End-to-end analysis pipeline: sweep -> CSV -> summary digest."""

import math
import os

import pytest

from repro.analysis import save_csv
from repro.analysis.summary import load_series, render_summary, speedup_summary
from repro.autotune import capital_cholesky_space, tolerance_sweep
from repro.autotune.tuner import default_machine


@pytest.fixture(scope="module")
def sweep_csv_dir(tmp_path_factory):
    """A real (miniature) sweep saved exactly the way benches save it."""
    space = capital_cholesky_space(n=64, c=2, b0=4, nconf=3)
    machine = default_machine(space, seed=2)
    sweep = tolerance_sweep(space, machine, policies=("conditional", "online"),
                            tolerances=[1.0, 2**-4], reps=2, full_reps=2, seed=0)
    d = tmp_path_factory.mktemp("results")
    rows = [[p] + sweep.series(p, "search_time") for p in sweep.policies]
    rows.append(["full-exec"] + [sweep.full_search_time] * 2)
    save_csv(str(d / "figX_test_search_time.csv"),
             ["policy"] + [str(t) for t in sweep.tolerances], rows)
    err_rows = [[p] + sweep.series(p, "mean_log2_exec_error")
                for p in sweep.policies]
    save_csv(str(d / "figY_test_exec_error.csv"),
             ["policy"] + [str(t) for t in sweep.tolerances], err_rows)
    return str(d), sweep


class TestRoundtrip:
    def test_series_survive_csv(self, sweep_csv_dir):
        d, sweep = sweep_csv_dir
        sf = load_series(os.path.join(d, "figX_test_search_time.csv"))
        assert sf.tolerances == [1.0, 0.0625]
        for p in ("conditional", "online"):
            assert sf.series[p] == sweep.series(p, "search_time")

    def test_speedups_consistent_with_sweep(self, sweep_csv_dir):
        d, sweep = sweep_csv_dir
        sf = load_series(os.path.join(d, "figX_test_search_time.csv"))
        table = {p: lo for p, lo, _ in speedup_summary(sf)}
        for p in ("conditional", "online"):
            direct = sweep.full_search_time / sweep.series(p, "search_time")[0]
            assert table[p] == pytest.approx(direct)

    def test_digest_renders_from_sweep_output(self, sweep_csv_dir):
        d, _ = sweep_csv_dir
        md = render_summary(d)
        assert "figX_test_search_time" in md
        assert "figY_test_exec_error" in md
