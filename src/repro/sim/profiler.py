"""The interposition interface between the simulator and profiling tools.

In the real system Critter intercepts MPI/BLAS/LAPACK through the PMPI
profiling layer (Fig. 2 of the paper).  The simulator reproduces the
same seam: every kernel-level event calls into a :class:`Profiler`
*before* execution (to obtain the selective-execution decision) and
*after* (with measured timings, so the tool can update statistics and
its critical-path pathset).

Only information that the real tool could obtain through its internal
messages is passed across this interface — per-event participant
arrival times and measured durations — keeping the simulated Critter
honest about what each rank can know.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict

from repro.kernels.signature import KernelSignature

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import CommGroup, P2PRecord, Simulator

__all__ = ["Decision", "Profiler", "NullProfiler"]


@dataclass(frozen=True, slots=True)
class Decision:
    """Outcome of a pre-execution hook."""

    execute: bool


class Profiler:
    """Base class: full execution, no accounting, zero overhead.

    Subclasses override the hooks they need.  The engine guarantees the
    calling order: ``start_run`` → ``on_world`` → interleaved event
    hooks → ``end_run``.
    """

    #: whether interception overhead (internal messages) is charged
    active: bool = False

    #: Declares the profiler safe for the engine's run-to-completion
    #: fast path, which drives a rank's consecutive local events inline
    #: instead of round-tripping each through the global event heap —
    #: including parking non-final collective arrivals in place (the
    #: park has no hooks; ``on_collective``/``post_collective`` still
    #: fire at the completion's exact global heap position with the
    #: exact per-rank arrival times).  Per-rank hook order, arrival
    #: times, and RNG draw order are always preserved, but hooks of
    #: *different* ranks may interleave differently between
    #: synchronization points.  A profiler may set this True iff its
    #: pre-execution decisions depend only on state that cannot change
    #: between a rank's consecutive local events — i.e. per-rank state
    #: plus state mutated only at events involving that rank.  Per-rank
    #: state may alias shared *immutable* objects (Critter's
    #: copy-on-write count snapshots): that stays inline-safe as long
    #: as every mutation lands in rank-private storage and structural
    #: changes happen only inside sync-point hooks whose participants
    #: include the affected rank.  Conservative default: False (unknown
    #: subclasses keep exact global hook ordering).
    inline_safe: bool = False

    #: Declares that :meth:`on_p2p_post` ignores every record whose
    #: ``kind`` is not ``"isend"``.  The engine may then elide the call
    #: for send/recv/irecv posts on its hot paths — both schedulers
    #: apply the same gate, so naive and fast hook sequences stay
    #: identical.  Conservative default: False (every post is
    #: delivered).  Critter sets it: only buffered isends need their
    #: path state frozen at post time.
    p2p_post_isend_only: bool = False

    # -- run lifecycle -------------------------------------------------
    def start_run(self, sim: "Simulator", run_seed: int) -> None:
        """Called before rank programs start; reset per-run state here."""

    def end_run(self, sim: "Simulator", makespan: float) -> None:
        """Called after all ranks finished."""

    # -- communicator management ---------------------------------------
    def on_world(self, group: "CommGroup") -> None:
        """MPI_Init interception: the world communicator exists."""

    def on_comm_split(self, parent: "CommGroup", subgroups: list) -> None:
        """MPI_Comm_split interception (aggregate-channel construction)."""

    # -- overheads -------------------------------------------------------
    def intercept_cost(self, nranks: int) -> float:
        """Simulated cost of the tool's internal message exchange."""
        return 0.0

    # -- computational kernels -------------------------------------------
    def on_compute(self, rank: int, sig: KernelSignature, flops: float) -> bool:
        """Return True to execute the kernel, False to skip it."""
        return True

    def post_compute(
        self,
        rank: int,
        sig: KernelSignature,
        executed: bool,
        elapsed: float,
        flops: float,
    ) -> None:
        """Observe the outcome (elapsed is the charged wall time)."""

    # -- collectives -------------------------------------------------------
    def on_collective(
        self,
        group: "CommGroup",
        sig: KernelSignature,
        root: int,
        arrivals: Dict[int, float],
    ) -> bool:
        """Decide execution for a blocking collective.

        ``arrivals`` maps world rank -> arrival time; the hook is called
        once all participants arrived (this is where the real tool's
        internal ``PMPI_Allreduce`` of ``int_msg`` happens).
        """
        return True

    def post_collective(
        self,
        group: "CommGroup",
        sig: KernelSignature,
        arrivals: Dict[int, float],
        executed: bool,
        comm_time: float,
        completion: float,
    ) -> None:
        """Observe the collective's outcome (update stats / pathsets)."""

    # -- point-to-point ----------------------------------------------------
    def on_p2p_post(self, record: "P2PRecord") -> None:
        """A p2p operation was posted (snapshot path state for isend)."""

    def on_p2p(
        self,
        sig: KernelSignature,
        send: "P2PRecord",
        recv: "P2PRecord",
    ) -> bool:
        """Decide execution once a send/recv pair matched."""
        return True

    def post_p2p(
        self,
        sig: KernelSignature,
        send: "P2PRecord",
        recv: "P2PRecord",
        executed: bool,
        comm_time: float,
        completion: float,
    ) -> None:
        """Observe the matched pair's outcome."""

    def on_wait(self, rank: int, request: Any, completion: float) -> None:
        """A nonblocking request completed at ``completion`` for ``rank``."""


class NullProfiler(Profiler):
    """Execute everything; measure nothing.  The no-tool baseline."""

    inline_safe = True
