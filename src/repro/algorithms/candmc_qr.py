"""CANDMC's 2D block-cyclic Householder QR (Section V.B).

For each width-``b`` panel the algorithm performs:

1. **Panel TSQR** on the grid-column communicator owning the panel:
   a local ``geqrf`` of each rank's panel rows, an all-gather of the
   b x b triangular factors, and a (redundant) ``tpqrt`` reduction tree
   of depth log2(pr) yielding the panel's R everywhere in the column.
2. **Householder reconstruction** [Ballard et al.]: an LU
   factorization of a matrix derived from Q1 (``getrf``) plus an
   application (``ormqr``) reconstructs the compact-WY panel ``Y1``,
   and ``larft`` forms its triangular ``T``.
3. **Panel broadcast** of (Y1, T) along the grid-row communicator.
4. **Trailing-matrix update** ``(I - Y1 T Y1^T)^T A``: a local
   ``gemm`` forming the partial ``W = Y^T A``, an all-reduce of W over
   the grid column, and two local products applying ``A -= Y (T W)``.

BSP cost (paper eq.): Theta(alpha n/b + beta (mn/pr + n^2/pc + nb) +
gamma (mn^2/p + nb^2 + mnb/pr + n^2 b/pc)) — trade-offs in both the
block size and the grid shape, the two tuned parameters.

Simplification vs. the C++ library: CANDMC's lookahead pipelining of
panel factorization with trailing updates is not reproduced (the
schedule is bulk-synchronous here); pipelining is not a tuned parameter
in the paper's configuration space, so the cross-configuration
trade-off shapes are preserved.  See DESIGN.md.

Numeric mode: the panel all-gather carries the actual panel blocks (the
charged message size remains the R-factor exchange of the modeled
TSQR); every column rank redundantly computes the panel's compact-WY
factorization, and the update path exercises the real distributed
W-allreduce data flow.  Per-panel (Y, T, R) are recorded for
verification.

Batching note: the tpqrt reduction tree is the schedule's only
same-signature kernel run and is already emitted as one
:class:`~repro.sim.ops.ComputeBatchOp`; the remaining per-panel kernels
(geqrf, getrf/ormqr/larft reconstruction, the W-update gemm/trmm pair)
all have distinct signatures separated by column/row collectives, so
run-length batching cannot coalesce them bit-identically (verified by
tracing per-rank op streams).  Panel-loop throughput comes from the
engine's inline collective-arrival dispatch instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.algorithms.grids import make_grid2d
from repro.kernels import blas, lapack
from repro.sim.comm import Comm

__all__ = ["CandmcQRConfig", "candmc_qr"]


@dataclass(frozen=True, slots=True)
class CandmcQRConfig:
    """Tuning configuration of CANDMC QR."""

    m: int
    n: int
    b: int    # panel / distribution block size
    pr: int
    pc: int

    @property
    def nprocs(self) -> int:
        return self.pr * self.pc

    def __post_init__(self) -> None:
        if self.m % self.b or self.n % self.b:
            raise ValueError("b must divide both m and n")
        if self.b > min(self.m // self.pr, self.n // self.pc):
            raise ValueError(
                f"b={self.b} violates b <= min(m/pr, n/pc) = "
                f"{min(self.m // self.pr, self.n // self.pc)}"
            )

    def label(self) -> str:
        return f"b={self.b} grid={self.pr}x{self.pc}"


def candmc_qr(comm: Comm, config: CandmcQRConfig,
              a: Optional[np.ndarray] = None):
    """Rank program; returns (blocks, {panel: (Y, T, R)}) in numeric mode."""
    grid = yield from make_grid2d(comm, config.pr, config.pc)
    b = config.b
    mb = config.m // b   # row bands
    nb = config.n // b   # panels / column bands
    numeric = a is not None

    # block-cyclic ownership: row band rb -> grid row rb % pr, col band cb -> cb % pc
    blocks: Dict[Tuple[int, int], np.ndarray] = {}
    if numeric:
        for rb in range(grid.ri, mb, config.pr):
            for cb in range(grid.ci, nb, config.pc):
                blocks[(rb, cb)] = a[rb * b:(rb + 1) * b,
                                     cb * b:(cb + 1) * b].astype(float).copy()
    panel_log: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    for j in range(nb):
        pcol = j % config.pc
        my_bands = [rb for rb in range(j, mb) if rb % config.pr == grid.ri]
        mloc = len(my_bands) * b
        y_full = t_full = None

        # ---- 1+2: panel TSQR + Householder reconstruction (panel column) ----
        if grid.ci == pcol:
            if mloc:
                yield grid.comm.compute(lapack.geqrf_spec(mloc, b))
            payload = [(rb, blocks[(rb, j)]) for rb in my_bands] if numeric else None
            gathered = yield grid.col.allgather(payload=payload, nbytes=8 * b * b)
            # the depth-log2(pr) tpqrt reduction tree is a run of
            # identical-signature kernels: one batched engine event
            yield grid.comm.compute_batch(
                lapack.tpqrt_spec(b, b), max(1, math.ceil(math.log2(config.pr)))
            )
            # Householder reconstruction of Y1 from Q1 + T formation
            yield grid.comm.compute(lapack.getrf_spec(b, b))
            if mloc:
                yield grid.comm.compute(lapack.ormqr_spec(mloc, b, b))
                yield grid.comm.compute(lapack.larft_spec(mloc, b))
            if numeric:
                # assemble panel rows in global band order, factor redundantly
                pairs = sorted(
                    (rb, blk) for contrib in gathered if contrib
                    for rb, blk in contrib
                )
                panel = np.vstack([blk for _, blk in pairs])
                y_full, t_full, r_panel = lapack.qr_factor(panel)
                panel_log[j] = (y_full, t_full, r_panel)
                # the panel column now stores R (diagonal band) and zeros below
                if j % config.pr == grid.ri:
                    blocks[(j, j)] = r_panel.copy()
                for rb in my_bands:
                    if rb != j:
                        blocks[(rb, j)] = np.zeros((b, b))

        # ---- 3: broadcast the reconstructed panel along grid rows ----
        ybytes = 8 * (max(mloc, 0) * b + b * b)
        pack = (y_full, t_full) if (numeric and grid.ci == pcol) else None
        pack = yield grid.row.bcast(payload=pack, root=pcol, nbytes=ybytes)

        # ---- 4: trailing-matrix update ----
        my_cols = [cb for cb in range(j + 1, nb) if cb % config.pc == grid.ci]
        nloc = len(my_cols) * b
        if nloc == 0:
            continue  # whole grid column has no trailing panels
        w_part = None
        if numeric and pack is not None:
            y_full, t_full = pack
            # rows of Y owned by this rank (global band order offset)
            all_bands = list(range(j, mb))
            row_ix = np.concatenate(
                [np.arange(all_bands.index(rb) * b, (all_bands.index(rb) + 1) * b)
                 for rb in my_bands]
            ) if my_bands else np.empty(0, dtype=int)
            y_loc = y_full[row_ix, :] if mloc else np.zeros((0, b))
            a_loc = (np.vstack([np.hstack([blocks[(rb, cb)] for cb in my_cols])
                                for rb in my_bands]) if mloc else np.zeros((0, nloc)))
            w_part = y_loc.T @ a_loc
        if mloc:
            yield grid.comm.compute(blas.gemm_spec(b, nloc, mloc))  # W_part = Y^T A
        w = yield grid.col.allreduce(payload=w_part, nbytes=8 * b * nloc)
        yield grid.comm.compute(blas.trmm_spec(b, nloc))            # T W
        if mloc:
            yield grid.comm.compute(blas.gemm_spec(mloc, nloc, b))  # A -= Y (T W)
            if numeric and w is not None:
                upd = y_loc @ (t_full.T @ w)
                for bi, rb in enumerate(my_bands):
                    for ci_, cb in enumerate(my_cols):
                        blocks[(rb, cb)] -= upd[bi * b:(bi + 1) * b,
                                                ci_ * b:(ci_ + 1) * b]

    return (blocks, panel_log) if numeric else None
