"""Critter: online execution-path analysis with selective kernel execution.

This is the paper's contribution (Sections III-IV, Fig. 2), implemented
against the simulator's PMPI-equivalent interception seam:

* every rank owns two kernel sets — ``K`` (statistics of locally
  executed kernels, persistent across runs until reset) and ``K~``
  (kernel execution counts along the rank's current sub-critical path,
  rebuilt each run) — plus a pathset ``P`` of path and volumetric
  metrics;
* on every communication kernel an *internal message* carrying
  ``(execute flag, P.exec_time, K~ keys+freqs)`` is exchanged among the
  participants (``PMPI_Allreduce`` for collectives, ``PMPI_Sendrecv``
  for blocking p2p, buffered snapshot for nonblocking) — the
  longest-path algorithm: ranks on shorter paths adopt the maximal
  path's metrics and kernel frequencies;
* the kernel is then selectively executed: computation kernels by local
  decision, communication kernels only skipped when *all* participants
  deem them predictable; skipped kernels contribute their sample mean
  to the predicted path time;
* under eager propagation, blocking collectives additionally aggregate
  the statistics of predictable kernels across the sub-communicator and
  track coverage through the aggregate-channel algebra; once coverage
  is maximal the kernel is switched off globally.

Copy-on-write path propagation
------------------------------

The profiler rides along every simulated kernel, so its sync-point cost
is the throughput floor of any profiled run.  ``K~`` adoption is the
expensive part of the longest-path exchange, and it is implemented with
shared immutable snapshots (:class:`~repro.critter.pathset.PathCountTable`)
instead of per-loser deep copies.  The invariants:

* a table's **base** dict is immutable from the moment it is returned
  by ``snapshot()`` — winners, ``isend`` internal-message buffers,
  ``last_path_counts`` and apriori seeds all hand out the same frozen
  object, and every local mutation goes into the owning rank's private
  delta, so no rank can ever observe another rank's writes;
* **adoption is by reference**: a losing rank re-points its base at the
  winner's snapshot in O(1) and bumps its table ``version``.  The
  version gates the cached skip verdicts (a path count only grows
  between adoptions, and predictability is monotone in the count, so a
  confirmed skip stays valid until the version or the statistics
  change);
* structural mutations (delta collapse in ``snapshot()``, adoption)
  happen only inside hooks of sync points *involving that rank*, which
  keeps the engine's ``inline_safe`` contract intact: between a rank's
  consecutive local events, no other rank's event can change any state
  this rank's decisions read.

``PathMetrics`` propagation needs no copies at all: ``merge_max`` is a
pairwise max (idempotent, commutative), so merging a live, possibly
just-merged path object produces bit-identical results to merging a
defensive pre-merge copy.  The single remaining path copy is the
``isend`` snapshot, whose sender keeps accumulating onto its live path
while the buffered message is in flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.critter.channels import AggregateRegistry, Channel
from repro.critter.extrapolation import ExtrapolatingModel
from repro.critter.pathset import (
    PathCountTable,
    PathMetrics,
    PathProfile,
    critical_path,
    volumetric_average,
)
from repro.critter.policies import Policy, make_policy
from repro.critter.stats import RunningStat, is_predictable, z_value
from repro.kernels.signature import KernelSignature, comm_signature
from repro.sim.engine import CommGroup, P2PRecord, Simulator
from repro.sim.profiler import Profiler

__all__ = ["Critter", "RunReport"]


@dataclass(slots=True)
class RunReport:
    """Summary of one simulated run under Critter.

    ``rank_time_p50``/``rank_time_p99``/``rank_time_cov`` summarize the
    distribution of per-rank kernel wall times — timings are
    distributions, not scalars, and the spread across ranks is the
    run's load-imbalance signature (a tight P50/P99 gap means balanced
    ranks; a large CoV flags stragglers).
    """

    makespan: float
    predicted: PathMetrics
    volumetric: Dict[str, float]
    max_rank_kernel_time: float
    max_rank_comp_time: float
    executed_kernels: int
    skipped_kernels: int
    run_seed: int = 0
    rank_time_p50: float = 0.0
    rank_time_p99: float = 0.0
    rank_time_cov: float = 0.0

    @property
    def predicted_exec_time(self) -> float:
        return self.predicted.exec_time

    @property
    def predicted_comp_time(self) -> float:
        return self.predicted.comp_time

    @property
    def skip_fraction(self) -> float:
        total = self.executed_kernels + self.skipped_kernels
        return self.skipped_kernels / total if total else 0.0


#: path-criterion name -> dispatch index used by ``Critter._path_value``
_CRITERIA = ("exec", "comm", "comp", "slack")


class Critter(Profiler):
    """The profiling tool: create once, attach to any number of runs.

    Parameters
    ----------
    policy:
        Selective-execution policy name (see
        :mod:`repro.critter.policies`) or a :class:`Policy`.
    eps:
        Confidence tolerance: a kernel stops executing once the relative
        size of its mean's confidence interval is at most ``eps``.
    confidence:
        Confidence level for the intervals (paper uses 95%).
    min_samples:
        Minimum number of measurements before a kernel may be skipped.

    Statistics persist across runs (that is how repeated executions of
    one configuration converge); call :meth:`reset_statistics` between
    configurations, as the paper does for non-eager policies.
    """

    active = True

    def __init__(
        self,
        policy: str | Policy = "online",
        eps: float = 0.05,
        confidence: float = 0.95,
        min_samples: int = 2,
        exclude: frozenset = frozenset(),
        extrapolate: bool = False,
        extrapolation_tolerance: float = 0.1,
        path_criterion: str = "exec",
    ) -> None:
        self.policy = make_policy(policy)
        self.eps = float(eps)
        self.confidence = float(confidence)
        self.z = z_value(self.confidence)
        self.min_samples = int(min_samples)
        #: kernel names never executed selectively (paper: SLATE QR's
        #: BLAS-2 panel kernels are not candidates for selective execution)
        self.exclude = frozenset(exclude)
        #: Section VIII extension: family-level line fitting lets kernels
        #: at never-measured input sizes be predicted and skipped
        self.extrapolation: Optional[ExtrapolatingModel] = (
            ExtrapolatingModel(rel_tolerance=extrapolation_tolerance)
            if extrapolate
            else None
        )
        #: which path's kernel frequencies losers adopt at sync points —
        #: Fig. 2's path-propagation logic "can be modified to reflect
        #: various protocols" (Section II.B): "exec" is the longest-path
        #: algorithm [3], "comm"/"comp" follow those cost metrics'
        #: critical paths, "slack" filters out idle time [4]
        if path_criterion not in _CRITERIA:
            raise ValueError(
                f"path_criterion must be exec|comm|comp|slack, got {path_criterion!r}"
            )
        self.path_criterion = path_criterion

        # hot-path specializations, all fixed at construction: the
        # decision fast path reads these instead of chasing the policy
        # object per kernel event
        pol = self.policy
        self._never_skip = pol.never_skip
        self._eager = pol.eager
        self._force_first = pol.force_first_execution
        self._count_source = pol.count_source
        self._min_count = max(self.min_samples, 2)
        self._has_exclude = bool(self.exclude)
        #: whether the policy uses the stock alpha() — a subclass
        #: override must be consulted on every decision, so it disables
        #: the inlined count-source dispatch and the group-level skip
        #: caches (whose invalidation reasoning assumes the stock alpha
        #: semantics)
        self._std_alpha = type(pol).alpha is Policy.alpha
        #: policies whose decisions need the full (ordered) check chain:
        #: never-skip, eager global switch-off, no forced first
        #: execution, extrapolation lookups, or a custom alpha()
        self._slow_decision = (
            pol.never_skip
            or pol.eager
            or not pol.force_first_execution
            or self.extrapolation is not None
            or not self._std_alpha
        )
        self._crit = _CRITERIA.index(path_criterion)
        #: p2p signature -> interned (send, recv) endpoint signatures.
        #: One probe on the interned signature per hook: the p2p hooks
        #: always resolve both directions, so memoizing the pair halves
        #: the probes of a per-(sig, direction) memo
        self._ep_pair: Dict[KernelSignature,
                            Tuple[KernelSignature, KernelSignature]] = {}
        #: pointer memo of the last on_p2p resolution: post_p2p always
        #: follows on_p2p for the same sig (and p2p streams repeat one
        #: sig), so two attr loads replace the dict probe
        self._ep_sig: Optional[KernelSignature] = None
        self._ep_keys: Optional[Tuple[KernelSignature, KernelSignature]] = None
        #: nranks -> machine.internal_cost(nranks), reset on machine swap
        self._icost: Dict[int, float] = {}
        #: per-run communicator context: gid -> (members, member count
        #: tables, member profiles) — the collective hooks walk these
        #: tuples instead of indexing per-rank lists per member
        self._gk: Dict[int, tuple] = {}
        #: per-communicator state: gid -> (members, {sig: member stat
        #: row}).  Stat objects are stable until reset_statistics /
        #: eager merging, so the rows survive across runs; the members
        #: tuple guards against a gid mapping to a different
        #: communicator in a later program.
        self._gstats: Dict[int, tuple] = {}
        #: generation counter bumped whenever any kernel statistic (or
        #: offline count table) changes — cheap change detection for
        #: caches and diagnostics
        self._stat_gen = 0
        #: on_collective -> post_collective context handoff (the engine
        #: always calls them back to back for one completion)
        self._coll_pair: Optional[tuple] = None

        self.nprocs: Optional[int] = None
        self.machine = None
        self.registry: Optional[AggregateRegistry] = None

        # persistent across runs (until reset_statistics)
        self._K: Optional[List[Dict[KernelSignature, RunningStat]]] = None
        self._global_off: Set[KernelSignature] = set()
        self._coverage: Dict[KernelSignature, Channel] = {}
        self._apriori: Optional[List[Dict[KernelSignature, int]]] = None

        # per-run state
        self.profiles: List[PathProfile] = []
        self._Kt: List[PathCountTable] = []
        self._run_seed = 0
        #: run serial stamped onto executed kernels' statistics — the
        #: per-run forced-execution bookkeeping (a kernel whose stat
        #: carries an older serial has not executed this run yet)
        self._run_serial = 0

        self.reports: List[RunReport] = []
        self.last_report: Optional[RunReport] = None
        #: per-rank path counts of the last run (used to seed apriori).
        #: These are the ranks' frozen COW snapshots: treat them as
        #: read-only (ranks that adopted a common path share one dict).
        self.last_path_counts: List[Dict[KernelSignature, int]] = []

    #: only buffered isends snapshot path state at post time (see
    #: on_p2p_post); the engine elides the other posts on its hot paths
    p2p_post_isend_only = True

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def inline_safe(self) -> bool:
        """Whether the engine may drive ranks run-to-completion.

        Non-eager Critter decisions read only per-rank state (``K``,
        ``K~``, forced-execution stamps) that other ranks' events never
        mutate outside synchronization points involving this rank, so
        inline execution cannot change any decision or draw.  The COW
        count tables preserve this: a shared snapshot base is immutable,
        every write lands in the owning rank's private delta, and
        structural changes (adoption, delta collapse) happen only inside
        sync-point hooks whose participants include the affected rank.
        Eager propagation breaks the contract (``_global_off`` flips at
        *other* ranks' sub-communicator collectives), as does
        extrapolation (a shared model observed by every rank); both
        force the exact-order naive scheduler.
        """
        return not self.policy.eager and self.extrapolation is None

    def start_run(self, sim: Simulator, run_seed: int) -> None:
        p = sim.machine.nprocs
        if self.nprocs is None:
            self.nprocs = p
            self._K = [dict() for _ in range(p)]
            self.registry = AggregateRegistry(p)
        elif self.nprocs != p:
            raise ValueError(
                f"Critter instance bound to {self.nprocs} ranks, got {p}; "
                "use a fresh instance (or reset) when the world size changes"
            )
        if sim.machine is not self.machine:
            self._icost.clear()
        self.machine = sim.machine
        self.registry.by_group.clear()
        self.profiles = [PathProfile() for _ in range(p)]
        self._Kt = [PathCountTable() for _ in range(p)]
        self._gk.clear()
        self._run_seed = run_seed
        self._run_serial += 1

    def end_run(self, sim: Simulator, makespan: float) -> None:
        # deferred import: autotune's package __init__ reaches back into
        # critter via the runner, so a module-level import would cycle
        from repro.autotune.metrics import (
            coefficient_of_variation, p50, p99)

        rank_times = [p.kernel_wall_time for p in self.profiles]
        rep = RunReport(
            makespan=makespan,
            predicted=critical_path(self.profiles),
            volumetric=volumetric_average(self.profiles),
            max_rank_kernel_time=max(rank_times),
            max_rank_comp_time=max(p.vol_exec_comp for p in self.profiles),
            executed_kernels=sum(p.executed_kernels for p in self.profiles),
            skipped_kernels=sum(p.skipped_kernels for p in self.profiles),
            run_seed=self._run_seed,
            rank_time_p50=p50(rank_times),
            rank_time_p99=p99(rank_times),
            rank_time_cov=coefficient_of_variation(rank_times),
        )
        self.reports.append(rep)
        self.last_report = rep
        self.last_path_counts = [kt.snapshot() for kt in self._Kt]

    def reset_statistics(self) -> None:
        """Forget all kernel statistics (paper: before each new config)."""
        if self._K is not None:
            for k in self._K:
                k.clear()
        self._gstats.clear()
        self._global_off.clear()
        self._coverage.clear()
        self._apriori = None
        if self.extrapolation is not None:
            self.extrapolation.reset()

    def seed_path_counts(self, tables: List[Dict[KernelSignature, int]]) -> None:
        """Provide offline critical-path execution counts (apriori policy).

        Accepts plain dicts or :class:`PathCountTable` instances
        (e.g. another Critter's ``last_path_counts`` entries or live
        tables); COW tables contribute their frozen snapshot without a
        copy.
        """
        self._apriori = [
            t.snapshot() if isinstance(t, PathCountTable) else dict(t)
            for t in tables
        ]
        self._stat_gen += 1  # offline counts feed decisions

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def _alpha(self, rank: int, key: KernelSignature) -> int:
        """Execution count entering the sqrt(alpha) interval shrinkage."""
        if not self._std_alpha:
            # overridden Policy.alpha: always consult it, exactly like
            # the pre-specialization code did
            st = self._K[rank].get(key)
            return self.policy.alpha(
                st.count if st is not None else 0,
                self._Kt[rank].get(key, 0),
                self._apriori[rank].get(key) if self._apriori else None,
            )
        cs = self._count_source
        if cs == "one":
            return 1
        if cs == "path":
            c = self._Kt[rank].get(key, 0)
            return c if c > 1 else 1
        if cs == "local":
            st = self._K[rank].get(key)
            c = st.count if st is not None else 0
            return c if c > 1 else 1
        if cs == "offline":
            off = self._apriori[rank].get(key) if self._apriori is not None else None
            return off if off is not None and off > 1 else 1
        st = self._K[rank].get(key)
        return self.policy.alpha(
            st.count if st is not None else 0,
            self._Kt[rank].get(key, 0),
            self._apriori[rank].get(key) if self._apriori else None,
        )

    def _local_decision(self, rank: int, key: KernelSignature,
                        flops: float = 0.0) -> bool:
        """True = execute; the per-rank part of Fig. 2's ``initialize_msg``.

        The exact, fully-ordered check chain.  :meth:`_decide` is the
        hot-path specialization that answers the common cases without
        reaching this method; both must agree on every input.
        """
        if self._never_skip:
            return True
        if key.name in self.exclude:
            return True
        if self._eager and key in self._global_off:
            return False
        st = self._K[rank].get(key)
        if self.extrapolation is not None and (st is None or st.count < self.min_samples):
            # Section VIII line fitting: an unmeasured size whose family
            # fits tightly may be skipped without its forced execution
            if self.extrapolation.predict(key, flops) is not None:
                return False
        if self._force_first and (st is None or st.last_exec_run != self._run_serial):
            return True
        if st is None:
            return True
        return not is_predictable(
            st, self.eps, self.z, self._alpha(rank, key), self.min_samples
        )

    def _decide(self, rank: int, sig: KernelSignature,
                flops: float = 0.0) -> bool:
        """The pre-execution decision, flattened for the hot path.

        Equivalent to :meth:`_local_decision` for the non-eager,
        non-extrapolating, forced-first-execution policies; anything
        else falls through to the exact chain.  The steady skip state —
        a kernel already confirmed predictable whose path count has only
        grown since — answers from the stat's cached verdict and the
        count table's version stamp without touching the CI formula.
        """
        if self._slow_decision:
            return self._local_decision(rank, sig, flops)
        st = self._K[rank].get(sig)
        if st is None:
            return True
        if self._has_exclude and sig.name in self.exclude:
            return True
        if st.last_exec_run != self._run_serial:
            return True  # forced first execution of this run
        if st.count < self._min_count:
            return True
        kt = self._Kt[rank]
        # A version match proves "confirmed skippable, counts only grown
        # since".  Stamps cannot leak across runs: reaching this check
        # requires last_exec_run == serial, i.e. an update() this run,
        # which reset the stamp — so it was taken against this run's
        # table.
        if st._skip_version == kt.version:
            return False
        cs = self._count_source
        if cs == "path":
            # inlined PathCountTable.get
            a = kt._delta.get(sig)
            if a is None:
                a = kt._base.get(sig, 0)
            if a < 1:
                a = 1
        elif cs == "one":
            a = 1
        elif cs == "local":
            a = st.count
        elif cs == "offline":
            off = self._apriori[rank].get(sig) if self._apriori is not None else None
            a = off if off is not None and off > 1 else 1
        else:
            # custom Policy subclass: defer to its alpha() exactly like
            # the slow chain does
            a = self._alpha(rank, sig)
        eps = self.eps
        z = self.z
        if st._pt_eps == eps and st._pt_z == z:
            if a >= st._pt_true:
                st._skip_version = kt.version
                return False
            if a <= st._pt_false:
                return True
        if is_predictable(st, eps, z, a, self.min_samples):
            st._skip_version = kt.version
            return False
        return True

    def _path_value(self, rank: int) -> float:
        """The metric by which sync-point path winners are chosen.

        Cached on the profile (recomputed only after a mutation), so a
        sync point pays one evaluation per member instead of one per
        comparison.
        """
        prof = self.profiles[rank]
        if not prof.pv_dirty:
            return prof.pv_cache
        path = prof.path
        c = self._crit
        if c == 0:
            v = path.exec_time
        elif c == 1:
            v = path.comm_time
        elif c == 2:
            v = path.comp_time
        else:
            # slack method: discount time spent waiting (idle) — ranks
            # whose progress is mostly wait states lose the election
            v = path.exec_time - prof.vol_idle
        prof.pv_cache = v
        prof.pv_dirty = False
        return v

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------
    def on_world(self, group: CommGroup) -> None:
        self.registry.register_world(group.gid)

    def on_comm_split(self, parent: CommGroup, subgroups: List[CommGroup]) -> None:
        for g in subgroups:
            self.registry.register_split(g.gid, g.world_ranks)

    def intercept_cost(self, nranks: int) -> float:
        c = self._icost.get(nranks)
        if c is None:
            if self.machine is None:
                return 0.0
            c = self._icost[nranks] = self.machine.internal_cost(nranks)
        return c

    # ------------------------------------------------------------------
    # computational kernels
    # ------------------------------------------------------------------
    on_compute = _decide

    def post_compute(
        self, rank: int, sig: KernelSignature, executed: bool, elapsed: float,
        flops: float,
    ) -> None:
        prof = self.profiles[rank]
        if executed:
            self._stat_gen += 1
            kr = self._K[rank]
            st = kr.get(sig)
            if st is None:
                st = kr[sig] = RunningStat()
            st.update(elapsed)
            st.last_exec_run = self._run_serial
            if self.extrapolation is not None:
                self.extrapolation.observe(sig, flops, elapsed)
            predicted = elapsed
            prof.vol_exec_comp += elapsed
            prof.executed_kernels += 1
        else:
            st = self._K[rank].get(sig)
            if st is not None and st.count:
                predicted = st.mean
            elif self.extrapolation is not None:
                pred = self.extrapolation.predict(sig, flops)
                predicted = pred if pred is not None else 0.0
            else:
                predicted = 0.0
            prof.skipped_kernels += 1
        # inlined PathCountTable.increment (delta-only write)
        kt = self._Kt[rank]
        delta = kt._delta
        c = delta.get(sig)
        if c is None:
            c = kt._base.get(sig, 0)
        delta[sig] = c + 1
        # inlined PathProfile.add_compute (identical accumulation order)
        path = prof.path
        path.exec_time += predicted
        path.comp_time += predicted
        path.flops += flops
        prof.vol_comp_time += elapsed
        prof.vol_flops += flops
        # under the default exec criterion the path value IS exec_time:
        # maintain the cache in place so sync-point elections read it
        # without recomputing (other criteria take the dirty-flag path)
        if self._crit == 0:
            prof.pv_cache = path.exec_time
            prof.pv_dirty = False
        else:
            prof.pv_dirty = True

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _group_ctx(self, group: CommGroup) -> tuple:
        """Per-run member context of one communicator (built lazily)."""
        ctx = self._gk.get(group.gid)
        if ctx is None:
            members = group.world_ranks
            Kt = self._Kt
            profiles = self.profiles
            ctx = self._gk[group.gid] = (
                members,
                tuple(Kt[r] for r in members),
                tuple(profiles[r] for r in members),
            )
        return ctx

    def _group_state(self, group: CommGroup) -> tuple:
        """``(members, stat rows, skip thresholds)`` of one communicator.

        Keyed by gid across runs; the members tuple guards against a gid
        mapping to a different communicator in a later program.  The
        third slot caches, per signature, ``(max over members of the
        stat's proven-skippable alpha threshold, stat generation, run
        serial)`` — valid while no statistic changed and the run is the
        same (see ``on_collective``).
        """
        gst = self._gstats.get(group.gid)
        if gst is None or gst[0] != group.world_ranks:
            gst = self._gstats[group.gid] = (group.world_ranks, {}, {})
        return gst

    def _group_row(self, group: CommGroup, gst: tuple,
                   sig: KernelSignature) -> Optional[tuple]:
        """Cached member stat row for ``sig``, or None until all exist."""
        row = gst[1].get(sig)
        if row is None:
            K = self._K
            sts = []
            for r in group.world_ranks:
                st = K[r].get(sig)
                if st is None:
                    return None  # not every member measured it yet
                sts.append(st)
            row = gst[1][sig] = tuple(sts)
        return row

    def on_collective(
        self,
        group: CommGroup,
        sig: KernelSignature,
        root: int,
        arrivals: Dict[int, float],
    ) -> bool:
        # the internal allreduce of execute flags: the user communication
        # is skipped only when ALL participants deem it predictable
        if not self._slow_decision and not self._has_exclude:
            ctx = self._gk.get(group.gid)
            if ctx is None:
                ctx = self._group_ctx(group)
            gst = self._group_state(group)
            kts = ctx[1]
            # group-level short-circuit: with the stat generation and
            # run serial unchanged since the cached all-skip verdict,
            # the only decision input that can have moved is the path
            # count — which only grows.  For path-count alphas, the
            # shared-base property (after an adopting collective every
            # member's table aliases one frozen base, and any delta
            # entry is >= the base entry) lets one count read against
            # the cached max skip threshold answer for the whole group;
            # for the other alpha sources no input moved at all.
            mp = gst[2].get(sig)
            if (mp is not None and mp[1] == self._stat_gen
                    and mp[2] == self._run_serial):
                if self._count_source != "path":
                    self._coll_pair = (group, sig, ctx, gst[1].get(sig))
                    return False
                b0 = kts[0]._base
                shared = True
                for kt in kts:
                    if kt._base is not b0:
                        shared = False
                        break
                if shared and b0.get(sig, 0) >= mp[0]:
                    self._coll_pair = (group, sig, ctx, gst[1].get(sig))
                    return False
            row = self._group_row(group, gst, sig)
            if row is not None:
                # steady-state loop, inlined from _decide: each member
                # answers from its skip-version stamp (O(1) when no
                # adoption happened since the last decision) or its
                # verdict sentinels (no sqrt, no divisions — the common
                # case on adoption-churning collective chains); only a
                # member neither can resolve pays the full chain.
                serial = self._run_serial
                minc = self._min_count
                eps = self.eps
                z = self.z
                cs = self._count_source
                for i in range(len(row)):
                    st = row[i]
                    kt = kts[i]
                    if st.last_exec_run != serial or st.count < minc:
                        return True  # forced / under-sampled: execute
                    # stamp honored only after the force-first gate: a
                    # stale stamp from a previous run can coincide with
                    # a fresh table's version (both can be 0 when no
                    # adoption ever bumped it)
                    if st._skip_version == kt.version:
                        continue
                    if cs == "path":
                        # inlined PathCountTable.get
                        a = kt._delta.get(sig)
                        if a is None:
                            a = kt._base.get(sig, 0)
                        if a < 1:
                            a = 1
                    else:
                        a = 1 if cs == "one" else None
                    if a is not None and st._pt_eps == eps and st._pt_z == z:
                        if a >= st._pt_true:
                            st._skip_version = kt.version
                            continue
                        if a <= st._pt_false:
                            return True
                    if self._decide(group.world_ranks[i], sig):
                        return True
                # every member verdicts False, so every stat holds a
                # finite proven-True threshold for this (eps, z); any
                # future alpha at or above the max is again all-skip
                mx = 0
                for st in row:
                    if st._pt_true > mx:
                        mx = st._pt_true
                gst[2][sig] = (mx, self._stat_gen, serial)
                self._coll_pair = (group, sig, ctx, row)
                return False
        decide = self._decide
        for r in group.world_ranks:
            if decide(r, sig):
                return True
        return False

    def post_collective(
        self,
        group: CommGroup,
        sig: KernelSignature,
        arrivals: Dict[int, float],
        executed: bool,
        comm_time: float,
        completion: float,
    ) -> None:
        pair = self._coll_pair
        self._coll_pair = None
        if pair is not None and pair[0] is group and pair[1] is sig:
            ctx = pair[2]
            row = pair[3]
        else:
            ctx = self._gk.get(group.gid)
            if ctx is None:
                ctx = self._group_ctx(group)
            row = self._group_row(group, self._group_state(group), sig)
        members, kts, profs = ctx
        n = len(members)
        # --- longest-path propagation (the internal PMPI_Allreduce) ---
        # election pass: one cached path-value read per member (inlined
        # _path_value), left in each profile's pv_cache for the fused
        # loop below (valid there until the member's own accounting).
        # The winner is the first member attaining the maximum — the
        # same tie-break as max(key=...)
        crit = self._crit
        wi = 0
        wvalue = None
        vmin = None
        for i, prof in enumerate(profs):
            if prof.pv_dirty:
                path = prof.path
                if crit == 0:
                    v = path.exec_time
                elif crit == 1:
                    v = path.comm_time
                elif crit == 2:
                    v = path.comp_time
                else:
                    v = path.exec_time - prof.vol_idle
                prof.pv_cache = v
                prof.pv_dirty = False
            else:
                v = prof.pv_cache
            if wvalue is None:
                wvalue = vmin = v
            elif v > wvalue:
                wi = i
                wvalue = v
            elif v < vmin:
                vmin = v
        wpath = profs[wi].path
        # hoist the winner's metrics: the merge reads these locals, so
        # fusing propagation with accounting below cannot pollute them
        # (each member's path is touched only in its own iteration)
        w_exec = wpath.exec_time
        w_comp = wpath.comp_time
        w_comm = wpath.comm_time
        w_synchs = wpath.synchs
        w_words = wpath.words
        w_flops = wpath.flops
        # the adoption snapshot must be taken before any accounting
        # increment lands in the winner's delta (losers adopt the
        # winner's counts as they stood at the sync point); someone
        # adopts iff any member's value is below the winner's
        if vmin < wvalue:
            wsnap = kts[wi].snapshot()
            # an adopting loser's delta is empty, so its increment below
            # is exactly snapshot count + 1 — precompute it once
            winc = wsnap.get(sig, 0) + 1
        else:
            wsnap = None
        # --- propagation fused with selective-execution accounting ---
        start = max(arrivals.values())
        nbytes = sig.params[0]
        extrap = self.extrapolation
        if row is None:
            K = self._K
            row = [K[m].get(sig) for m in members]
        serial = self._run_serial
        if executed:
            self._stat_gen += 1
            if extrap is not None:
                extrap.observe(sig, 0.0, comm_time)
        arr = arrivals
        crit0 = crit == 0
        # NOTE: the two member loops below are deliberate near-copies —
        # hoisting the `executed` branch out of the per-member body is
        # worth ~5% on profiled collective chains.  The adoption +
        # merge_max propagation block must stay IDENTICAL in both; any
        # edit there must land in both loops (the golden fixtures cover
        # executed and skipped collectives and will catch divergence).
        if not executed:
            # the dominant steady-state loop, specialized for skipped
            # collectives (charged time is exactly 0.0 — x += 0.0 cannot
            # change an accumulated nonnegative float, so the charged
            # accumulators are untouched)
            for i, (prof, kt, st, m) in enumerate(zip(profs, kts, row,
                                                      members)):
                path = prof.path
                if i != wi:
                    if prof.pv_cache < wvalue:
                        # adopt the winner's counts by reference
                        # (inlined PathCountTable.adopt) and count this
                        # kernel in the same stroke: the fresh delta is
                        # exactly {sig: snapshot count + 1}
                        kt._base = wsnap
                        kt._delta = {sig: winc}
                        kt.version += 1
                    else:
                        delta = kt._delta
                        c = delta.get(sig)
                        if c is None:
                            c = kt._base.get(sig, 0)
                        delta[sig] = c + 1
                    # inlined PathProfile.merge_path (hoisted fields)
                    if w_exec > path.exec_time:
                        path.exec_time = w_exec
                    if w_comp > path.comp_time:
                        path.comp_time = w_comp
                    if w_comm > path.comm_time:
                        path.comm_time = w_comm
                    if w_synchs > path.synchs:
                        path.synchs = w_synchs
                    if w_words > path.words:
                        path.words = w_words
                    if w_flops > path.flops:
                        path.flops = w_flops
                else:
                    delta = kt._delta
                    c = delta.get(sig)
                    if c is None:
                        c = kt._base.get(sig, 0)
                    delta[sig] = c + 1
                if st is not None and st.count:
                    predicted = st.mean
                elif extrap is not None:
                    pred = extrap.predict(sig, 0.0)
                    predicted = pred if pred is not None else 0.0
                else:
                    predicted = 0.0
                # inlined PathProfile.add_comm (identical accumulation)
                path.exec_time += predicted
                path.comm_time += predicted
                path.words += nbytes
                path.synchs += 1.0
                prof.vol_words += nbytes
                prof.vol_synchs += 1.0
                prof.vol_idle += start - arr[m]
                # exec-criterion path values are maintained in place
                # (see post_compute); other criteria re-derive on demand
                if crit0:
                    prof.pv_cache = path.exec_time
                    prof.pv_dirty = False
                else:
                    prof.pv_dirty = True
                prof.skipped_kernels += 1
        else:
            for i, (prof, kt, st, m) in enumerate(zip(profs, kts, row,
                                                      members)):
                path = prof.path
                if i != wi:
                    if prof.pv_cache < wvalue:
                        kt._base = wsnap
                        kt._delta = {sig: winc}
                        kt.version += 1
                    else:
                        delta = kt._delta
                        c = delta.get(sig)
                        if c is None:
                            c = kt._base.get(sig, 0)
                        delta[sig] = c + 1
                    # inlined PathProfile.merge_path (hoisted fields)
                    if w_exec > path.exec_time:
                        path.exec_time = w_exec
                    if w_comp > path.comp_time:
                        path.comp_time = w_comp
                    if w_comm > path.comm_time:
                        path.comm_time = w_comm
                    if w_synchs > path.synchs:
                        path.synchs = w_synchs
                    if w_words > path.words:
                        path.words = w_words
                    if w_flops > path.flops:
                        path.flops = w_flops
                else:
                    delta = kt._delta
                    c = delta.get(sig)
                    if c is None:
                        c = kt._base.get(sig, 0)
                    delta[sig] = c + 1
                if st is None:
                    st = self._K[m][sig] = RunningStat()
                st.update(comm_time)
                st.last_exec_run = serial
                # inlined PathProfile.add_comm (identical accumulation)
                path.exec_time += comm_time
                path.comm_time += comm_time
                path.words += nbytes
                path.synchs += 1.0
                prof.vol_comm_time += comm_time
                prof.vol_words += nbytes
                prof.vol_synchs += 1.0
                prof.vol_idle += start - arr[m]
                if crit0:
                    prof.pv_cache = path.exec_time
                    prof.pv_dirty = False
                else:
                    prof.pv_dirty = True
                prof.vol_exec_comm += comm_time
                prof.executed_kernels += 1
        # --- eager propagation: aggregate statistics along the channel ---
        if self._eager:
            self._aggregate_statistics(group)

    def _aggregate_statistics(self, group: CommGroup) -> None:
        """Fig. 2 ``aggregate_statistics``: share predictable kernels' stats.

        Merges every participant's statistics for kernels any of them
        deems predictable, distributes the merged statistics back, and
        extends the kernel's channel coverage; full coverage switches
        the kernel off globally.
        """
        channel = self.registry.channel_of(group.gid)
        if channel is None:
            return
        members = group.world_ranks
        # insertion-ordered dict-as-set: KernelSignature hashing is
        # identity-based (interning), so iterating a real set here would
        # order by address and make coverage extension order run-varying
        candidates: Dict[KernelSignature, None] = {}
        for r in members:
            for key, st in self._K[r].items():
                if key in self._global_off or key in candidates:
                    continue
                if is_predictable(st, self.eps, self.z, 1, self.min_samples):
                    candidates[key] = None
        replaced = False
        for key in candidates:
            old_cov = self._coverage.get(key)
            cov = self.registry.extend_coverage(old_cov, channel)
            if old_cov is not None and cov.size == old_cov.size:
                # channel adds no new processors: re-merging the same
                # (already shared) statistics would double-count samples
                continue
            merged = RunningStat()
            for r in members:
                st = self._K[r].get(key)
                if st is not None:
                    merged.merge(st)
            for r in members:
                old = self._K[r].get(key)
                new = merged.copy()
                # the forced-execution stamp is per-rank run state, not
                # part of the aggregated moments: preserve it across the
                # replacement (the pre-COW code kept it in a separate
                # per-rank set that merging never touched)
                new.last_exec_run = old.last_exec_run if old is not None else 0
                self._K[r][key] = new
            replaced = True
            self._coverage[key] = cov
            if self.registry.covers_world(cov):
                self._global_off.add(key)
        if replaced:
            # merged copies replaced the stat objects the cached rows
            # reference — drop every row and memo
            self._gstats.clear()
            self._stat_gen += 1

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def _endpoint_pair(
            self, sig: KernelSignature
    ) -> Tuple[KernelSignature, KernelSignature]:
        """Interned (send, recv) endpoint signatures, memoized per sig."""
        pair = self._ep_pair.get(sig)
        if pair is None:
            pair = self._ep_pair[sig] = (
                comm_signature("send", *sig.params),
                comm_signature("recv", *sig.params),
            )
        return pair

    def on_p2p_post(self, record: P2PRecord) -> None:
        if record.kind == "isend":
            # buffered internal message: freeze the sender's path state —
            # the counts by COW snapshot, the path metrics by one flat
            # copy (the sender keeps mutating its live path in place)
            r = record.world_rank
            record.snapshot = (self.profiles[r].path.copy(),
                               self._Kt[r].snapshot())

    def on_p2p(self, sig: KernelSignature, send: P2PRecord, recv: P2PRecord) -> bool:
        if sig is self._ep_sig:
            key_s, key_r = self._ep_keys
        else:
            key_s, key_r = self._endpoint_pair(sig)
            self._ep_sig = sig
            self._ep_keys = (key_s, key_r)
        if self._slow_decision:
            return (self._decide(send.world_rank, key_s)
                    or self._decide(recv.world_rank, key_r))
        # steady-state fusion of ``_decide(s) or _decide(r)``: both
        # endpoints of a settled p2p stream answer from the cached
        # skip verdict, so probe the stamps here and fall back to
        # _decide (same short-circuit: the receiver side is never
        # touched when the sender side decides to execute) only for
        # sides not in the steady skip state.  An excluded signature
        # can never carry a current stamp (its stats update on every
        # execution resets the stamp, and only _decide's skip path
        # writes one), so the exclude check is subsumed.
        K = self._K
        Kt = self._Kt
        serial = self._run_serial
        minc = self._min_count
        s = send.world_rank
        st = K[s].get(key_s)
        if (st is None or st.last_exec_run != serial or st.count < minc
                or st._skip_version != Kt[s].version):
            if self._decide(s, key_s):
                return True
        r = recv.world_rank
        st = K[r].get(key_r)
        if (st is None or st.last_exec_run != serial or st.count < minc
                or st._skip_version != Kt[r].version):
            return self._decide(r, key_r)
        return False

    def post_p2p(
        self,
        sig: KernelSignature,
        send: P2PRecord,
        recv: P2PRecord,
        executed: bool,
        comm_time: float,
        completion: float,
    ) -> None:
        s, r = send.world_rank, recv.world_rank
        profiles = self.profiles
        Kt = self._Kt
        # --- path propagation ---
        if send.kind == "send":
            # blocking pair: the internal PMPI_Sendrecv exchanges paths
            # both ways; count adoption is by COW reference.  merge_max
            # idempotence makes the second merge (against the already-
            # merged s path) bit-identical to merging its pre-merge copy.
            sv = self._path_value(s)
            rv = self._path_value(r)
            if rv > sv:
                Kt[s].adopt(Kt[r].snapshot())
            elif sv > rv:
                Kt[r].adopt(Kt[s].snapshot())
            sprof = profiles[s]
            rprof = profiles[r]
            sprof.merge_path(rprof.path)
            rprof.merge_path(sprof.path)
        else:
            # buffered (isend): only the receiver learns the sender's path,
            # from the snapshot taken at post time (PMPI_Bsend semantics)
            snap = send.snapshot
            if snap is not None:
                snap_path, snap_counts = snap
                rprof = profiles[r]
                if snap_path.exec_time > rprof.path.exec_time:
                    Kt[r].adopt(snap_counts)
                rprof.merge_path(snap_path)
        # --- accounting per endpoint ---
        # Unrolled sender-then-receiver (the engine's hottest hook —
        # one per rendezvous): the float accumulation order is exactly
        # the old two-iteration loop's, the receiver pass drops the
        # isend-only branch (a recv record is never an isend), and the
        # path-count increments are PathCountTable.increment inlined.
        start = max(send.post_time, recv.post_time)
        nbytes = sig.params[0]
        extrap = self.extrapolation
        K = self._K
        serial = self._run_serial
        if sig is self._ep_sig:
            key_s, key_r = self._ep_keys
        else:
            key_s, key_r = self._endpoint_pair(sig)
        crit_exec = self._crit == 0
        if executed:
            self._stat_gen += 1
        # sender endpoint
        if executed:
            kr = K[s]
            st = kr.get(key_s)
            if st is None:
                st = kr[key_s] = RunningStat()
            st.update(comm_time)
            st.last_exec_run = serial
            if extrap is not None:
                extrap.observe(key_s, 0.0, comm_time)
            predicted = comm_time
        else:
            st = K[s].get(key_s)
            if st is not None and st.count:
                predicted = st.mean
            elif extrap is not None:
                pred = extrap.predict(key_s, 0.0)
                predicted = pred if pred is not None else 0.0
            else:
                predicted = 0.0
        kt = Kt[s]
        delta = kt._delta
        v = delta.get(key_s)
        if v is None:
            v = kt._base.get(key_s, 0)
        delta[key_s] = v + 1
        # a buffered isend returns immediately: the sender's path and
        # wall time do not absorb the transfer (Fig. 2: its kernel
        # time is observed at MPI_Wait, which overlaps computation)
        if send.kind == "isend":
            predicted = 0.0
            charged = 0.0
            idle = 0.0
        else:
            charged = comm_time if executed else 0.0
            idle = start - send.post_time
        prof = profiles[s]
        # inlined PathProfile.add_comm (identical accumulation order)
        path = prof.path
        path.exec_time += predicted
        path.comm_time += predicted
        path.words += nbytes
        path.synchs += 1.0
        prof.vol_comm_time += charged
        prof.vol_words += nbytes
        prof.vol_synchs += 1.0
        prof.vol_idle += idle
        # exec-criterion path values are maintained in place (see
        # post_compute); other criteria re-derive on demand
        if crit_exec:
            prof.pv_cache = path.exec_time
            prof.pv_dirty = False
        else:
            prof.pv_dirty = True
        if executed:
            prof.vol_exec_comm += charged
            prof.executed_kernels += 1
        else:
            prof.skipped_kernels += 1
        # receiver endpoint
        if executed:
            kr = K[r]
            st = kr.get(key_r)
            if st is None:
                st = kr[key_r] = RunningStat()
            st.update(comm_time)
            st.last_exec_run = serial
            if extrap is not None:
                extrap.observe(key_r, 0.0, comm_time)
            predicted = comm_time
            charged = comm_time
        else:
            st = K[r].get(key_r)
            if st is not None and st.count:
                predicted = st.mean
            elif extrap is not None:
                pred = extrap.predict(key_r, 0.0)
                predicted = pred if pred is not None else 0.0
            else:
                predicted = 0.0
            charged = 0.0
        kt = Kt[r]
        delta = kt._delta
        v = delta.get(key_r)
        if v is None:
            v = kt._base.get(key_r, 0)
        delta[key_r] = v + 1
        idle = (start - recv.post_time) if recv.blocking else 0.0
        prof = profiles[r]
        path = prof.path
        path.exec_time += predicted
        path.comm_time += predicted
        path.words += nbytes
        path.synchs += 1.0
        prof.vol_comm_time += charged
        prof.vol_words += nbytes
        prof.vol_synchs += 1.0
        prof.vol_idle += idle
        if crit_exec:
            prof.pv_cache = path.exec_time
            prof.pv_dirty = False
        else:
            prof.pv_dirty = True
        if executed:
            prof.vol_exec_comm += charged
            prof.executed_kernels += 1
        else:
            prof.skipped_kernels += 1

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line description for reports."""
        return f"Critter(policy={self.policy.name}, eps={self.eps:g}, conf={self.confidence:g})"
