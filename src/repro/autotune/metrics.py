"""Evaluation metrics (Section VI.A) and distribution summaries.

The paper evaluates Critter by: relative prediction error per
configuration, mean relative prediction error across configurations
(plotted as log2), autotuning speedup across the configuration space,
and the quality of the selected (predicted-optimal) configuration.

Kernel and run timings are *distributions*, not scalars (Section III.A;
CORTEX makes the same point for system latency), so this module also
provides the order-statistic summaries — P50/P99 and the coefficient of
variation — that the reporting layer attaches to per-run samples.
Percentiles use linear interpolation between order statistics (the
numpy default), implemented in pure deterministic float arithmetic.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

__all__ = [
    "relative_error",
    "mean_log2_error",
    "log2_error",
    "speedup",
    "selection_quality",
    "percentile",
    "p50",
    "p99",
    "coefficient_of_variation",
    "distribution_summary",
    "ERROR_FLOOR",
]

#: errors are floored here before taking log2 (exact predictions happen
#: in quiet-noise tests; the paper's axes likewise bottom out at 2^-10)
ERROR_FLOOR = 2.0**-14


def relative_error(predicted: float, truth: float) -> float:
    """|predicted - truth| / truth (0 truth with 0 prediction -> 0)."""
    if truth == 0.0:
        return 0.0 if predicted == 0.0 else math.inf
    return abs(predicted - truth) / abs(truth)


def log2_error(err: float, floor: float = ERROR_FLOOR) -> float:
    return math.log2(max(err, floor))


def mean_log2_error(errors: Iterable[float], floor: float = ERROR_FLOOR) -> float:
    """Mean of log2 relative errors — the y-axis of Figs. 4d-f / 5d-f."""
    errs = list(errors)
    if not errs:
        return log2_error(0.0, floor)
    return sum(log2_error(e, floor) for e in errs) / len(errs)


def speedup(baseline_time: float, tuned_time: float) -> float:
    """Autotuning speedup: baseline search time / accelerated search time.

    Raises ``ValueError`` on a non-positive ``tuned_time`` — a zero or
    negative denominator means the measurement is broken, and reporting
    an infinite (or negative) speedup would silently misrepresent it.
    """
    if tuned_time <= 0.0:
        raise ValueError(
            f"tuned_time must be positive, got {tuned_time!r}")
    return baseline_time / tuned_time


# ----------------------------------------------------------------------
# distribution summaries
# ----------------------------------------------------------------------
def percentile(samples: Sequence[float], q: float) -> float:
    """The q-th percentile (0 <= q <= 100), linear interpolation.

    Matches ``numpy.percentile``'s default method on sorted data, in
    pure float arithmetic so results are deterministic across numpy
    versions.
    """
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    xs = sorted(float(x) for x in samples)
    if len(xs) == 1:
        return xs[0]
    pos = (q / 100.0) * (len(xs) - 1)
    lo = int(pos)
    frac = pos - lo
    if frac == 0.0:
        return xs[lo]
    return xs[lo] + frac * (xs[lo + 1] - xs[lo])


def p50(samples: Sequence[float]) -> float:
    """Median of the samples."""
    return percentile(samples, 50.0)


def p99(samples: Sequence[float]) -> float:
    """99th percentile of the samples (tail behavior, CORTEX-style)."""
    return percentile(samples, 99.0)


def coefficient_of_variation(samples: Sequence[float]) -> float:
    """Sample CoV: population std-dev over mean (0.0 for a zero mean)."""
    if not samples:
        raise ValueError("coefficient of variation of an empty sample set")
    xs = [float(x) for x in samples]
    mean = sum(xs) / len(xs)
    if mean == 0.0:
        return 0.0
    var = sum((x - mean) ** 2 for x in xs) / len(xs)
    return math.sqrt(var) / abs(mean)


def distribution_summary(samples: Sequence[float]) -> Dict[str, float]:
    """``{"p50", "p99", "cov", "mean", "n"}`` for a sample set."""
    if not samples:
        raise ValueError("distribution summary of an empty sample set")
    xs = [float(x) for x in samples]
    return {
        "p50": p50(xs),
        "p99": p99(xs),
        "cov": coefficient_of_variation(xs),
        "mean": sum(xs) / len(xs),
        "n": float(len(xs)),
    }


def selection_quality(
    predicted_times: Sequence[float], true_times: Sequence[float]
) -> float:
    """Fraction of optimal performance achieved by the predicted winner.

    1.0 means Critter selected the truly optimal configuration; the
    paper reports >= 0.99 for Cholesky and 1.0 for QR.
    """
    if not predicted_times or len(predicted_times) != len(true_times):
        raise ValueError("prediction/truth length mismatch")
    chosen = min(range(len(predicted_times)), key=predicted_times.__getitem__)
    best = min(true_times)
    if true_times[chosen] <= 0.0:
        return 1.0
    return best / true_times[chosen]
