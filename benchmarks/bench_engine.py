"""Engine-throughput bench: the perf trajectory of the simulator core.

Unlike the figure benches (which reproduce the paper's experiments),
this bench measures the *infrastructure*: discrete-event engine events
per second under the naive heap-per-op scheduler vs the
run-to-completion fast path, with and without Critter attached, plus
the batched-compute op's wall-time win.  Results land in
``BENCH_engine.json`` at the repository root so every PR has a recorded
before/after.

Run standalone::

    REPRO_BENCH_PROFILE=smoke pytest benchmarks/bench_engine.py -s

or via the CLI (identical machinery)::

    python -m repro.cli bench-engine [--quick] [--check]
"""

from __future__ import annotations

import os

from bench_profiles import PROFILE
from repro.sim.bench import (
    ACCEPTANCE,
    COLLECTIVE_ACCEPTANCE,
    CRITTER_ACCEPTANCE,
    P2P_ACCEPTANCE,
    format_bench,
    run_bench,
    write_bench,
)

BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_engine.json")


def test_engine_fastpath_throughput(benchmark):
    quick = PROFILE == "smoke"
    data = run_bench(quick=quick)
    print()
    print(format_bench(data))
    write_bench(data, BENCH_JSON)

    # the fast path must never lose to the naive scheduler on any
    # acceptance workload: compute-heavy Cholesky (the tuner's op mix),
    # collective-dense (the inline-arrival panel chain), the
    # Critter-profiled p2p + collective mix (the profiler-overhead
    # row), and the pure-p2p rendezvous mix (the inline blocking-send
    # completion row)
    acc = data["acceptance"]
    assert acc["speedup"] >= 1.0, (
        f"fast path slower than naive on {ACCEPTANCE}: {acc['speedup']:.2f}x"
    )
    coll = data["collective_acceptance"]
    assert coll["speedup"] >= 1.0, (
        f"fast path slower than naive on {COLLECTIVE_ACCEPTANCE}: "
        f"{coll['speedup']:.2f}x"
    )
    crit = data["critter_acceptance"]
    assert crit["speedup"] >= 1.0, (
        f"fast path slower than naive on {CRITTER_ACCEPTANCE}: "
        f"{crit['speedup']:.2f}x"
    )
    p2p = data["p2p_acceptance"]
    assert p2p["speedup"] >= 1.0, (
        f"fast path slower than naive on {P2P_ACCEPTANCE}: "
        f"{p2p['speedup']:.2f}x"
    )
    # aggregate batching must beat expanded emission
    assert data["batching_speedup"] > 1.0

    # one representative timed point for pytest-benchmark's report
    from repro.sim.bench import make_workloads
    from repro.sim.engine import Simulator
    from repro.sim.presets import make_machine

    w = next(x for x in make_workloads(quick=True)
             if x.name == "cholesky-compute")
    machine, noise = make_machine("knl-fabric", w.nprocs, seed=3)

    def run_once():
        return Simulator(machine, noise=noise).run(w.program, run_seed=1)

    benchmark.pedantic(run_once, rounds=3, iterations=1)
