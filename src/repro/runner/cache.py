"""Content-addressed disk cache for job results.

Every :class:`~repro.runner.jobs.RunRequest` hashes to a key derived
from everything its result depends on — configuration space structure,
machine and noise parameters, policy, tolerance, repetitions, and seed
(see :func:`~repro.runner.jobs.request_fingerprint`).  Results are
stored one JSON file per key, so

* re-running a sweep reuses every ground-truth and selective
  measurement at zero cost (measurement reuse across tuning
  experiments, in the spirit of transfer-learning autotuners),
* any change to the machine, space, or protocol changes the key and
  transparently invalidates the entry,
* the cache is safe to share between concurrent processes: writes are
  atomic (temp file + rename) and entries are immutable.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.runner.jobs import RunResult, result_from_dict, result_to_dict
from repro.runner.store import quarantine_entry, write_atomic

__all__ = ["ResultCache"]


class ResultCache:
    """One-file-per-result JSON store keyed by request content hash."""

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _quarantine(self, path: str) -> None:
        """Move an undecodable entry aside so it is never re-tried.

        Left in place, a corrupt file would re-pay the decode-and-fail
        on every future lookup while silently re-missing forever;
        renamed to ``<key>.corrupt`` it becomes a fresh miss that the
        next execution overwrites, and the evidence survives for
        debugging.
        """
        # concurrent quarantine/overwrite is not an event: someone else
        # already handled it
        if quarantine_entry(path):
            self.corrupt += 1

    def get(self, key: str) -> Optional[RunResult]:
        """Return the cached result for ``key``, or None on a miss."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as f:
                payload = json.load(f)
        except FileNotFoundError:
            self.misses += 1
            return None
        except json.JSONDecodeError:
            self._quarantine(path)
            self.misses += 1
            return None
        try:
            result = result_from_dict(payload["result"])
        except (KeyError, ValueError, TypeError):
            # decodes as JSON but not as a result: stale format or
            # truncated write — quarantine it like any corrupt entry
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult,
            fingerprint: Optional[dict] = None) -> None:
        """Store a result atomically; the fingerprint aids debugging.

        ``write_atomic`` also fixes the shared-directory permission bug
        the old inline ``mkstemp`` publish had: temp files are created
        0600, so without a chmod before the rename, entries written by
        one user were unreadable to everyone else sharing the cache.
        ``durable=False`` keeps this legacy cache's performance profile
        (no fsync); the durable store is :mod:`repro.runner.store`.
        """
        payload = {"key": key, "result": result_to_dict(result)}
        if fingerprint is not None:
            payload["fingerprint"] = fingerprint
        write_atomic(self._path(key),
                     json.dumps(payload).encode("utf-8"), durable=False)
        self.stores += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory)
                   if name.endswith(".json"))

    def clear(self) -> int:
        """Delete every entry plus quarantine/temp debris; count all."""
        removed = 0
        for name in os.listdir(self.directory):
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed + self.vacuum()

    def vacuum(self) -> int:
        """Remove ``*.corrupt`` quarantines and ``*.tmp`` orphans.

        Neither is counted by ``__len__`` or swept by the old
        ``clear()``, so quarantined entries and temp files orphaned by
        killed processes used to accumulate forever.  Returns the
        number of files removed.
        """
        removed = 0
        for name in os.listdir(self.directory):
            if name.endswith((".corrupt", ".tmp")):
                try:
                    os.unlink(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "corrupt": self.corrupt}

    def __repr__(self) -> str:
        return (f"ResultCache({self.directory!r}, hits={self.hits}, "
                f"misses={self.misses}, stores={self.stores}, "
                f"corrupt={self.corrupt})")
