"""Engine throughput microbenchmark (``repro bench-engine``).

Measures the discrete-event core's throughput — engine events per
second of host wall time — under both schedulers (the naive
heap-per-op scheduler and the run-to-completion fast path), so every
PR has a recorded perf trajectory in ``BENCH_engine.json``.

Workloads are synthetic rank programs with *prebuilt* op descriptors,
so the measurement isolates the engine hot loop from algorithm-side
Python:

* ``cholesky-compute`` — the compute acceptance workload: a
  compute-heavy tiled-Cholesky-shaped sweep (potrf + trsm/gemm runs
  down each panel, one allreduce per panel).  Dominated by
  :class:`ComputeOp` events, exactly what tuner inner loops spend their
  time on.
* ``collective-dense`` — the collective acceptance workload: a panel
  factorization's bcast/allreduce chain (one small compute between the
  two collectives of each panel), >2/3 of whose events are collective
  arrivals.  This is the op mix the inline-arrival dispatch targets.
* ``critter-heavy``    — the profiler acceptance workload: a p2p +
  collective mix (isend/compute/recv/wait ring followed by a
  bcast/compute/allreduce panel per round) exercising every Critter
  sync-point hook — p2p path exchange with buffered isend snapshots,
  collective path elections and count adoption, and the decision hot
  path on both compute and communication kernels.  Measured under
  ``critter-online`` and ``critter-apriori`` (offline counts seeded
  from a never-skip pre-run) on top of the usual matrix.
* ``p2p-pipeline``     — the p2p acceptance workload: pure two-sided
  rendezvous mixes (ring pipelining via isend/compute/recv/wait, a
  blocking halo exchange with both neighbours, and a blocking panel
  pipeline down the rank line) — the CANDMC-style QR/Cholesky panel
  exchange op mix served by the inline blocking-send completion.
* ``collectives``      — bcast/allreduce/barrier rendezvous rounds.
* ``cholesky-batch``   — the sweep's kernel runs emitted as
  :class:`ComputeBatchOp`; measured with the machine model's
  ``batched_compute`` flag off (bit-identical expansion) and on (one
  aggregate event + noise draw per run) to quantify the batching win.

Every workload runs on the ``knl-fabric`` (noisy) and ``quiet``
(draw-free) presets, with and without a Critter profiler attached; two
real algorithm configurations are also timed end-to-end.  Both
schedulers run the identical RNG streams, so makespans must agree
bit-for-bit — the bench asserts this on every measurement, making it a
determinism smoke test as well.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels import blas, lapack
from repro.sim.engine import Simulator
from repro.sim.presets import make_machine

__all__ = ["Workload", "make_workloads", "run_bench", "format_bench",
           "format_bench_markdown", "main"]

#: presets the bench sweeps (noisy paper-like + draw-free control)
BENCH_PRESETS = ("knl-fabric", "quiet")

#: the compute acceptance measurement: compute-heavy Cholesky, no
#: profiler, noisy preset — the row the CI check and the 2x target bind to
ACCEPTANCE = {"workload": "cholesky-compute", "preset": "knl-fabric",
              "profiler": "null"}

#: the collective acceptance measurement: the fast path must also beat
#: the naive scheduler on collective-dominated op mixes (inline
#: non-final collective arrivals, PR 3)
COLLECTIVE_ACCEPTANCE = {"workload": "collective-dense",
                         "preset": "knl-fabric", "profiler": "null"}

#: the profiler acceptance measurement: with Critter attached, its
#: hot-path cost (COW path propagation, cached verdicts) — not the
#: scheduler — must stay off the throughput floor
CRITTER_ACCEPTANCE = {"workload": "critter-heavy", "preset": "knl-fabric",
                      "profiler": "critter-online"}

#: the p2p acceptance measurement: pure two-sided rendezvous pipelines
#: (the pre-PR-5 naive-parity mix) must beat the naive scheduler via
#: inline blocking-send completion and rank-local early queuing
P2P_ACCEPTANCE = {"workload": "p2p-pipeline", "preset": "knl-fabric",
                  "profiler": "null"}


@dataclass(frozen=True)
class Workload:
    """A benchmark rank program plus its metadata."""

    name: str
    description: str
    nprocs: int
    program: Callable
    #: machine-model override applied on top of the preset (batching)
    machine_overrides: Tuple[Tuple[str, Any], ...] = ()


# ----------------------------------------------------------------------
# synthetic programs
# ----------------------------------------------------------------------
def _cholesky_sweep(nt: int, tile: int, batched: bool):
    potrf = lapack.potrf_spec(tile)
    trsm = blas.trsm_spec(tile, tile)
    gemm = blas.gemm_spec(tile, tile, tile)

    def program(comm):
        op_potrf = comm.compute(potrf)
        op_trsm = comm.compute(trsm)
        op_gemm = comm.compute(gemm)
        for k in range(nt):
            m = nt - k
            yield op_potrf
            if batched:
                yield comm.compute_batch(trsm, m)
                yield comm.compute_batch(gemm, m)
            else:
                for _ in range(m):
                    yield op_trsm
                for _ in range(m):
                    yield op_gemm
            yield comm.allreduce(nbytes=8 * tile)
        return None

    return program


def _p2p_pipeline(rounds: int, tile: int):
    """Pure-p2p rendezvous mixes: every event is a two-sided match.

    Three phases per round, after the dominant patterns of CANDMC-style
    QR/Cholesky panel exchanges:

    * **ring pipelining** — isend/compute/recv/wait, the buffered
      overlap pattern (blocking recvs meet already-queued isends);
    * **halo exchange** — blocking send/recv with both neighbours in
      even/odd order (sends meet parked recvs and vice versa);
    * **panel pipeline** — a blocking chain down the rank line, the
      naive-parity worst case the inline blocking-send completion
      targets.

    Descriptors are prebuilt (constant tags; FIFO per-channel matching
    keeps pairing exact) so the measurement isolates the engine.
    """
    gemm = blas.gemm_spec(tile, tile, tile)
    small = blas.gemm_spec(tile // 2, tile // 2, tile // 2)
    nb = 8 * tile * tile

    def program(comm):
        me, p = comm.rank, comm.size
        nxt, prv = (me + 1) % p, (me - 1) % p
        op = comm.compute(gemm)
        op_small = comm.compute(small)
        ring_isend = comm.isend(dest=nxt, tag=0, nbytes=nb)
        ring_recv = comm.recv(source=prv, tag=0, nbytes=nb)
        halo_up_send = comm.send(dest=nxt, tag=1, nbytes=nb)
        halo_up_recv = comm.recv(source=prv, tag=1, nbytes=nb)
        halo_dn_send = comm.send(dest=prv, tag=2, nbytes=nb)
        halo_dn_recv = comm.recv(source=nxt, tag=2, nbytes=nb)
        panel_send = comm.send(dest=me + 1, tag=3, nbytes=nb) if me < p - 1 else None
        panel_recv = comm.recv(source=me - 1, tag=3, nbytes=nb) if me > 0 else None
        for r in range(rounds):
            req = yield ring_isend
            yield op
            yield ring_recv
            yield comm.wait(req)
            if me % 2 == 0:
                yield halo_up_send
                yield halo_up_recv
                yield halo_dn_recv
                yield halo_dn_send
            else:
                yield halo_up_recv
                yield halo_up_send
                yield halo_dn_send
                yield halo_dn_recv
            yield op_small
            if panel_recv is not None:
                yield panel_recv
            yield op_small
            if panel_send is not None:
                yield panel_send
        return None

    return program


def _collective_chain(panels: int, tile: int):
    """Panel factorization's collective chain: bcast + tiny compute + allreduce."""
    potrf = lapack.potrf_spec(tile)

    def program(comm):
        op = comm.compute(potrf)
        bc = comm.bcast(root=0, nbytes=8 * tile)
        ar = comm.allreduce(nbytes=8 * tile)
        for _ in range(panels):
            yield bc
            yield op
            yield ar
        return None

    return program


def _critter_heavy(rounds: int, tile: int):
    """p2p + collective mix: every Critter sync-point hook gets hot."""
    gemm = blas.gemm_spec(tile, tile, tile)
    potrf = lapack.potrf_spec(tile)

    def program(comm):
        me, p = comm.rank, comm.size
        nxt, prv = (me + 1) % p, (me - 1) % p
        op_gemm = comm.compute(gemm)
        op_potrf = comm.compute(potrf)
        bc = comm.bcast(root=0, nbytes=8 * tile)
        ar = comm.allreduce(nbytes=8 * tile)
        for r in range(rounds):
            req = yield comm.isend(dest=nxt, tag=r, nbytes=8 * tile)
            yield op_gemm
            yield op_potrf
            yield op_gemm
            yield comm.recv(source=prv, tag=r, nbytes=8 * tile)
            yield comm.wait(req)
            yield bc
            yield op_potrf
            yield ar
        return None

    return program


def _collective_rounds(rounds: int):
    gemm = blas.gemm_spec(16, 16, 16)

    def program(comm):
        op = comm.compute(gemm)
        for _ in range(rounds):
            yield op
            yield comm.bcast(root=0, nbytes=1024)
            yield op
            yield comm.allreduce(nbytes=1024)
            yield comm.barrier()
        return None

    return program


def make_workloads(quick: bool = False) -> List[Workload]:
    nt = 24 if quick else 60
    rounds = 300 if quick else 2000
    return [
        Workload("cholesky-compute",
                 f"compute-heavy tiled Cholesky sweep (nt={nt})",
                 8, _cholesky_sweep(nt, 64, batched=False)),
        Workload("collective-dense",
                 f"bcast/compute/allreduce panel chain ({rounds} panels)",
                 8, _collective_chain(rounds, 64)),
        Workload("critter-heavy",
                 f"isend/compute/recv/wait + bcast/compute/allreduce mix "
                 f"({rounds // 2} rounds)",
                 8, _critter_heavy(rounds // 2, 64)),
        Workload("p2p-pipeline",
                 f"ring + halo-exchange + panel-pipeline p2p mixes "
                 f"({rounds} rounds)",
                 8, _p2p_pipeline(rounds, 32)),
        Workload("collectives",
                 f"bcast/allreduce/barrier rounds ({rounds // 2})",
                 8, _collective_rounds(rounds // 2)),
    ]


def make_batch_workloads(quick: bool = False) -> List[Workload]:
    nt = 24 if quick else 60
    return [
        Workload("cholesky-batch/expanded",
                 "batched ops, batched_compute=False (expanded)",
                 8, _cholesky_sweep(nt, 64, batched=True)),
        Workload("cholesky-batch/aggregate",
                 "batched ops, batched_compute=True (one event per run)",
                 8, _cholesky_sweep(nt, 64, batched=True),
                 machine_overrides=(("batched_compute", True),)),
    ]


# ----------------------------------------------------------------------
# measurement machinery
# ----------------------------------------------------------------------
def count_ops(program: Callable, args: Tuple, machine, noise) -> int:
    """Engine events of one run, counted via a forwarding generator."""
    total = 0

    def counting(comm, *a):
        nonlocal total
        gen = program(comm, *a)
        value = None
        while True:
            try:
                op = gen.send(value)
            except StopIteration as stop:
                return stop.value
            total += 1
            value = yield op

    Simulator(machine, noise=noise).run(counting, args=args, run_seed=1)
    return total


def _profiler_factory(kind: str, exclude=frozenset(),
                      seed_counts=None) -> Callable[[], Any]:
    if kind == "null":
        return lambda: None
    if kind == "critter-online":
        from repro.critter import Critter

        return lambda: Critter(policy="online", eps=0.25, exclude=exclude)
    if kind == "critter-apriori":
        from repro.critter import Critter

        def make():
            c = Critter(policy="apriori", eps=0.25, exclude=exclude)
            if seed_counts is not None:
                c.seed_path_counts(seed_counts)
            return c

        return make
    raise ValueError(f"unknown profiler kind {kind!r}")


def _offline_counts(machine, noise, program, args):
    """Critical-path counts from one never-skip run (apriori seeding)."""
    from repro.critter import Critter

    pre = Critter(policy="never-skip")
    Simulator(machine, noise=noise, profiler=pre).run(program, args=args,
                                                      run_seed=1)
    return pre.last_path_counts


def _time_run(machine, noise, profiler_factory, program, args,
              fast_path: bool, reps: int) -> Tuple[float, float, bool]:
    """(best wall seconds, makespan, used_fast) over ``reps`` fresh runs."""
    best = float("inf")
    makespan = 0.0
    used_fast = False
    for _ in range(reps):
        sim = Simulator(machine, noise=noise, profiler=profiler_factory(),
                        fast_path=fast_path)
        t0 = time.perf_counter()
        res = sim.run(program, args=args, run_seed=1)
        wall = time.perf_counter() - t0
        if wall < best:
            best = wall
        makespan = res.makespan
        used_fast = sim.used_fast_path
    return best, makespan, used_fast


def _measure(workload: Workload, preset: str, profiler: str, reps: int,
             args: Tuple = (), nprocs: Optional[int] = None,
             exclude=frozenset()) -> Dict[str, Any]:
    machine, noise = make_machine(preset, nprocs or workload.nprocs, seed=3)
    if workload.machine_overrides:
        machine = dataclasses.replace(machine,
                                      **dict(workload.machine_overrides))
    nops = count_ops(workload.program, args, machine, noise)
    seed_counts = None
    if profiler == "critter-apriori":
        # the paper's apriori policy needs one offline full execution
        seed_counts = _offline_counts(machine, noise, workload.program, args)
    factory = _profiler_factory(profiler, exclude, seed_counts)
    # warm the noise model's bias/drift memoization for both schedulers
    Simulator(machine, noise=noise, profiler=factory()).run(
        workload.program, args=args, run_seed=1)
    naive_s, naive_mk, _ = _time_run(machine, noise, factory,
                                     workload.program, args, False, reps)
    fast_s, fast_mk, used_fast = _time_run(machine, noise, factory,
                                           workload.program, args, True, reps)
    if naive_mk != fast_mk:
        raise AssertionError(
            f"scheduler divergence on {workload.name}/{preset}/{profiler}: "
            f"naive makespan {naive_mk!r} != fast makespan {fast_mk!r}"
        )
    return {
        "workload": workload.name,
        "preset": preset,
        "profiler": profiler,
        "nops": nops,
        "fast_path_engaged": used_fast,
        "naive": {"wall_s": naive_s, "ops_per_s": nops / naive_s},
        "fast": {"wall_s": fast_s, "ops_per_s": nops / fast_s},
        "speedup": naive_s / fast_s,
        "makespan": fast_mk,
    }


def _end_to_end_cases(quick: bool):
    from repro.autotune.configspace import (
        capital_cholesky_space,
        slate_cholesky_space,
    )

    if quick:
        slate = slate_cholesky_space(n=256, t0=32, dt=8, nconf=4)
        capital = capital_cholesky_space(n=128, c=2, b0=4, nconf=10)
    else:
        slate = slate_cholesky_space()
        capital = capital_cholesky_space(n=256, c=2, b0=4, nconf=15)
    return [(slate, 0), (capital, 0)]


def _matches(name: str, patterns: Optional[Sequence[str]]) -> bool:
    """Workload-name filter: substring match against any pattern."""
    return not patterns or any(p in name for p in patterns)


def _acceptance_row(results: List[Dict[str, Any]],
                    spec: Dict[str, str]) -> Optional[Dict[str, Any]]:
    row = next(
        (r for r in results if all(r[k] == v for k, v in spec.items())),
        None,
    )
    if row is None:
        return None
    return {
        **spec,
        "speedup": row["speedup"],
        "fast_ops_per_s": row["fast"]["ops_per_s"],
        "naive_ops_per_s": row["naive"]["ops_per_s"],
    }


def run_bench(quick: bool = False, presets=BENCH_PRESETS,
              profilers=("null", "critter-online"),
              workloads: Optional[Sequence[str]] = None) -> Dict[str, Any]:
    """Run the matrix; returns the JSON-able result document.

    ``workloads`` optionally restricts the run to workloads whose name
    contains any of the given substrings (``repro bench-engine
    --workload ...``); acceptance entries are emitted only for the
    acceptance rows actually measured.
    """
    reps = 2 if quick else 4
    results = [
        _measure(w, preset, prof, reps)
        for w in make_workloads(quick)
        if _matches(w.name, workloads)
        for preset in presets
        for prof in profilers
    ]
    # the profiler workload additionally runs under the apriori policy
    # (offline-seeded counts — the paper's other count-propagation
    # mode); it rides along only when the profiled matrix was requested
    if "critter-online" in profilers:
        results += [
            _measure(w, preset, "critter-apriori", reps)
            for w in make_workloads(quick)
            if w.name == "critter-heavy" and _matches(w.name, workloads)
            for preset in presets
        ]
    # batching: expanded vs aggregate, fast path, no profiler
    batching = [
        _measure(w, "knl-fabric", "null", reps)
        for w in make_batch_workloads(quick)
        if _matches(w.name, workloads)
    ]
    # real algorithm configurations, end to end
    end_to_end = []
    for space, idx in _end_to_end_cases(quick):
        cfg = space.configs[idx]
        w = Workload(f"{space.name}[{idx}]", cfg.label(), space.nprocs,
                     space.program)
        if not _matches(w.name, workloads):
            continue
        end_to_end.append(_measure(w, "knl-fabric", "null", reps,
                                   args=space.args_for(cfg),
                                   exclude=space.exclude))
    doc: Dict[str, Any] = {
        "version": 4,
        "profile": "quick" if quick else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": results,
        "batching": batching,
        "end_to_end": end_to_end,
    }
    # wall-time win of one aggregate event per batch vs expansion
    if len(batching) == 2:
        doc["batching_speedup"] = (batching[0]["fast"]["wall_s"]
                                   / batching[1]["fast"]["wall_s"])
    acceptance = _acceptance_row(results, ACCEPTANCE)
    if acceptance is not None:
        doc["acceptance"] = acceptance
    coll_acceptance = _acceptance_row(results, COLLECTIVE_ACCEPTANCE)
    if coll_acceptance is not None:
        doc["collective_acceptance"] = coll_acceptance
    critter_acceptance = _acceptance_row(results, CRITTER_ACCEPTANCE)
    if critter_acceptance is not None:
        doc["critter_acceptance"] = critter_acceptance
    p2p_acceptance = _acceptance_row(results, P2P_ACCEPTANCE)
    if p2p_acceptance is not None:
        doc["p2p_acceptance"] = p2p_acceptance
    return doc


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def _fmt_rows(rows: List[Dict[str, Any]]) -> List[str]:
    out = []
    for r in rows:
        out.append(
            f"{r['workload']:<28} {r['preset']:<13} {r['profiler']:<15} "
            f"{r['nops']:>8} {r['naive']['ops_per_s'] / 1e6:>8.2f} "
            f"{r['fast']['ops_per_s'] / 1e6:>8.2f} {r['speedup']:>7.2f}x"
        )
    return out


def format_bench(data: Dict[str, Any]) -> str:
    header = (f"{'workload':<28} {'preset':<13} {'profiler':<15} "
              f"{'ops':>8} {'naive':>8} {'fast':>8} {'speedup':>8}")
    units = f"{'':<28} {'':<13} {'':<15} {'':>8} {'Mops/s':>8} {'Mops/s':>8}"
    lines = [f"engine throughput ({data['profile']} profile)", header, units]
    lines += _fmt_rows(data["results"])
    if data["batching"]:
        lines.append("")
        lines.append("batched-compute (fast path, knl-fabric):")
        lines += _fmt_rows(data["batching"])
        if "batching_speedup" in data:
            lines.append(f"  aggregate batching wall-time win vs expansion: "
                         f"{data['batching_speedup']:.2f}x")
    if data["end_to_end"]:
        lines.append("")
        lines.append("end-to-end algorithm runs (knl-fabric, no profiler):")
        lines += _fmt_rows(data["end_to_end"])
    for key, label in (("acceptance", "acceptance"),
                       ("collective_acceptance", "collective acceptance"),
                       ("critter_acceptance", "critter acceptance"),
                       ("p2p_acceptance", "p2p acceptance")):
        acc = data.get(key)
        if acc is None:
            continue
        lines.append("")
        lines.append(
            f"{label} ({acc['workload']}/{acc['preset']}/{acc['profiler']}): "
            f"{acc['speedup']:.2f}x fast-path speedup "
            f"({acc['naive_ops_per_s'] / 1e6:.2f} -> "
            f"{acc['fast_ops_per_s'] / 1e6:.2f} Mops/s)"
        )
    return "\n".join(lines)


def format_bench_markdown(data: Dict[str, Any]) -> str:
    """GitHub-flavored naive-vs-fast-vs-profiled comparison table.

    One row per workload x preset: the no-profiler throughput under
    both schedulers, the fast-path speedup, the profiled (critter)
    fast-path throughput, and the profiler's overhead factor
    (no-profiler fast wall time vs profiled fast wall time).  Written
    into the CI job summary by the bench-smoke workflow.
    """
    by_cell: Dict[tuple, Dict[str, Any]] = {}
    order: List[tuple] = []
    for r in data["results"]:
        cell = (r["workload"], r["preset"])
        if cell not in by_cell:
            by_cell[cell] = {}
            order.append(cell)
        by_cell[cell][r["profiler"]] = r
    lines = [
        f"### Engine throughput ({data['profile']} profile, Mops/s)",
        "",
        "| workload | preset | naive | fast | speedup | critter-online fast "
        "| profiler overhead | critter-apriori fast |",
        "| --- | --- | --- | --- | --- | --- | --- | --- |",
    ]
    for cell in order:
        rows = by_cell[cell]
        null = rows.get("null")
        critter = rows.get("critter-online")
        apriori = rows.get("critter-apriori")
        naive = f"{null['naive']['ops_per_s'] / 1e6:.2f}" if null else "—"
        fast = f"{null['fast']['ops_per_s'] / 1e6:.2f}" if null else "—"
        speed = f"{null['speedup']:.2f}x" if null else "—"
        prof = f"{critter['fast']['ops_per_s'] / 1e6:.2f}" if critter else "—"
        apri = f"{apriori['fast']['ops_per_s'] / 1e6:.2f}" if apriori else "—"
        if null and critter:
            over = (f"{critter['fast']['wall_s'] / null['fast']['wall_s']:.2f}"
                    "x")
        else:
            over = "—"
        lines.append(f"| {cell[0]} | {cell[1]} | {naive} | {fast} | {speed} "
                     f"| {prof} | {over} | {apri} |")
    for key, label in (("acceptance", "acceptance"),
                       ("collective_acceptance", "collective acceptance"),
                       ("critter_acceptance", "critter acceptance"),
                       ("p2p_acceptance", "p2p acceptance")):
        acc = data.get(key)
        if acc is None:
            continue
        lines.append("")
        lines.append(
            f"**{label}** ({acc['workload']}/{acc['preset']}/"
            f"{acc['profiler']}): {acc['speedup']:.2f}x fast-path speedup "
            f"({acc['naive_ops_per_s'] / 1e6:.2f} → "
            f"{acc['fast_ops_per_s'] / 1e6:.2f} Mops/s)"
        )
    lines.append("")
    return "\n".join(lines)


def write_bench(data: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(data, fh, indent=1)
        fh.write("\n")


def main(quick: bool = False, out: str = "BENCH_engine.json",
         check: bool = False,
         workloads: Optional[Sequence[str]] = None,
         markdown: Optional[str] = None) -> int:
    """CLI driver shared by ``repro bench-engine`` and the bench suite."""
    data = run_bench(quick=quick, workloads=workloads)
    print(format_bench(data))
    if out:
        write_bench(data, out)
        print(f"\nwrote {out}")
    if markdown:
        with open(markdown, "w") as fh:
            fh.write(format_bench_markdown(data))
            fh.write("\n")
        print(f"wrote {markdown}")
    if check:
        checked = [data[key] for key in ("acceptance", "collective_acceptance",
                                         "critter_acceptance",
                                         "p2p_acceptance")
                   if key in data]
        if not checked:
            # a --workload filter excluded every acceptance row: exiting
            # green here would silently disable the regression gate
            print("FAIL: --check requested but no acceptance workload was "
                  "measured (workload filter excluded them)")
            return 1
        failed = False
        for acc in checked:
            if acc["speedup"] < 1.0:
                print(f"FAIL: fast path slower than the naive scheduler on "
                      f"{acc['workload']} ({acc['speedup']:.2f}x)")
                failed = True
        if failed:
            return 1
    return 0
