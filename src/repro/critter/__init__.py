"""Critter: the paper's approximate-autotuning framework.

Public surface:

* :class:`~repro.critter.core.Critter` — the profiling tool; attach it
  to a :class:`repro.sim.Simulator` and it will intercept every kernel,
  build statistical profiles along critical paths, and selectively
  execute kernels to the configured confidence tolerance.
* :mod:`~repro.critter.policies` — the five selective-execution
  policies of Section IV.B plus the ``never-skip`` ground-truth mode.
* :mod:`~repro.critter.stats` — single-pass statistics and the
  confidence-interval predictability test.
* :mod:`~repro.critter.channels` — aggregate-channel algebra for
  propagating statistics across cartesian processor grids.
* :mod:`~repro.critter.pathset` — pathsets: per-rank critical-path and
  volumetric metric profiles.
"""

from repro.critter.channels import (
    AggregateRegistry,
    Channel,
    combine_channels,
    infer_channel,
)
from repro.critter.core import Critter, RunReport
from repro.critter.extrapolation import ExtrapolatingModel, FamilyFit
from repro.critter.report import KernelEntry, format_kernel_profile, kernel_profile
from repro.critter.serialize import (
    critter_state_to_dict,
    load_critter_state,
    read_critter_state,
    save_critter_state,
)
from repro.critter.pathset import (
    PathCountTable,
    PathMetrics,
    PathProfile,
    critical_path,
    volumetric_average,
)
from repro.critter.policies import POLICY_NAMES, Policy, make_policy
from repro.critter.stats import RunningStat, is_predictable, relative_ci, z_value

__all__ = [
    "Critter",
    "RunReport",
    "ExtrapolatingModel",
    "FamilyFit",
    "KernelEntry",
    "kernel_profile",
    "format_kernel_profile",
    "critter_state_to_dict",
    "load_critter_state",
    "save_critter_state",
    "read_critter_state",
    "Policy",
    "make_policy",
    "POLICY_NAMES",
    "RunningStat",
    "is_predictable",
    "relative_ci",
    "z_value",
    "Channel",
    "infer_channel",
    "combine_channels",
    "AggregateRegistry",
    "PathCountTable",
    "PathMetrics",
    "PathProfile",
    "critical_path",
    "volumetric_average",
]
