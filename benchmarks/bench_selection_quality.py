"""Section VI.C: quality of Critter's configuration selection.

The paper reports that Critter "correctly selects the optimal QR
factorization algorithm configuration for all confidence tolerances,
and selects a configuration for each Cholesky algorithm that achieves
at least 99% of the optimal configuration's performance for all eps".

This bench evaluates, for every space and every tolerance of the shared
sweeps, the fraction of optimal performance the predicted-best
configuration attains.
"""

from __future__ import annotations

import math

import pytest

from bench_fig4_cholesky import quick_point
from bench_profiles import get_sweep, results_path
from repro.analysis import format_table, save_csv

SPACES = ("capital_cholesky", "slate_cholesky", "candmc_qr", "slate_qr")
#: the paper's bar: >= 99% of optimal for Cholesky, exact for QR — at
#: simulator scale we require 95% (85% for the smoke profile, whose
#: configurations are nearly indistinguishable) and report exact values
from bench_profiles import PROFILE

QUALITY_FLOOR = 0.85 if PROFILE == "smoke" else 0.95


@pytest.mark.parametrize("space_name", SPACES)
def test_selection_quality(benchmark, space_name):
    sweep = get_sweep(space_name)
    headers = ["policy"] + [f"2^{int(math.log2(e))}" for e in sweep.tolerances]
    rows = []
    for policy in sweep.policies:
        rows.append([policy] + sweep.series(policy, "selection_quality"))
    print()
    print(format_table(headers, rows,
                       title=f"Selection quality — {space_name} "
                             "(fraction of optimal config performance)"))
    save_csv(results_path(f"selection_quality_{space_name}.csv"),
             headers, rows)
    for row in rows:
        worst = min(row[1:])
        assert worst >= QUALITY_FLOOR, (
            f"{space_name}/{row[0]} selected a configuration below "
            f"{QUALITY_FLOOR:.0%} of optimal ({worst:.3f})"
        )
    benchmark.pedantic(quick_point(space_name), rounds=1, iterations=1)
