"""The paper's four tuning configuration spaces (Section V.C).

Each space reproduces the exact enumeration formulas of the paper; the
``paper_scale`` constructors give the published dimensions (16384^2 on
512 KNL cores etc.), while the default constructors produce
simulator-sized instances with the *same structure*: identical
configuration counts, identical ``v % 5``-style parameter formulas, the
same n/b and m/n ratios, and the same grid-shape progression.  Scaling
factors are recorded so EXPERIMENTS.md can state precisely what was
run.

Paper formulas (configuration index v):

* Capital Cholesky, 15 configs: b = B0 * 2^(v%5),
  base-case strategy = ceil((v+1)/5); paper B0=128, n=16384, p=512.
* SLATE Cholesky, 20 configs: pipeline depth = v%2,
  tile = T0 + dT * floor(v/2); paper T0=256, dT=64, n=65536, p=1024.
* CANDMC QR, 15 configs: b = B0 * 2^(v%5),
  grid = (PR0 * 2^floor(v/5)) x (PC0 / 2^floor(v/5));
  paper B0=8, 131072 x 8192, 64x64 grid base, p=4096.
* SLATE QR, 63 configs: w = W0 * 2^(v%3),
  panel = NB0 + dNB * (floor(v/3) % 7),
  grid = (PR0 / 2^floor(v/21)) x (PC0 * 2^floor(v/21));
  paper W0=8, NB0=256, dNB=64, 65536 x 4096, 64x4 grid base, p=256.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Tuple

from repro.algorithms.candmc_qr import CandmcQRConfig, candmc_qr
from repro.algorithms.capital_cholesky import CapitalCholeskyConfig, capital_cholesky
from repro.algorithms.slate_cholesky import SlateCholeskyConfig, slate_cholesky
from repro.algorithms.slate_qr import SlateQRConfig, slate_qr

__all__ = [
    "ConfigSpace",
    "capital_cholesky_space",
    "slate_cholesky_space",
    "candmc_qr_space",
    "slate_qr_space",
    "SPACES",
]


@dataclass(frozen=True)
class ConfigSpace:
    """An algorithm plus an enumerated configuration list to tune over."""

    name: str
    program: Callable
    configs: Tuple
    nprocs: int
    #: kernel names excluded from selective execution for this workload
    exclude: frozenset = frozenset()
    description: str = ""

    def __len__(self) -> int:
        return len(self.configs)

    def labels(self):
        return [c.label() for c in self.configs]

    def args_for(self, config) -> Tuple:
        return (config,)


# ----------------------------------------------------------------------
# Capital Cholesky: {block size} x {base-case strategy}
# ----------------------------------------------------------------------
def capital_cholesky_space(
    n: int = 512, c: int = 2, b0: int = 4, nconf: int = 15
) -> ConfigSpace:
    """15 configs: b = b0 * 2^(v%5), strategy = ceil((v+1)/5).

    Paper scale: ``capital_cholesky_space(n=16384, c=8, b0=128)``.
    Defaults keep the paper's n/b ratios (128 down to 8).
    """
    configs = tuple(
        CapitalCholeskyConfig(
            n=n, block=b0 * 2 ** (v % 5), c=c,
            base_strategy=math.ceil((v + 1) / 5),
        )
        for v in range(nconf)
    )
    return ConfigSpace(
        name="capital_cholesky",
        program=capital_cholesky,
        configs=configs,
        nprocs=c**3,
        description=f"Capital Cholesky {n}x{n} on {c ** 3} ranks (3D {c}^3 grid)",
    )


# ----------------------------------------------------------------------
# SLATE Cholesky: {tile size} x {pipeline depth}
# ----------------------------------------------------------------------
def slate_cholesky_space(
    n: int = 1024, pr: int = 2, pc: int = 2, t0: int = 64, dt: int = 16,
    nconf: int = 20,
) -> ConfigSpace:
    """20 configs: lookahead = v%2, tile = t0 + dt * floor(v/2).

    Paper scale: ``slate_cholesky_space(n=65536, pr=32, pc=32, t0=256, dt=64)``.
    """
    configs = tuple(
        SlateCholeskyConfig(
            n=n, nb=t0 + dt * (v // 2), pr=pr, pc=pc, lookahead=v % 2
        )
        for v in range(nconf)
    )
    return ConfigSpace(
        name="slate_cholesky",
        program=slate_cholesky,
        configs=configs,
        nprocs=pr * pc,
        description=f"SLATE Cholesky {n}x{n} on {pr * pc} ranks ({pr}x{pc} grid)",
    )


# ----------------------------------------------------------------------
# CANDMC QR: {block size} x {2D processor grid shape}
# ----------------------------------------------------------------------
def candmc_qr_space(
    m: int = 1024, n: int = 128, p: int = 16, pr0: int = 4, b0: int = 2,
    nconf: int = 15,
) -> ConfigSpace:
    """15 configs: b = b0 * 2^(v%5), grid = (pr0 * 2^(v//5)) x (p/(pr0 * 2^(v//5))).

    Paper scale: ``candmc_qr_space(m=131072, n=8192, p=4096, pr0=64, b0=8)``.
    Defaults keep m/n = 8 and the three-grid progression.
    """
    configs = tuple(
        CandmcQRConfig(
            m=m, n=n, b=b0 * 2 ** (v % 5),
            pr=pr0 * 2 ** (v // 5), pc=p // (pr0 * 2 ** (v // 5)),
        )
        for v in range(nconf)
    )
    return ConfigSpace(
        name="candmc_qr",
        program=candmc_qr,
        configs=configs,
        nprocs=p,
        description=f"CANDMC QR {m}x{n} on {p} ranks",
    )


# ----------------------------------------------------------------------
# SLATE QR: {w, panel width} x {2D processor grid shape}
# ----------------------------------------------------------------------
def slate_qr_space(
    m: int = 256, n: int = 64, p: int = 8, pr0: int = 8, nb0: int = 8,
    dnb: int = 2, w0: int = 2, nconf: int = 63,
) -> ConfigSpace:
    """63 configs: w = w0 * 2^(v%3), nb = nb0 + dnb * (floor(v/3)%7),
    grid = (pr0 / 2^floor(v/21)) x ((p/pr0) * 2^floor(v/21)).

    Paper scale: ``slate_qr_space(m=65536, n=4096, p=256, pr0=64, nb0=256,
    dnb=64, w0=8)``.
    """
    configs = tuple(
        SlateQRConfig(
            m=m, n=n,
            nb=nb0 + dnb * ((v // 3) % 7),
            w=w0 * 2 ** (v % 3),
            pr=pr0 // 2 ** (v // 21),
            pc=(p // pr0) * 2 ** (v // 21),
        )
        for v in range(nconf)
    )
    return ConfigSpace(
        name="slate_qr",
        program=slate_qr,
        configs=configs,
        nprocs=p,
        exclude=frozenset({"geqr2"}),
        description=f"SLATE QR {m}x{n} on {p} ranks",
    )


#: registry used by benchmarks and examples
SPACES = {
    "capital_cholesky": capital_cholesky_space,
    "slate_cholesky": slate_cholesky_space,
    "candmc_qr": candmc_qr_space,
    "slate_qr": slate_qr_space,
}
