"""Capital's recursive 3D Cholesky: numeric correctness and cost structure."""

import numpy as np
import pytest

from repro.algorithms import verify
from repro.algorithms.capital_cholesky import CapitalCholeskyConfig, capital_cholesky
from repro.critter import Critter
from repro.sim import Machine, NoiseModel, Simulator, TraceRecorder


def run_numeric(n, block, strategy, c=2, seed=1):
    cfg = CapitalCholeskyConfig(n=n, block=block, c=c, base_strategy=strategy)
    a = verify.random_spd(n, seed=seed)
    m = Machine(nprocs=cfg.nprocs, seed=0)
    res = Simulator(m).run(capital_cholesky, args=(cfg, a), run_seed=1)
    return res, a


class TestConfig:
    def test_nprocs(self):
        assert CapitalCholeskyConfig(64, 8, 2, 1).nprocs == 8
        assert CapitalCholeskyConfig(64, 8, 4, 1).nprocs == 64

    def test_invalid_strategy(self):
        with pytest.raises(ValueError, match="base_strategy"):
            CapitalCholeskyConfig(64, 8, 2, 4)

    def test_block_must_divide(self):
        with pytest.raises(ValueError, match="divide"):
            CapitalCholeskyConfig(100, 7, 2, 1)

    def test_label(self):
        assert CapitalCholeskyConfig(64, 8, 2, 3).label() == "b=8 strat=3"


class TestNumericCorrectness:
    @pytest.mark.parametrize("strategy", [1, 2, 3])
    def test_all_strategies_factor_correctly(self, strategy):
        res, a = run_numeric(64, 8, strategy)
        verify.check_capital_cholesky(res.returns[0], a)

    @pytest.mark.parametrize("block", [8, 16, 32, 64])
    def test_block_sizes(self, block):
        res, a = run_numeric(64, block, 2)
        verify.check_capital_cholesky(res.returns[0], a)

    def test_non_power_of_two_block_ratio(self):
        # n/b = 6 exercises uneven recursion splits (n=96, b=16:
        # halves of 48 -> 24 -> 12 <= 16 base case)
        res, a = run_numeric(96, 16, 2, seed=3)
        verify.check_capital_cholesky(res.returns[0], a)

    def test_inverse_produced(self):
        res, _ = run_numeric(32, 8, 2)
        l_mat, v_mat = res.returns[0]
        assert np.allclose(np.tril(v_mat) @ np.tril(l_mat), np.eye(32), atol=1e-8)

    def test_non_carrier_ranks_return_none(self):
        res, _ = run_numeric(32, 8, 1)
        assert res.returns[0] is not None
        assert all(r is None for r in res.returns[1:])


class TestCostStructure:
    def _profile(self, block, strategy, n=256, c=2):
        cfg = CapitalCholeskyConfig(n=n, block=block, c=c, base_strategy=strategy)
        m = Machine(nprocs=cfg.nprocs, seed=0)
        cr = Critter(policy="never-skip")
        sim = Simulator(m, noise=NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0),
                        profiler=cr)
        sim.run(capital_cholesky, args=(cfg,))
        return cr.last_report

    def test_synchs_decrease_with_block_size(self):
        # BSP latency term is alpha * n/b
        s = [self._profile(b, 2).predicted.synchs for b in (8, 32, 128)]
        assert s[0] > s[1] > s[2]

    def test_flops_increase_with_block_size(self):
        # gamma term n^3/p + n b^2: redundant base-case work grows with b
        f = [self._profile(b, 2).predicted.flops for b in (8, 128)]
        assert f[1] > f[0]

    def test_strategy1_more_synchs_than_2(self):
        # gather + scatter + depth-bcast vs a single layer allgather
        s1 = self._profile(32, 1).predicted.synchs
        s2 = self._profile(32, 2).predicted.synchs
        assert s1 > s2

    def test_symbolic_and_numeric_costs_match(self):
        cfg = CapitalCholeskyConfig(n=64, block=16, c=2, base_strategy=2)
        m = Machine(nprocs=8, seed=0)
        quiet = NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0)
        t_sym = Simulator(m, noise=quiet).run(capital_cholesky, args=(cfg,)).makespan
        a = verify.random_spd(64, seed=2)
        t_num = Simulator(m, noise=quiet).run(capital_cholesky, args=(cfg, a)).makespan
        assert t_sym == pytest.approx(t_num)

    def test_blk2cyc_kernel_intercepted(self):
        cfg = CapitalCholeskyConfig(n=64, block=16, c=2, base_strategy=2)
        m = Machine(nprocs=8, seed=0)
        tr = TraceRecorder()
        Simulator(m, trace=tr).run(capital_cholesky, args=(cfg,))
        names = {e.sig.name for e in tr.by_kind("comp")}
        assert "blk2cyc" in names
        assert {"potrf", "trtri", "trmm", "syrk"} <= names
