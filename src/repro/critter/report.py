"""Per-kernel profiling reports: what a Critter instance has learned.

The real tool prints per-kernel critical-path breakdowns after each run;
this module reproduces that surface: for any rank (or merged across
ranks), the kernels it tracks with their sample statistics, confidence
status at a given tolerance, and their share of the predicted
execution time — the view a performance engineer uses to find where a
schedule's time actually goes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.critter.core import Critter
from repro.critter.stats import RunningStat, relative_ci
from repro.kernels.signature import KernelSignature

__all__ = ["KernelEntry", "kernel_profile", "format_kernel_profile"]


@dataclass(slots=True)
class KernelEntry:
    """One kernel's learned statistics."""

    sig: KernelSignature
    count: int
    mean: float
    std: float
    rel_ci: float
    path_count: int
    total_time: float

    @property
    def predictable(self) -> bool:
        return math.isfinite(self.rel_ci)


def kernel_profile(
    critter: Critter,
    rank: Optional[int] = None,
    top: Optional[int] = None,
) -> List[KernelEntry]:
    """Kernel statistics of one rank (or merged over all ranks).

    Entries are sorted by total measured time, descending; ``top``
    truncates the list.
    """
    if critter._K is None:
        return []
    if rank is not None:
        sources = [rank]
    else:
        sources = list(range(len(critter._K)))
    merged: dict[KernelSignature, RunningStat] = {}
    for r in sources:
        for sig, st in critter._K[r].items():
            acc = merged.get(sig)
            if acc is None:
                merged[sig] = st.copy()
            else:
                acc.merge(st)
    path_counts: dict[KernelSignature, int] = {}
    for r in sources:
        for sig, c in (critter._Kt[r] or {}).items():
            path_counts[sig] = max(path_counts.get(sig, 0), c)
    entries = [
        KernelEntry(
            sig=sig,
            count=st.count,
            mean=st.mean,
            std=st.std,
            rel_ci=relative_ci(st, critter.z),
            path_count=path_counts.get(sig, 0),
            total_time=st.total,
        )
        for sig, st in merged.items()
    ]
    entries.sort(key=lambda e: e.total_time, reverse=True)
    if top is not None:
        entries = entries[:top]
    return entries


def format_kernel_profile(
    critter: Critter,
    rank: Optional[int] = None,
    top: int = 15,
) -> str:
    """Human-readable kernel table (one line per kernel)."""
    entries = kernel_profile(critter, rank=rank, top=top)
    lines = [
        f"{'kernel':<28}{'count':>8}{'mean(us)':>12}{'std(us)':>12}"
        f"{'rel_ci':>10}{'path#':>8}{'total(ms)':>12}"
    ]
    lines.append("-" * len(lines[0]))
    for e in entries:
        ci = f"{e.rel_ci:.3f}" if math.isfinite(e.rel_ci) else "inf"
        lines.append(
            f"{str(e.sig):<28}{e.count:>8}{e.mean * 1e6:>12.3f}"
            f"{e.std * 1e6:>12.3f}{ci:>10}{e.path_count:>8}"
            f"{e.total_time * 1e3:>12.4f}"
        )
    return "\n".join(lines)
