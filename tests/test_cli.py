"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tune_defaults(self):
        args = build_parser().parse_args(["tune", "capital_cholesky"])
        assert args.policy == "online"
        assert args.eps == -3

    def test_rejects_unknown_space(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "nonexistent_space"])

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "capital_cholesky",
                                       "--policy", "magic"])

    def test_fault_tolerance_knobs(self):
        args = build_parser().parse_args(
            ["sweep", "capital_cholesky", "--retries", "2",
             "--job-timeout", "1.5", "--resume"])
        assert args.retries == 2
        assert args.job_timeout == 1.5
        assert args.resume
        defaults = build_parser().parse_args(["sweep", "capital_cholesky"])
        assert defaults.retries is None
        assert defaults.job_timeout is None
        assert not defaults.resume

    def test_bench_engine_workload_filter_is_repeatable(self):
        args = build_parser().parse_args(
            ["bench-engine", "--workload", "collective-dense",
             "--workload", "p2p"])
        assert args.workload == ["collective-dense", "p2p"]
        assert build_parser().parse_args(["bench-engine"]).workload is None


class TestBenchWorkloadFilter:
    """The --workload plumbing, without paying for a bench run."""

    def test_matches_is_substring_any(self):
        from repro.sim.bench import _matches

        assert _matches("collective-dense", None)
        assert _matches("collective-dense", ["collective"])
        assert _matches("cholesky-batch/expanded", ["p2p", "batch"])
        assert not _matches("cholesky-compute", ["collective-dense"])

    def test_acceptance_row_absent_when_filtered_out(self):
        from repro.sim.bench import ACCEPTANCE, COLLECTIVE_ACCEPTANCE, _acceptance_row

        rows = [{"workload": "cholesky-compute", "preset": "knl-fabric",
                 "profiler": "null", "speedup": 2.0,
                 "fast": {"ops_per_s": 2.0}, "naive": {"ops_per_s": 1.0}}]
        acc = _acceptance_row(rows, ACCEPTANCE)
        assert acc is not None and acc["speedup"] == 2.0
        assert _acceptance_row(rows, COLLECTIVE_ACCEPTANCE) is None

    def test_all_acceptance_workloads_exist(self):
        from repro.sim.bench import ACCEPTANCE_SPECS, make_workloads

        names = {w.name for w in make_workloads(quick=True)}
        for _key, spec in ACCEPTANCE_SPECS:
            assert spec["workload"] in names

    def test_every_acceptance_key_has_check_floors(self):
        from repro.sim.bench import ACCEPTANCE_SPECS, CHECK_FLOORS

        for key, _spec in ACCEPTANCE_SPECS:
            full, quick = CHECK_FLOORS[key]
            assert full >= quick > 0

    def test_known_workload_names_cover_all_sections(self):
        from repro.sim.bench import known_workload_names

        names = known_workload_names(quick=True)
        assert "cholesky-compute" in names
        assert "cholesky-columnar" in names
        assert "cholesky-batch/aggregate" in names
        assert any(n.startswith("slate_cholesky[") for n in names)

    def test_unknown_workload_fails_fast_listing_names(self, capsys):
        from repro.sim.bench import main as bench_main

        rc = bench_main(quick=True, out="", workloads=["no-such-workload"])
        out = capsys.readouterr().out
        assert rc == 2
        assert "unknown workload pattern" in out
        assert "'no-such-workload'" in out
        # the message teaches the valid vocabulary
        assert "cholesky-compute" in out
        assert "p2p-pipeline" in out

    def test_unknown_workload_fails_even_alongside_valid_ones(self, capsys):
        from repro.sim.bench import main as bench_main

        rc = bench_main(quick=True, out="",
                        workloads=["p2p-pipeline", "typo-name"])
        assert rc == 2
        assert "'typo-name'" in capsys.readouterr().out

    def test_bench_engine_parses_diag_flag(self):
        args = build_parser().parse_args(["bench-engine", "--diag"])
        assert args.diag
        assert not build_parser().parse_args(["bench-engine"]).diag

    def test_markdown_table_covers_profiled_rows(self):
        from repro.sim.bench import format_bench_markdown

        data = {
            "profile": "quick",
            "results": [
                {"workload": "critter-heavy", "preset": "knl-fabric",
                 "profiler": "null", "speedup": 1.2,
                 "naive": {"ops_per_s": 1e6, "wall_s": 1.0},
                 "fast": {"ops_per_s": 1.2e6, "wall_s": 1 / 1.2}},
                {"workload": "critter-heavy", "preset": "knl-fabric",
                 "profiler": "critter-online", "speedup": 1.1,
                 "naive": {"ops_per_s": 0.5e6, "wall_s": 2.0},
                 "fast": {"ops_per_s": 0.55e6, "wall_s": 2 / 1.1}},
            ],
            "critter_acceptance": {
                "workload": "critter-heavy", "preset": "knl-fabric",
                "profiler": "critter-online", "speedup": 1.1,
                "fast_ops_per_s": 0.55e6, "naive_ops_per_s": 0.5e6,
            },
        }
        md = format_bench_markdown(data)
        assert "| critter-heavy | knl-fabric | 1.00 | 1.20 | 1.20x | 0.55 |" in md
        assert "**critter acceptance**" in md

    def test_markdown_table_covers_p2p_acceptance(self):
        from repro.sim.bench import format_bench_markdown

        data = {
            "profile": "quick",
            "results": [
                {"workload": "p2p-pipeline", "preset": "knl-fabric",
                 "profiler": "null", "speedup": 1.5,
                 "naive": {"ops_per_s": 1e6, "wall_s": 1.0},
                 "fast": {"ops_per_s": 1.5e6, "wall_s": 1 / 1.5}},
            ],
            "p2p_acceptance": {
                "workload": "p2p-pipeline", "preset": "knl-fabric",
                "profiler": "null", "speedup": 1.5,
                "fast_ops_per_s": 1.5e6, "naive_ops_per_s": 1e6,
            },
        }
        md = format_bench_markdown(data)
        assert "| p2p-pipeline | knl-fabric | 1.00 | 1.50 | 1.50x |" in md
        assert "**p2p acceptance**" in md


class TestSpaces:
    def test_lists_all_four(self, capsys):
        assert main(["spaces"]) == 0
        out = capsys.readouterr().out
        for name in ("capital_cholesky", "slate_cholesky", "candmc_qr", "slate_qr"):
            assert name in out


class TestProfile:
    def test_profiles_config(self, capsys):
        assert main(["profile", "capital_cholesky", "--config", "2"]) == 0
        out = capsys.readouterr().out
        assert "critical-path time" in out
        assert "total(ms)" in out  # kernel table rendered

    def test_bad_config_index(self, capsys):
        assert main(["profile", "capital_cholesky", "--config", "99"]) == 2


class TestTune:
    def test_tune_small_space(self, capsys, monkeypatch):
        # shrink the space for test speed
        from repro.autotune import capital_cholesky_space
        import repro.cli as cli

        monkeypatch.setitem(
            cli.SPACES, "capital_cholesky",
            lambda: capital_cholesky_space(n=64, c=2, b0=4, nconf=4),
        )
        assert main(["tune", "capital_cholesky", "--reps", "2",
                     "--full-reps", "2", "--eps", "-2"]) == 0
        out = capsys.readouterr().out
        assert "chosen: config" in out
        assert "speedup" in out


class TestSweep:
    def test_sweep_with_chart(self, capsys, monkeypatch):
        from repro.autotune import capital_cholesky_space
        import repro.cli as cli

        monkeypatch.setitem(
            cli.SPACES, "capital_cholesky",
            lambda: capital_cholesky_space(n=64, c=2, b0=4, nconf=3),
        )
        assert main(["sweep", "capital_cholesky", "--policies", "online",
                     "--exponents", "0,-4", "--reps", "1", "--full-reps", "1",
                     "--chart"]) == 0
        out = capsys.readouterr().out
        assert "search_time vs tolerance" in out
        assert "full-exec" in out
        assert "o=online" in out  # the chart legend


class TestSweepResume:
    ARGS = ["sweep", "capital_cholesky", "--policies", "online",
            "--exponents", "0,-4", "--reps", "1", "--full-reps", "1"]

    @pytest.fixture(autouse=True)
    def small_space(self, monkeypatch):
        from repro.autotune import capital_cholesky_space
        import repro.cli as cli

        monkeypatch.setitem(
            cli.SPACES, "capital_cholesky",
            lambda: capital_cholesky_space(n=64, c=2, b0=4, nconf=3),
        )

    def test_resume_requires_cache_dir(self, capsys):
        assert main(self.ARGS + ["--resume"]) == 2
        assert "--resume requires --cache-dir" in capsys.readouterr().err

    def test_resume_without_manifest_fails(self, capsys, tmp_path):
        assert main(self.ARGS + ["--resume",
                                 "--cache-dir", str(tmp_path)]) == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_resume_after_completed_sweep_replays(self, capsys, tmp_path):
        cached = self.ARGS + ["--cache-dir", str(tmp_path)]
        assert main(cached) == 0
        capsys.readouterr()
        assert main(cached + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resume: 0 executed" in out
        assert "search_time vs tolerance" in out


class TestCacheCommand:
    SWEEP = ["sweep", "capital_cholesky", "--policies", "online",
             "--exponents", "0", "--reps", "1", "--full-reps", "1"]

    @pytest.fixture(autouse=True)
    def small_space(self, monkeypatch):
        from repro.autotune import capital_cholesky_space
        import repro.cli as cli

        monkeypatch.setitem(
            cli.SPACES, "capital_cholesky",
            lambda: capital_cholesky_space(n=64, c=2, b0=4, nconf=3),
        )

    def test_size_suffixes(self):
        args = build_parser().parse_args(
            ["tune", "capital_cholesky", "--cache-max-bytes", "64K"])
        assert args.cache_max_bytes == 64 * 1024
        for text, expected in (("512", 512), ("16m", 16 * 1024**2),
                               ("1G", 1024**3)):
            args = build_parser().parse_args(
                ["tune", "capital_cholesky", "--cache-max-bytes", text])
            assert args.cache_max_bytes == expected

    def test_rejects_bad_sizes(self):
        for bad in ("zero", "0", "-5", "12T"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    ["tune", "capital_cholesky", "--cache-max-bytes", bad])

    def test_stats_on_missing_dir_is_a_usage_error(self, capsys, tmp_path):
        assert main(["cache", "stats", str(tmp_path / "absent")]) == 2
        assert "no cache directory" in capsys.readouterr().err

    def test_stats_reports_a_populated_cache(self, capsys, tmp_path):
        assert main(self.SWEEP + ["--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "total_bytes" in out
        for counter in ("hits", "misses", "stores", "corrupt", "evicted",
                        "degraded"):
            assert f"lifetime_{counter}" in out
        assert "lifetime_stores : 0" not in out  # the sweep stored results

    def test_vacuum_sweeps_debris(self, capsys, tmp_path):
        assert main(self.SWEEP + ["--cache-dir", str(tmp_path)]) == 0
        (tmp_path / ("ab" * 32 + ".corrupt")).write_text("evidence")
        (tmp_path / "orphan.tmp").write_text("half a write")
        capsys.readouterr()
        assert main(["cache", "vacuum", str(tmp_path)]) == 0
        assert "removed 2 file(s)" in capsys.readouterr().out
        assert not (tmp_path / "orphan.tmp").exists()
