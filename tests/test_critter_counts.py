"""Execution-count propagation: how each policy derives alpha.

The sqrt(alpha) confidence shrinkage is the paper's core statistical
device; these tests pin down *which* count each policy uses and that
the counts actually change skip decisions.
"""

import pytest

from repro.critter import Critter
from repro.kernels.blas import gemm_spec
from repro.sim import Machine, NoiseModel, Simulator

SIG = gemm_spec(32, 32, 32)[0]


def chain_prog(comm, iters=6):
    """Rank 0 computes `iters` gemms, then a barrier spreads the path."""
    if comm.rank == 0:
        for _ in range(iters):
            yield comm.compute(gemm_spec(32, 32, 32))
    yield comm.barrier()


class TestPathCountPropagation:
    def test_online_counts_follow_critical_path(self):
        m = Machine(nprocs=4, seed=1)
        cr = Critter(policy="online")
        Simulator(m, profiler=cr).run(chain_prog, run_seed=0)
        # every rank's K~ reflects the path's 6 executions, even though
        # only rank 0 executed the kernel locally
        for r in range(4):
            assert cr._Kt[r].get(SIG, 0) == 6

    def test_local_counts_stay_local(self):
        m = Machine(nprocs=4, seed=1)
        cr = Critter(policy="local", eps=1e-12)  # keep everything executing
        Simulator(m, profiler=cr).run(chain_prog, run_seed=0)
        assert SIG in cr._K[0] and cr._K[0][SIG].count == 6
        for r in range(1, 4):
            assert SIG not in cr._K[r]

    def test_alpha_dispatch_per_policy(self):
        m = Machine(nprocs=2, seed=1)
        results = {}
        for policy in ("conditional", "local", "online"):
            cr = Critter(policy=policy, eps=1e-12)
            Simulator(m, profiler=cr).run(chain_prog, run_seed=0)
            results[policy] = cr._alpha(0, SIG)
        assert results["conditional"] == 1
        assert results["local"] == 6
        assert results["online"] == 6

    def test_online_counts_reset_each_run(self):
        m = Machine(nprocs=2, seed=1)
        cr = Critter(policy="online", eps=1e-12)
        Simulator(m, profiler=cr).run(chain_prog, run_seed=0)
        Simulator(m, profiler=cr).run(chain_prog, run_seed=1)
        # K~ is per-run (sub-critical-path of THIS run): still 6, not 12
        assert cr._Kt[0][SIG] == 6
        # while K (local statistics) accumulated across runs
        assert cr._K[0][SIG].count > 6


class TestAprioriSeeding:
    def test_seeded_counts_used(self):
        m = Machine(nprocs=2, seed=1)
        pre = Critter(policy="never-skip")
        Simulator(m, profiler=pre).run(chain_prog, run_seed=0)
        tables = pre.last_path_counts
        assert tables[1].get(SIG, 0) == 6  # propagated across the barrier

        cr = Critter(policy="apriori")
        cr.seed_path_counts(tables)
        Simulator(m, profiler=cr).run(chain_prog, run_seed=1)
        assert cr._alpha(0, SIG) == 6

    def test_without_table_alpha_one(self):
        m = Machine(nprocs=2, seed=1)
        cr = Critter(policy="apriori")
        Simulator(m, profiler=cr).run(chain_prog, run_seed=0)
        assert cr._alpha(0, SIG) == 1

    def test_reset_clears_table(self):
        cr = Critter(policy="apriori")
        cr.seed_path_counts([{SIG: 5}])
        cr.reset_statistics()
        assert cr._apriori is None


class TestCountsChangeDecisions:
    def _skip_count(self, policy, noise_cv=0.3, seeds=range(4)):
        """How many kernels get skipped under heavy noise."""
        m = Machine(nprocs=2, seed=2)
        noise = NoiseModel(comp_cv=noise_cv, comm_cv=noise_cv, machine_seed=2)

        def prog(comm):
            # the kernel recurs 40x along the path: alpha = 40
            for _ in range(40):
                yield comm.compute(gemm_spec(32, 32, 32))
            yield comm.barrier()

        cr = Critter(policy=policy, eps=2**-5)
        skipped = 0
        for s in seeds:
            Simulator(m, noise=noise, profiler=cr).run(prog, run_seed=s)
            skipped += cr.last_report.skipped_kernels
        return skipped

    def test_count_scaling_skips_more_than_conditional(self):
        # at a tight tolerance under heavy noise, sqrt(40) extra
        # shrinkage lets online skip while conditional cannot
        assert self._skip_count("online") > self._skip_count("conditional")
