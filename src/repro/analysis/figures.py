"""Terminal line charts for sweep series.

The paper's figures are gnuplot line charts; benches and examples in
this repository print their data as tables, and — for quick visual
inspection over SSH — as ASCII charts rendered by this module.  Charts
support multiple named series, linear or log2 y-scaling, and mark the
full-execution reference line.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

__all__ = ["ascii_chart", "sweep_chart"]

_MARKERS = "ox+*#@%&"


def _scale(values: Sequence[float], log2: bool) -> List[float]:
    if not log2:
        return list(values)
    return [math.log2(v) if v > 0 else float("-inf") for v in values]


def ascii_chart(
    series: Dict[str, Sequence[float]],
    x_labels: Optional[Sequence[str]] = None,
    title: str = "",
    height: int = 12,
    width: Optional[int] = None,
    log2_y: bool = False,
    y_label: str = "",
) -> str:
    """Render named series as an ASCII chart.

    Points of each series are plotted column-wise with one marker per
    series; collisions show the later series' marker.  The y axis is
    annotated with the min/mid/max values (pre-log values when
    ``log2_y``).
    """
    names = list(series)
    if not names:
        return "(empty chart)"
    n = len(next(iter(series.values())))
    for name in names:
        if len(series[name]) != n:
            raise ValueError("all series must share the x axis")
    cols = width if width is not None else max(3 * n, 24)
    scaled = {name: _scale(series[name], log2_y) for name in names}
    finite = [v for vals in scaled.values() for v in vals if math.isfinite(v)]
    if not finite:
        return "(no finite data)"
    lo, hi = min(finite), max(finite)
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * cols for _ in range(height)]
    for si, name in enumerate(names):
        marker = _MARKERS[si % len(_MARKERS)]
        for i, v in enumerate(scaled[name]):
            if not math.isfinite(v):
                continue
            x = round(i * (cols - 1) / max(n - 1, 1))
            y = round((v - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - y][x] = marker

    def fmt_val(v: float) -> str:
        raw = 2.0**v if log2_y else v
        return f"{raw:.3g}"

    lines: List[str] = []
    if title:
        lines.append(title)
    axis_w = max(len(fmt_val(hi)), len(fmt_val(lo))) + 1
    for r, row in enumerate(grid):
        if r == 0:
            label = fmt_val(hi)
        elif r == height - 1:
            label = fmt_val(lo)
        elif r == height // 2:
            label = fmt_val((hi + lo) / 2)
        else:
            label = ""
        lines.append(f"{label:>{axis_w}} |{''.join(row)}")
    lines.append(f"{'':>{axis_w}} +{'-' * cols}")
    if x_labels:
        overflow = max(len(str(l)) for l in x_labels)
        xl = [" "] * (cols + overflow)
        for i, lab in enumerate(x_labels):
            x = round(i * (cols - 1) / max(n - 1, 1))
            for j, ch in enumerate(str(lab)):
                xl[x + j] = ch
        lines.append(f"{'':>{axis_w}}  {''.join(xl).rstrip()}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(names)
    )
    lines.append(f"{'':>{axis_w}}  {legend}" + (f"   [y: {y_label}]" if y_label else ""))
    return "\n".join(lines)


def sweep_chart(sweep, metric: str, title: str = "", log2_y: bool = False,
                reference: Optional[float] = None) -> str:
    """Chart one metric of a :class:`~repro.autotune.sweep.SweepResult`."""
    series = {p: sweep.series(p, metric) for p in sweep.policies}
    if reference is not None:
        series["full-exec"] = [reference] * len(sweep.tolerances)
    labels = [f"2^{int(math.log2(e))}" for e in sweep.tolerances]
    return ascii_chart(series, x_labels=labels,
                       title=title or f"{sweep.space_name}: {metric}",
                       log2_y=log2_y, y_label=metric)
