"""Kernel-model extrapolation (Section VIII extension): line fitting."""

import numpy as np
import pytest

from repro.critter import Critter, ExtrapolatingModel
from repro.kernels.blas import gemm_spec
from repro.kernels.signature import comm_signature, comp_signature
from repro.sim import Machine, NoiseModel, Simulator


def feed(model, sizes, gamma=1e-9, const=5e-7, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    for n in sizes:
        sig, flops = gemm_spec(n, n, n)
        t = const + gamma * flops
        if noise:
            t *= 1.0 + noise * rng.standard_normal()
        model.observe(sig, flops, t)


class TestFitting:
    def test_no_fit_below_min_points(self):
        m = ExtrapolatingModel(min_points=3)
        feed(m, [8, 16])
        assert m.fit("gemm") is None
        assert m.predict(gemm_spec(32, 32, 32)[0], gemm_spec(32, 32, 32)[1]) is None

    def test_exact_linear_recovered(self):
        m = ExtrapolatingModel(min_points=3)
        feed(m, [8, 16, 24, 32])
        fit = m.fit("gemm")
        assert fit is not None
        assert fit.rel_rms < 1e-9
        # coefficients: [const, gamma]
        assert fit.coeffs[0] == pytest.approx(5e-7, rel=1e-6)
        assert fit.coeffs[1] == pytest.approx(1e-9, rel=1e-6)

    def test_extrapolated_prediction(self):
        m = ExtrapolatingModel(min_points=3)
        feed(m, [8, 16, 24])
        sig, flops = gemm_spec(32, 32, 32)  # never observed, near support
        pred = m.predict(sig, flops)
        assert pred == pytest.approx(5e-7 + 1e-9 * flops, rel=1e-6)

    def test_far_extrapolation_rejected_by_support_margin(self):
        m = ExtrapolatingModel(min_points=3, support_margin=4.0)
        feed(m, [8, 16, 24])
        # 64^3 is ~19x the largest observed complexity: outside margin
        assert m.predict(*gemm_spec(64, 64, 64)) is None
        # widening the margin admits it
        wide = ExtrapolatingModel(min_points=3, support_margin=32.0)
        feed(wide, [8, 16, 24])
        assert wide.predict(*gemm_spec(64, 64, 64)) is not None

    def test_noisy_fit_within_tolerance(self):
        m = ExtrapolatingModel(min_points=4, rel_tolerance=0.2)
        feed(m, [8, 12, 16, 24, 32, 48], noise=0.03, seed=1)
        assert m.predict(*gemm_spec(64, 64, 64)) is not None

    def test_bad_fit_rejected(self):
        # a family whose time is NOT linear in the features: quadratic
        # in flops -> large residual -> no prediction
        m = ExtrapolatingModel(min_points=3, rel_tolerance=0.05)
        for n in (8, 16, 32, 64):
            sig, flops = gemm_spec(n, n, n)
            m.observe(sig, flops, (flops * 1e-9) ** 2 + 1e-9)
        assert m.predict(*gemm_spec(128, 128, 128)) is None

    def test_comm_family_uses_bytes(self):
        m = ExtrapolatingModel(min_points=3)
        for nb in (256, 512, 1024, 4096):
            sig = comm_signature("bcast", nb, 8, 1)
            m.observe(sig, 0.0, 1e-6 + 2e-9 * nb)
        pred = m.predict(comm_signature("bcast", 8192, 8, 1), 0.0)
        assert pred == pytest.approx(1e-6 + 2e-9 * 8192, rel=1e-6)

    def test_negative_extrapolation_rejected(self):
        m = ExtrapolatingModel(min_points=3)
        # falling line: big sizes predict negative times
        for i, n in enumerate((8, 16, 24)):
            sig, flops = gemm_spec(n, n, n)
            m.observe(sig, flops, 1e-3 - i * 4.9e-4)
        assert m.predict(*gemm_spec(256, 256, 256)) is None

    def test_family_sizes_and_reset(self):
        m = ExtrapolatingModel()
        feed(m, [8, 16])
        assert m.family_sizes() == {"gemm": 2}
        m.reset()
        assert m.family_sizes() == {}


class TestCritterIntegration:
    def _varying_sizes_prog(self, comm, sizes):
        for n in sizes:
            yield comm.compute(gemm_spec(n, n, n))
        yield comm.barrier()

    def test_unseen_sizes_skipped_with_extrapolation(self):
        # CANDMC-like workload: every kernel size distinct — without
        # extrapolation nothing can ever be skipped (min_samples=2)
        m = Machine(nprocs=2, seed=4)
        quiet = NoiseModel(bias_sigma=0.0, comp_cv=0.0, comm_cv=0.0, run_cv=0.0)
        sizes = list(range(16, 96, 4))  # 20 distinct sizes

        plain = Critter(policy="conditional", eps=0.3)
        Simulator(m, noise=quiet, profiler=plain).run(
            self._varying_sizes_prog, args=(sizes,), run_seed=0)
        assert plain.last_report.skipped_kernels == 0

        extra = Critter(policy="conditional", eps=0.3, extrapolate=True)
        Simulator(m, noise=quiet, profiler=extra).run(
            self._varying_sizes_prog, args=(sizes,), run_seed=0)
        assert extra.last_report.skipped_kernels > 0

    def test_extrapolated_prediction_accuracy(self):
        m = Machine(nprocs=2, seed=4)
        quiet = NoiseModel(bias_sigma=0.0, comp_cv=0.0, comm_cv=0.0, run_cv=0.0)
        sizes = list(range(16, 96, 4))
        full = Critter(policy="never-skip")
        t_full = Simulator(m, noise=quiet, profiler=full).run(
            self._varying_sizes_prog, args=(sizes,), run_seed=0).makespan
        extra = Critter(policy="conditional", eps=0.3, extrapolate=True)
        res = Simulator(m, noise=quiet, profiler=extra).run(
            self._varying_sizes_prog, args=(sizes,), run_seed=0)
        rep = extra.last_report
        assert res.makespan < t_full  # actually accelerated
        assert abs(rep.predicted_exec_time - t_full) / t_full < 0.05

    def test_reset_clears_model(self):
        cr = Critter(policy="conditional", extrapolate=True)
        m = Machine(nprocs=2, seed=4)
        Simulator(m, profiler=cr).run(
            self._varying_sizes_prog, args=([16, 20, 24, 28],), run_seed=0)
        assert cr.extrapolation.family_sizes()
        cr.reset_statistics()
        assert not cr.extrapolation.family_sizes()

    def test_disabled_by_default(self):
        assert Critter().extrapolation is None
