"""MPI_Comm_split semantics: grouping, key ordering, undefined colors."""

import pytest

from conftest import make_quiet_sim


class TestSplitGrouping:
    def test_split_by_parity(self):
        def prog(comm):
            sub = yield comm.split(color=comm.rank % 2, key=comm.rank)
            return (sub.size, sub.rank, sub.world_ranks)

        res = make_quiet_sim(4).run(prog)
        assert res.returns[0] == (2, 0, (0, 2))
        assert res.returns[2] == (2, 1, (0, 2))
        assert res.returns[1] == (2, 0, (1, 3))

    def test_key_reverses_rank_order(self):
        def prog(comm):
            sub = yield comm.split(color=0, key=-comm.rank)
            return (sub.rank, sub.world_ranks)

        res = make_quiet_sim(3).run(prog)
        # key=-rank: world rank 2 becomes sub rank 0
        assert res.returns[2][0] == 0
        assert res.returns[0][0] == 2
        assert res.returns[0][1] == (2, 1, 0)

    def test_undefined_color_returns_none(self):
        def prog(comm):
            sub = yield comm.split(color=None if comm.rank == 0 else 1, key=comm.rank)
            return None if sub is None else sub.size

        res = make_quiet_sim(3).run(prog)
        assert res.returns == [None, 2, 2]

    def test_nested_split(self):
        def prog(comm):
            half = yield comm.split(color=comm.rank // 2, key=comm.rank)
            solo = yield half.split(color=half.rank, key=0)
            return (half.size, solo.size)

        res = make_quiet_sim(4).run(prog)
        assert all(r == (2, 1) for r in res.returns)

    def test_collectives_on_split_comm(self):
        def prog(comm):
            sub = yield comm.split(color=comm.rank % 2, key=comm.rank)
            total = yield sub.allreduce(comm.rank, nbytes=8)
            return total

        res = make_quiet_sim(6).run(prog)
        assert res.returns == [6, 9, 6, 9, 6, 9]

    def test_p2p_on_split_comm_uses_local_ranks(self):
        def prog(comm):
            sub = yield comm.split(color=comm.rank % 2, key=comm.rank)
            if sub.rank == 0:
                yield sub.send(comm.rank, dest=1, nbytes=8)
                return None
            return (yield sub.recv(source=0, nbytes=8))

        res = make_quiet_sim(4).run(prog)
        assert res.returns[2] == 0  # world rank 2 is rank 1 of the even comm
        assert res.returns[3] == 1

    def test_split_charges_time(self):
        def prog(comm):
            yield comm.split(color=0, key=comm.rank)

        res = make_quiet_sim(8).run(prog)
        assert res.makespan > 0

    def test_group_stride_detection(self):
        def prog(comm):
            row = yield comm.split(color=comm.rank // 2, key=comm.rank)
            col = yield comm.split(color=comm.rank % 2, key=comm.rank)
            return (row.group.stride, col.group.stride)

        res = make_quiet_sim(4).run(prog)
        assert res.returns[0] == (1, 2)
