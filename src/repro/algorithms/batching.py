"""Run-length batching of identical-signature kernel emissions.

Algorithm rank programs often emit a *run* of computational kernels
with the same signature — trailing-update gemms down a panel, a tpqrt
reduction tree, inner-blocked geqr2 chunks.  Yielding each kernel as
its own :class:`~repro.sim.ops.ComputeOp` costs one engine event per
kernel; yielding the run as one :class:`~repro.sim.ops.ComputeBatchOp`
costs one event and, under ``Machine.batched_compute``, a single
aggregate noise draw.

:class:`ComputeRunBatcher` discovers the runs at emission time, so
algorithms whose grouping depends on runtime state (tile ownership,
cache hits) don't have to precompute them.  ``add`` buffers a kernel;
a signature/flops change emits the buffered run.  The caller **must**
``yield from flush()`` before any non-compute yield (recv, isend,
collective, wait) and at the end of the emission region — that keeps
the engine's op stream in the original order, which is what makes the
transformation bit-identical: a batch's default expansion
(``batched_compute=False``) replays the exact per-sub-kernel profiler
decisions and noise draws of per-op emission.

Numeric callbacks are chained and run once after the run's final
sub-kernel (the same contract as :class:`ComputeBatchOp`): because no
other op separates the run's kernels, deferring each callback to the
end of the run is observationally identical for callbacks that touch
only rank-local state.  Under a skipping profiler with
``execute_skipped_fns=False`` the chained callback inherits the *final*
sub-kernel's execute decision — data-carrying runs should keep
``execute_skipped_fns=True``, as everywhere else.

Usage::

    batch = ComputeRunBatcher(comm)
    for tile in tiles:
        if needs_recv(tile):
            yield from batch.flush()
            data = yield comm.recv(...)
        yield from batch.add(spec_for(tile), fn=update_fn)
    yield from batch.flush()
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

__all__ = ["ComputeRunBatcher"]


class ComputeRunBatcher:
    """Coalesces consecutive identical-signature computes into batches."""

    __slots__ = ("comm", "_spec", "_count", "_fns")

    def __init__(self, comm: Any) -> None:
        self.comm = comm
        self._spec: Optional[Tuple[Any, float]] = None
        self._count = 0
        self._fns: List[Callable[[], Any]] = []

    def add(self, spec: Tuple[Any, float], fn: Optional[Callable[[], Any]] = None):
        """Buffer one kernel (generator: ``yield from``).

        Extends the pending run when ``spec`` matches its signature and
        per-kernel flops; otherwise flushes the pending run first.
        """
        prev = self._spec
        if prev is not None and prev[0] == spec[0] and prev[1] == spec[1]:
            self._count += 1
            if fn is not None:
                self._fns.append(fn)
        else:
            yield from self.flush()
            self._spec = spec
            self._count = 1
            self._fns = [fn] if fn is not None else []

    def flush(self):
        """Emit the pending run, if any (generator: ``yield from``)."""
        spec, count, fns = self._spec, self._count, self._fns
        if spec is None:
            return
        self._spec, self._count, self._fns = None, 0, []
        if count == 1:
            yield self.comm.compute(spec, fn=fns[0] if fns else None)
            return
        fn: Optional[Callable[[], Any]] = None
        if fns:
            if len(fns) == 1:
                fn = fns[0]
            else:
                def fn(_fns=tuple(fns)):
                    for f in _fns:
                        f()
        yield self.comm.compute_batch(spec, count, fn=fn)
