"""Deterministic fault injection, and the survivor-identity fuzz leg.

The fuzz class replays randomized fault plans (crashes, hangs, poison
raises) against the resilient executor and asserts the one invariant
everything else rests on: every job that *survives* is bit-identical to
the fault-free serial run.  ``REPRO_FAULT_FUZZ_CASES`` scales the number
of plans (CI runs 16; the default keeps local runs fast).
"""

import os

import pytest

from repro.autotune import capital_cholesky_space
from repro.autotune.tuner import (
    default_machine,
    ground_truth_requests,
    tuning_requests,
)
from repro.runner import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ResilientExecutor,
    RetryPolicy,
    Runner,
)
from repro.runner import faults as faults_mod
from repro.runner.faults import ACTIONS, ENV_PLAN, ENV_RATE, active_plan
from repro.runner.jobs import result_to_dict

FUZZ_CASES = int(os.environ.get("REPRO_FAULT_FUZZ_CASES", "2"))


@pytest.fixture(scope="module")
def space():
    return capital_cholesky_space(n=64, c=2, b0=4, nconf=3)


@pytest.fixture(scope="module")
def machine(space):
    return default_machine(space, seed=3)


@pytest.fixture(scope="module")
def batch(space, machine):
    """A mixed batch: ground truth plus one (policy, eps) tuning pass."""
    return (ground_truth_requests(space, machine, full_reps=2, seed=0)
            + tuning_requests(space, machine, "online", 0.25, reps=2, seed=0))


@pytest.fixture(scope="module")
def baseline(batch):
    return [result_to_dict(r) for r in Runner().run(batch)]


@pytest.fixture(autouse=True)
def clean_plan_state(monkeypatch):
    monkeypatch.delenv(ENV_PLAN, raising=False)
    monkeypatch.delenv(ENV_RATE, raising=False)
    faults_mod._plan_from_env.cache_clear()
    yield
    faults_mod.install(None)
    faults_mod._plan_from_env.cache_clear()


# ----------------------------------------------------------------------
# specs and plans
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError):
            FaultSpec(action="explode")

    def test_matching_filters(self, batch):
        gt, tune = batch[0], batch[3]
        spec = FaultSpec(action="raise", kind="ground-truth")
        assert spec.matches(gt, 0) and not spec.matches(tune, 0)
        spec = FaultSpec(action="raise", config_index=gt.config_index)
        assert spec.matches(gt, 0)
        assert not spec.matches(batch[1], 0)
        # attempts=1 faults the first attempt only (transient);
        # attempts=None faults every attempt (poison)
        transient = FaultSpec(action="raise", attempts=1)
        assert transient.matches(gt, 0) and not transient.matches(gt, 1)
        poison = FaultSpec(action="raise")
        assert poison.matches(gt, 0) and poison.matches(gt, 7)


class TestFaultPlan:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FaultPlan(rate=1.5)

    def test_action_is_deterministic(self, batch):
        a = FaultPlan(rate=0.5, seed=11)
        b = FaultPlan(rate=0.5, seed=11)
        decisions = [(a.action_for(r, k), b.action_for(r, k))
                     for r in batch for k in range(3)]
        assert all(x == y for x, y in decisions)

    def test_seed_changes_decisions(self, batch):
        a = FaultPlan(rate=0.5, seed=1)
        b = FaultPlan(rate=0.5, seed=2)
        assert ([a.action_for(r, 0) for r in batch]
                != [b.action_for(r, 0) for r in batch])

    def test_rate_bounds(self, batch):
        silent = FaultPlan(rate=0.0)
        always = FaultPlan(rate=1.0)
        for req in batch:
            assert silent.action_for(req, 0) is None
            assert always.action_for(req, 0) in ACTIONS

    def test_rate_one_draws_every_action(self, batch):
        plan = FaultPlan(rate=1.0, seed=0)
        drawn = {plan.action_for(r, k) for r in batch for k in range(8)}
        assert drawn == set(ACTIONS)

    def test_specs_win_over_rate(self, batch):
        plan = FaultPlan(specs=[FaultSpec(action="hang")], rate=1.0)
        assert all(plan.action_for(r, 0) == "hang" for r in batch)

    def test_raise_action_raises_injected_fault(self, batch):
        plan = FaultPlan(specs=[FaultSpec(action="raise")])
        with pytest.raises(InjectedFault):
            plan.apply(batch[0], 0)

    def test_json_round_trip(self):
        plan = FaultPlan(
            specs=[FaultSpec(action="exit", kind="tune-config", attempts=2)],
            rate=0.25, seed=9, hang_seconds=1.5)
        back = FaultPlan.from_json(plan.to_json())
        assert back.to_json() == plan.to_json()
        assert back.specs[0].action == "exit"
        assert back.rate == 0.25 and back.hang_seconds == 1.5


class TestActivation:
    def test_no_plan_by_default(self):
        assert active_plan() is None

    def test_install_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_PLAN, FaultPlan(rate=0.5).to_json())
        faults_mod._plan_from_env.cache_clear()
        installed = FaultPlan(rate=0.125)
        faults_mod.install(installed)
        assert active_plan() is installed
        faults_mod.install(None)
        assert active_plan().rate == 0.5

    def test_env_plan_and_rate_override(self, monkeypatch):
        monkeypatch.setenv(ENV_PLAN, FaultPlan(rate=0.5, seed=4).to_json())
        faults_mod._plan_from_env.cache_clear()
        assert active_plan().rate == 0.5 and active_plan().seed == 4
        monkeypatch.setenv(ENV_RATE, "0.75")
        faults_mod._plan_from_env.cache_clear()
        assert active_plan().rate == 0.75  # rate env overrides the plan's

    def test_rate_alone_makes_a_plan(self, monkeypatch):
        monkeypatch.setenv(ENV_RATE, "0.25")
        faults_mod._plan_from_env.cache_clear()
        plan = active_plan()
        assert plan is not None and plan.rate == 0.25 and not plan.specs


# ----------------------------------------------------------------------
# the fuzz leg: survivors are bit-identical under any fault pattern
# ----------------------------------------------------------------------
class TestSurvivorIdentityFuzz:
    @pytest.mark.parametrize("case", range(FUZZ_CASES))
    def test_survivors_match_fault_free_serial(
        self, case, batch, baseline, monkeypatch
    ):
        plan = FaultPlan(rate=0.2, seed=1000 + case, hang_seconds=5.0)
        monkeypatch.setenv(ENV_PLAN, plan.to_json())
        faults_mod._plan_from_env.cache_clear()
        runner = Runner(executor=ResilientExecutor(
            jobs=2, policy=RetryPolicy(max_attempts=4, timeout=1.0)))
        out = runner.run(batch)
        assert len(out) == len(batch)
        survivors = 0
        for res, ref in zip(out, baseline):
            if res.failed:
                assert "quarantined" in res.error
                continue
            survivors += 1
            assert result_to_dict(res) == ref
        assert survivors + runner.executor.stats["quarantined"] == len(batch)
        # injected exits/hangs must not leak: a fresh fault-free run on
        # the same executor still matches end to end
        monkeypatch.delenv(ENV_PLAN)
        faults_mod._plan_from_env.cache_clear()
        clean = runner.run(batch)
        assert [result_to_dict(r) for r in clean] == baseline
