"""Critter selective-execution decisions: skipping, forcing, excluding."""

import pytest

from repro.critter import Critter
from repro.kernels.blas import gemm_spec, trsm_spec
from repro.sim import Machine, Simulator, TraceRecorder


def repeated_kernel_prog(comm, iters=20):
    for _ in range(iters):
        yield comm.compute(gemm_spec(32, 32, 32))


def run_with(critter, nprocs=2, iters=20, reps=1, seed0=0, machine=None, trace=None):
    m = machine or Machine(nprocs=nprocs, seed=1)
    res = None
    for rep in range(reps):
        res = Simulator(m, profiler=critter, trace=trace).run(
            repeated_kernel_prog, args=(iters,), run_seed=seed0 + rep
        )
    return res


class TestBasicSkipping:
    def test_loose_tolerance_skips(self):
        cr = Critter(policy="conditional", eps=0.9)
        run_with(cr)
        assert cr.last_report.skipped_kernels > 0

    def test_zero_tolerance_never_skips(self):
        cr = Critter(policy="conditional", eps=1e-12)
        run_with(cr)
        assert cr.last_report.skipped_kernels == 0

    def test_never_skip_policy(self):
        cr = Critter(policy="never-skip", eps=0.9)
        run_with(cr)
        assert cr.last_report.skipped_kernels == 0
        assert cr.last_report.skip_fraction == 0.0

    def test_min_samples_gate(self):
        # with min_samples=10 and only 5 invocations nothing can be skipped
        cr = Critter(policy="conditional", eps=0.9, min_samples=10)
        run_with(cr, iters=5)
        assert cr.last_report.skipped_kernels == 0

    def test_statistics_persist_across_runs(self):
        cr = Critter(policy="conditional", eps=0.2)
        r1 = run_with(cr, iters=20, reps=1, seed0=0)
        skipped_first = cr.last_report.skipped_kernels
        r2 = run_with(cr, iters=20, reps=1, seed0=1)
        # second run starts with converged statistics: skips from the
        # (forced) second invocation onward
        assert cr.last_report.skipped_kernels >= skipped_first
        assert r2.makespan < r1.makespan

    def test_reset_statistics_restores_execution(self):
        cr = Critter(policy="conditional", eps=0.2)
        run_with(cr, reps=2)
        assert cr.last_report.skipped_kernels > 0
        cr.reset_statistics()
        run_with(cr, iters=2, seed0=5)
        assert cr.last_report.skipped_kernels == 0


class TestForcedFirstExecution:
    def test_forced_execution_per_run(self):
        # after convergence, each new run still executes the kernel once
        cr = Critter(policy="conditional", eps=0.9)
        run_with(cr, reps=3)
        assert cr.last_report.executed_kernels >= 1

    def test_eager_not_forced(self):
        m = Machine(nprocs=2, seed=1)
        cr = Critter(policy="eager", eps=0.9)
        run_with(cr, reps=2, machine=m)
        # once switched off globally, later runs execute nothing
        run_with(cr, seed0=7, machine=m)
        assert cr.last_report.executed_kernels == 0


class TestExclusion:
    def test_excluded_kernel_always_executes(self):
        cr = Critter(policy="conditional", eps=0.9, exclude=frozenset({"gemm"}))
        run_with(cr, reps=3)
        assert cr.last_report.skipped_kernels == 0

    def test_exclusion_is_per_name(self):
        def prog(comm):
            for _ in range(10):
                yield comm.compute(gemm_spec(16, 16, 16))
                yield comm.compute(trsm_spec(16, 16))

        m = Machine(nprocs=2, seed=1)
        cr = Critter(policy="conditional", eps=0.9, exclude=frozenset({"trsm"}))
        for rep in range(3):
            Simulator(m, profiler=cr).run(prog, run_seed=rep)
        rep = cr.last_report
        assert rep.skipped_kernels > 0          # gemm skipped
        # trsm executed every time: 10 per rank per run
        assert rep.executed_kernels >= 20


class TestPredictedTime:
    def test_prediction_tracks_full_time(self):
        m = Machine(nprocs=4, seed=2)
        full = Critter(policy="never-skip")
        r_full = run_with(full, nprocs=4, iters=50, machine=m)
        cr = Critter(policy="conditional", eps=0.3)
        run_with(cr, nprocs=4, iters=50, reps=3, machine=m)
        pred = cr.last_report.predicted_exec_time
        truth = r_full.makespan
        assert abs(pred - truth) / truth < 0.2

    def test_skipped_kernels_contribute_mean(self):
        cr = Critter(policy="conditional", eps=0.5)
        run_with(cr, reps=2)
        rep = cr.last_report
        assert rep.skipped_kernels > 0
        # predicted time includes skipped kernels, so it must far exceed
        # the wall time actually spent
        assert rep.predicted_exec_time > rep.makespan * 2

    def test_run_report_fields(self):
        cr = Critter(policy="conditional", eps=0.5)
        res = run_with(cr)
        rep = cr.last_report
        assert rep.makespan == res.makespan
        assert 0.0 <= rep.skip_fraction <= 1.0
        assert rep.volumetric["comp_time"] > 0
        assert len(cr.reports) == 1


class TestWorldSizeBinding:
    def test_nprocs_change_rejected(self):
        cr = Critter(policy="conditional")
        run_with(cr, nprocs=2)
        with pytest.raises(ValueError, match="bound to 2 ranks"):
            Simulator(Machine(nprocs=4), profiler=cr).run(
                repeated_kernel_prog, args=(3,)
            )
