"""SLATE's tiled Cholesky with lookahead pipelining (Section V.A).

The matrix is partitioned into ``nb x nb`` tiles, block-cyclically
distributed over a ``pr x pc`` grid.  Iteration ``k`` factors the
diagonal tile (``potrf``), triangular-solves the panel tiles below it
(``trsm``), and applies ``syrk``/``gemm`` updates to the trailing
matrix.  All communication is point-to-point (``isend``/``recv``), as
in SLATE's task-based runtime: panel tiles are eagerly isent to exactly
the ranks whose trailing updates consume them.

The tunable *lookahead depth* ``d`` reorders each rank's work: the
updates touching the next ``d`` panel columns are applied first, the
next panel is factored immediately afterwards, and only then is the
rest of the trailing matrix updated — pipelinining successive panel
factorizations with bulk updates, which shortens the critical path at
the cost of extra working set (depth 0 degenerates to the plain
right-looking algorithm).

Numeric mode carries real tiles through the exact message flow, so the
test suite can reassemble ``L`` from the per-rank results and check
``L L^T = A``.

Runs of same-shape tile kernels — trsm down a panel with no remote
consumers in between, gemm/syrk sweeps over the trailing tiles a rank
owns — are emitted through a :class:`ComputeRunBatcher`, so each run is
one engine event (and one aggregate noise draw under
``Machine.batched_compute``) while expanding bit-identically to per-op
emission by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.algorithms.batching import ComputeRunBatcher
from repro.algorithms.distribution import TileMap, tile_dim
from repro.kernels import blas, lapack
from repro.sim.comm import Comm

__all__ = ["SlateCholeskyConfig", "slate_cholesky"]


@dataclass(frozen=True, slots=True)
class SlateCholeskyConfig:
    """Tuning configuration of SLATE potrf."""

    n: int
    nb: int          # tile size
    pr: int
    pc: int
    lookahead: int   # pipeline depth (paper tunes {0, 1})

    @property
    def nprocs(self) -> int:
        return self.pr * self.pc

    def label(self) -> str:
        return f"nb={self.nb} la={self.lookahead}"


def _tag(phase: int, k: int, i: int, nt: int) -> int:
    """Unique message tag per (phase, iteration, tile-row)."""
    return (phase * (nt + 1) + k) * (nt + 1) + i


def slate_cholesky(comm: Comm, config: SlateCholeskyConfig,
                   a: Optional[np.ndarray] = None):
    """Rank program; returns this rank's tiles dict in numeric mode."""
    tm = TileMap(config.n, config.n, config.nb, config.pr, config.pc)
    me = comm.rank
    nt = tm.mt
    numeric = a is not None

    tiles: Dict[Tuple[int, int], np.ndarray] = {}
    if numeric:
        for (i, j) in tm.tiles_of(me, lower_only=True):
            r0, r1 = i * config.nb, min((i + 1) * config.nb, config.n)
            c0, c1 = j * config.nb, min((j + 1) * config.nb, config.n)
            tiles[(i, j)] = a[r0:r1, c0:c1].astype(float).copy()

    cache: Dict[Tuple[int, int], Optional[np.ndarray]] = {}
    batch = ComputeRunBatcher(comm)

    def get_panel_tile(i: int, k: int):
        """Obtain L(i,k): local tile, cached recv, or blocking recv.

        Flushes the pending kernel run before a blocking recv so the
        engine sees ops in the original order.
        """
        if tm.owner(i, k) == me:
            return tiles.get((i, k))
        key = (i, k)
        if key not in cache:
            yield from batch.flush()
            val = yield comm.recv(
                source=tm.owner(i, k), tag=_tag(1, k, i, nt),
                nbytes=tm.tile_nbytes(i, k),
            )
            cache[key] = val
        return cache[key]

    def panel(k: int):
        """potrf(k,k), trsm down column k, eager isends to consumers."""
        owner_kk = tm.owner(k, k)
        dk = tile_dim(k, config.nb, config.n)
        if me == owner_kk:
            def f_potrf(t=tiles, k_=k):
                t[(k_, k_)] = lapack.potrf(t[(k_, k_)])
            yield comm.compute(lapack.potrf_spec(dk), fn=f_potrf if numeric else None)
            dests = {tm.owner(i, k) for i in range(k + 1, nt)} - {me}
            for d in sorted(dests):
                yield comm.isend(payload=tiles.get((k, k)), dest=d,
                                 tag=_tag(0, k, k, nt), nbytes=8 * dk * dk)
        my_ik = tm.col_tiles(me, k, max(k + 1, 1))
        my_ik = [i for i in my_ik if i > k]
        if my_ik:
            if me == owner_kk:
                lkk = tiles.get((k, k))
            else:
                lkk = yield comm.recv(source=owner_kk, tag=_tag(0, k, k, nt),
                                      nbytes=8 * dk * dk)
            for i in my_ik:
                di = tile_dim(i, config.nb, config.n)

                def f_trsm(t=tiles, i_=i, k_=k, l=lkk):
                    t[(i_, k_)] = blas.trsm(l, t[(i_, k_)], side="R",
                                            lower=True, trans=True)
                yield from batch.add(blas.trsm_spec(dk, di),
                                     fn=f_trsm if numeric else None)
                # consumers: row-i updates (i,j), k<j<=i, and column-i updates (l,i), l>=i
                consumers = {tm.owner(i, j) for j in range(k + 1, i + 1)}
                consumers |= {tm.owner(l, i) for l in range(i, nt)}
                consumers.discard(me)
                if consumers:
                    yield from batch.flush()
                for d in sorted(consumers):
                    yield comm.isend(payload=tiles.get((i, k)), dest=d,
                                     tag=_tag(1, k, i, nt),
                                     nbytes=tm.tile_nbytes(i, k))
            yield from batch.flush()

    def updates(k: int, cols):
        """Apply panel-k updates to owned trailing tiles in ``cols``."""
        dk = tile_dim(k, config.nb, config.n)
        for j in cols:
            for i in tm.col_tiles(me, j, j):
                if i < j or j <= k:
                    continue
                li = yield from get_panel_tile(i, k)
                di = tile_dim(i, config.nb, config.n)
                dj = tile_dim(j, config.nb, config.n)
                if i == j:
                    def f_syrk(t=tiles, i_=i, j_=j, l=li):
                        t[(i_, j_)] = t[(i_, j_)] - l @ l.T
                    yield from batch.add(blas.syrk_spec(di, dk),
                                         fn=f_syrk if numeric else None)
                else:
                    lj = yield from get_panel_tile(j, k)

                    def f_gemm(t=tiles, i_=i, j_=j, l1=li, l2=lj):
                        t[(i_, j_)] = t[(i_, j_)] - l1 @ l2.T
                    yield from batch.add(blas.gemm_spec(di, dj, dk),
                                         fn=f_gemm if numeric else None)
        yield from batch.flush()

    d = config.lookahead
    yield from panel(0)
    for k in range(nt):
        trailing = list(range(k + 1, nt))
        if d > 0:
            la_cols = trailing[:d]
            rest = trailing[d:]
            yield from updates(k, la_cols)
            if k + 1 < nt:
                yield from panel(k + 1)
            yield from updates(k, rest)
        else:
            yield from updates(k, trailing)
            if k + 1 < nt:
                yield from panel(k + 1)

    return tiles if numeric else None
