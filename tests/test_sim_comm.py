"""Comm helper API: payload sizing, op construction, rank translation."""

import numpy as np
import pytest

from repro.kernels.blas import gemm_spec
from repro.sim.comm import Comm, payload_nbytes
from repro.sim.ops import CollOp, ComputeOp, P2POp, SplitOp, WaitOp

from conftest import make_quiet_sim


class TestPayloadNbytes:
    def test_explicit_wins(self):
        assert payload_nbytes(np.zeros(100), 8) == 8

    def test_numpy_inference(self):
        assert payload_nbytes(np.zeros(100), None) == 800
        assert payload_nbytes(np.zeros((4, 4), dtype=np.float32), None) == 64

    def test_none_payload(self):
        assert payload_nbytes(None, None) == 0

    def test_scalar_payload(self):
        assert payload_nbytes(3, None) == 8
        assert payload_nbytes(2.5, None) == 8

    def test_list_recursion(self):
        assert payload_nbytes([np.zeros(10), np.zeros(10)], None) == 160
        assert payload_nbytes([1, 2, 3], None) == 24

    def test_bytes_like_inference(self):
        assert payload_nbytes(b"abcd", None) == 4
        assert payload_nbytes(bytearray(16), None) == 16

    def test_memoryview_inference(self):
        assert payload_nbytes(memoryview(b"abcdefgh"), None) == 8
        # sized via .nbytes, not len(): a float64 view has 8 B/element
        mv = memoryview(np.zeros(10, dtype=np.float64))
        assert payload_nbytes(mv, None) == 80
        assert payload_nbytes(memoryview(np.zeros((3, 4), dtype=np.int32)),
                              None) == 48

    def test_array_array_inference(self):
        import array

        assert payload_nbytes(array.array("d", [0.0] * 10), None) == 80
        assert payload_nbytes(array.array("i", range(6)), None) == 24
        assert payload_nbytes(array.array("b"), None) == 0

    def test_numpy_scalar_inference(self):
        # sized via .nbytes: the generic 8-byte scalar fallback would
        # mis-size every non-64-bit dtype
        assert payload_nbytes(np.float32(1.5), None) == 4
        assert payload_nbytes(np.int16(3), None) == 2
        assert payload_nbytes(np.float64(2.0), None) == 8
        assert payload_nbytes([np.int8(1), np.int8(2)], None) == 2

    def test_explicit_wins_over_array_and_scalar_inference(self):
        import array

        assert payload_nbytes(array.array("d", [0.0] * 10), 8) == 8
        assert payload_nbytes(np.float32(1.5), 64) == 64

    def test_negative_explicit_nbytes_with_new_payload_kinds(self):
        import array

        with pytest.raises(ValueError, match="nbytes must be >= 0"):
            payload_nbytes(array.array("d", [0.0]), -1)
        with pytest.raises(ValueError, match="nbytes must be >= 0"):
            payload_nbytes(np.float32(1.5), -4)

    def test_negative_explicit_nbytes_raises(self):
        with pytest.raises(ValueError, match="nbytes must be >= 0"):
            payload_nbytes(None, -1)
        with pytest.raises(ValueError, match="nbytes must be >= 0"):
            payload_nbytes(np.zeros(4), -8)

    def test_uninferable_raises(self):
        with pytest.raises(TypeError, match="nbytes"):
            payload_nbytes({"a": 1}, None)


class TestOpConstruction:
    def _comm(self):
        # a detached Comm over a fake group suffices for construction
        class G:
            gid = 0
            world_ranks = (0, 1, 2, 3)
            size = 4
        return Comm(G(), 1)

    def test_compute_requires_spec(self):
        comm = self._comm()
        op = comm.compute(gemm_spec(4, 4, 4))
        assert isinstance(op, ComputeOp)
        with pytest.raises(TypeError):
            comm.compute(("gemm", 128.0))

    def test_p2p_ops(self):
        comm = self._comm()
        assert comm.send(None, dest=2, nbytes=8).kind == "send"
        assert comm.isend(None, dest=2, nbytes=8).kind == "isend"
        assert comm.recv(source=0, nbytes=8).kind == "recv"
        assert comm.irecv(source=0, nbytes=8).kind == "irecv"

    def test_p2p_negative_nbytes_rejected_at_build_time(self):
        """A negative size must fail where the op is built, not surface
        later as a negative communication cost."""
        comm = self._comm()
        for build in (lambda: comm.send(None, dest=2, nbytes=-1),
                      lambda: comm.isend(None, dest=2, nbytes=-4),
                      lambda: comm.recv(source=0, nbytes=-8),
                      lambda: comm.irecv(source=0, nbytes=-8)):
            with pytest.raises(ValueError, match="nbytes must be >= 0"):
                build()

    def test_memoryview_payload_send(self):
        comm = self._comm()
        op = comm.send(memoryview(b"12345678"), dest=2)
        assert op.nbytes == 8

    def test_collective_ops(self):
        comm = self._comm()
        for name in ("bcast", "reduce", "allreduce", "gather", "allgather",
                     "alltoall", "barrier"):
            op = getattr(comm, name)() if name == "barrier" else (
                getattr(comm, name)(None, nbytes=64) if name in
                ("allreduce", "allgather", "alltoall") else
                getattr(comm, name)(None, root=0, nbytes=64))
            assert isinstance(op, CollOp)
            assert op.name == name

    def test_scatter_infers_chunk_size(self):
        comm = self._comm()
        op = comm.scatter([np.zeros(4)] * 4, root=0)
        assert op.nbytes == 32  # per-chunk bytes

    def test_wait_ops(self):
        comm = self._comm()
        from repro.sim.ops import Request

        r = Request(rank=0, kind="isend")
        assert comm.wait(r).mode == "one"
        assert comm.waitall([r]).mode == "all"

    def test_split_op(self):
        comm = self._comm()
        op = comm.split(color=1, key=-2)
        assert isinstance(op, SplitOp)
        assert op.color == 1 and op.key == -2

    def test_repr(self):
        assert "rank=1/4" in repr(self._comm())


class TestRankViews:
    def test_world_rank_and_translate(self):
        def prog(comm):
            sub = yield comm.split(color=comm.rank % 2, key=comm.rank)
            return (sub.world_rank, sub.translate(0), sub.translate(sub.size - 1))

        res = make_quiet_sim(4).run(prog)
        assert res.returns[2] == (2, 0, 2)   # world rank preserved
        assert res.returns[3] == (3, 1, 3)

    def test_world_ranks_tuple(self):
        def prog(comm):
            return tuple(comm.world_ranks)
            yield  # pragma: no cover - makes this a generator

        res = make_quiet_sim(3).run(prog)
        assert res.returns[0] == (0, 1, 2)
