"""Executors and the Runner facade.

Drivers *describe* their measurements as :class:`RunRequest` batches
and submit them here; the runner consults the cache, schedules the
misses on an executor, stores fresh results, and reports progress.
Because jobs are self-contained and deterministically seeded, the
executor choice changes wall-clock time only — never results.

* :class:`SerialExecutor`   — in-process, one job at a time.
* :class:`ParallelExecutor` — a ``ProcessPoolExecutor`` fan-out; the
  grid experiments behind Figs. 4-5 are embarrassingly parallel, so
  this saturates every core where the old inline loops used one.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.runner.cache import ResultCache
from repro.runner.jobs import (
    RunRequest,
    RunResult,
    execute_request,
    request_fingerprint,
    request_key,
)
from repro.runner.manifest import SweepManifest
from repro.runner.progress import ProgressCallback, RunEvent
from repro.runner.resilience import ResilientExecutor, RetryPolicy
from repro.runner.store import ComputeThroughCache, ShardedResultCache

__all__ = ["SerialExecutor", "ParallelExecutor", "Runner", "RunnerError",
           "make_runner"]


class RunnerError(RuntimeError):
    """The executor's result stream disagrees with the request batch."""


class SerialExecutor:
    """Run jobs one after another in the calling process."""

    jobs = 1

    def map(self, requests: Sequence[RunRequest]) -> Iterator[RunResult]:
        for req in requests:
            yield execute_request(req)

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor:
    """Fan jobs out over a pool of worker processes.

    Results stream back in submission order.  Per-job deterministic
    seeding (see :func:`repro.runner.jobs.seed_for`) makes the output
    bit-identical to :class:`SerialExecutor` for any worker count.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")

    def map(self, requests: Sequence[RunRequest]) -> Iterator[RunResult]:
        requests = list(requests)
        workers = min(self.jobs, len(requests))
        if workers <= 1:
            yield from SerialExecutor().map(requests)
            return
        with ProcessPoolExecutor(max_workers=workers) as pool:
            yield from pool.map(execute_request, requests)

    def __repr__(self) -> str:
        return f"ParallelExecutor(jobs={self.jobs})"


class Runner:
    """Cache-aware job scheduler: the one entry point drivers submit to."""

    def __init__(
        self,
        executor: Optional[Union[SerialExecutor, ParallelExecutor,
                                 ResilientExecutor]] = None,
        cache: Optional[Union[ResultCache, ShardedResultCache,
                              ComputeThroughCache]] = None,
        progress: Optional[ProgressCallback] = None,
        manifest: Optional[SweepManifest] = None,
    ) -> None:
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache
        self.progress = progress
        #: optional sweep-completion ledger, updated as results stream
        self.manifest = manifest
        #: cumulative per-kind counters:
        #: ``executed:<kind>`` / ``cached:<kind>`` / ``failed:<kind>``
        self.stats: Dict[str, int] = {}
        self._done = 0  # completion counter within the current batch

    # ------------------------------------------------------------------
    @property
    def jobs(self) -> int:
        return getattr(self.executor, "jobs", 1)

    def _count(self, bucket: str, kind: str) -> None:
        key = f"{bucket}:{kind}"
        self.stats[key] = self.stats.get(key, 0) + 1

    def _emit(self, total: int, req: RunRequest, cached: bool,
              status: str = "ok") -> None:
        # events carry a completion counter, not the request's batch
        # position: on a partially warm cache the hits stream first, and
        # a tailing reader still sees job=1/N .. job=N/N in order
        if self.progress is not None:
            self.progress(RunEvent(index=self._done, total=total,
                                   request=req, cached=cached,
                                   status=status))
        self._done += 1

    def _mark(self, key: str, res: RunResult) -> None:
        if self.manifest is not None and key:
            state = "done" if not res.failed else "failed"
            self.manifest.mark(key, state, error=res.error)

    def executed(self, kind: Optional[str] = None) -> int:
        """Number of jobs actually simulated (optionally one kind)."""
        prefix = "executed:" + (kind if kind else "")
        return sum(v for k, v in self.stats.items() if k.startswith(prefix))

    def cache_hits(self, kind: Optional[str] = None) -> int:
        prefix = "cached:" + (kind if kind else "")
        return sum(v for k, v in self.stats.items() if k.startswith(prefix))

    def failed(self, kind: Optional[str] = None) -> int:
        """Number of jobs quarantined as failed (optionally one kind)."""
        prefix = "failed:" + (kind if kind else "")
        return sum(v for k, v in self.stats.items() if k.startswith(prefix))

    # ------------------------------------------------------------------
    def run(self, requests: Iterable[RunRequest]) -> List[RunResult]:
        """Execute a batch; results align index-for-index with requests.

        Failed results (``status="failed"``, from a resilient executor's
        quarantine) are returned in place but never cached — a rerun or
        resume re-executes them, since the failure may be transient.
        """
        requests = list(requests)
        total = len(requests)
        self._done = 0
        need_key = self.cache is not None or self.manifest is not None
        results: List[Optional[RunResult]] = [None] * total
        pending: List[tuple[int, str]] = []
        try:
            for i, req in enumerate(requests):
                key = request_key(req) if need_key else ""
                hit = self.cache.get(key) if self.cache is not None else None
                if hit is not None:
                    hit.cached = True
                    results[i] = hit
                    self._count("cached", req.kind)
                    self._mark(key, hit)
                    self._emit(total, req, cached=True, status=hit.status)
                else:
                    pending.append((i, key))
            to_run = [requests[i] for i, _ in pending]
            result_iter = iter(self.executor.map(to_run))
            for n_done, (i, key) in enumerate(pending):
                res = next(result_iter, None)
                if res is None:
                    # a plain zip would silently drop the rest of the
                    # batch; name what went missing instead
                    missing = [k or request_key(requests[j])
                               for j, k in pending[n_done:]]
                    raise RunnerError(
                        f"executor returned {n_done} results for "
                        f"{len(pending)} requests; missing request keys: "
                        f"{', '.join(missing)}")
                if not res.failed:
                    if self.cache is not None:
                        self.cache.put(
                            key, res,
                            fingerprint=request_fingerprint(requests[i]))
                    self._count("executed", requests[i].kind)
                else:
                    self._count("failed", requests[i].kind)
                self._mark(key, res)
                results[i] = res
                self._emit(total, requests[i], cached=False,
                           status=res.status)
            if next(result_iter, None) is not None:
                raise RunnerError(
                    f"executor returned more results than the "
                    f"{len(pending)} submitted requests")
        finally:
            # the executor completion boundary: batched manifest marks
            # land here even when the executor died mid-batch, so an
            # interrupted sweep's progress survives for --resume
            if self.manifest is not None:
                self.manifest.flush()
        return results  # type: ignore[return-value]


def make_runner(
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    retries: Optional[int] = None,
    timeout: Optional[float] = None,
    cache_max_bytes: Optional[int] = None,
) -> Runner:
    """Build a runner from the CLI-level knobs.

    ``--jobs``/``--cache-dir`` pick the executor and cache as before;
    ``retries`` (extra attempts per failed job) and/or ``timeout``
    (per-job wall-clock seconds) select the fault-tolerant
    :class:`~repro.runner.resilience.ResilientExecutor`, which survives
    worker crashes and hangs and quarantines poison jobs as
    ``status="failed"`` results instead of aborting the batch.

    The cache is the durable result store —
    :class:`~repro.runner.store.ShardedResultCache` (checksummed
    envelope entries, 256-way sharding, LRU eviction toward
    ``cache_max_bytes``) wrapped in
    :class:`~repro.runner.store.ComputeThroughCache`, so any storage
    failure degrades the run to compute-through instead of killing it.
    Entries written by the legacy flat cache remain readable.
    """
    executor: Union[SerialExecutor, ParallelExecutor, ResilientExecutor]
    if retries is not None or timeout is not None:
        policy = RetryPolicy(
            max_attempts=(retries + 1 if retries is not None else 3),
            timeout=timeout,
        )
        # None means "one worker process" (serial-like, but isolated);
        # 0 keeps the ParallelExecutor convention of "all cores"
        executor = ResilientExecutor(jobs=jobs if jobs is not None else 1,
                                     policy=policy)
    elif jobs is not None and jobs != 1:
        executor = ParallelExecutor(jobs=jobs)
    else:
        executor = SerialExecutor()
    cache = None
    if cache_dir:
        cache = ComputeThroughCache(
            ShardedResultCache(cache_dir, max_bytes=cache_max_bytes))
    return Runner(executor=executor, cache=cache, progress=progress)
