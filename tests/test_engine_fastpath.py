"""Run-to-completion fast path: gating, equivalence, batching, waitany.

The golden tests pin bit-identity against pre-refactor fixtures; this
module covers the fast path's *mechanics*: when it engages, that it
agrees with the naive scheduler on adversarial op patterns (irecv
hazards, same-key message floods), the new batched-compute op, the
fixed waitany semantics, and the in-place payload reduction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.critter import Critter
from repro.kernels.blas import gemm_spec
from repro.kernels.lapack import potrf_spec
from repro.sim import Machine, NoiseModel, Simulator, TraceRecorder
from repro.sim.engine import Simulator as Engine
from repro.sim.presets import make_machine

from conftest import make_quiet_sim


def run_both(program, nprocs=4, preset="knl-fabric", profiler_factory=None,
             run_seed=3, **run_kwargs):
    """Run under both schedulers, assert identical SimResults, return one."""
    machine, noise = make_machine(preset, nprocs, seed=11)
    results = []
    fast_states = []
    for fast in (True, False):
        prof = profiler_factory() if profiler_factory else None
        sim = Simulator(machine, noise=noise, profiler=prof, fast_path=fast)
        results.append(sim.run(program, run_seed=run_seed, **run_kwargs))
        fast_states.append(sim.used_fast_path)
    fast_res, naive_res = results
    assert fast_states == [True, False]
    assert fast_res.makespan == naive_res.makespan
    assert fast_res.rank_times == naive_res.rank_times
    assert fast_res.returns == naive_res.returns
    return fast_res


# ----------------------------------------------------------------------
# gating
# ----------------------------------------------------------------------
class TestGating:
    def prog(self, comm):
        yield comm.compute(gemm_spec(8, 8, 8))
        yield comm.barrier()

    def test_default_engages(self):
        sim = make_quiet_sim(2)
        sim.run(self.prog)
        assert sim.used_fast_path

    def test_fast_path_false_disables(self):
        m = Machine(nprocs=2)
        sim = Simulator(m, fast_path=False)
        sim.run(self.prog)
        assert not sim.used_fast_path

    def test_trace_disables(self):
        m = Machine(nprocs=2)
        sim = Simulator(m, trace=TraceRecorder())
        sim.run(self.prog)
        assert not sim.used_fast_path

    def test_noneager_critter_engages(self):
        m = Machine(nprocs=2)
        sim = Simulator(m, profiler=Critter(policy="online", eps=0.25))
        sim.run(self.prog)
        assert sim.used_fast_path

    def test_eager_critter_disables(self):
        m = Machine(nprocs=2)
        sim = Simulator(m, profiler=Critter(policy="eager", eps=0.25))
        sim.run(self.prog)
        assert not sim.used_fast_path

    def test_extrapolating_critter_disables(self):
        m = Machine(nprocs=2)
        sim = Simulator(m, profiler=Critter(policy="online", eps=0.25,
                                            extrapolate=True))
        sim.run(self.prog)
        assert not sim.used_fast_path

    def test_unknown_profiler_subclass_disables(self):
        from repro.sim import Profiler

        class Recording(Profiler):
            pass

        m = Machine(nprocs=2)
        sim = Simulator(m, profiler=Recording())
        sim.run(self.prog)
        assert not sim.used_fast_path


# ----------------------------------------------------------------------
# scheduler equivalence on adversarial patterns
# ----------------------------------------------------------------------
class TestEquivalence:
    def test_irecv_hazard_pattern(self):
        # receiver posts irecv then keeps computing (drawing from its
        # RNG) while the sender's isend arrives — the exact pattern that
        # forces the fast path to re-queue the isend
        def prog(comm):
            if comm.rank == 0:
                for _ in range(5):
                    yield comm.compute(gemm_spec(16, 16, 16))
                req = yield comm.isend(None, dest=1, nbytes=256)
                yield comm.wait(req)
                return None
            req = yield comm.irecv(source=0, nbytes=256)
            for _ in range(12):
                yield comm.compute(gemm_spec(12, 12, 12))
            yield comm.wait(req)
            return None

        run_both(prog, nprocs=2)

    def test_inline_match_blocked_by_receivers_pending_irecv(self):
        # regression (code review): rank 0 parks in a blocking recv
        # while holding an unmatched irecv from rank 2.  Rank 1's isend
        # must NOT match the parked recv inline: rank 2's earlier-time
        # send matches the irecv first in global order, drawing from
        # rank 0's RNG stream before rank 1's match does
        def prog(comm):
            if comm.rank == 0:
                r_i = yield comm.irecv(source=2, tag=7, nbytes=64)
                go = yield comm.isend("go", dest=1, tag=3, nbytes=8)
                got = yield comm.recv(source=1, tag=1, nbytes=64)
                yield comm.wait(r_i)
                yield comm.wait(go)
                return got
            if comm.rank == 1:
                yield comm.recv(source=0, tag=3, nbytes=8)
                for _ in range(6):
                    yield comm.compute(gemm_spec(20, 20, 20))
                req = yield comm.isend("from1", dest=0, tag=1, nbytes=64)
                yield comm.wait(req)
                return None
            yield comm.compute(gemm_spec(35, 35, 35))
            yield comm.send("from2", dest=0, tag=7, nbytes=64)
            return None

        res = run_both(prog, nprocs=3)
        assert res.returns[0] == "from1"

    def test_inline_match_blocked_by_senders_pending_isend(self):
        # regression (code review): rank 2 holds an unmatched isend to
        # rank 0 (matched by rank 0's recv at ~5.5us — an earlier
        # global time than rank 2's run-ahead position) that shares a
        # signature (64 bytes, rank-stride 2) with the isend to rank
        # 4's parked recv.  Inline-matching the latter first would make
        # the skip decision on stale statistics and apply the two
        # order-sensitive stat updates in swapped order.  gemm is
        # excluded from skipping so the run-ahead stays long even once
        # the send signature is predictable; without the sender-side
        # pending_isends guard this diverges for eps in [0.125, 0.175]
        def prog(comm):
            me = comm.rank
            if me == 2:
                r0 = yield comm.isend("zero", dest=4, tag=0, nbytes=64)
                yield comm.compute(gemm_spec(33, 33, 33))
                req1 = yield comm.isend("one", dest=0, tag=9, nbytes=64)
                for _ in range(8):
                    yield comm.compute(gemm_spec(20, 20, 20))
                req2 = yield comm.isend("two", dest=4, tag=1, nbytes=64)
                yield comm.waitall([r0, req1, req2])
                return None
            if me == 4:
                a = yield comm.recv(source=2, tag=0, nbytes=64)
                b = yield comm.recv(source=2, tag=1, nbytes=64)
                return (a, b)
            if me == 0:
                yield comm.compute(gemm_spec(38, 38, 38))
                return (yield comm.recv(source=2, tag=9, nbytes=64))
            yield comm.compute(gemm_spec(8, 8, 8))
            return None

        machine, noise = make_machine("knl-fabric", 5, seed=11)
        for eps in (0.125, 0.15, 0.175):
            outcomes = []
            for fast in (True, False):
                cr = Critter(policy="online", eps=eps, min_samples=2,
                             exclude=frozenset({"gemm"}))
                spans = []
                for seed in range(6):
                    sim = Simulator(machine, noise=noise, profiler=cr,
                                    fast_path=fast)
                    spans.append(sim.run(prog, run_seed=seed).makespan)
                outcomes.append((spans, cr.last_report.executed_kernels,
                                 cr.last_report.skipped_kernels))
            assert outcomes[0] == outcomes[1], f"eps={eps}"

    def test_same_key_message_flood(self):
        # many same-(peer, tag) messages: FIFO deque pairing must agree
        def prog(comm):
            if comm.rank == 0:
                reqs = []
                for i in range(20):
                    reqs.append((yield comm.isend(i, dest=1, tag=5, nbytes=8)))
                    yield comm.compute(gemm_spec(8, 8, 8))
                yield comm.waitall(reqs)
                return None
            got = []
            for _ in range(20):
                got.append((yield comm.recv(source=0, tag=5, nbytes=8)))
            return got

        res = run_both(prog, nprocs=2)
        assert res.returns[1] == list(range(20))

    def test_compute_runs_between_collectives(self):
        def prog(comm):
            total = 0.0
            for r in range(6):
                for _ in range(comm.rank + 1):
                    yield comm.compute(gemm_spec(10 + comm.rank, 10, 10))
                v = yield comm.allreduce(payload=float(comm.rank), nbytes=8)
                total += v
            sub = yield comm.split(color=comm.rank % 2, key=comm.rank)
            yield sub.barrier()
            return total

        res = run_both(prog, nprocs=4)
        assert res.returns[0] == pytest.approx(6 * sum(range(4)))

    def test_critter_skip_decisions_agree(self):
        # repeated runs sharing one Critter: skip decisions feed back
        # into timing and RNG consumption, so any divergence compounds
        def prog(comm):
            for _ in range(8):
                yield comm.compute(gemm_spec(32, 32, 32))
                yield comm.compute(potrf_spec(24))
            yield comm.allreduce(nbytes=64)

        machine, noise = make_machine("knl-fabric", 4, seed=11)
        outcomes = []
        for fast in (True, False):
            cr = Critter(policy="online", eps=0.5, min_samples=2)
            span = []
            for seed in range(4):
                sim = Simulator(machine, noise=noise, profiler=cr,
                                fast_path=fast)
                span.append(sim.run(prog, run_seed=seed).makespan)
            rep = cr.last_report
            outcomes.append((span, rep.executed_kernels, rep.skipped_kernels))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][2] > 0  # skips actually happened


def _random_program(case_seed: int, p: int, rounds: int = 5):
    """A seeded random op soup: permuted p2p rings with mixed blocking/
    nonblocking completion, interleaved computes/batches, occasional
    collectives and splits — deterministic per seed and deadlock-free
    (every rank sends to and receives from exactly one peer per round).
    """
    rng = np.random.default_rng(case_seed)
    perms = [rng.permutation(p) for _ in range(rounds)]
    scripts = [[int(x) for x in rng.integers(0, 6, size=8)] for _ in range(rounds)]
    sizes = [int(x) for x in rng.integers(4, 40, size=rounds)]

    def prog(comm):
        me = comm.rank
        for r in range(rounds):
            perm = perms[r]
            dest = int(perm[me])
            src = int(np.where(perm == me)[0][0])
            nb = 8 * sizes[r]
            sreq = yield comm.isend(me, dest=dest, tag=r, nbytes=nb)
            use_irecv = scripts[r][0] % 2 == 0
            if use_irecv:
                rreq = yield comm.irecv(source=src, tag=r, nbytes=nb)
            for code in scripts[r][1:]:
                if code < 4:
                    yield comm.compute(gemm_spec(sizes[r] + code, 8, 8))
                elif code == 4 and sizes[r] % 3 == 0:
                    yield comm.compute_batch(gemm_spec(sizes[r], 8, 8), 3)
            if use_irecv:
                yield comm.waitall([rreq, sreq])
            else:
                yield comm.recv(source=src, tag=r, nbytes=nb)
                yield comm.wait(sreq)
            if scripts[r][2] % 3 == 0:
                yield comm.allreduce(nbytes=64)
            if scripts[r][3] % 4 == 0:
                sub = yield comm.split(color=me % 2, key=me)
                yield sub.barrier()
        return me

    return prog


@pytest.mark.parametrize("case", range(6))
@pytest.mark.parametrize("with_critter", [False, True],
                         ids=["null", "critter"])
def test_differential_random_programs(case, with_critter):
    """Property check: both schedulers agree on seeded random programs."""
    p = [2, 3, 4, 5][case % 4]
    preset = ["knl-fabric", "cloud-vm", "quiet"][case % 3]
    factory = (lambda: Critter(policy="online", eps=0.3)) if with_critter else None
    res = run_both(_random_program(1000 + case, p), nprocs=p, preset=preset,
                   profiler_factory=factory, run_seed=case)
    assert sorted(res.returns) == list(range(p))


# ----------------------------------------------------------------------
# batched compute
# ----------------------------------------------------------------------
class TestComputeBatch:
    def test_flag_off_equals_per_op_emission(self):
        def batched(comm):
            yield comm.compute_batch(gemm_spec(16, 16, 16), 7)
            yield comm.barrier()

        def per_op(comm):
            for _ in range(7):
                yield comm.compute(gemm_spec(16, 16, 16))
            yield comm.barrier()

        machine, noise = make_machine("knl-fabric", 2, seed=5)
        for fast in (True, False):
            a = Simulator(machine, noise=noise, fast_path=fast).run(batched)
            b = Simulator(machine, noise=noise, fast_path=fast).run(per_op)
            assert a.makespan == b.makespan
            assert a.rank_times == b.rank_times

    def test_flag_off_profiler_sees_subkernels(self):
        def prog(comm):
            yield comm.compute_batch(gemm_spec(16, 16, 16), 5)

        cr = Critter(policy="never-skip")
        make_quiet_sim(1, profiler=cr).run(prog)
        assert cr.last_report.executed_kernels == 5

    def test_flag_on_single_aggregate_event(self):
        def prog(comm):
            yield comm.compute_batch(gemm_spec(16, 16, 16), 5)

        m = Machine(nprocs=1, batched_compute=True)
        cr = Critter(policy="never-skip")
        Simulator(m, noise=NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0,
                                      run_cv=0),
                  profiler=cr).run(prog)
        assert cr.last_report.executed_kernels == 1
        # aggregate flops: one kernel charging 5x the sub-kernel work
        sig, flops = gemm_spec(16, 16, 16)
        assert cr.last_report.predicted.flops == pytest.approx(5 * flops)

    def test_flag_on_noise_free_time_matches_expansion(self):
        # without per-invocation noise the aggregate charge equals the
        # sum of sub-kernel charges exactly (linear cost model)
        def prog(comm):
            yield comm.compute_batch(gemm_spec(16, 16, 16), 9)

        base = make_quiet_sim(1).run(prog).makespan
        m = Machine(nprocs=1, batched_compute=True)
        agg = Simulator(m, noise=NoiseModel(bias_sigma=0, comp_cv=0,
                                            comm_cv=0, run_cv=0)).run(prog)
        assert agg.makespan == pytest.approx(base)

    def test_fn_runs_once_after_batch(self):
        calls = []

        def prog(comm):
            got = yield comm.compute_batch(gemm_spec(8, 8, 8), 4,
                                           fn=lambda: calls.append(1) or 42)
            return got

        res = make_quiet_sim(1).run(prog)
        assert calls == [1]
        assert res.returns[0] == 42

    def test_batch_equals_per_op_under_eager_critter(self):
        # regression (code review): under an order-sensitive profiler
        # (eager runs on the naive scheduler) batch sub-kernels must
        # ride the heap individually so another sub-communicator's
        # aggregation can interleave exactly as with per-op emission
        def make_prog(batched):
            def prog(comm):
                me = comm.rank
                sub = yield comm.split(color=0 if me < 2 else 1, key=me)
                for _ in range(2):
                    yield comm.compute(gemm_spec(24, 24, 24))
                yield sub.allreduce(nbytes=64)
                if me >= 2:
                    if batched:
                        yield comm.compute_batch(gemm_spec(24, 24, 24), 10)
                    else:
                        for _ in range(10):
                            yield comm.compute(gemm_spec(24, 24, 24))
                else:
                    for _ in range(3):
                        yield sub.allreduce(nbytes=64)
                yield comm.barrier()
            return prog

        machine, noise = make_machine("knl-fabric", 4, seed=11)
        outcomes = {}
        for batched in (True, False):
            cr = Critter(policy="eager", eps=0.6, min_samples=2)
            spans = []
            for seed in range(4):
                sim = Simulator(machine, noise=noise, profiler=cr)
                assert_used = sim.run(make_prog(batched), run_seed=seed)
                assert not sim.used_fast_path  # eager -> naive scheduler
                spans.append(assert_used.makespan)
            outcomes[batched] = (spans, cr.last_report.executed_kernels,
                                 cr.last_report.skipped_kernels)
        assert outcomes[True] == outcomes[False]

    def test_count_validation(self):
        def prog(comm):
            yield comm.compute_batch(gemm_spec(8, 8, 8), 0)

        with pytest.raises(ValueError, match="count >= 1"):
            make_quiet_sim(1).run(prog)


# ----------------------------------------------------------------------
# wait semantics (satellite: the mode="one" audit)
# ----------------------------------------------------------------------
class TestWaitSemantics:
    def _two_source_prog(self, mode):
        """Rank 2 waits on irecvs from ranks 0 (slow) and 1 (fast)."""

        def prog(comm):
            if comm.rank == 0:
                for _ in range(20):
                    yield comm.compute(gemm_spec(32, 32, 32))
                yield comm.send("slow", dest=2, tag=0, nbytes=8)
                return None
            if comm.rank == 1:
                yield comm.send("fast", dest=2, tag=1, nbytes=8)
                return None
            slow = yield comm.irecv(source=0, tag=0, nbytes=8)
            fast = yield comm.irecv(source=1, tag=1, nbytes=8)
            if mode == "any":
                got = yield comm.waitany([slow, fast])
            elif mode == "one":
                from repro.sim.ops import WaitOp

                got = yield WaitOp([slow, fast], mode="one")
            else:
                got = yield comm.waitall([slow, fast])
            t_after = yield comm.compute(gemm_spec(1, 1, 1))
            return got

        return prog

    def test_single_request_wait_unchanged(self):
        def prog(comm):
            if comm.rank == 0:
                req = yield comm.isend("x", dest=1, nbytes=8)
                yield comm.wait(req)
                return None
            req = yield comm.irecv(source=0, nbytes=8)
            return (yield comm.wait(req))

        res = run_both(prog, nprocs=2)
        assert res.returns[1] == "x"

    def test_waitany_resumes_on_first_completion(self):
        res_any = run_both(self._two_source_prog("any"), nprocs=3)
        res_all = run_both(self._two_source_prog("all"), nprocs=3)
        # the fast sender's message wins, with its index
        assert res_any.returns[2] == (1, "fast")
        assert res_all.returns[2] == ["slow", "fast"]
        # regression for the audited bug: waitany must NOT block until
        # the slow sender arrives the way waitall does
        assert res_any.rank_times[2] < res_all.rank_times[2]

    def test_mode_one_multi_request_is_waitany(self):
        # mode="one" with several requests no longer blocks on all of
        # them (the audited behavior) and returns the winner's value
        res = run_both(self._two_source_prog("one"), nprocs=3)
        assert res.returns[2] == "fast"

    def test_waitany_already_completed_picks_earliest(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send("a", dest=1, tag=0, nbytes=8)
                yield comm.send("b", dest=1, tag=1, nbytes=8)
                return None
            r0 = yield comm.irecv(source=0, tag=0, nbytes=8)
            r1 = yield comm.irecv(source=0, tag=1, nbytes=8)
            for _ in range(10):
                yield comm.compute(gemm_spec(16, 16, 16))
            # both long done: the earliest completion (tag 0) wins
            return (yield comm.waitany([r1, r0]))

        res = run_both(prog, nprocs=2)
        assert res.returns[1] == (1, "a")


# ----------------------------------------------------------------------
# in-place payload reduction
# ----------------------------------------------------------------------
class TestReducePayloads:
    def test_ndarray_sum_and_input_preserved(self):
        arrays = [np.full((4, 4), float(r)) for r in range(4)]

        def prog(comm):
            out = yield comm.allreduce(payload=arrays[comm.rank])
            return out

        res = make_quiet_sim(4).run(prog)
        for r in res.returns:
            np.testing.assert_array_equal(r, np.full((4, 4), 6.0))
        # inputs must not be mutated by the in-place accumulation
        for i, a in enumerate(arrays):
            np.testing.assert_array_equal(a, np.full((4, 4), float(i)))

    def test_mixed_dtype_upcasts(self):
        assert Engine._reduce_payloads(
            [np.array([1, 2]), np.array([0.5, 0.5])]
        ) == pytest.approx([1.5, 2.5])

    def test_scalars_and_none(self):
        assert Engine._reduce_payloads([None, 2.0, 3.0, None]) == 5.0
        assert Engine._reduce_payloads([None, None]) is None
