"""Pathsets: per-processor critical-path profiles and volumetric totals.

The pathset ``P`` of Section II.B stores aggregate statistics along a
specific execution path.  Critter maintains, per rank:

* **path metrics** — propagated with the longest-path algorithm: at
  every synchronization point each metric is replaced by the maximum
  over the participating processors, so at program end the global
  maximum over ranks is that metric's critical-path cost.  Each metric
  rides its *own* critical path (the path maximizing communication cost
  may differ from the one maximizing execution time — Fig. 1).

* **volumetric metrics** — plain per-rank accumulations, never
  propagated; averaging them over ranks gives the "volumetric avg"
  series of Fig. 3, and per-rank maxima give the "most loaded
  processor" kernel-time metrics of Figs. 4c / 5c.

``exec_time`` / ``comp_time`` / ``comm_time`` are *predicted* times:
executed kernels contribute their measured duration, skipped kernels
their sample mean — this is exactly how the tool predicts a
configuration's execution time while skipping most of its work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["PathMetrics", "PathProfile", "critical_path", "volumetric_average"]


@dataclass(slots=True)
class PathMetrics:
    """Max-propagated per-path metrics."""

    exec_time: float = 0.0   # predicted execution time (comp + comm + idle-free)
    comp_time: float = 0.0   # predicted computation-kernel time
    comm_time: float = 0.0   # predicted communication-kernel time
    synchs: float = 0.0      # number of synchronizations (BSP supersteps)
    words: float = 0.0       # bytes communicated
    flops: float = 0.0       # floating-point operations

    def merge_max(self, other: "PathMetrics") -> None:
        """Longest-path propagation: each metric takes the pairwise max."""
        if other.exec_time > self.exec_time:
            self.exec_time = other.exec_time
        if other.comp_time > self.comp_time:
            self.comp_time = other.comp_time
        if other.comm_time > self.comm_time:
            self.comm_time = other.comm_time
        if other.synchs > self.synchs:
            self.synchs = other.synchs
        if other.words > self.words:
            self.words = other.words
        if other.flops > self.flops:
            self.flops = other.flops

    def copy(self) -> "PathMetrics":
        return PathMetrics(
            self.exec_time, self.comp_time, self.comm_time,
            self.synchs, self.words, self.flops,
        )


@dataclass(slots=True)
class PathProfile:
    """One rank's pathset: path metrics plus volumetric accumulations."""

    path: PathMetrics = field(default_factory=PathMetrics)

    # volumetric (per-rank, not propagated)
    vol_comp_time: float = 0.0       # wall time charged in computation kernels
    vol_comm_time: float = 0.0       # wall time charged in communication kernels
    vol_exec_comp: float = 0.0       # wall time in *executed* computation kernels
    vol_exec_comm: float = 0.0       # wall time in *executed* communication kernels
    vol_idle: float = 0.0            # wait time at synchronization points
    vol_words: float = 0.0
    vol_synchs: float = 0.0
    vol_flops: float = 0.0
    executed_kernels: int = 0
    skipped_kernels: int = 0

    # -- accumulation helpers ---------------------------------------------
    def add_compute(self, predicted: float, charged: float, flops: float,
                    executed: bool) -> None:
        self.path.exec_time += predicted
        self.path.comp_time += predicted
        self.path.flops += flops
        self.vol_comp_time += charged
        self.vol_flops += flops
        if executed:
            self.vol_exec_comp += charged
            self.executed_kernels += 1
        else:
            self.skipped_kernels += 1

    def add_comm(self, predicted: float, charged: float, nbytes: float,
                 executed: bool, idle: float) -> None:
        self.path.exec_time += predicted
        self.path.comm_time += predicted
        self.path.words += nbytes
        self.path.synchs += 1.0
        self.vol_comm_time += charged
        self.vol_words += nbytes
        self.vol_synchs += 1.0
        self.vol_idle += idle
        if executed:
            self.vol_exec_comm += charged
            self.executed_kernels += 1
        else:
            self.skipped_kernels += 1

    @property
    def kernel_wall_time(self) -> float:
        """Wall time this rank spent inside executed kernels."""
        return self.vol_exec_comp + self.vol_exec_comm

    def copy_path(self) -> PathMetrics:
        return self.path.copy()


def critical_path(profiles: List[PathProfile]) -> PathMetrics:
    """Final critical-path metrics: global max of every path metric."""
    out = PathMetrics()
    for p in profiles:
        out.merge_max(p.path)
    return out


def volumetric_average(profiles: List[PathProfile]) -> Dict[str, float]:
    """Per-rank averages of volumetric metrics (Fig. 3's second series)."""
    n = max(len(profiles), 1)
    return {
        "comp_time": sum(p.vol_comp_time for p in profiles) / n,
        "comm_time": sum(p.vol_comm_time for p in profiles) / n,
        "idle": sum(p.vol_idle for p in profiles) / n,
        "words": sum(p.vol_words for p in profiles) / n,
        "synchs": sum(p.vol_synchs for p in profiles) / n,
        "flops": sum(p.vol_flops for p in profiles) / n,
    }
