"""Structured event traces of simulated runs.

Traces are optional (they cost time and memory) but invaluable for
tests and for the execution-path visualisations of the examples: every
computation, p2p transfer, and collective is recorded with its
participants, signature, start time, duration, and whether Critter
executed or skipped it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.kernels.signature import KernelSignature

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    kind: str  # "comp" | "p2p" | "coll"
    ranks: Tuple[int, ...]
    sig: KernelSignature
    start: float
    duration: float
    executed: bool

    @property
    def end(self) -> float:
        return self.start + self.duration


class TraceRecorder:
    """Accumulates :class:`TraceEvent` records for one or more runs."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(
        self,
        kind: str,
        ranks: Tuple[int, ...],
        sig: KernelSignature,
        start: float,
        duration: float,
        executed: bool,
    ) -> None:
        self.events.append(TraceEvent(kind, ranks, sig, start, duration, executed))

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # -- simple queries used by tests and examples ------------------------
    def by_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def by_rank(self, rank: int) -> List[TraceEvent]:
        return [e for e in self.events if rank in e.ranks]

    def executed_count(self) -> int:
        return sum(1 for e in self.events if e.executed)

    def skipped_count(self) -> int:
        return sum(1 for e in self.events if not e.executed)

    def kernel_histogram(self) -> Dict[KernelSignature, int]:
        hist: Dict[KernelSignature, int] = {}
        for e in self.events:
            hist[e.sig] = hist.get(e.sig, 0) + 1
        return hist

    def total_time(self, kind: Optional[str] = None) -> float:
        return sum(e.duration for e in self.events if kind is None or e.kind == kind)
