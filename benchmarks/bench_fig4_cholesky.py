"""Figure 4: approximate autotuning of the two Cholesky factorizations.

Eight panels, all driven by the shared tolerance sweeps:

* 4a — Capital: exhaustive-search time vs. tolerance, 5 policies
        (paper: eager reaches 2.4-7.1x over conditional; apriori never
        beats conditional because of its extra full pass);
* 4b — SLATE: search time vs. tolerance, 4 policies;
* 4c — SLATE: max-rank *kernel computation* time vs. tolerance (paper:
        up to 75x — kernel-only speedups far exceed end-to-end);
* 4d — SLATE: mean log2 computation-time prediction error;
* 4e — Capital: mean log2 execution-time prediction error;
* 4f — SLATE: mean log2 execution-time prediction error;
* 4g — Capital: per-configuration execution-time error at several
        tolerances (online propagation);
* 4h — SLATE: per-configuration computation-time error (online).
"""

from __future__ import annotations

import math

import pytest

from bench_profiles import SETTINGS, get_sweep, results_path
from repro.analysis import format_table, save_csv
from repro.autotune import ExhaustiveTuner, default_machine


def eps_header(sweep):
    return [f"2^{int(math.log2(e))}" for e in sweep.tolerances]


def emit_policy_series(sweep, metric, title, csv_name, reference=None):
    from repro.analysis import sweep_chart

    rows = []
    for policy in sweep.policies:
        rows.append([policy] + sweep.series(policy, metric))
    if reference is not None:
        rows.append(["full-exec"] + [reference] * len(sweep.tolerances))
    print()
    print(format_table(["policy"] + eps_header(sweep), rows, title=title))
    print()
    print(sweep_chart(sweep, metric, title=f"{title} [chart]",
                      reference=reference))
    save_csv(results_path(csv_name), ["policy"] + [str(e) for e in sweep.tolerances], rows)
    return rows


def pick_eps(sweep, exps):
    """Tolerances from the sweep closest to the requested 2^e values."""
    out = []
    for e in exps:
        target = 2.0**e
        out.append(min(sweep.tolerances, key=lambda t: abs(t - target)))
    return sorted(set(out), reverse=True)


def emit_per_config(sweep, policy, exps, metric, title, csv_name):
    eps_list = pick_eps(sweep, exps)
    labels = [o.label for o in sweep.result(policy, eps_list[0]).outcomes]
    headers = ["cfg", "label"] + [f"2^{int(math.log2(e))}" for e in eps_list]
    rows = []
    for i, lab in enumerate(labels):
        row = [i, lab]
        for e in eps_list:
            row.append(100.0 * sweep.per_config_errors(policy, e, metric)[i])
        rows.append(row)
    print()
    print(format_table(headers, rows, title=title + "  [error %]"))
    save_csv(results_path(csv_name), headers, rows)
    return rows


def quick_point(sweep_name):
    """A single representative tuning pass for the timing metric."""
    sweep = get_sweep(sweep_name)

    def run():
        from bench_profiles import make_space

        space = make_space(sweep_name)
        machine = default_machine(space, seed=17)
        return ExhaustiveTuner(
            space, machine, policy="online", eps=0.25, reps=1,
            full_reps=1, ground_truth=sweep.ground, seed=1,
        ).run()

    return run


# ----------------------------------------------------------------------
# search time (4a, 4b)
# ----------------------------------------------------------------------
def test_fig4a_capital_search_time(benchmark, capital_sweep):
    rows = emit_policy_series(
        capital_sweep, "search_time",
        "Figure 4a — Capital Cholesky exhaustive search time (s)",
        "fig4a_capital_search_time.csv",
        reference=capital_sweep.full_search_time,
    )
    by_policy = {r[0]: r[1:] for r in rows}
    loosest = 0
    # eager must beat conditional at loose tolerance (paper: 2.4-7.1x)
    assert by_policy["eager"][loosest] < by_policy["conditional"][loosest]
    # apriori's extra full pass prevents any speedup relative to
    # conditional where selective execution is cheap (loose tolerances);
    # at mid tolerances its seeded path counts may offset the overhead
    assert by_policy["apriori"][loosest] >= by_policy["conditional"][loosest]
    # all policies beat full execution at the loosest tolerance
    assert by_policy["conditional"][loosest] < capital_sweep.full_search_time
    benchmark.pedantic(quick_point("capital_cholesky"), rounds=1, iterations=1)


def test_fig4b_slate_search_time(benchmark, slate_chol_sweep):
    rows = emit_policy_series(
        slate_chol_sweep, "search_time",
        "Figure 4b — SLATE Cholesky exhaustive search time (s)",
        "fig4b_slate_search_time.csv",
        reference=slate_chol_sweep.full_search_time,
    )
    by_policy = {r[0]: r[1:] for r in rows}
    assert by_policy["conditional"][0] < slate_chol_sweep.full_search_time
    benchmark.pedantic(quick_point("slate_cholesky"), rounds=1, iterations=1)


# ----------------------------------------------------------------------
# kernel computation time (4c)
# ----------------------------------------------------------------------
def test_fig4c_slate_kernel_comp_time(benchmark, slate_chol_sweep):
    rows = emit_policy_series(
        slate_chol_sweep, "comp_kernel_time",
        "Figure 4c — SLATE Cholesky max-rank kernel computation time (s)",
        "fig4c_slate_kernel_comp_time.csv",
        reference=slate_chol_sweep.full_comp_kernel_time,
    )
    by_policy = {r[0]: r[1:] for r in rows}
    full = slate_chol_sweep.full_comp_kernel_time
    kernel_speedup = full / by_policy["online"][0]
    print(f"\nkernel-time speedup at loosest tolerance: {kernel_speedup:.1f}x "
          "(paper: up to 75x at scale)")
    # kernel-only speedup must match or exceed the end-to-end search
    # speedup (at paper scale it far exceeds it: 75x vs 1.8x)
    search_speedup = (slate_chol_sweep.full_search_time
                      / slate_chol_sweep.result("online",
                                                slate_chol_sweep.tolerances[0]).search_time)
    assert kernel_speedup > search_speedup * 0.9
    benchmark.pedantic(quick_point("slate_cholesky"), rounds=1, iterations=1)


# ----------------------------------------------------------------------
# prediction error (4d, 4e, 4f)
# ----------------------------------------------------------------------
def test_fig4d_slate_comp_error(benchmark, slate_chol_sweep):
    rows = emit_policy_series(
        slate_chol_sweep, "mean_log2_comp_error",
        "Figure 4d — SLATE Cholesky mean log2 computation-time prediction error",
        "fig4d_slate_comp_error.csv",
    )
    # computation-kernel time is highly predictable: error systematically
    # below ~4% once tolerances tighten (paper: 4% -> 0.3%)
    by_policy = {r[0]: r[1:] for r in rows}
    assert min(by_policy["online"]) < -4.0  # better than 6% somewhere
    benchmark.pedantic(quick_point("slate_cholesky"), rounds=1, iterations=1)


def test_fig4e_capital_exec_error(benchmark, capital_sweep):
    rows = emit_policy_series(
        capital_sweep, "mean_log2_exec_error",
        "Figure 4e — Capital Cholesky mean log2 execution-time prediction error",
        "fig4e_capital_exec_error.csv",
    )
    by_policy = {r[0]: r[1:] for r in rows}
    for policy, series in by_policy.items():
        # error at the tightest tolerance beats the loosest one
        assert series[-1] <= series[0] + 0.75, policy
    benchmark.pedantic(quick_point("capital_cholesky"), rounds=1, iterations=1)


def test_fig4f_slate_exec_error(benchmark, slate_chol_sweep):
    emit_policy_series(
        slate_chol_sweep, "mean_log2_exec_error",
        "Figure 4f — SLATE Cholesky mean log2 execution-time prediction error",
        "fig4f_slate_exec_error.csv",
    )
    benchmark.pedantic(quick_point("slate_cholesky"), rounds=1, iterations=1)


# ----------------------------------------------------------------------
# per-configuration error (4g, 4h)
# ----------------------------------------------------------------------
def test_fig4g_capital_per_config_error(benchmark, capital_sweep):
    rows = emit_per_config(
        capital_sweep, "online", (-2, -3, -4, -5), "exec_error",
        "Figure 4g — Capital Cholesky per-config exec-time error (online)",
        "fig4g_capital_per_config_error.csv",
    )
    errs = [r[2:] for r in rows]
    # errors bounded across configurations at the tightest shown eps
    assert max(e[-1] for e in errs) < 50.0
    benchmark.pedantic(quick_point("capital_cholesky"), rounds=1, iterations=1)


def test_fig4h_slate_per_config_error(benchmark, slate_chol_sweep):
    rows = emit_per_config(
        slate_chol_sweep, "online", (-4, -5, -6, -7), "comp_error",
        "Figure 4h — SLATE Cholesky per-config comp-time kernel error (online)",
        "fig4h_slate_per_config_error.csv",
    )
    errs = [r[-1] for r in rows]
    assert max(errs) < 25.0  # comp-time predictable for every config
    benchmark.pedantic(quick_point("slate_cholesky"), rounds=1, iterations=1)
