"""Autotuning harness: configuration spaces, exhaustive tuner, sweeps."""

from repro.autotune.configspace import (
    SPACES,
    ConfigSpace,
    candmc_qr_space,
    capital_cholesky_space,
    slate_cholesky_space,
    slate_qr_space,
)
from repro.autotune.metrics import (
    ERROR_FLOOR,
    log2_error,
    mean_log2_error,
    relative_error,
    selection_quality,
    speedup,
)
from repro.autotune.search import (
    ExhaustiveSearch,
    RandomSearch,
    SearchResult,
    SuccessiveHalving,
)
from repro.autotune.sweep import SweepResult, default_tolerances, tolerance_sweep
from repro.autotune.tuner import (
    ConfigOutcome,
    ExhaustiveTuner,
    GroundTruth,
    TuningResult,
    default_machine,
    measure_ground_truth,
)

__all__ = [
    "ConfigSpace",
    "SPACES",
    "capital_cholesky_space",
    "slate_cholesky_space",
    "candmc_qr_space",
    "slate_qr_space",
    "relative_error",
    "mean_log2_error",
    "log2_error",
    "speedup",
    "selection_quality",
    "ERROR_FLOOR",
    "ExhaustiveTuner",
    "TuningResult",
    "ConfigOutcome",
    "GroundTruth",
    "measure_ground_truth",
    "default_machine",
    "SweepResult",
    "tolerance_sweep",
    "default_tolerances",
    "SearchResult",
    "ExhaustiveSearch",
    "RandomSearch",
    "SuccessiveHalving",
]
