"""Distributed dense linear algebra workloads (Section V).

Faithful-schedule reimplementations of the four library algorithms the
paper autotunes, written as simulator rank programs:

* :mod:`~repro.algorithms.capital_cholesky` — Capital's recursive
  Cholesky on a 3D processor grid with three base-case strategies,
* :mod:`~repro.algorithms.slate_cholesky` — SLATE's tiled task-based
  Cholesky with lookahead pipelining on a 2D grid,
* :mod:`~repro.algorithms.candmc_qr` — CANDMC's 2D block-cyclic
  Householder QR (TSQR panel + Householder reconstruction + compact-WY
  trailing update),
* :mod:`~repro.algorithms.slate_qr` — SLATE's tiled QR
  (geqrt/tpqrt panels, larfb/tpmqrt updates, inner blocking ``w``).

Every algorithm runs in *symbolic* mode (costs only — used for
autotuning experiments) or *numeric* mode (real matrix tiles move
through the schedule; the test suite verifies the results against
``numpy``).
"""

from repro.algorithms.grids import Grid2D, Grid3D, make_grid2d, make_grid3d
from repro.algorithms import distribution
from repro.algorithms.capital_cholesky import CapitalCholeskyConfig, capital_cholesky
from repro.algorithms.slate_cholesky import SlateCholeskyConfig, slate_cholesky
from repro.algorithms.candmc_qr import CandmcQRConfig, candmc_qr
from repro.algorithms.slate_qr import SlateQRConfig, slate_qr
from repro.algorithms import verify

__all__ = [
    "Grid2D",
    "Grid3D",
    "make_grid2d",
    "make_grid3d",
    "distribution",
    "CapitalCholeskyConfig",
    "capital_cholesky",
    "SlateCholeskyConfig",
    "slate_cholesky",
    "CandmcQRConfig",
    "candmc_qr",
    "SlateQRConfig",
    "slate_qr",
    "verify",
]
