"""Welford statistics, merging, and confidence-interval predictability."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.critter.stats import (
    RunningStat,
    is_predictable,
    relative_ci,
    z_value,
)


def stat_of(xs):
    s = RunningStat()
    for x in xs:
        s.update(x)
    return s


class TestZValue:
    def test_95_percent(self):
        assert z_value(0.95) == pytest.approx(1.959964, abs=1e-5)

    def test_99_percent(self):
        assert z_value(0.99) == pytest.approx(2.575829, abs=1e-5)

    def test_monotone(self):
        assert z_value(0.99) > z_value(0.95) > z_value(0.5)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError):
            z_value(bad)


class TestRunningStat:
    def test_empty(self):
        s = RunningStat()
        assert s.count == 0
        assert s.variance == 0.0

    def test_single_sample(self):
        s = stat_of([3.0])
        assert s.mean == 3.0
        assert s.variance == 0.0
        assert s.minimum == s.maximum == 3.0

    def test_mean_and_variance_match_numpy(self):
        xs = [1.0, 2.0, 4.0, 8.0, 16.0]
        s = stat_of(xs)
        assert s.mean == pytest.approx(np.mean(xs))
        assert s.variance == pytest.approx(np.var(xs, ddof=1))
        assert s.std == pytest.approx(np.std(xs, ddof=1))

    def test_total(self):
        assert stat_of([1.0, 2.0, 3.0]).total == pytest.approx(6.0)

    def test_minmax(self):
        s = stat_of([5.0, -1.0, 3.0])
        assert s.minimum == -1.0 and s.maximum == 5.0

    def test_copy_independent(self):
        s = stat_of([1.0, 2.0])
        c = s.copy()
        c.update(100.0)
        assert s.count == 2 and c.count == 3

    def test_repr(self):
        assert "count=2" in repr(stat_of([1.0, 2.0]))


class TestMerge:
    def test_merge_matches_combined(self):
        a, b = [1.0, 2.0, 3.0], [10.0, 20.0]
        s = stat_of(a)
        s.merge(stat_of(b))
        ref = stat_of(a + b)
        assert s.count == ref.count
        assert s.mean == pytest.approx(ref.mean)
        assert s.variance == pytest.approx(ref.variance)

    def test_merge_empty_into_full(self):
        s = stat_of([1.0, 2.0])
        s.merge(RunningStat())
        assert s.count == 2

    def test_merge_full_into_empty(self):
        s = RunningStat()
        s.merge(stat_of([1.0, 2.0]))
        assert s.count == 2 and s.mean == pytest.approx(1.5)

    @given(
        a=st.lists(st.floats(min_value=1e-6, max_value=1e3), min_size=0, max_size=30),
        b=st.lists(st.floats(min_value=1e-6, max_value=1e3), min_size=0, max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_merge_equals_concat(self, a, b):
        s = stat_of(a)
        s.merge(stat_of(b))
        ref = stat_of(a + b)
        assert s.count == ref.count
        if ref.count:
            assert s.mean == pytest.approx(ref.mean, rel=1e-9, abs=1e-12)
            assert s.variance == pytest.approx(ref.variance, rel=1e-6, abs=1e-9)


class TestConfidenceIntervals:
    def test_infinite_before_two_samples(self):
        s = stat_of([1.0])
        assert s.ci_halfwidth(1.96) == math.inf
        assert relative_ci(s, 1.96) == math.inf

    def test_halfwidth_formula(self):
        s = stat_of([1.0, 2.0, 3.0, 4.0])
        expect = 1.96 * s.std / math.sqrt(4)
        assert s.ci_halfwidth(1.96) == pytest.approx(expect)

    def test_alpha_shrinks_by_sqrt(self):
        # the paper's sqrt(alpha) reduction from path execution counts
        s = stat_of([1.0, 2.0, 3.0, 4.0])
        assert s.ci_halfwidth(1.96, alpha=4) == pytest.approx(
            s.ci_halfwidth(1.96, alpha=1) / 2.0
        )

    def test_ci_shrinks_with_samples(self):
        rng = np.random.default_rng(0)
        s = RunningStat()
        widths = []
        for n in (10, 100, 1000):
            while s.count < n:
                s.update(1.0 + 0.1 * rng.standard_normal())
            widths.append(s.ci_halfwidth(1.96))
        assert widths[0] > widths[1] > widths[2]

    def test_zero_mean_unpredictable(self):
        s = stat_of([0.0, 0.0, 0.0])
        assert relative_ci(s, 1.96) == math.inf

    def test_constant_samples_immediately_predictable(self):
        s = stat_of([2.0, 2.0])
        assert is_predictable(s, eps=0.01, z=1.96)

    def test_min_samples_respected(self):
        s = stat_of([2.0, 2.0])
        assert not is_predictable(s, eps=0.5, z=1.96, min_samples=5)
        for _ in range(3):
            s.update(2.0)
        assert is_predictable(s, eps=0.5, z=1.96, min_samples=5)

    def test_predictability_threshold(self):
        rng = np.random.default_rng(1)
        s = RunningStat()
        for _ in range(50):
            s.update(1.0 + 0.2 * rng.standard_normal())
        rel = relative_ci(s, 1.96)
        assert is_predictable(s, eps=rel * 1.01, z=1.96)
        assert not is_predictable(s, eps=rel * 0.99, z=1.96)

    @given(
        xs=st.lists(st.floats(min_value=0.5, max_value=2.0), min_size=3, max_size=50),
        alpha=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_alpha_monotone(self, xs, alpha):
        # larger path counts can only make a kernel easier to skip
        s = stat_of(xs)
        assert s.ci_halfwidth(1.96, alpha) <= s.ci_halfwidth(1.96, 1) + 1e-15
