"""Exhaustive autotuning driver (Section VI protocol).

For every configuration in a space the tuner performs:

1. **Ground truth** — ``full_reps`` full executions (never-skip
   Critter); their mean makespan is the configuration's true time and
   their critical-path metrics the truth for computation-time
   prediction.  These are *not* charged to the search (the paper
   measures them "directly prior to the approximated one" purely for
   error evaluation).
2. **Offline pass** — for the apriori policy only: one extra full
   execution whose critical-path kernel counts seed the confidence
   scaling; its wall time *is* charged to the search (this is why
   apriori shows no net speedup in Fig. 4a).
3. **Selective executions** — ``reps`` runs under the chosen policy and
   tolerance, statistics persisting across the reps; their total wall
   time is the configuration's tuning cost and the last run's pathset
   provides the predicted execution/computation time.

Statistics reset between configurations for every policy except eager
propagation, which deliberately reuses kernel models across
configurations (Section VI.B).

The tuner does not run simulations inline: it *describes* the protocol
as :class:`~repro.runner.RunRequest` jobs and submits them through a
:class:`~repro.runner.Runner`, which adds result caching and parallel
execution.  Policies that reset statistics between configurations fan
out one job per configuration; eager propagation is a single
sequential whole-space job (its cross-configuration statistics make
per-configuration jobs meaningless).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.autotune.configspace import ConfigSpace
import math

from repro.autotune.metrics import (
    coefficient_of_variation,
    mean_log2_error,
    p50,
    p99,
    relative_error,
    selection_quality,
    speedup,
)
from repro.critter.pathset import PathMetrics
from repro.critter.policies import make_policy
from repro.runner import (
    GROUND_TRUTH,
    TUNE_CONFIG,
    TUNE_PASS,
    ConfigResult,
    Runner,
    RunRequest,
    RunResult,
    seed_for,
)
from repro.sim.machine import Machine

__all__ = ["GroundTruth", "ConfigOutcome", "TuningResult", "ExhaustiveTuner",
           "measure_ground_truth", "default_machine",
           "ground_truth_requests", "tuning_requests",
           "ground_truth_from_results", "assemble_tuning_result"]

#: retained name — the seeding discipline now lives with the job layer
_seed_for = seed_for


def default_machine(space: ConfigSpace, seed: int = 0) -> Machine:
    return Machine(nprocs=space.nprocs, seed=seed)


@dataclass(slots=True)
class GroundTruth:
    """Full-execution reference for one configuration."""

    times: List[float]
    path: PathMetrics
    max_rank_comp_time: float
    max_rank_kernel_time: float

    @property
    def mean_time(self) -> float:
        return sum(self.times) / len(self.times)

    @property
    def noise_cv(self) -> float:
        """Observed run-to-run variability (the environment noise level)."""
        m = self.mean_time
        if len(self.times) < 2 or m == 0.0:
            return 0.0
        var = sum((t - m) ** 2 for t in self.times) / (len(self.times) - 1)
        return var**0.5 / m

    # distribution view of the full-execution samples: timings are
    # distributions, not scalars, so the reference keeps its order
    # statistics alongside the mean
    @property
    def time_p50(self) -> float:
        return p50(self.times)

    @property
    def time_p99(self) -> float:
        return p99(self.times)

    @property
    def time_cov(self) -> float:
        return coefficient_of_variation(self.times)


@dataclass(slots=True)
class ConfigOutcome:
    """Per-configuration result of one tuning pass."""

    index: int
    label: str
    full_time: float
    full_path: PathMetrics
    tuning_time: float          # selective reps (+ offline pass if any)
    offline_time: float
    predicted: PathMetrics
    max_rank_kernel_time: float  # summed over selective reps
    max_rank_comp_time: float
    skip_fraction: float
    exec_error: float = 0.0
    comp_error: float = 0.0
    # distribution of the configuration's full-execution samples
    full_time_p50: float = 0.0
    full_time_p99: float = 0.0
    full_time_cov: float = 0.0

    def finalize(self) -> None:
        self.exec_error = relative_error(self.predicted.exec_time, self.full_time)
        self.comp_error = relative_error(
            self.predicted.comp_time, self.full_path.comp_time
        )


@dataclass(slots=True)
class TuningResult:
    """Outcome of exhaustively tuning a space with one (policy, eps).

    ``failures`` annotates jobs the runner quarantined (and configs
    whose ground truth is unavailable): the corresponding outcomes are
    simply absent, so every aggregate below ranges over the surviving
    configurations — a sweep degrades gracefully instead of aborting.
    """

    space_name: str
    policy: str
    eps: float
    reps: int
    outcomes: List[ConfigOutcome] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    # -- search cost -----------------------------------------------------
    @property
    def search_time(self) -> float:
        """Exhaustive-search execution time (the y-axis of Figs. 4a/5a)."""
        return sum(o.tuning_time for o in self.outcomes)

    @property
    def full_search_time(self) -> float:
        """Search time had every kernel been executed (the red line)."""
        return sum(o.full_time * self.reps for o in self.outcomes)

    @property
    def search_speedup(self) -> float:
        if self.search_time <= 0.0:
            # no surviving measurements to compare (every job failed)
            return math.inf
        return speedup(self.full_search_time, self.search_time)

    @property
    def kernel_time(self) -> float:
        """Max-rank selectively-executed kernel wall time (Figs. 4c/5c)."""
        return sum(o.max_rank_kernel_time for o in self.outcomes)

    @property
    def comp_kernel_time(self) -> float:
        return sum(o.max_rank_comp_time for o in self.outcomes)

    # -- prediction error --------------------------------------------------
    @property
    def exec_errors(self) -> List[float]:
        return [o.exec_error for o in self.outcomes]

    @property
    def comp_errors(self) -> List[float]:
        return [o.comp_error for o in self.outcomes]

    @property
    def mean_log2_exec_error(self) -> float:
        return mean_log2_error(self.exec_errors)

    @property
    def mean_log2_comp_error(self) -> float:
        return mean_log2_error(self.comp_errors)

    # -- configuration selection -------------------------------------------
    @property
    def predicted_best(self) -> int:
        return min(range(len(self.outcomes)),
                   key=lambda i: self.outcomes[i].predicted.exec_time)

    @property
    def true_best(self) -> int:
        return min(range(len(self.outcomes)),
                   key=lambda i: self.outcomes[i].full_time)

    @property
    def selection_quality(self) -> float:
        return selection_quality(
            [o.predicted.exec_time for o in self.outcomes],
            [o.full_time for o in self.outcomes],
        )


# ----------------------------------------------------------------------
# request builders (drivers describe work; the runner schedules it)
# ----------------------------------------------------------------------
def ground_truth_requests(
    space: ConfigSpace,
    machine: Machine,
    full_reps: int = 3,
    seed: int = 0,
) -> List[RunRequest]:
    """One independent full-execution job per configuration."""
    return [
        RunRequest(kind=GROUND_TRUTH, space=space, machine=machine,
                   seed=seed, reps=full_reps, config_index=idx)
        for idx in range(len(space.configs))
    ]


def tuning_requests(
    space: ConfigSpace,
    machine: Machine,
    policy: str,
    eps: float,
    reps: int,
    confidence: float = 0.95,
    min_samples: int = 2,
    seed: int = 0,
) -> List[RunRequest]:
    """The selective-execution jobs of one (policy, eps) tuning pass.

    Policies that reset statistics between configurations produce one
    independent job per configuration; eager propagation produces a
    single sequential whole-space job.
    """
    pol = make_policy(policy)
    common = dict(space=space, machine=machine, seed=seed, reps=reps,
                  policy=pol.name, eps=float(eps), confidence=confidence,
                  min_samples=min_samples, offline=pol.needs_offline_counts)
    if pol.resets_between_configs:
        return [RunRequest(kind=TUNE_CONFIG, config_index=idx, **common)
                for idx in range(len(space.configs))]
    return [RunRequest(kind=TUNE_PASS, **common)]


def ground_truth_from_results(
    results: Sequence[RunResult],
    nconfigs: Optional[int] = None,
) -> List[Optional[GroundTruth]]:
    """Convert ground-truth job results back into driver-level objects.

    The returned list is aligned by configuration index.  Failed jobs
    (``status="failed"``) leave ``None`` at their configuration's slot,
    so downstream consumers can skip-and-annotate those configurations;
    pass ``nconfigs`` to fix the list length when trailing jobs failed.
    """
    outs = sorted((o for res in results if not res.failed
                   for o in res.outputs), key=lambda o: o.index)
    size = nconfigs if nconfigs is not None else (
        max((o.index for o in outs), default=-1) + 1)
    ground: List[Optional[GroundTruth]] = [None] * size
    for o in outs:
        ground[o.index] = GroundTruth(
            times=o.times, path=o.path,
            max_rank_comp_time=o.max_rank_comp_time,
            max_rank_kernel_time=o.max_rank_kernel_time)
    return ground


def assemble_tuning_result(
    space: ConfigSpace,
    policy: str,
    eps: float,
    reps: int,
    results: Sequence[RunResult],
    ground: Sequence[Optional[GroundTruth]],
) -> TuningResult:
    """Join selective-job outputs with ground truth into a TuningResult.

    Failed jobs and configurations lacking ground truth are recorded in
    ``TuningResult.failures`` and skipped, not fatal: the paper's grid
    points stay comparable over the surviving configurations.
    """
    result = TuningResult(space_name=space.name, policy=policy,
                          eps=float(eps), reps=int(reps))
    for res in results:
        if res.failed:
            result.failures.append(res.error or f"{res.kind} job failed")
    flat: List[ConfigResult] = sorted(
        (o for res in results if not res.failed for o in res.outputs),
        key=lambda o: o.index)
    for cr in flat:
        truth = ground[cr.index] if cr.index < len(ground) else None
        if truth is None:
            result.failures.append(
                f"config {cr.index}: ground truth unavailable "
                f"(full-execution job failed)")
            continue
        outcome = ConfigOutcome(
            index=cr.index,
            label=space.configs[cr.index].label(),
            full_time=truth.mean_time,
            full_path=truth.path,
            tuning_time=cr.tuning_time,
            offline_time=cr.offline_time,
            predicted=cr.predicted,
            max_rank_kernel_time=cr.kernel_time,
            max_rank_comp_time=cr.comp_time,
            skip_fraction=cr.skip_fraction,
            full_time_p50=truth.time_p50,
            full_time_p99=truth.time_p99,
            full_time_cov=truth.time_cov,
        )
        outcome.finalize()
        result.outcomes.append(outcome)
    return result


def measure_ground_truth(
    space: ConfigSpace,
    machine: Optional[Machine] = None,
    full_reps: int = 3,
    seed: int = 0,
    runner: Optional[Runner] = None,
) -> List[Optional[GroundTruth]]:
    """Full executions of every configuration (shared across sweeps).

    Aligned by configuration index; a slot is ``None`` only when that
    configuration's job was quarantined by a fault-tolerant runner.
    """
    machine = machine or default_machine(space, seed)
    runner = runner if runner is not None else Runner()
    results = runner.run(ground_truth_requests(space, machine, full_reps, seed))
    return ground_truth_from_results(results, nconfigs=len(space.configs))


class ExhaustiveTuner:
    """Runs the paper's exhaustive-search protocol on one space."""

    def __init__(
        self,
        space: ConfigSpace,
        machine: Optional[Machine] = None,
        policy: str = "online",
        eps: float = 0.05,
        reps: int = 5,
        full_reps: int = 3,
        confidence: float = 0.95,
        min_samples: int = 2,
        seed: int = 0,
        ground_truth: Optional[List[Optional[GroundTruth]]] = None,
        runner: Optional[Runner] = None,
    ) -> None:
        self.space = space
        self.machine = machine or default_machine(space, seed)
        self.policy = make_policy(policy)
        self.eps = float(eps)
        self.reps = int(reps)
        self.full_reps = int(full_reps)
        self.confidence = confidence
        self.min_samples = min_samples
        self.seed = seed
        self.runner = runner
        self._ground = ground_truth

    # ------------------------------------------------------------------
    def run(self) -> TuningResult:
        runner = self.runner if self.runner is not None else Runner()
        if self._ground is None:
            self._ground = measure_ground_truth(
                self.space, self.machine, self.full_reps, self.seed,
                runner=runner,
            )
        requests = tuning_requests(
            self.space, self.machine, self.policy.name, self.eps, self.reps,
            confidence=self.confidence, min_samples=self.min_samples,
            seed=self.seed,
        )
        results = runner.run(requests)
        return assemble_tuning_result(
            self.space, self.policy.name, self.eps, self.reps,
            results, self._ground,
        )
