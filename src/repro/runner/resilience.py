"""Fault-tolerant job execution: retries, timeouts, pool rebuilds.

``ParallelExecutor`` is fail-fast: one worker segfault, hung simulation,
or poison job aborts ``pool.map`` and discards every in-flight result —
unacceptable for the long many-job sweeps autotuning campaigns run.
:class:`ResilientExecutor` replaces the bare map with a
submit/as-completed loop that

* applies a per-job wall-clock **timeout** (a hung worker is killed and
  its pool rebuilt; siblings are resubmitted unharmed),
* **retries** failed and timed-out jobs with exponential backoff and
  deterministic jitter (seeded on the request key, so reruns replay the
  same schedule),
* survives **BrokenProcessPool** by rebuilding the pool instead of
  dying: jobs in flight at the crash are re-routed through a
  single-worker *solo* pool, where a repeat crash is unambiguously
  attributable to the one job running — the poison-job detector,
* after ``max_attempts`` strikes **quarantines** a poison job as a
  structured ``RunResult(status="failed", error=...)`` so the rest of
  the batch completes (graceful degradation; downstream layers
  skip-and-annotate).

Because jobs are pure functions of their request (deterministic
seeding, no shared state) a retry re-runs the job from scratch and
produces the identical result — surviving results under any fault
pattern are bit-identical to a fault-free serial run, the invariant
the fault-injection fuzz leg asserts.
"""

from __future__ import annotations

import heapq
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.runner.jobs import (
    RunRequest,
    RunResult,
    execute_request,
    failed_result,
    request_key,
)
from repro.runner.seeds import derive_unit

__all__ = ["RetryPolicy", "ResilientExecutor", "backoff_delay"]

#: scheduler poll granularity (seconds): deadline checks and delayed
#: retries are observed at this resolution
_TICK = 0.05

_MAIN = "main"
_SOLO = "solo"


@dataclass(slots=True)
class RetryPolicy:
    """Knobs for the resilient executor's failure handling."""

    #: total attempts per job before quarantine (1 = no retries)
    max_attempts: int = 3
    #: per-job wall-clock timeout in seconds, measured from the moment
    #: the job is observed running; ``None`` disables timeouts
    timeout: Optional[float] = None
    #: exponential backoff: delay before retry k is roughly
    #: ``base * factor**(k-1)``, capped at ``max_delay``
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    #: seeds the deterministic jitter (reruns replay the same schedule)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")


def backoff_delay(policy: RetryPolicy, key: str, failures: int) -> float:
    """Backoff before retrying after the ``failures``-th failure.

    Jitter is drawn deterministically from (policy seed, request key,
    failure count) — uniform in [0.5, 1.0) of the exponential delay —
    so identical reruns produce identical retry schedules while distinct
    jobs still decorrelate their retries.
    """
    raw = policy.backoff_base * policy.backoff_factor ** max(0, failures - 1)
    u = derive_unit(policy.seed, key, failures)
    return min(policy.backoff_max, raw) * (0.5 + 0.5 * u)


@dataclass(slots=True)
class _Job:
    """Parent-side bookkeeping for one submitted request."""

    index: int
    request: RunRequest
    key: str
    submits: int = 0          # attempts started (passed to the worker)
    failures: int = 0         # attributable failures (raise/timeout/solo crash)
    suspect: bool = False     # route through the solo pool (crash isolation)
    done: bool = False
    result: Optional[RunResult] = None
    errors: List[str] = field(default_factory=list)

    def describe(self) -> str:
        return (f"key={self.key} kind={self.request.kind} "
                f"config={self.request.config_index} seed={self.request.seed}")


class ResilientExecutor:
    """Process-pool executor that retries, times out, and quarantines.

    Drop-in for :class:`~repro.runner.executors.ParallelExecutor`:
    ``map`` yields results in submission order, but never raises on a
    job failure — a job that exhausts its retry budget yields a
    ``RunResult(status="failed")`` instead, and worker crashes/hangs
    rebuild the pool rather than aborting the batch.

    ``stats`` counts ``retries``, ``timeouts``, ``rebuilds`` (pool
    replacements), ``crashes`` (BrokenProcessPool events), and
    ``quarantined`` jobs across the executor's lifetime.
    """

    def __init__(self, jobs: Optional[int] = None,
                 policy: Optional[RetryPolicy] = None) -> None:
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.policy = policy if policy is not None else RetryPolicy()
        self.stats: Dict[str, int] = {
            "retries": 0, "timeouts": 0, "rebuilds": 0, "crashes": 0,
            "quarantined": 0,
        }

    def __repr__(self) -> str:
        return (f"ResilientExecutor(jobs={self.jobs}, "
                f"max_attempts={self.policy.max_attempts}, "
                f"timeout={self.policy.timeout})")

    # ------------------------------------------------------------------
    def map(self, requests: Sequence[RunRequest]) -> Iterator[RunResult]:
        requests = list(requests)
        if not requests:
            return
        jobs = [_Job(i, req, request_key(req))
                for i, req in enumerate(requests)]
        yield from self._drive(jobs)

    # ------------------------------------------------------------------
    def _drive(self, jobs: List[_Job]) -> Iterator[RunResult]:
        n = len(jobs)
        policy = self.policy
        pools: Dict[str, Optional[ProcessPoolExecutor]] = {_MAIN: None, _SOLO: None}
        gens: Dict[str, int] = {_MAIN: 0, _SOLO: 0}
        # future -> (job index, pool name, pool generation)
        futures: Dict[Future, Tuple[int, str, int]] = {}
        running_since: Dict[Future, float] = {}
        main_ready: deque = deque(range(n))
        solo_ready: deque = deque()
        delayed: List[Tuple[float, int]] = []  # (ready_at, index) heap
        solo_busy = False
        done_count = 0
        next_yield = 0

        def ensure_pool(name: str) -> ProcessPoolExecutor:
            if pools[name] is None:
                workers = 1 if name == _SOLO else min(self.jobs, n)
                pools[name] = ProcessPoolExecutor(max_workers=workers)
            return pools[name]

        def kill_pool(name: str) -> None:
            """Forcibly terminate a pool's workers (hung or poisoned)."""
            pool = pools[name]
            if pool is None:
                return
            for proc in list(getattr(pool, "_processes", {}).values()):
                try:
                    proc.kill()
                except OSError:  # already gone
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
            pools[name] = None

        def retire_pool(name: str) -> List[int]:
            """Invalidate a pool generation; return its unfinished jobs."""
            nonlocal solo_busy
            gens[name] += 1
            self.stats["rebuilds"] += 1
            if name == _SOLO:
                solo_busy = False
            orphans = sorted(idx for fut, (idx, pname, _g) in futures.items()
                             if pname == name)
            for fut in [f for f, (_i, pname, _g) in futures.items()
                        if pname == name]:
                futures.pop(fut, None)
                running_since.pop(fut, None)
            return orphans

        def finish(job: _Job, result: RunResult) -> None:
            nonlocal done_count
            job.result = result
            job.done = True
            done_count += 1

        def record_failure(job: _Job, message: str) -> None:
            """An attributable failure: retry with backoff or quarantine."""
            job.failures += 1
            job.errors.append(message)
            if job.failures >= policy.max_attempts:
                self.stats["quarantined"] += 1
                history = "; ".join(job.errors)
                finish(job, failed_result(
                    job.request,
                    f"quarantined after {job.failures} failed attempts "
                    f"[{job.describe()}]: {history}"))
                return
            self.stats["retries"] += 1
            delay = backoff_delay(policy, job.key, job.failures)
            heapq.heappush(delayed, (time.monotonic() + delay, job.index))

        def requeue(idx: int) -> None:
            (solo_ready if jobs[idx].suspect else main_ready).append(idx)

        def handle_crash(name: str, triggering: Optional[int]) -> None:
            """A pool died underneath us (worker exit / oom / segfault)."""
            self.stats["crashes"] += 1
            kill_pool(name)  # discard the broken pool object
            orphans = retire_pool(name)
            if triggering is not None and triggering not in orphans:
                orphans.append(triggering)
            if name == _SOLO:
                # solo pools run one job at a time: the crash is that
                # job's own doing — an attributable strike
                for idx in orphans:
                    record_failure(jobs[idx],
                                   f"worker process died (attempt "
                                   f"{jobs[idx].submits - 1})")
            else:
                # any in-flight job may be the culprit: re-route them all
                # through the solo pool, where the next crash attributes
                # unambiguously; no strike is charged here
                for idx in orphans:
                    jobs[idx].suspect = True
                    requeue(idx)

        try:
            while done_count < n:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, idx = heapq.heappop(delayed)
                    requeue(idx)
                def submit(idx: int, name: str) -> bool:
                    pool = ensure_pool(name)
                    try:
                        fut = pool.submit(execute_request, jobs[idx].request,
                                          jobs[idx].submits)
                    except BrokenProcessPool:
                        # pool died between checks: rebuild and requeue
                        kill_pool(name)
                        for orphan in retire_pool(name):
                            requeue(orphan)
                        requeue(idx)
                        return False
                    jobs[idx].submits += 1
                    futures[fut] = (idx, name, gens[name])
                    return True

                while main_ready:
                    idx = main_ready.popleft()
                    if jobs[idx].done:
                        continue
                    submit(idx, _MAIN)
                if solo_ready and not solo_busy:
                    idx = solo_ready.popleft()
                    if not jobs[idx].done and submit(idx, _SOLO):
                        solo_busy = True

                while next_yield < n and jobs[next_yield].done:
                    yield jobs[next_yield].result
                    next_yield += 1
                if done_count >= n:
                    break
                if not futures and not delayed and not main_ready and not solo_ready:
                    raise RuntimeError("resilient executor stalled with "
                                       "unfinished jobs and nothing in flight")

                timeout = _TICK
                if delayed:
                    timeout = max(0.0, min(timeout, delayed[0][0] - now))
                if not futures:
                    # nothing in flight: sleep until the next delayed
                    # retry matures (wait([]) would return immediately)
                    if timeout > 0:
                        time.sleep(timeout)
                    continue
                finished, _ = wait(list(futures), timeout=timeout,
                                   return_when=FIRST_COMPLETED)

                for fut in finished:
                    entry = futures.pop(fut, None)
                    running_since.pop(fut, None)
                    if entry is None:
                        continue
                    idx, pname, gen = entry
                    if gen != gens[pname]:
                        continue  # stale: pool already retired
                    if pname == _SOLO:
                        solo_busy = False
                    if fut.cancelled():
                        requeue(idx)
                        continue
                    exc = fut.exception()
                    if exc is None:
                        finish(jobs[idx], fut.result())
                    elif isinstance(exc, BrokenProcessPool):
                        handle_crash(pname, idx)
                    else:
                        record_failure(jobs[idx], f"{exc}")

                if policy.timeout is not None and futures:
                    now = time.monotonic()
                    timed_out: Optional[Tuple[int, str]] = None
                    for fut, (idx, pname, gen) in futures.items():
                        if gen != gens[pname] or not fut.running():
                            continue
                        started = running_since.setdefault(fut, now)
                        if now - started > policy.timeout:
                            timed_out = (idx, pname)
                            break
                    if timed_out is not None:
                        idx, pname = timed_out
                        self.stats["timeouts"] += 1
                        kill_pool(pname)
                        orphans = retire_pool(pname)
                        for other in orphans:
                            if other == idx:
                                continue
                            requeue(other)  # innocent bystanders: no strike
                        jobs[idx].suspect = True
                        record_failure(
                            jobs[idx],
                            f"timed out after {policy.timeout:g}s (attempt "
                            f"{jobs[idx].submits - 1})")

            while next_yield < n and jobs[next_yield].done:
                yield jobs[next_yield].result
                next_yield += 1
        finally:
            for name in (_MAIN, _SOLO):
                pool = pools[name]
                if pool is not None:
                    kill_pool(name)
