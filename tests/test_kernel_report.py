"""Per-kernel profiling reports."""

import math

import pytest

from repro.critter import Critter, format_kernel_profile, kernel_profile
from repro.kernels.blas import gemm_spec, trsm_spec
from repro.sim import Machine, Simulator


def prog(comm):
    for _ in range(5):
        yield comm.compute(gemm_spec(32, 32, 32))
    yield comm.compute(trsm_spec(16, 16))
    yield comm.allreduce(nbytes=1024)


@pytest.fixture
def profiled():
    cr = Critter(policy="never-skip")
    m = Machine(nprocs=4, seed=9)
    Simulator(m, profiler=cr).run(prog, run_seed=0)
    return cr


class TestKernelProfile:
    def test_entries_sorted_by_total(self, profiled):
        entries = kernel_profile(profiled)
        totals = [e.total_time for e in entries]
        assert totals == sorted(totals, reverse=True)

    def test_counts_merged_over_ranks(self, profiled):
        entries = {str(e.sig): e for e in kernel_profile(profiled)}
        assert entries["gemm(32,32,32)"].count == 20  # 5 x 4 ranks

    def test_single_rank_view(self, profiled):
        entries = {str(e.sig): e for e in kernel_profile(profiled, rank=0)}
        assert entries["gemm(32,32,32)"].count == 5

    def test_path_counts_present(self, profiled):
        entries = {str(e.sig): e for e in kernel_profile(profiled)}
        assert entries["gemm(32,32,32)"].path_count == 5

    def test_top_truncation(self, profiled):
        assert len(kernel_profile(profiled, top=1)) == 1

    def test_predictable_flag(self, profiled):
        for e in kernel_profile(profiled):
            if e.count >= 2:
                assert e.predictable == math.isfinite(e.rel_ci)

    def test_empty_critter(self):
        assert kernel_profile(Critter()) == []


class TestFormatting:
    def test_table_renders(self, profiled):
        text = format_kernel_profile(profiled)
        assert "gemm(32,32,32)" in text
        assert "count" in text.splitlines()[0]

    def test_table_rank_view(self, profiled):
        text = format_kernel_profile(profiled, rank=2, top=3)
        # header + rule + at most 3 rows
        assert len(text.splitlines()) <= 5
