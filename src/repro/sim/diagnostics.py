"""Opt-in engine diagnostics: where do the scheduler's cycles go?

The benchmarks in :mod:`repro.sim.bench` report *throughput*; this
module answers *why*.  An :class:`EngineDiagnostics` instance passed to
``Simulator(..., diagnostics=...)`` collects

* per-op-kind totals (how many ops of each kind the rank programs
  yielded),
* per-op-kind heap dispatches and their wall time (ops the scheduler
  round-tripped through the global event heap),
* fast-path engagement: inline rendezvous hits, deferred
  (:class:`~repro.sim.engine._FinishP2P`) matches, early-queued p2p
  records, inline collective parks, batcher fill,
* redelivery counts (ops that reached a rank ahead of their global
  position and took one extra heap transit).

Inline handling is *derived*, not counted: an op the fast path absorbs
never reaches a counting site, so ``inline[kind] = totals[kind] -
heap_dispatched[kind]``.  This is what keeps the overhead structure
honest:

* **diagnostics off** (the default) the engine carries no counting code
  on the inline hot paths at all — every site guards on
  ``diagnostics is not None`` and all sites live on heap transits,
  p2p branches, or batch entries, never on the inline compute chain;
* **diagnostics on** the only hot-path cost is the generator wrapper
  (one dict increment per op).  Counters never influence scheduling,
  draws, or hooks, so results are bit-identical with diagnostics on or
  off (CI asserts this).

Determinism: every counter is an integer derived from the op stream and
scheduling structure, so two runs of the same seeded workload produce
byte-identical :meth:`EngineDiagnostics.counters_json`.  Wall-clock
attribution lives in a separate ``timings`` block that is excluded from
the canonical JSON.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Iterator, List, Tuple

from repro.sim.ops import (
    CollOp,
    ComputeBatchOp,
    ComputeOp,
    ComputeRunOp,
    P2POp,
    SplitOp,
    WaitOp,
)

__all__ = ["EngineDiagnostics", "format_counters_table", "op_kind"]


def op_kind(op: Any) -> str:
    """Stable diagnostic label for an op descriptor."""
    cls = type(op)
    if cls is ComputeOp:
        return "compute"
    if cls is ComputeBatchOp:
        return "batch"
    if cls is ComputeRunOp:
        return "compute_run"
    if cls is P2POp:
        return op.kind
    if cls is CollOp:
        return op.name
    if cls is WaitOp:
        return "wait"
    if cls is SplitOp:
        return "split"
    return cls.__name__


class EngineDiagnostics:
    """Counter sink for one or more :meth:`Simulator.run` calls.

    Create one, pass it to the simulator, read :meth:`as_dict` (or the
    canonical :meth:`counters_json`) afterwards.  Reuse across runs
    accumulates; call :meth:`reset` between runs for per-run numbers.
    """

    __slots__ = (
        "op_totals",
        "heap_dispatched",
        "redelivered",
        "early_queued",
        "match_total",
        "match_inline",
        "match_deferred",
        "coll_parks_inline",
        "fast_resume_fifo",
        "batches",
        "batch_kernels",
        "run_segments",
        "run_kernels",
        "heap_pushes",
        "runs",
        "wall_s",
        "dispatch_wall",
        "_clock",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: ops yielded by rank programs, by kind (generator wrapper)
        self.op_totals: Dict[str, int] = {}
        #: ops dispatched at a global heap position, by kind
        self.heap_dispatched: Dict[str, int] = {}
        #: ops that took one extra heap transit to reach their exact
        #: global position (fast path only), by kind
        self.redelivered: Dict[str, int] = {}
        #: p2p records queued before their consumer posted, by kind
        self.early_queued: Dict[str, int] = {}
        #: p2p rendezvous completed, total / inline / via _FinishP2P
        self.match_total = 0
        self.match_inline = 0
        self.match_deferred = 0
        #: non-final collective arrivals parked without a heap trip
        self.coll_parks_inline = 0
        #: member resumes handed straight to the fast loop's FIFO
        self.fast_resume_fifo = 0
        #: ComputeBatchOp executions and the sub-kernels they covered
        self.batches = 0
        self.batch_kernels = 0
        #: ComputeRunOp segments and the kernels they covered
        self.run_segments = 0
        self.run_kernels = 0
        #: global event-heap pushes (includes the per-rank start events)
        self.heap_pushes = 0
        self.runs = 0
        # -- non-deterministic wall-clock attribution (timings block) --
        self.wall_s = 0.0
        self.dispatch_wall: Dict[str, float] = {}
        self._clock = time.perf_counter  # repro: allow[wall-clock] -- observability-only timing block; excluded from fingerprints

    # ------------------------------------------------------------------
    def wrap(self, gen: Iterator[Any]) -> Iterator[Any]:
        """Wrap a rank program's generator to count yielded ops.

        Forwards ``send`` values and the ``StopIteration`` return value
        unchanged, so the engine drives the wrapper exactly as it would
        the bare generator.
        """
        totals = self.op_totals

        def counting() -> Iterator[Any]:
            send = gen.send
            value = None
            while True:
                try:
                    op = send(value)
                except StopIteration as stop:
                    return stop.value
                kind = op_kind(op)
                totals[kind] = totals.get(kind, 0) + 1
                value = yield op

        return counting()

    # -- counting helpers used by the engine ---------------------------
    def count_dispatch(self, op: Any) -> None:
        kind = op_kind(op)
        d = self.heap_dispatched
        d[kind] = d.get(kind, 0) + 1

    def count_redeliver(self, op: Any) -> None:
        kind = op_kind(op)
        d = self.redelivered
        d[kind] = d.get(kind, 0) + 1

    def count_early_queue(self, kind: str) -> None:
        d = self.early_queued
        d[kind] = d.get(kind, 0) + 1

    # ------------------------------------------------------------------
    def inline_handled(self) -> Dict[str, int]:
        """Per-kind ops absorbed without a heap dispatch (derived)."""
        out: Dict[str, int] = {}
        for kind, total in self.op_totals.items():
            out[kind] = total - self.heap_dispatched.get(kind, 0)
        return out

    def as_dict(self) -> Dict[str, Any]:
        """Counters plus derived ratios; see :meth:`counters_json`."""
        inline = self.inline_handled()
        total_ops = sum(self.op_totals.values())
        heap_ops = sum(
            n for kind, n in self.heap_dispatched.items()
            if kind in self.op_totals
        )
        counters: Dict[str, Any] = {
            "op_totals": dict(sorted(self.op_totals.items())),
            "heap_dispatched": dict(sorted(self.heap_dispatched.items())),
            "inline_handled": dict(sorted(inline.items())),
            "redelivered": dict(sorted(self.redelivered.items())),
            "early_queued": dict(sorted(self.early_queued.items())),
            "match_total": self.match_total,
            "match_inline": self.match_inline,
            "match_deferred": self.match_deferred,
            "match_heap": (self.match_total - self.match_inline
                           - self.match_deferred),
            "coll_parks_inline": self.coll_parks_inline,
            "fast_resume_fifo": self.fast_resume_fifo,
            "batches": self.batches,
            "batch_kernels": self.batch_kernels,
            "run_segments": self.run_segments,
            "run_kernels": self.run_kernels,
            "heap_pushes": self.heap_pushes,
            "runs": self.runs,
            "total_ops": total_ops,
            "total_heap_ops": heap_ops,
            "total_inline_ops": total_ops - heap_ops,
        }
        timings: Dict[str, Any] = {
            "wall_s": self.wall_s,
            "dispatch_wall_s": dict(sorted(self.dispatch_wall.items())),
        }
        return {"counters": counters, "timings": timings}

    def counters_json(self) -> str:
        """Canonical (byte-stable) JSON of the deterministic counters."""
        return json.dumps(self.as_dict()["counters"], sort_keys=True,
                          separators=(",", ":"))

    # ------------------------------------------------------------------
    def format_table(self) -> str:
        """Human-readable engagement table for CLI output."""
        return format_counters_table(self.as_dict()["counters"])


def format_counters_table(d: Dict[str, Any]) -> str:
    """Render a counters block (``as_dict()["counters"]``, possibly
    round-tripped through JSON) as the CLI engagement table."""
    lines = ["  kind             total     heap   inline  redeliv"]
    kinds: List[Tuple[str, int]] = sorted(d["op_totals"].items())
    for kind, total in kinds:
        heap = d["heap_dispatched"].get(kind, 0)
        lines.append(
            f"  {kind:<14} {total:>7} {heap:>8} "
            f"{total - heap:>8} {d['redelivered'].get(kind, 0):>8}"
        )
    t, h = d["total_ops"], d["total_heap_ops"]
    pct = 100.0 * (t - h) / t if t else 0.0
    lines.append(
        f"  inline engagement {pct:.1f}%  heap pushes {d['heap_pushes']}"
        f"  matches {d['match_total']}"
        f" (inline {d['match_inline']}, deferred {d['match_deferred']},"
        f" heap {d['match_heap']})"
    )
    if d["batches"]:
        lines.append(
            f"  batcher fill: {d['batch_kernels']} kernels in "
            f"{d['batches']} batches "
            f"({d['batch_kernels'] / d['batches']:.1f}/batch)"
        )
    if d["run_segments"]:
        lines.append(
            f"  columnar runs: {d['run_kernels']} kernels in "
            f"{d['run_segments']} segments "
            f"({d['run_kernels'] / d['run_segments']:.1f}/segment)"
        )
    return "\n".join(lines)
