"""Autotuning evaluation metrics."""

import math

import pytest

from repro.autotune.metrics import (
    ERROR_FLOOR,
    coefficient_of_variation,
    distribution_summary,
    log2_error,
    mean_log2_error,
    p50,
    p99,
    percentile,
    relative_error,
    selection_quality,
    speedup,
)


class TestRelativeError:
    def test_basic(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)

    def test_symmetric_sign(self):
        assert relative_error(0.9, 1.0) == pytest.approx(0.1)

    def test_zero_truth_zero_pred(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_zero_truth_nonzero_pred(self):
        assert relative_error(1.0, 0.0) == math.inf


class TestLogErrors:
    def test_log2(self):
        assert log2_error(0.25) == -2.0

    def test_floor_applied(self):
        assert log2_error(0.0) == math.log2(ERROR_FLOOR)
        assert log2_error(1e-30) == math.log2(ERROR_FLOOR)

    def test_mean(self):
        assert mean_log2_error([0.25, 0.0625]) == pytest.approx(-3.0)

    def test_mean_empty(self):
        assert mean_log2_error([]) == math.log2(ERROR_FLOOR)


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_zero_tuned_raises(self):
        # a zero denominator means the measurement is broken; an
        # infinite ratio would silently misrepresent it
        with pytest.raises(ValueError, match="tuned_time"):
            speedup(10.0, 0.0)

    def test_negative_tuned_raises(self):
        with pytest.raises(ValueError, match="tuned_time"):
            speedup(10.0, -1.0)


class TestDistributionSummaries:
    def test_percentile_interpolates(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert percentile(xs, 0.0) == 1.0
        assert percentile(xs, 100.0) == 4.0
        assert percentile(xs, 50.0) == pytest.approx(2.5)

    def test_percentile_matches_numpy(self):
        np = pytest.importorskip("numpy")
        xs = [0.3, 1.7, 0.9, 4.2, 2.8, 0.1, 3.3]
        for q in (0.0, 25.0, 50.0, 90.0, 99.0, 100.0):
            assert percentile(xs, q) == pytest.approx(
                float(np.percentile(xs, q)), rel=1e-12)

    def test_percentile_order_independent(self):
        assert p50([3.0, 1.0, 2.0]) == p50([1.0, 2.0, 3.0]) == 2.0

    def test_percentile_validates(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_p99_tracks_tail(self):
        xs = [1.0] * 99 + [100.0]
        assert p50(xs) == 1.0
        assert p99(xs) > 1.0

    def test_cov(self):
        assert coefficient_of_variation([2.0, 2.0, 2.0]) == 0.0
        xs = [1.0, 3.0]  # mean 2, population std 1
        assert coefficient_of_variation(xs) == pytest.approx(0.5)

    def test_cov_zero_mean(self):
        assert coefficient_of_variation([-1.0, 1.0]) == 0.0

    def test_summary_fields(self):
        s = distribution_summary([1.0, 2.0, 3.0])
        assert s["p50"] == 2.0
        assert s["mean"] == pytest.approx(2.0)
        assert s["n"] == 3.0
        assert s["p99"] == pytest.approx(percentile([1.0, 2.0, 3.0], 99.0))
        assert s["cov"] == pytest.approx(
            coefficient_of_variation([1.0, 2.0, 3.0]))

    def test_summary_empty_raises(self):
        with pytest.raises(ValueError):
            distribution_summary([])


class TestSelectionQuality:
    def test_perfect_selection(self):
        pred = [3.0, 1.0, 2.0]
        true = [3.1, 0.9, 2.2]
        assert selection_quality(pred, true) == 1.0

    def test_suboptimal_selection(self):
        pred = [1.0, 2.0]   # picks config 0
        true = [2.0, 1.0]   # config 1 was truly best
        assert selection_quality(pred, true) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            selection_quality([1.0], [1.0, 2.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            selection_quality([], [])
