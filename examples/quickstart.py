#!/usr/bin/env python
"""Quickstart: profile an MPI-style program with Critter on the simulator.

Writes a small SPMD program (a stencil-flavored compute/halo-exchange/
allreduce loop), runs it once fully instrumented, then tunes its
execution with selective kernel execution and compares:

* the full execution time,
* the accelerated (selective) execution time,
* Critter's predicted execution time and its error,

then runs a small tolerance sweep through the experiment runner with
two worker processes and a result cache — the warm re-run performs
zero new simulations.

Run:  python examples/quickstart.py
"""

import tempfile

from repro import Critter, Machine, Simulator
from repro.autotune import capital_cholesky_space, tolerance_sweep
from repro.autotune.tuner import default_machine
from repro.kernels.blas import gemm_spec
from repro.runner import make_runner


def stencil_program(comm, steps=40):
    """Each rank: local compute, halo exchange with neighbors, residual."""
    left = (comm.rank - 1) % comm.size
    right = (comm.rank + 1) % comm.size
    for step in range(steps):
        # local work: one blocked matrix product per step
        yield comm.compute(gemm_spec(96, 96, 96))
        # halo exchange (nonblocking sends, blocking receives)
        r1 = yield comm.isend(None, dest=right, tag=2 * step, nbytes=8 * 1024)
        r2 = yield comm.isend(None, dest=left, tag=2 * step + 1, nbytes=8 * 1024)
        yield comm.recv(source=left, tag=2 * step, nbytes=8 * 1024)
        yield comm.recv(source=right, tag=2 * step + 1, nbytes=8 * 1024)
        yield comm.waitall([r1, r2])
        # global residual
        yield comm.allreduce(nbytes=8)


def main() -> None:
    machine = Machine(nprocs=8, seed=42)

    # ---- 1. full execution under the profiler (ground truth) ----------
    full = Critter(policy="never-skip")
    t_full = Simulator(machine, profiler=full).run(stencil_program, run_seed=0).makespan
    report = full.last_report
    print("=== full execution ===")
    print(f"wall time           : {t_full * 1e3:8.3f} ms")
    print(f"critical-path time  : {report.predicted_exec_time * 1e3:8.3f} ms")
    print(f"  computation       : {report.predicted_comp_time * 1e3:8.3f} ms")
    print(f"  communication     : {report.predicted.comm_time * 1e3:8.3f} ms")
    print(f"path synchronizations: {report.predicted.synchs:.0f}")
    print(f"path bytes          : {report.predicted.words:,.0f}")

    # ---- 2. selective execution: five repetitions, online policy ------
    critter = Critter(policy="online", eps=2**-3)
    walls = []
    for rep in range(5):
        res = Simulator(machine, profiler=critter).run(stencil_program,
                                                       run_seed=100 + rep)
        walls.append(res.makespan)
    rep = critter.last_report
    print("\n=== selective execution (online policy, eps = 2^-3) ===")
    print("wall times per rep  :", "  ".join(f"{w * 1e3:.3f}" for w in walls), "ms")
    print(f"kernels skipped     : {rep.skip_fraction:6.1%}")
    print(f"predicted exec time : {rep.predicted_exec_time * 1e3:8.3f} ms")
    err = abs(rep.predicted_exec_time - t_full) / t_full
    print(f"prediction error    : {err:6.2%}")
    print(f"speedup of last rep : {t_full / walls[-1]:6.1f}x")

    # ---- 3. parallel tolerance sweep with a warm result cache ---------
    # The (policy x eps x config) grid is embarrassingly parallel, so
    # the sweep fans out over worker processes; results are
    # bit-identical to serial execution for any job count.
    space = capital_cholesky_space(n=64, c=2, b0=4, nconf=6)
    sweep_machine = default_machine(space, seed=7)
    kw = dict(policies=("conditional", "online"),
              tolerances=[1.0, 2**-2, 2**-4], reps=2, full_reps=2, seed=0)
    print("\n=== parallel tolerance sweep (6 configs, 2 policies, jobs=2) ===")
    with tempfile.TemporaryDirectory() as cache_dir:
        runner = make_runner(jobs=2, cache_dir=cache_dir)
        sweep = tolerance_sweep(space, sweep_machine, runner=runner, **kw)
        print(f"cold run: {runner.executed()} jobs simulated")
        for policy in kw["policies"]:
            ups = sweep.series(policy, "search_speedup")
            print(f"  {policy:12s} search speedup by eps: "
                  + "  ".join(f"{s:.2f}x" for s in ups))
        rerun = make_runner(jobs=2, cache_dir=cache_dir)
        tolerance_sweep(space, sweep_machine, runner=rerun, **kw)
        print(f"warm re-run: {rerun.executed()} jobs simulated, "
              f"{rerun.cache_hits()} served from cache")


if __name__ == "__main__":
    main()
