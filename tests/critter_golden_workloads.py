"""Golden Critter-report workloads: the profiler's bit-identity contract.

The engine goldens (``golden_workloads.py``) pin makespans and rank
times; this module pins what the *profiler* reports — the full
:class:`~repro.critter.core.RunReport` surface (predicted path metrics,
volumetric averages, most-loaded-rank kernel times, executed/skipped
counts) plus every rank's end-of-run path counts (``K~``), all in exact
``float.hex`` form.

The case matrix crosses the selective-execution policies the hot path
serves — ``online`` (path-count propagation), ``eager``
(aggregate-channel statistics), ``apriori`` (offline-seeded counts),
and the ``slack`` path criterion — with the noisy ``knl-fabric`` and
draw-free ``quiet`` presets, over the two synthetic programs that
exercise the whole p2p/collective surface and one real algorithm
configuration.  Statistics persist across the seeds of a case (a fresh
profiler per case, shared across its runs), so later runs actually skip
kernels and the propagation/adoption paths are hot.

``tests/golden/critter_golden.json`` holds values captured *before* the
copy-on-write path-propagation refactor; ``test_critter_golden.py``
replays every case under both schedulers and demands bit-identical
reports.  Regenerate (only on a profiler known to be correct!) with::

    PYTHONPATH=src python tests/critter_golden_workloads.py --write
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from golden_workloads import _small_spaces, _SYNTHETIC_SPACES
from repro.critter import Critter
from repro.sim import Simulator
from repro.sim.presets import make_machine

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "critter_golden.json")

MACHINE_SEED = 13
PRESETS = ("knl-fabric", "quiet")

#: case label -> Critter constructor kwargs.  ``apriori`` is seeded from
#: an offline never-skip run (the paper's extra full execution).
_VARIANTS: Dict[str, Dict[str, Any]] = {
    "online": {"policy": "online"},
    "eager": {"policy": "eager"},
    "apriori": {"policy": "apriori"},
    "slack": {"policy": "online", "path_criterion": "slack"},
}

#: (space name, config index or None) — the synthetic programs cover the
#: p2p/wait/split, collective-dense and pure-p2p rendezvous surfaces;
#: slate_cholesky[1] adds a real panel factorization (lookahead
#: pipelining, excluded kernels)
_PROGRAMS = [("mixed_p2p", None), ("coll_chain", None),
             ("p2p_pipeline", None)]
_ALGO_PROGRAMS = [("slate_cholesky", 1)]


def golden_cases() -> List[Dict[str, Any]]:
    cases: List[Dict[str, Any]] = []
    for preset in PRESETS:
        for space, idx in _PROGRAMS:
            for variant in _VARIANTS:
                cases.append({
                    "id": f"{space}/{preset}/{variant}",
                    "space": space, "config": idx, "preset": preset,
                    "variant": variant, "run_seeds": [0, 1, 2],
                })
        for space, idx in _ALGO_PROGRAMS:
            cases.append({
                "id": f"{space}[{idx}]/{preset}/online",
                "space": space, "config": idx, "preset": preset,
                "variant": "online", "run_seeds": [0, 1, 2],
            })
    return cases


def _sig_key(sig: Any) -> str:
    return f"{sig.kind}/{sig.name}/" + ",".join(str(p) for p in sig.params)


def _path_counts(critter: Critter) -> List[List[Any]]:
    """Per-rank sorted ``[signature key, count]`` pairs of ``K~``."""
    return [
        sorted([[_sig_key(sig), int(c)] for sig, c in dict(table).items()])
        for table in critter.last_path_counts
    ]


def run_case(case: Dict[str, Any], **sim_kwargs: Any) -> Dict[str, Any]:
    """Execute one golden case; extra kwargs are passed to Simulator."""
    if case["space"] in _SYNTHETIC_SPACES:
        space: Any = _SYNTHETIC_SPACES[case["space"]]()
        args: tuple = ()
    else:
        space = _small_spaces()[case["space"]]
        args = space.args_for(space.configs[case["config"]])
    machine, noise = make_machine(case["preset"], space.nprocs,
                                  seed=MACHINE_SEED)
    kwargs = dict(_VARIANTS[case["variant"]])
    critter = Critter(eps=0.25, min_samples=2, exclude=space.exclude,
                      **kwargs)
    if critter.policy.needs_offline_counts:
        pre = Critter(policy="never-skip", exclude=space.exclude)
        Simulator(machine, noise=noise, profiler=pre, **sim_kwargs).run(
            space.program, args=args, run_seed=101)
        critter.seed_path_counts(pre.last_path_counts)
    runs = []
    for seed in case["run_seeds"]:
        sim = Simulator(machine, noise=noise, profiler=critter, **sim_kwargs)
        res = sim.run(space.program, args=args, run_seed=seed)
        rep = critter.last_report
        runs.append({
            "seed": seed,
            "makespan": res.makespan.hex(),
            "predicted": {
                "exec_time": rep.predicted.exec_time.hex(),
                "comp_time": rep.predicted.comp_time.hex(),
                "comm_time": rep.predicted.comm_time.hex(),
                "synchs": rep.predicted.synchs.hex(),
                "words": rep.predicted.words.hex(),
                "flops": rep.predicted.flops.hex(),
            },
            "volumetric": {k: v.hex() for k, v in sorted(rep.volumetric.items())},
            "max_rank_kernel_time": rep.max_rank_kernel_time.hex(),
            "max_rank_comp_time": rep.max_rank_comp_time.hex(),
            "executed": rep.executed_kernels,
            "skipped": rep.skipped_kernels,
            "path_counts": _path_counts(critter),
        })
    return {"id": case["id"], "runs": runs}


def capture(path: str = GOLDEN_PATH) -> None:
    entries = [run_case(c) for c in golden_cases()]
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump({"version": 1, "machine_seed": MACHINE_SEED,
                   "entries": entries}, fh, indent=1)
    print(f"wrote {len(entries)} Critter golden entries to {path}")


def load_golden(path: str = GOLDEN_PATH) -> Dict[str, Any]:
    with open(path) as fh:
        data = json.load(fh)
    if data.get("version") != 1:
        raise ValueError(f"unsupported golden version {data.get('version')!r}")
    return {e["id"]: e for e in data["entries"]}


if __name__ == "__main__":
    import sys

    if "--write" not in sys.argv:
        raise SystemExit("refusing to run without --write "
                         "(this overwrites the golden fixture)")
    capture()
