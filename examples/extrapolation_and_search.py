#!/usr/bin/env python
"""The paper's future-work extensions in action.

1. **Kernel-model extrapolation (Section VIII)** — CANDMC-style
   workloads execute kernels on a gradually shrinking trailing matrix,
   so nearly every kernel signature is distinct and per-signature
   confidence intervals never converge.  Line-fitting each kernel
   *family* against its analytic complexity lets Critter skip sizes it
   has never measured.

2. **Search strategies** — selective execution composes with any
   configuration-space search; successive halving prunes on Critter's
   cheap predictions and re-measures survivors more deeply.

Also shows the per-kernel profile report (what the tool has learned).

Run:  python examples/extrapolation_and_search.py
"""

from repro import Critter, Machine, Simulator
from repro.analysis import format_table
from repro.autotune import (
    ExhaustiveSearch,
    RandomSearch,
    SuccessiveHalving,
    candmc_qr_space,
    default_machine,
    measure_ground_truth,
)
from repro.critter import format_kernel_profile
from repro.kernels.blas import gemm_spec


def shrinking_workload(comm, sizes):
    """A trailing-matrix-style loop: every gemm has a distinct size."""
    for n in sizes:
        yield comm.compute(gemm_spec(n, n, n))
    yield comm.barrier()


def demo_extrapolation() -> None:
    print("== 1. kernel-model extrapolation on a shrinking workload ==")
    # line fitting presumes kernel efficiency varies *smoothly* with
    # input size; model a machine with small per-size efficiency spread
    # (the default 30% spread would — correctly — reject family fits)
    from repro.sim import NoiseModel

    machine = Machine(nprocs=4, seed=11)
    noise = NoiseModel(bias_sigma=0.02, comp_cv=0.05, comm_cv=0.1,
                       run_cv=0.005, machine_seed=11)
    sizes = list(range(128, 16, -4))  # 28 distinct kernel sizes

    full = Critter(policy="never-skip")
    t_full = Simulator(machine, noise=noise, profiler=full).run(
        shrinking_workload, args=(sizes,), run_seed=0).makespan

    rows = []
    for label, extrapolate in (("per-signature CIs", False),
                               ("+ family line fitting", True)):
        cr = Critter(policy="conditional", eps=2**-3, extrapolate=extrapolate,
                     extrapolation_tolerance=0.15)
        wall = None
        for rep in range(3):
            wall = Simulator(machine, noise=noise, profiler=cr).run(
                shrinking_workload, args=(sizes,), run_seed=rep).makespan
        rep_ = cr.last_report
        err = abs(rep_.predicted_exec_time - t_full) / t_full
        rows.append([label, f"{rep_.skip_fraction:.0%}", t_full / wall, f"{err:.2%}"])
    print(format_table(["method", "skipped", "speedup", "pred_error"], rows,
                       width=22))
    print()


def demo_search() -> None:
    print("== 2. search strategies over the CANDMC QR space ==")
    space = candmc_qr_space()
    machine = default_machine(space, seed=3)
    ground = measure_ground_truth(space, machine, full_reps=2, seed=0)
    rows = []
    exh = ExhaustiveSearch(space, machine, eps=2**-3, seed=0,
                           ground_truth=ground).run(reps=3)
    rnd = RandomSearch(space, machine, eps=2**-3, seed=0,
                       ground_truth=ground).run(budget=5, reps=3)
    sh = SuccessiveHalving(space, machine, eps=2**-3, seed=0,
                           ground_truth=ground).run(base_reps=1)
    for r in (exh, rnd, sh):
        rows.append([r.strategy, r.evaluations, r.tuning_time,
                     space.configs[r.chosen].label(),
                     f"{r.selection_quality:.1%}"])
    print(format_table(["strategy", "evals", "cost_s", "chosen", "quality"],
                       rows, width=18))
    print()


def demo_kernel_profile() -> None:
    print("== 3. what Critter learned (per-kernel profile, top 8) ==")
    space = candmc_qr_space()
    machine = default_machine(space, seed=3)
    cr = Critter(policy="online", eps=2**-3)
    for rep in range(3):
        Simulator(machine, profiler=cr).run(
            space.program, args=(space.configs[0],), run_seed=rep)
    print(format_kernel_profile(cr, top=8))


if __name__ == "__main__":
    demo_extrapolation()
    demo_search()
    demo_kernel_profile()
