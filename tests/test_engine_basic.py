"""Engine semantics: compute timing, blocking p2p, virtual clocks."""

import pytest

from repro.kernels.blas import gemm_spec
from repro.sim import DeadlockError, Machine, NoiseModel, Simulator

from conftest import make_quiet_sim


def run_quiet(nprocs, program, **kw):
    return make_quiet_sim(nprocs).run(program, **kw)


class TestComputeTiming:
    def test_single_compute_cost(self):
        m = Machine(nprocs=1, gamma=1e-9)
        sim = Simulator(m, noise=NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0))

        def prog(comm):
            yield comm.compute(gemm_spec(10, 10, 10))  # 2000 flops

        res = sim.run(prog)
        assert res.makespan == pytest.approx(2000 * 1e-9)

    def test_computes_accumulate(self):
        m = Machine(nprocs=1, gamma=1e-9)
        sim = Simulator(m, noise=NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0))

        def prog(comm):
            for _ in range(5):
                yield comm.compute(gemm_spec(10, 10, 10))

        assert sim.run(prog).makespan == pytest.approx(5 * 2000 * 1e-9)

    def test_compute_fn_result_returned(self):
        def prog(comm):
            out = yield comm.compute(gemm_spec(2, 2, 2), fn=lambda a, b: a + b, args=(1, 2))
            return out

        res = run_quiet(1, prog)
        assert res.returns == [3]

    def test_ranks_advance_independently(self):
        def prog(comm):
            for _ in range(comm.rank + 1):
                yield comm.compute(gemm_spec(10, 10, 10))

        res = run_quiet(3, prog)
        t = res.rank_times
        assert t[0] < t[1] < t[2]
        assert res.makespan == t[2]


class TestBlockingP2P:
    def test_payload_delivery(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send({"x": 42}, dest=1, tag=3, nbytes=8)
                return None
            got = yield comm.recv(source=0, tag=3, nbytes=8)
            return got

        res = run_quiet(2, prog)
        assert res.returns[1] == {"x": 42}

    def test_rendezvous_synchronizes(self):
        # rank 1 computes first; rank 0's send completes only at the
        # matched time: both finish together
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(None, dest=1, nbytes=100)
            else:
                yield comm.compute(gemm_spec(50, 50, 50))
                yield comm.recv(source=0, nbytes=100)

        res = run_quiet(2, prog)
        assert res.rank_times[0] == pytest.approx(res.rank_times[1])

    def test_transfer_cost_charged(self):
        m = Machine(nprocs=2, alpha=1e-6, beta=1e-9)
        sim = Simulator(m, noise=NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0))

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(None, dest=1, nbytes=10**6)
            else:
                yield comm.recv(source=0, nbytes=10**6)

        assert sim.run(prog).makespan == pytest.approx(1e-6 + 1e-3)

    def test_tag_discrimination(self):
        # out-of-order receive requires buffered sends (blocking sends
        # rendezvous in this model, as eager-limit-exceeding MPI sends do)
        def prog(comm):
            if comm.rank == 0:
                r1 = yield comm.isend("tag5", dest=1, tag=5, nbytes=8)
                r2 = yield comm.isend("tag9", dest=1, tag=9, nbytes=8)
                yield comm.waitall([r1, r2])
                return None
            b = yield comm.recv(source=0, tag=9, nbytes=8)
            a = yield comm.recv(source=0, tag=5, nbytes=8)
            return (a, b)

        res = run_quiet(2, prog)
        assert res.returns[1] == ("tag5", "tag9")

    def test_fifo_same_tag(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(3):
                    yield comm.send(i, dest=1, tag=0, nbytes=8)
                return None
            got = []
            for _ in range(3):
                got.append((yield comm.recv(source=0, tag=0, nbytes=8)))
            return got

        assert run_quiet(2, prog).returns[1] == [0, 1, 2]

    def test_ring_exchange(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            if comm.rank % 2 == 0:
                yield comm.send(comm.rank, dest=right, nbytes=8)
                got = yield comm.recv(source=left, nbytes=8)
            else:
                got = yield comm.recv(source=left, nbytes=8)
                yield comm.send(comm.rank, dest=right, nbytes=8)
            return got

        res = run_quiet(4, prog)
        assert res.returns == [3, 0, 1, 2]


class TestDeadlockDetection:
    def test_unmatched_recv_deadlocks(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.recv(source=1, tag=0, nbytes=8)

        with pytest.raises(DeadlockError) as exc:
            run_quiet(2, prog)
        assert "rank 0" in str(exc.value)

    def test_collective_mismatch_detected(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.bcast(None, root=0, nbytes=8)
            else:
                yield comm.barrier()

        with pytest.raises(RuntimeError, match="mismatch"):
            run_quiet(2, prog)

    def test_cyclic_sends_deadlock(self):
        def prog(comm):
            peer = 1 - comm.rank
            yield comm.recv(source=peer, nbytes=8)
            yield comm.send(None, dest=peer, nbytes=8)

        with pytest.raises(DeadlockError):
            run_quiet(2, prog)


class TestDeterminism:
    def _prog(self, comm):
        yield comm.compute(gemm_spec(16, 16, 16))
        yield comm.allreduce(nbytes=64)
        if comm.rank == 0:
            yield comm.send(None, dest=1, nbytes=32)
        elif comm.rank == 1:
            yield comm.recv(source=0, nbytes=32)

    def test_same_seed_identical(self):
        m = Machine(nprocs=4, seed=3)
        r1 = Simulator(m).run(self._prog, run_seed=11)
        r2 = Simulator(m).run(self._prog, run_seed=11)
        assert r1.makespan == r2.makespan
        assert r1.rank_times == r2.rank_times

    def test_different_run_seed_differs(self):
        m = Machine(nprocs=4, seed=3)
        r1 = Simulator(m).run(self._prog, run_seed=11)
        r2 = Simulator(m).run(self._prog, run_seed=12)
        assert r1.makespan != r2.makespan

    def test_different_machine_seed_differs(self):
        r1 = Simulator(Machine(nprocs=4, seed=1)).run(self._prog, run_seed=5)
        r2 = Simulator(Machine(nprocs=4, seed=2)).run(self._prog, run_seed=5)
        assert r1.makespan != r2.makespan
