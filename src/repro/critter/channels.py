"""Aggregate communication channels (Section III.B, Fig. 2 lines 0-26).

A *channel* describes a communicator by the arithmetic structure of its
world-rank set: an offset plus a list of ``(stride, size)`` dimensions,
i.e. the rank set ``{offset + sum_i k_i * stride_i : 0 <= k_i < size_i}``.
Communicators carved out of cartesian processor grids (rows, columns,
fibers, slices) are exactly the channels with such a representation.

Critter propagates kernel statistics along channels and *composes* them:
two channels that intersect in exactly one rank and whose cartesian sum
reproduces a full channel combine into an **aggregate** spanning both
(e.g. a row channel and a column channel of a 2D grid combine into the
whole grid).  Once a kernel's statistics have been propagated along a
set of channels whose aggregate is *maximal* (covers the world
communicator), every processor agrees the kernel is predictable and its
execution can be switched off globally — the basis of the eager
propagation policy.

Channel ids are hashed "purely from (stride, size)" (Fig. 2 line 5) so
congruent channels at different offsets share an id, which is what lets
statistics gathered on different grid slices be recognized as covering
the same dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.kernels.signature import stable_hash

__all__ = ["Channel", "infer_channel", "combine_channels", "AggregateRegistry"]


@dataclass(frozen=True, slots=True)
class Channel:
    """A communicator's cartesian description.

    ``dims`` is a tuple of ``(stride, size)`` pairs sorted by stride;
    a single-rank channel has ``dims == ()``.
    """

    offset: int
    dims: Tuple[Tuple[int, int], ...]

    @property
    def size(self) -> int:
        n = 1
        for _, s in self.dims:
            n *= s
        return n

    @property
    def hash_id(self) -> int:
        """Identity from (stride, size) only — offsets excluded (Fig. 2)."""
        return stable_hash(self.dims)

    def ranks(self) -> FrozenSet[int]:
        """Materialize the world-rank set this channel describes."""
        out = [self.offset]
        for stride, size in self.dims:
            out = [r + k * stride for r in out for k in range(size)]
        return frozenset(out)

    def contains(self, other: "Channel") -> bool:
        """Set containment of the described rank sets."""
        return other.ranks() <= self.ranks()

    def is_maximal(self, world_size: int) -> bool:
        return self.size == world_size

    def __str__(self) -> str:
        d = "x".join(f"(s{st},n{sz})" for st, sz in self.dims) or "(singleton)"
        return f"Channel(off={self.offset}, {d})"


def _factor_offsets(offsets: Sequence[int]) -> Optional[List[Tuple[int, int]]]:
    """Factor a sorted, zero-based rank-offset list into (stride, size) dims.

    Returns None when the set has no cartesian (mixed-radix) structure.
    """
    if len(offsets) <= 1:
        return []
    stride = offsets[1]
    if stride <= 0:
        return None
    k = 1
    while k < len(offsets) and offsets[k] == stride * k:
        k += 1
    if len(offsets) % k != 0:
        return None
    outer: List[int] = []
    for j in range(len(offsets) // k):
        base = offsets[j * k]
        block = offsets[j * k : (j + 1) * k]
        if any(block[i] != base + stride * i for i in range(k)):
            return None
        outer.append(base)
    rest = _factor_offsets(outer)
    if rest is None:
        return None
    return [(stride, k)] + rest


def infer_channel(world_ranks: Sequence[int]) -> Optional[Channel]:
    """Infer the channel of a communicator from its world-rank set.

    This is what Critter's ``MPI_Comm_split`` interception computes from
    the allgathered ranks (Fig. 2 lines 10-15).  Returns None for rank
    sets without cartesian structure.
    """
    rs = sorted(set(int(r) for r in world_ranks))
    if not rs:
        return None
    offsets = [r - rs[0] for r in rs]
    dims = _factor_offsets(offsets)
    if dims is None:
        return None
    return Channel(rs[0], tuple(sorted(dims)))


def combine_channels(a: Channel, b: Channel) -> Optional[Channel]:
    """Cartesian composition of two channels (Fig. 2 lines 17-25).

    Succeeds when the channels intersect in exactly one rank and their
    sum set ``{ra + rb - x0}`` is itself a channel of size
    ``|a| * |b|`` — e.g. a row and a column of a processor grid combine
    into the plane through their crossing point.
    """
    ra, rb = a.ranks(), b.ranks()
    common = ra & rb
    if len(common) != 1:
        return None
    x0 = next(iter(common))
    combined = {p + q - x0 for p in ra for q in rb}
    if len(combined) != a.size * b.size:
        return None
    return infer_channel(sorted(combined))


class AggregateRegistry:
    """Registry of channels and recursively-built aggregates.

    Mirrors Fig. 2: ``MPI_Init`` registers the (maximal) world channel;
    every ``MPI_Comm_split`` registers the new sub-communicator's
    channel and then tries to combine it with known aggregates, XOR-ing
    hash ids for the new aggregate's identity.
    """

    def __init__(self, world_size: int) -> None:
        self.world_size = world_size
        self.world = Channel(0, ((1, world_size),))
        #: hash id -> channel, including composed aggregates
        self.aggregates: Dict[int, Channel] = {self.world.hash_id: self.world}
        #: channels observed directly as communicators (gid -> channel)
        self.by_group: Dict[int, Optional[Channel]] = {}

    def register_world(self, gid: int) -> Channel:
        self.by_group[gid] = self.world
        return self.world

    def register_split(self, gid: int, world_ranks: Sequence[int]) -> Optional[Channel]:
        """Register a sub-communicator; recursively build aggregates."""
        ch = infer_channel(world_ranks)
        self.by_group[gid] = ch
        if ch is None:
            return None
        self.aggregates.setdefault(ch.hash_id, ch)
        # recursively combine with known aggregates (Fig. 2 lines 17-25)
        for agg in list(self.aggregates.values()):
            if agg.contains(ch) or ch.contains(agg):
                continue
            new = combine_channels(agg, ch)
            if new is not None:
                self.aggregates.setdefault(agg.hash_id ^ ch.hash_id, new)
        return ch

    def channel_of(self, gid: int) -> Optional[Channel]:
        return self.by_group.get(gid)

    def extend_coverage(
        self, coverage: Optional[Channel], ch: Optional[Channel]
    ) -> Optional[Channel]:
        """Grow a kernel's statistics-propagation coverage by a channel.

        Channels are normalized to offset 0 before combining — identity
        is (stride, size) only, so statistics propagated along *any* row
        of a grid count as covering the row dimension (Fig. 2 line 5).
        Returns the new coverage (possibly unchanged); used by eager
        propagation to decide when statistics have reached everyone.
        """
        if ch is None:
            return coverage
        norm = Channel(0, ch.dims)
        if coverage is None:
            return norm
        cov = Channel(0, coverage.dims)
        if cov.contains(norm):
            return cov
        combined = combine_channels(cov, norm)
        return combined if combined is not None else cov

    def covers_world(self, coverage: Optional[Channel]) -> bool:
        return coverage is not None and coverage.size >= self.world_size
