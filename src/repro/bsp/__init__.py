"""BSP cost accounting: analytic models backing the Fig. 3 trade-offs."""

from repro.bsp.costs import BSPCost, capital_cholesky_bsp, candmc_qr_bsp

__all__ = ["BSPCost", "capital_cholesky_bsp", "candmc_qr_bsp"]
