"""Deterministic fault injection for runner jobs.

The fault-tolerance machinery in :mod:`repro.runner.resilience` needs a
test substrate that can make worker processes *actually* raise, hang, or
die — on chosen jobs, on chosen attempts, reproducibly.  A
:class:`FaultPlan` provides exactly that: :func:`~repro.runner.jobs
.execute_request` consults the active plan at job entry and injects the
planned fault *before* any simulation state exists, so a retried attempt
re-runs the deterministic job from scratch and surviving results stay
bit-identical to a fault-free run (the invariant the CI fuzz leg pins).

Plans reach worker processes through the environment —
``REPRO_FAULT_PLAN`` (a JSON plan) and ``REPRO_FAULT_RATE`` (shorthand
for a rate-only plan) are inherited by pool workers — or in-process via
:func:`install` (serial executors, tests).

Fault selection is content-addressed and seeded: a plan decides from
``(plan seed, request key, attempt)`` alone, never from wall clock or
process state, so the same plan replayed over the same requests faults
the same (job, attempt) pairs on every machine.

A second plan family targets *storage* instead of workers:
:class:`FSFaultPlan` (env knob ``REPRO_FS_FAULT_PLAN``) injects torn
writes, ``ENOSPC``, ``EACCES``, and read-time bit-flips at the durable
result store's I/O seams (:mod:`repro.runner.store`).  The selection
contract is identical — decisions hash ``(seed, operation, entry
key)`` — so a seeded storage-fault fuzz run replays the same disk
failures everywhere, and the CI leg can pin that every sweep completes
with survivor results bit-identical to a fault-free serial run.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, Optional, Sequence

from repro.runner.jobs import RunRequest, request_key
from repro.runner.seeds import derive_unit

__all__ = [
    "ACTIONS",
    "ENV_PLAN",
    "ENV_RATE",
    "ENV_FS_PLAN",
    "FS_READ_ACTIONS",
    "FS_WRITE_ACTIONS",
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "FSFaultPlan",
    "install",
    "active_plan",
    "install_fs",
    "active_fs_plan",
]

#: what an injected fault does to the worker: raise an exception, sleep
#: (a hung job, for timeout testing), or kill the process outright (a
#: segfault stand-in that breaks the pool)
ACTIONS = ("raise", "hang", "exit")

ENV_PLAN = "REPRO_FAULT_PLAN"
ENV_RATE = "REPRO_FAULT_RATE"

#: exit status used by ``exit`` faults — distinctive in worker-death logs
EXIT_STATUS = 87


class InjectedFault(RuntimeError):
    """The exception a ``raise`` fault throws inside the worker."""


#: uniform [0, 1) value derived deterministically from its parts —
#: the shared sha256 derivation (blob format unchanged, so plans
#: predating the helper inject the identical faults)
_hash01 = derive_unit


@dataclass(slots=True)
class FaultSpec:
    """One targeted fault: which jobs, which attempts, what happens."""

    action: str
    #: restrict to one job kind (``ground-truth``/``tune-config``/...)
    kind: Optional[str] = None
    #: restrict to one configuration index
    config_index: Optional[int] = None
    #: fault only attempts < this value; ``None`` faults every attempt
    #: (a poison job), ``1`` faults the first attempt only (transient)
    attempts: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; "
                             f"expected one of {ACTIONS}")

    def matches(self, req: RunRequest, attempt: int) -> bool:
        if self.kind is not None and req.kind != self.kind:
            return False
        if (self.config_index is not None
                and req.config_index != self.config_index):
            return False
        if self.attempts is not None and attempt >= self.attempts:
            return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        return {"action": self.action, "kind": self.kind,
                "config_index": self.config_index, "attempts": self.attempts}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultSpec":
        return cls(action=d["action"], kind=d.get("kind"),
                   config_index=d.get("config_index"),
                   attempts=d.get("attempts"))


class FaultPlan:
    """A seeded, deterministic description of which jobs fault and how.

    Two layers compose:

    * ``specs`` — explicit targeted faults, first match wins;
    * ``rate``  — background random faults: each (job, attempt) pair
      faults with probability ``rate``, decided by hashing
      ``(seed, request key, attempt)``; the action mix is 60% raise,
      30% exit, 10% hang.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), rate: float = 0.0,
                 seed: int = 0, hang_seconds: float = 30.0) -> None:
        self.specs = list(specs)
        self.rate = float(rate)
        self.seed = int(seed)
        self.hang_seconds = float(hang_seconds)
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")

    # ------------------------------------------------------------------
    def action_for(self, req: RunRequest, attempt: int) -> Optional[str]:
        """The fault this (job, attempt) pair draws, or None."""
        for spec in self.specs:
            if spec.matches(req, attempt):
                return spec.action
        if self.rate > 0.0:
            key = request_key(req)
            if _hash01("fault", self.seed, key, attempt) < self.rate:
                v = _hash01("action", self.seed, key, attempt)
                if v < 0.6:
                    return "raise"
                if v < 0.9:
                    return "exit"
                return "hang"
        return None

    def apply(self, req: RunRequest, attempt: int) -> None:
        """Inject the planned fault, if any (worker-side entry point)."""
        action = self.action_for(req, attempt)
        if action is None:
            return
        if action == "hang":
            # a hung job: sleeps through the runner's timeout window,
            # then proceeds normally (a plain slow job if timeouts are off)
            time.sleep(self.hang_seconds)
            return
        if action == "exit":
            os._exit(EXIT_STATUS)
        raise InjectedFault(
            f"injected fault (kind={req.kind} config={req.config_index} "
            f"attempt={attempt})")

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "specs": [s.to_dict() for s in self.specs],
            "rate": self.rate,
            "seed": self.seed,
            "hang_seconds": self.hang_seconds,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        d = json.loads(blob)
        return cls(
            specs=[FaultSpec.from_dict(s) for s in d.get("specs", ())],
            rate=d.get("rate", 0.0),
            seed=d.get("seed", 0),
            hang_seconds=d.get("hang_seconds", 30.0),
        )

    def __repr__(self) -> str:
        return (f"FaultPlan(specs={len(self.specs)}, rate={self.rate:g}, "
                f"seed={self.seed})")


# ----------------------------------------------------------------------
# plan activation: in-process install, or the environment (pool workers
# inherit the parent's environment, so an env plan reaches every worker)
# ----------------------------------------------------------------------
_installed: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> None:
    """Activate ``plan`` in this process (None deactivates)."""
    global _installed
    _installed = plan


@lru_cache(maxsize=8)
def _plan_from_env(plan_json: Optional[str],
                   rate_str: Optional[str]) -> Optional[FaultPlan]:
    if plan_json is None and rate_str is None:
        return None
    plan = FaultPlan.from_json(plan_json) if plan_json else FaultPlan()
    if rate_str:
        plan.rate = float(rate_str)
    return plan


def active_plan() -> Optional[FaultPlan]:
    """The plan this process injects from, or None (the normal case)."""
    if _installed is not None:
        return _installed
    return _plan_from_env(os.environ.get(ENV_PLAN), os.environ.get(ENV_RATE))


# ----------------------------------------------------------------------
# storage fault injection: the durable result store's I/O seams
# ----------------------------------------------------------------------
ENV_FS_PLAN = "REPRO_FS_FAULT_PLAN"

#: what can go wrong reading an entry: a bit-flip in the returned bytes
#: (silent media corruption — the checksum layer must catch it) or a
#: permission failure (lost mount, dropped ACL)
FS_READ_ACTIONS = ("bitflip", "eacces")

#: what can go wrong writing an entry: a torn write (only a prefix of
#: the payload reaches the file, then the publish "succeeds" — the
#: power-loss-without-fsync scenario), a full disk, or a permission loss
FS_WRITE_ACTIONS = ("torn", "enospc", "eacces")


class FSFaultPlan:
    """A seeded, deterministic description of storage failures.

    Unlike :class:`FaultPlan` (which faults *jobs*), this plan faults
    the result store's reads and writes.  Decisions hash
    ``(seed, operation, entry key)`` alone: the same plan over the same
    keys tears, fills, or flips identically on every machine, which is
    what lets the storage-fault fuzz leg assert bit-identical survivor
    results.  ``actions`` optionally restricts the background draw to a
    subset (e.g. ``("enospc",)`` for a disk-full-only scenario).
    """

    def __init__(self, rate: float = 0.0, seed: int = 0,
                 actions: Optional[Sequence[str]] = None) -> None:
        self.rate = float(rate)
        self.seed = int(seed)
        self.actions = tuple(actions) if actions is not None else None
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if self.actions is not None:
            known = set(FS_READ_ACTIONS) | set(FS_WRITE_ACTIONS)
            unknown = sorted(set(self.actions) - known)
            if unknown:
                raise ValueError(f"unknown fs fault action(s) {unknown}; "
                                 f"expected a subset of {sorted(known)}")

    # ------------------------------------------------------------------
    def action_for(self, op: str, key: str) -> Optional[str]:
        """The fault this (operation, entry) pair draws, or None."""
        if op not in ("read", "write"):
            raise ValueError(f"unknown fs operation {op!r}")
        if self.rate <= 0.0:
            return None
        if _hash01("fs-fault", self.seed, op, key) >= self.rate:
            return None
        pool = FS_READ_ACTIONS if op == "read" else FS_WRITE_ACTIONS
        if self.actions is not None:
            pool = tuple(a for a in pool if a in self.actions)
        if not pool:
            return None
        v = _hash01("fs-action", self.seed, op, key)
        return pool[int(v * len(pool))]

    def torn_length(self, key: str, length: int) -> int:
        """How many bytes of a torn write actually reach the file."""
        if length <= 1:
            return 0
        # strictly shorter than the payload: int(v * length) < length
        return int(_hash01("fs-torn", self.seed, key) * length)

    def flip_bit(self, key: str, data: bytes) -> bytes:
        """Return ``data`` with one deterministically-chosen bit flipped."""
        if not data:
            return data
        bit = int(_hash01("fs-bit", self.seed, key) * len(data) * 8)
        buf = bytearray(data)
        buf[bit // 8] ^= 1 << (bit % 8)
        return bytes(buf)

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "rate": self.rate,
            "seed": self.seed,
            "actions": list(self.actions) if self.actions is not None else None,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> "FSFaultPlan":
        d = json.loads(blob)
        return cls(rate=d.get("rate", 0.0), seed=d.get("seed", 0),
                   actions=d.get("actions"))

    def __repr__(self) -> str:
        only = f", actions={self.actions!r}" if self.actions else ""
        return f"FSFaultPlan(rate={self.rate:g}, seed={self.seed}{only})"


_fs_installed: Optional[FSFaultPlan] = None


def install_fs(plan: Optional[FSFaultPlan]) -> None:
    """Activate a storage fault plan in this process (None deactivates)."""
    global _fs_installed
    _fs_installed = plan


@lru_cache(maxsize=8)
def _fs_plan_from_env(plan_json: Optional[str]) -> Optional[FSFaultPlan]:
    if plan_json is None:
        return None
    return FSFaultPlan.from_json(plan_json)


def active_fs_plan() -> Optional[FSFaultPlan]:
    """The storage fault plan in effect, or None (the normal case)."""
    if _fs_installed is not None:
        return _fs_installed
    return _fs_plan_from_env(os.environ.get(ENV_FS_PLAN))
