"""Exhaustive autotuning driver (Section VI protocol).

For every configuration in a space the tuner performs:

1. **Ground truth** — ``full_reps`` full executions (never-skip
   Critter); their mean makespan is the configuration's true time and
   their critical-path metrics the truth for computation-time
   prediction.  These are *not* charged to the search (the paper
   measures them "directly prior to the approximated one" purely for
   error evaluation).
2. **Offline pass** — for the apriori policy only: one extra full
   execution whose critical-path kernel counts seed the confidence
   scaling; its wall time *is* charged to the search (this is why
   apriori shows no net speedup in Fig. 4a).
3. **Selective executions** — ``reps`` runs under the chosen policy and
   tolerance, statistics persisting across the reps; their total wall
   time is the configuration's tuning cost and the last run's pathset
   provides the predicted execution/computation time.

Statistics reset between configurations for every policy except eager
propagation, which deliberately reuses kernel models across
configurations (Section VI.B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.autotune.configspace import ConfigSpace
from repro.autotune.metrics import (
    mean_log2_error,
    relative_error,
    selection_quality,
    speedup,
)
from repro.critter.core import Critter
from repro.critter.pathset import PathMetrics
from repro.critter.policies import make_policy
from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.sim.noise import NoiseModel

__all__ = ["GroundTruth", "ConfigOutcome", "TuningResult", "ExhaustiveTuner",
           "measure_ground_truth", "default_machine"]


def default_machine(space: ConfigSpace, seed: int = 0) -> Machine:
    return Machine(nprocs=space.nprocs, seed=seed)


@dataclass(slots=True)
class GroundTruth:
    """Full-execution reference for one configuration."""

    times: List[float]
    path: PathMetrics
    max_rank_comp_time: float
    max_rank_kernel_time: float

    @property
    def mean_time(self) -> float:
        return sum(self.times) / len(self.times)

    @property
    def noise_cv(self) -> float:
        """Observed run-to-run variability (the environment noise level)."""
        m = self.mean_time
        if len(self.times) < 2 or m == 0.0:
            return 0.0
        var = sum((t - m) ** 2 for t in self.times) / (len(self.times) - 1)
        return var**0.5 / m


@dataclass(slots=True)
class ConfigOutcome:
    """Per-configuration result of one tuning pass."""

    index: int
    label: str
    full_time: float
    full_path: PathMetrics
    tuning_time: float          # selective reps (+ offline pass if any)
    offline_time: float
    predicted: PathMetrics
    max_rank_kernel_time: float  # summed over selective reps
    max_rank_comp_time: float
    skip_fraction: float
    exec_error: float = 0.0
    comp_error: float = 0.0

    def finalize(self) -> None:
        self.exec_error = relative_error(self.predicted.exec_time, self.full_time)
        self.comp_error = relative_error(
            self.predicted.comp_time, self.full_path.comp_time
        )


@dataclass(slots=True)
class TuningResult:
    """Outcome of exhaustively tuning a space with one (policy, eps)."""

    space_name: str
    policy: str
    eps: float
    reps: int
    outcomes: List[ConfigOutcome] = field(default_factory=list)

    # -- search cost -----------------------------------------------------
    @property
    def search_time(self) -> float:
        """Exhaustive-search execution time (the y-axis of Figs. 4a/5a)."""
        return sum(o.tuning_time for o in self.outcomes)

    @property
    def full_search_time(self) -> float:
        """Search time had every kernel been executed (the red line)."""
        return sum(o.full_time * self.reps for o in self.outcomes)

    @property
    def search_speedup(self) -> float:
        return speedup(self.full_search_time, self.search_time)

    @property
    def kernel_time(self) -> float:
        """Max-rank selectively-executed kernel wall time (Figs. 4c/5c)."""
        return sum(o.max_rank_kernel_time for o in self.outcomes)

    @property
    def comp_kernel_time(self) -> float:
        return sum(o.max_rank_comp_time for o in self.outcomes)

    # -- prediction error --------------------------------------------------
    @property
    def exec_errors(self) -> List[float]:
        return [o.exec_error for o in self.outcomes]

    @property
    def comp_errors(self) -> List[float]:
        return [o.comp_error for o in self.outcomes]

    @property
    def mean_log2_exec_error(self) -> float:
        return mean_log2_error(self.exec_errors)

    @property
    def mean_log2_comp_error(self) -> float:
        return mean_log2_error(self.comp_errors)

    # -- configuration selection -------------------------------------------
    @property
    def predicted_best(self) -> int:
        return min(range(len(self.outcomes)),
                   key=lambda i: self.outcomes[i].predicted.exec_time)

    @property
    def true_best(self) -> int:
        return min(range(len(self.outcomes)),
                   key=lambda i: self.outcomes[i].full_time)

    @property
    def selection_quality(self) -> float:
        return selection_quality(
            [o.predicted.exec_time for o in self.outcomes],
            [o.full_time for o in self.outcomes],
        )


def _full_critter(space: ConfigSpace) -> Critter:
    return Critter(policy="never-skip", exclude=space.exclude)


def measure_ground_truth(
    space: ConfigSpace,
    machine: Optional[Machine] = None,
    full_reps: int = 3,
    seed: int = 0,
) -> List[GroundTruth]:
    """Full executions of every configuration (shared across sweeps)."""
    machine = machine or default_machine(space, seed)
    truths: List[GroundTruth] = []
    for idx, config in enumerate(space.configs):
        cr = _full_critter(space)
        times = []
        for rep in range(full_reps):
            sim = Simulator(machine, profiler=cr)
            res = sim.run(space.program, args=space.args_for(config),
                          run_seed=_seed_for(seed, idx, rep, full=True))
            times.append(res.makespan)
        rep0 = cr.last_report
        truths.append(GroundTruth(
            times=times,
            path=rep0.predicted,
            max_rank_comp_time=rep0.max_rank_comp_time,
            max_rank_kernel_time=rep0.max_rank_kernel_time,
        ))
    return truths


def _seed_for(base: int, idx: int, rep: int, full: bool = False,
              offline: bool = False) -> int:
    kind = 2 if offline else (1 if full else 0)
    return ((base * 1009 + idx) * 64 + rep) * 4 + kind


class ExhaustiveTuner:
    """Runs the paper's exhaustive-search protocol on one space."""

    def __init__(
        self,
        space: ConfigSpace,
        machine: Optional[Machine] = None,
        policy: str = "online",
        eps: float = 0.05,
        reps: int = 5,
        full_reps: int = 3,
        confidence: float = 0.95,
        min_samples: int = 2,
        seed: int = 0,
        ground_truth: Optional[List[GroundTruth]] = None,
    ) -> None:
        self.space = space
        self.machine = machine or default_machine(space, seed)
        self.policy = make_policy(policy)
        self.eps = float(eps)
        self.reps = int(reps)
        self.full_reps = int(full_reps)
        self.confidence = confidence
        self.min_samples = min_samples
        self.seed = seed
        self._ground = ground_truth

    # ------------------------------------------------------------------
    def run(self) -> TuningResult:
        space = self.space
        if self._ground is None:
            self._ground = measure_ground_truth(
                space, self.machine, self.full_reps, self.seed
            )
        critter = Critter(
            policy=self.policy,
            eps=self.eps,
            confidence=self.confidence,
            min_samples=self.min_samples,
            exclude=space.exclude,
        )
        result = TuningResult(
            space_name=space.name, policy=self.policy.name,
            eps=self.eps, reps=self.reps,
        )
        for idx, config in enumerate(space.configs):
            if self.policy.resets_between_configs:
                critter.reset_statistics()
            offline_time = 0.0
            if self.policy.needs_offline_counts:
                pre = _full_critter(space)
                res = Simulator(self.machine, profiler=pre).run(
                    space.program, args=space.args_for(config),
                    run_seed=_seed_for(self.seed, idx, 0, offline=True),
                )
                offline_time = res.makespan
                critter.seed_path_counts(pre.last_path_counts)
            tuning_time = offline_time
            kernel_time = 0.0
            comp_time = 0.0
            for rep in range(self.reps):
                res = Simulator(self.machine, profiler=critter).run(
                    space.program, args=space.args_for(config),
                    run_seed=_seed_for(self.seed, idx, rep),
                )
                tuning_time += res.makespan
                kernel_time += critter.last_report.max_rank_kernel_time
                comp_time += critter.last_report.max_rank_comp_time
            truth = self._ground[idx]
            outcome = ConfigOutcome(
                index=idx,
                label=config.label(),
                full_time=truth.mean_time,
                full_path=truth.path,
                tuning_time=tuning_time,
                offline_time=offline_time,
                predicted=critter.last_report.predicted,
                max_rank_kernel_time=kernel_time,
                max_rank_comp_time=comp_time,
                skip_fraction=critter.last_report.skip_fraction,
            )
            outcome.finalize()
            result.outcomes.append(outcome)
        return result
