"""BLAS level-3 kernel models: cost builders + numeric reference routines.

Each ``*_spec`` function returns a ``(KernelSignature, flops)`` pair
consumed by :meth:`repro.sim.comm.Comm.compute`; the corresponding
numeric function performs the real linear algebra (used in the
algorithms' data-carrying mode and verified against ``numpy`` in the
test suite).

Flop counts follow the standard LAPACK working notes conventions
(leading-order terms, real double precision).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg as sla

from repro.kernels.roofline import register_kernel_model
from repro.kernels.signature import KernelSignature, comp_signature

__all__ = [
    "gemm_spec",
    "syrk_spec",
    "trsm_spec",
    "trmm_spec",
    "gemm",
    "syrk",
    "trsm",
    "trmm",
]

Spec = Tuple[KernelSignature, float]


# ----------------------------------------------------------------------
# cost builders
# ----------------------------------------------------------------------
def gemm_spec(m: int, n: int, k: int) -> Spec:
    """General matrix multiply C(m,n) += A(m,k) B(k,n): 2mnk flops."""
    return comp_signature("gemm", m, n, k), 2.0 * m * n * k


def syrk_spec(n: int, k: int) -> Spec:
    """Symmetric rank-k update C(n,n) += A(n,k) A(n,k)^T: n(n+1)k flops."""
    return comp_signature("syrk", n, k), float(n) * (n + 1) * k


def trsm_spec(m: int, n: int) -> Spec:
    """Triangular solve op(A(m,m)) X = B(m,n): m^2 n flops."""
    return comp_signature("trsm", m, n), float(m) * m * n


def trmm_spec(m: int, n: int) -> Spec:
    """Triangular matrix product A(m,m) B(m,n): m^2 n flops."""
    return comp_signature("trmm", m, n), float(m) * m * n


# ----------------------------------------------------------------------
# roofline memory-traffic models (8-byte reals; outputs read + written)
# ----------------------------------------------------------------------
# gemm streams A(m,k), B(k,n) and updates C(m,n); its k-deep reuse makes
# it the canonical flop-bound kernel.  The triangular kernels touch the
# same panel repeatedly with only m-deep reuse, so their intensity is a
# factor ~k/m worse — under a roofline machine they price bandwidth-bound.
register_kernel_model(
    "gemm",
    lambda m, n, k: 2.0 * m * n * k,
    lambda m, n, k: 8.0 * (m * k + k * n + 2.0 * m * n),
)
register_kernel_model(
    "syrk",
    lambda n, k: float(n) * (n + 1) * k,
    lambda n, k: 8.0 * (n * k + n * n),
)
register_kernel_model(
    "trsm",
    lambda m, n: float(m) * m * n,
    lambda m, n: 4.0 * m * m + 16.0 * m * n,
)
register_kernel_model(
    "trmm",
    lambda m, n: float(m) * m * n,
    lambda m, n: 4.0 * m * m + 16.0 * m * n,
)


# ----------------------------------------------------------------------
# numeric reference implementations
# ----------------------------------------------------------------------
def gemm(a: np.ndarray, b: np.ndarray, c: np.ndarray = None,
         alpha: float = 1.0, beta: float = 0.0,
         transa: bool = False, transb: bool = False) -> np.ndarray:
    """C = alpha * op(A) op(B) + beta * C."""
    aa = a.T if transa else a
    bb = b.T if transb else b
    out = alpha * (aa @ bb)
    if c is not None and beta != 0.0:
        out = out + beta * c
    return out


def syrk(a: np.ndarray, c: np.ndarray = None,
         alpha: float = 1.0, beta: float = 0.0) -> np.ndarray:
    """C = alpha * A A^T + beta * C (full storage; symmetry implicit)."""
    out = alpha * (a @ a.T)
    if c is not None and beta != 0.0:
        out = out + beta * c
    return out


def trsm(a: np.ndarray, b: np.ndarray, *, side: str = "L",
         lower: bool = True, trans: bool = False) -> np.ndarray:
    """Solve op(A) X = B (side='L') or X op(A) = B (side='R')."""
    if side == "L":
        return sla.solve_triangular(a, b, lower=lower, trans="T" if trans else "N")
    # X op(A) = B  <=>  op(A)^T X^T = B^T
    xt = sla.solve_triangular(a, b.T, lower=lower, trans="N" if trans else "T")
    return xt.T


def trmm(a: np.ndarray, b: np.ndarray, *, side: str = "L",
         lower: bool = True, trans: bool = False) -> np.ndarray:
    """B = op(A) B (side='L') or B op(A) (side='R') with A triangular."""
    tri = np.tril(a) if lower else np.triu(a)
    op = tri.T if trans else tri
    return op @ b if side == "L" else b @ op
