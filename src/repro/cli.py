"""Command-line interface: tune, sweep, and profile from a shell.

Examples::

    python -m repro.cli spaces
    python -m repro.cli profile capital_cholesky --config 3
    python -m repro.cli tune capital_cholesky --policy online --eps -4
    python -m repro.cli sweep slate_cholesky --policies conditional,online \
        --exponents 0,-2,-4 --chart

Tolerance exponents follow the paper's axis: ``--eps -4`` means
``eps = 2^-4``.

Experiment commands accept ``--jobs N`` (parallel job execution over N
worker processes) and ``--cache-dir PATH`` (content-addressed result
reuse across invocations); ``--progress`` streams parseable per-job
``key=value`` log lines to stderr.
"""

from __future__ import annotations

import argparse
import dataclasses
import logging
import math
import sys
from typing import List, Optional

from repro.analysis import format_table, sweep_chart
from repro.autotune import (
    SPACES,
    ExhaustiveTuner,
    default_machine,
    tolerance_sweep,
)
from repro.critter import Critter, format_kernel_profile
from repro.critter.policies import POLICY_NAMES
from repro.runner import logging_progress, make_runner
from repro.sim import Simulator

__all__ = ["main", "build_parser"]


def _jobs_arg(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError(f"jobs must be >= 0, got {jobs}")
    return jobs


_SIZE_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3}


def _size_arg(value: str) -> int:
    """Parse a byte size with an optional K/M/G suffix (powers of 1024)."""
    text = value.strip().lower()
    factor = 1
    if text and text[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        size = int(text) * factor
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a byte size like 512, 64K, 16M, or 1G, got {value!r}")
    if size < 1:
        raise argparse.ArgumentTypeError(
            f"size must be >= 1 byte, got {value!r}")
    return size


def _add_runner_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=_jobs_arg, default=None, metavar="N",
                   help="run simulations on N worker processes, 0 = all "
                        "cores (results are identical to serial execution)")
    p.add_argument("--cache-dir", default=None, metavar="PATH",
                   help="content-addressed result cache; re-runs reuse "
                        "every measurement already taken")
    p.add_argument("--cache-max-bytes", type=_size_arg, default=None,
                   metavar="SIZE",
                   help="bound the cache's disk footprint (suffixes K/M/G); "
                        "least-recently-used entries are evicted, but never "
                        "the running sweep's own jobs")
    p.add_argument("--progress", action="store_true",
                   help="log per-job progress (key=value lines) to stderr")
    p.add_argument("--max-configs", type=int, default=None, metavar="K",
                   help="truncate the space to its first K configurations "
                        "(smoke runs)")
    p.add_argument("--retries", type=int, default=None, metavar="N",
                   help="retry failed/timed-out jobs up to N times with "
                        "exponential backoff; after the budget is spent a "
                        "poison job is quarantined as status=failed and the "
                        "rest of the batch completes")
    p.add_argument("--job-timeout", type=float, default=None, metavar="SEC",
                   help="per-job wall-clock timeout; a hung worker is "
                        "killed, its pool rebuilt, and the job retried "
                        "(implies the fault-tolerant executor)")


def _make_runner(args: argparse.Namespace):
    if args.progress:
        logging.basicConfig(level=logging.INFO, stream=sys.stderr,
                            format="%(name)s %(message)s")
    return make_runner(jobs=args.jobs, cache_dir=args.cache_dir,
                       progress=logging_progress() if args.progress else None,
                       retries=args.retries, timeout=args.job_timeout,
                       cache_max_bytes=args.cache_max_bytes)


def _load_space(args: argparse.Namespace):
    space = SPACES[args.space]()
    k = getattr(args, "max_configs", None)
    if k is not None and 0 < k < len(space.configs):
        space = dataclasses.replace(space, configs=space.configs[:k])
    return space


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Critter reproduction: approximate autotuning on a "
                    "simulated distributed-memory machine",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("spaces", help="list the tuning configuration spaces")

    t = sub.add_parser("tune", help="exhaustively tune one space")
    t.add_argument("space", choices=sorted(SPACES))
    t.add_argument("--policy", default="online",
                   choices=POLICY_NAMES, help="selective-execution policy")
    t.add_argument("--eps", type=int, default=-3,
                   help="confidence tolerance exponent: eps = 2^EPS")
    t.add_argument("--reps", type=int, default=3)
    t.add_argument("--full-reps", type=int, default=3)
    t.add_argument("--seed", type=int, default=0)
    _add_runner_options(t)

    s = sub.add_parser("sweep", help="tolerance sweep over one space")
    s.add_argument("space", choices=sorted(SPACES))
    s.add_argument("--policies", default="conditional,online",
                   help="comma-separated policy list")
    s.add_argument("--exponents", default="0,-2,-4,-6,-8",
                   help="comma-separated tolerance exponents")
    s.add_argument("--reps", type=int, default=3)
    s.add_argument("--full-reps", type=int, default=3)
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--metric", default="search_time",
                   help="TuningResult metric to report")
    s.add_argument("--chart", action="store_true",
                   help="also render an ASCII chart")
    s.add_argument("--resume", action="store_true",
                   help="restart a killed sweep from its manifest (requires "
                        "--cache-dir): only incomplete jobs execute, the "
                        "cache replays completed ones at zero cost")
    _add_runner_options(s)

    f = sub.add_parser("profile", help="full critical-path profile of one config")
    f.add_argument("space", choices=sorted(SPACES))
    f.add_argument("--config", type=int, default=0, help="configuration index")
    f.add_argument("--seed", type=int, default=0)
    f.add_argument("--top", type=int, default=12, help="kernels to list")

    b = sub.add_parser(
        "bench-engine",
        help="measure engine throughput (fast path vs naive scheduler)",
    )
    b.add_argument("--quick", action="store_true",
                   help="reduced workload sizes and repetitions (CI smoke)")
    b.add_argument("--out", default="BENCH_engine.json", metavar="PATH",
                   help="JSON output path ('' disables writing)")
    b.add_argument("--check", action="store_true",
                   help="exit nonzero if any measured acceptance row falls "
                        "below its floor (see bench.CHECK_FLOORS)")
    b.add_argument("--workload", action="append", metavar="NAME",
                   help="only run workloads whose name contains NAME "
                        "(repeatable; default: all); unknown names fail "
                        "fast with the valid list")
    b.add_argument("--diag", action="store_true",
                   help="also run each acceptance workload once with "
                        "engine diagnostics counters on: prints the "
                        "engagement tables and records a machine-readable "
                        "'diag' block in the JSON output")
    b.add_argument("--markdown", default=None, metavar="PATH",
                   help="also write a naive-vs-fast-vs-profiled comparison "
                        "table as GitHub markdown (CI job summaries)")
    b.add_argument("--preset", default=None, metavar="NAME",
                   help="run the matrix on one machine preset instead of "
                        "the default sweep; unknown names fail fast with "
                        "the valid list")
    b.add_argument("--regime", default="default", metavar="NAME",
                   help="load regime to run the matrix under (default, "
                        "idle, medium, heavy); unknown names fail fast "
                        "with the valid list")

    c = sub.add_parser(
        "cache",
        help="inspect or clean a result-cache directory",
    )
    c.add_argument("action", choices=("stats", "vacuum"),
                   help="stats: on-disk totals plus lifetime counters; "
                        "vacuum: remove *.corrupt quarantines and orphaned "
                        "*.tmp files")
    c.add_argument("cache_dir", metavar="PATH",
                   help="the --cache-dir used by tune/sweep runs")

    lp = sub.add_parser(
        "lint",
        help="check the determinism contracts (AST rules + scheduler "
             "hook-parity + fingerprint-completeness analyzers)",
    )
    lp.add_argument("--root", default=None, metavar="DIR",
                   help="source tree to lint (default: the directory "
                        "containing the installed repro package)")
    lp.add_argument("--format", default="human", choices=("human", "json"),
                   help="output format; json is byte-stable across runs "
                        "on the same tree")
    lp.add_argument("--rule", action="append", metavar="RULE-ID",
                   help="only run the named rule (repeatable); unknown "
                        "ids are a usage error")
    return p


def _cmd_spaces() -> int:
    rows = []
    for name in sorted(SPACES):
        space = SPACES[name]()
        rows.append([name, len(space.configs), space.nprocs, space.description])
    print(format_table(["space", "configs", "ranks", "description"], rows,
                       width=24))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    space = _load_space(args)
    machine = default_machine(space, seed=args.seed)
    eps = 2.0**args.eps
    print(f"tuning {space.description}: policy={args.policy}, eps=2^{args.eps}, "
          f"reps={args.reps}")
    result = ExhaustiveTuner(
        space, machine, policy=args.policy, eps=eps, reps=args.reps,
        full_reps=args.full_reps, seed=args.seed, runner=_make_runner(args),
    ).run()
    rows = [
        [o.index, o.label, o.full_time, o.predicted.exec_time,
         100.0 * o.exec_error, f"{o.skip_fraction:.0%}"]
        for o in result.outcomes
    ]
    print(format_table(
        ["cfg", "label", "true_s", "pred_s", "err_%", "skipped"], rows,
        width=14,
    ))
    best = result.outcomes[result.predicted_best]
    print(f"\nsearch time {result.search_time:.4f}s "
          f"(speedup {result.search_speedup:.2f}x vs full execution)")
    print(f"chosen: config {best.index} ({best.label}) — "
          f"selection quality {result.selection_quality:.1%}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.runner import ManifestError

    space = _load_space(args)
    machine = default_machine(space, seed=args.seed)
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    tolerances = [2.0**int(e) for e in args.exponents.split(",")]
    if args.resume and not args.cache_dir:
        print("error: --resume requires --cache-dir (the sweep manifest "
              "lives next to the result cache)", file=sys.stderr)
        return 2
    runner = _make_runner(args)
    try:
        sweep = tolerance_sweep(space, machine, policies=policies,
                                tolerances=tolerances, reps=args.reps,
                                full_reps=args.full_reps, seed=args.seed,
                                progress=args.progress, runner=runner,
                                resume=args.resume)
    except ManifestError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.resume:
        print(f"resume: {runner.executed()} executed, "
              f"{runner.cache_hits()} replayed from cache, "
              f"{runner.failed()} failed")
    for point, failures in sorted(sweep.failure_summary().items()):
        for failure in failures:
            print(f"warning: degraded point {point}: {failure}",
                  file=sys.stderr)
    headers = ["policy"] + [f"2^{int(math.log2(e))}" for e in tolerances]
    rows = [[p] + sweep.series(p, args.metric) for p in policies]
    ref = sweep.full_search_time if args.metric == "search_time" else None
    if ref is not None:
        rows.append(["full-exec"] + [ref] * len(tolerances))
    print(format_table(headers, rows,
                       title=f"{space.name}: {args.metric} vs tolerance"))
    if args.chart:
        print()
        print(sweep_chart(sweep, args.metric, reference=ref))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    space = SPACES[args.space]()
    if not 0 <= args.config < len(space.configs):
        print(f"error: config must be in [0, {len(space.configs)})",
              file=sys.stderr)
        return 2
    config = space.configs[args.config]
    machine = default_machine(space, seed=args.seed)
    critter = Critter(policy="never-skip", exclude=space.exclude)
    res = Simulator(machine, profiler=critter).run(
        space.program, args=space.args_for(config), run_seed=args.seed)
    rep = critter.last_report
    print(f"{space.description} — config {args.config} ({config.label()})")
    print(f"execution time      : {res.makespan * 1e3:10.4f} ms")
    print(f"critical-path time  : {rep.predicted_exec_time * 1e3:10.4f} ms")
    print(f"  computation       : {rep.predicted_comp_time * 1e3:10.4f} ms")
    print(f"  communication     : {rep.predicted.comm_time * 1e3:10.4f} ms")
    print(f"path synchronizations: {rep.predicted.synchs:.0f}")
    print(f"path bytes          : {rep.predicted.words:,.0f}")
    print(f"path flops          : {rep.predicted.flops:,.0f}")
    print(f"volumetric avg idle : {rep.volumetric['idle'] * 1e3:10.4f} ms")
    print()
    print(format_kernel_profile(critter, top=args.top))
    return 0


def _cmd_bench_engine(args: argparse.Namespace) -> int:
    from repro.sim.bench import main as bench_main

    return bench_main(quick=args.quick, out=args.out, check=args.check,
                      workloads=args.workload, markdown=args.markdown,
                      diag=args.diag, preset=args.preset, regime=args.regime)


def _cmd_cache(args: argparse.Namespace) -> int:
    import os

    from repro.runner import ShardedResultCache

    if not os.path.isdir(args.cache_dir):
        print(f"error: no cache directory at {args.cache_dir}",
              file=sys.stderr)
        return 2
    cache = ShardedResultCache(args.cache_dir)
    if args.action == "vacuum":
        removed = cache.vacuum()
        print(f"vacuum: removed {removed} file(s) from {args.cache_dir}")
        return 0
    stats = cache.disk_stats()
    width = max(len(k) for k in stats)
    for key, value in stats.items():
        print(f"{key:<{width}} : {value}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lint import render_human, render_json, run_lint

    if args.root is not None:
        root = Path(args.root)
    else:
        # the tree the installed package was imported from: its parent
        # is the ``src`` directory in a checkout, or site-packages
        import repro

        root = Path(repro.__file__).resolve().parent.parent
    try:
        report = run_lint(root, rule_filter=args.rule)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    render = render_json if args.format == "json" else render_human
    print(render(report))
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "spaces":
        return _cmd_spaces()
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "bench-engine":
        return _cmd_bench_engine(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "lint":
        return _cmd_lint(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
