"""Experiment runner: jobs, executors, caching, and progress reporting.

The experiment drivers (:mod:`repro.autotune.tuner`,
:mod:`repro.autotune.sweep`, :mod:`repro.autotune.search`) describe
their measurements as :class:`RunRequest` batches and submit them to a
:class:`Runner`, which layers a content-addressed disk cache and a
serial or process-pool executor underneath.  Results are bit-identical
across executors; see :mod:`repro.runner.jobs` for why.
"""

from repro.runner.cache import ResultCache
from repro.runner.executors import (
    ParallelExecutor,
    Runner,
    SerialExecutor,
    make_runner,
)
from repro.runner.jobs import (
    GROUND_TRUTH,
    TUNE_CONFIG,
    TUNE_PASS,
    ConfigResult,
    GroundTruthResult,
    RunRequest,
    RunResult,
    execute_request,
    request_fingerprint,
    request_key,
    seed_for,
)
from repro.runner.progress import (
    LOGGER_NAME,
    ProgressCallback,
    RunEvent,
    logging_progress,
)

__all__ = [
    "GROUND_TRUTH",
    "TUNE_CONFIG",
    "TUNE_PASS",
    "RunRequest",
    "RunResult",
    "GroundTruthResult",
    "ConfigResult",
    "seed_for",
    "execute_request",
    "request_fingerprint",
    "request_key",
    "ResultCache",
    "SerialExecutor",
    "ParallelExecutor",
    "Runner",
    "make_runner",
    "RunEvent",
    "ProgressCallback",
    "logging_progress",
    "LOGGER_NAME",
]
