"""Machine-dependence of the tuned optimum (the paper's Section I premise).

"Increasing architectural complexity precludes configuration search
strategies from easily narrowing the search space": the configuration
that wins depends on the machine.  This bench tunes the Capital
Cholesky space on three machine presets (KNL-like fabric, latency-heavy
commodity cluster, noisy cloud VMs) and reports which configuration
wins on each, the per-machine autotuning speedup, and Critter's
selection quality — showing that (a) the optimum genuinely moves across
machines and (b) the framework keeps working in very different noise
regimes.
"""

from __future__ import annotations

import pytest

from bench_profiles import results_path
from repro.analysis import format_table, save_csv
from repro.autotune import capital_cholesky_space
from repro.autotune.tuner import GroundTruth, _seed_for
from repro.critter import Critter
from repro.sim import PRESETS, Simulator, make_machine

PRESET_NAMES = ("knl-fabric", "epyc-ethernet", "cloud-vm")


def tune_on_preset(space, preset_name, eps=2**-3, reps=3, full_reps=3, seed=0,
                   machine_seed=0):
    # the machine seed is the *architecture identity*: it fixes the
    # per-signature kernel efficiency profile (cache/vector behaviour
    # the alpha-beta-gamma triple cannot express)
    machine, noise = make_machine(preset_name, nprocs=space.nprocs,
                                  seed=machine_seed)
    # ground truth
    truths = []
    for idx, config in enumerate(space.configs):
        cr = Critter(policy="never-skip")
        times = []
        for rep in range(full_reps):
            sim = Simulator(machine, noise=noise, profiler=cr)
            times.append(sim.run(space.program, args=(config,),
                                 run_seed=_seed_for(seed, idx, rep, full=True)).makespan)
        truths.append(GroundTruth(
            times=times, path=cr.last_report.predicted,
            max_rank_comp_time=cr.last_report.max_rank_comp_time,
            max_rank_kernel_time=cr.last_report.max_rank_kernel_time))
    # selective tuning
    critter = Critter(policy="online", eps=eps)
    tuning = 0.0
    preds = []
    for idx, config in enumerate(space.configs):
        critter.reset_statistics()
        for rep in range(reps):
            sim = Simulator(machine, noise=noise, profiler=critter)
            tuning += sim.run(space.program, args=(config,),
                              run_seed=_seed_for(seed, idx, rep)).makespan
        preds.append(critter.last_report.predicted_exec_time)
    chosen = min(range(len(preds)), key=preds.__getitem__)
    true_best = min(range(len(truths)), key=lambda i: truths[i].mean_time)
    full_time = sum(t.mean_time * reps for t in truths)
    quality = truths[true_best].mean_time / truths[chosen].mean_time
    return {
        "chosen": chosen,
        "true_best": true_best,
        "speedup": full_time / tuning,
        "quality": quality,
        "noise_cv": max(t.noise_cv for t in truths),
    }


def test_multimachine_optimum_moves(benchmark):
    space = capital_cholesky_space(n=256, c=2, b0=4)
    rows = []
    outcomes = {}
    for i, preset in enumerate(PRESET_NAMES):
        out = tune_on_preset(space, preset, machine_seed=37 * i + 5)
        outcomes[preset] = out
        rows.append([
            preset,
            space.configs[out["true_best"]].label(),
            space.configs[out["chosen"]].label(),
            out["speedup"],
            f"{out['quality']:.1%}",
            f"{out['noise_cv']:.1%}",
        ])
    print()
    print(format_table(
        ["machine", "true_best", "critter_chose", "speedup", "quality", "noise"],
        rows,
        title="Machine dependence of the tuned optimum (Capital Cholesky)",
        width=16,
    ))
    save_csv(results_path("multimachine.csv"),
             ["machine", "true_best", "chosen", "speedup", "quality", "noise_cv"],
             rows)
    # the true optimum is machine-dependent (the premise of autotuning)
    bests = {out["true_best"] for out in outcomes.values()}
    assert len(bests) >= 2, "expected different optima across machine presets"
    # Critter stays useful in every noise regime
    for preset, out in outcomes.items():
        assert out["quality"] >= 0.85, preset
        assert out["speedup"] > 1.0, preset

    benchmark.pedantic(
        lambda: tune_on_preset(space, "knl-fabric", reps=1, full_reps=1,
                               machine_seed=5),
        rounds=1, iterations=1,
    )
