"""Selective kernel-execution policies (Section IV.B).

All policies share the same predictability test — the relative
confidence interval of the kernel's sample mean must fall below the
tolerance ``eps`` — and differ only in (a) how the execution count
``alpha`` entering the sqrt(alpha) interval shrinkage is obtained, and
(b) the scope/persistence of execution decisions:

* ``conditional``  — no count scaling; the most conservative online
  policy and the paper's baseline selective method.
* ``local``        — alpha is the rank's *local* execution count; no
  inter-processor count propagation.
* ``online``       — alpha is the kernel's execution count along the
  current sub-critical path, propagated online with the pathset.
* ``apriori``      — alpha comes from an initial offline (full)
  iteration's critical-path counts; online count propagation is
  forgone, but kernel statistics still propagate.
* ``eager``        — no count scaling; a kernel is switched off
  *globally* (every rank, every subsequent configuration) once a single
  processor deems it predictable and its statistics have propagated
  across all processors via aggregate channels.  Statistics persist
  across configurations and no per-iteration forced execution applies.
* ``never-skip``   — execute everything; used for ground-truth full
  executions (and gives Critter's plain critical-path profiling mode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


__all__ = ["Policy", "make_policy", "POLICY_NAMES"]


@dataclass(frozen=True, slots=True)
class Policy:
    """Behavioral traits of a selective-execution policy."""

    name: str
    #: how alpha is derived: "one" | "local" | "path" | "offline"
    count_source: str
    #: execute every kernel at least once per tuning iteration (run)
    force_first_execution: bool = True
    #: statistics reset between configurations of a tuning space
    resets_between_configs: bool = True
    #: global switch-off through aggregate-channel statistic propagation
    eager: bool = False
    #: requires an extra full execution per configuration (offline pass)
    needs_offline_counts: bool = False
    #: never skip anything (ground-truth / plain profiling)
    never_skip: bool = False

    def alpha(
        self,
        local_count: int,
        path_count: int,
        offline_count: Optional[int],
    ) -> int:
        """Execution count used to shrink the confidence interval."""
        if self.count_source == "one":
            return 1
        if self.count_source == "local":
            return max(local_count, 1)
        if self.count_source == "path":
            return max(path_count, 1)
        if self.count_source == "offline":
            return max(offline_count or 1, 1)
        raise ValueError(f"unknown count source {self.count_source!r}")


_POLICIES: Dict[str, Policy] = {
    "conditional": Policy("conditional", "one"),
    "local": Policy("local", "local"),
    "online": Policy("online", "path"),
    "apriori": Policy("apriori", "offline", needs_offline_counts=True),
    "eager": Policy(
        "eager",
        "one",
        force_first_execution=False,
        resets_between_configs=False,
        eager=True,
    ),
    "never-skip": Policy("never-skip", "one", never_skip=True),
}
_POLICIES["full"] = _POLICIES["never-skip"]

POLICY_NAMES: List[str] = ["conditional", "eager", "local", "online", "apriori"]


def make_policy(name: str) -> Policy:
    """Look up a policy by name (also accepts a Policy and passes it through)."""
    if isinstance(name, Policy):
        return name
    try:
        return _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
