"""Text table and CSV rendering."""

import os

import pytest

from repro.analysis.report import fmt, format_table, save_csv


class TestFmt:
    def test_float_normal(self):
        assert fmt(1.2345, width=8, prec=3).strip() == "1.234"

    def test_float_small_uses_sci(self):
        assert "e" in fmt(1.5e-7).strip() or "E" in fmt(1.5e-7).strip()

    def test_zero(self):
        assert fmt(0.0).strip() == "0"

    def test_string_right_justified(self):
        assert fmt("ab", width=5) == "   ab"

    def test_int(self):
        assert fmt(42, width=4) == "  42"


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["a", "b"], [[1, 2.5], [3, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert set(lines[2]) == {"-"}
        assert len(lines) == 5

    def test_no_title(self):
        out = format_table(["x"], [[1]])
        assert out.splitlines()[0].strip() == "x"


class TestSaveCsv:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "sub" / "out.csv")
        save_csv(path, ["a", "b"], [[1, 2.5], ["x", 0.125]])
        assert os.path.exists(path)
        lines = open(path).read().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert lines[2] == "x,0.125"

    def test_float_repr_preserves_precision(self, tmp_path):
        path = str(tmp_path / "x.csv")
        save_csv(path, ["v"], [[0.1 + 0.2]])
        assert open(path).read().splitlines()[1] == repr(0.1 + 0.2)
