"""Property-based engine invariants over randomized SPMD programs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.critter import Critter
from repro.kernels.blas import gemm_spec
from repro.sim import Machine, NoiseModel, Simulator

# a program is a list of phase descriptors executed by all ranks
phase = st.one_of(
    st.tuples(st.just("compute"), st.integers(min_value=4, max_value=32)),
    st.tuples(st.just("allreduce"), st.integers(min_value=8, max_value=4096)),
    st.tuples(st.just("bcast"), st.integers(min_value=8, max_value=4096)),
    st.tuples(st.just("barrier"), st.just(0)),
    st.tuples(st.just("shift"), st.integers(min_value=8, max_value=1024)),
)


def build_program(phases):
    def prog(comm):
        for idx, (kind, arg) in enumerate(phases):
            if kind == "compute":
                yield comm.compute(gemm_spec(arg, arg, arg))
            elif kind == "allreduce":
                yield comm.allreduce(nbytes=arg)
            elif kind == "bcast":
                yield comm.bcast(None, root=0, nbytes=arg)
            elif kind == "barrier":
                yield comm.barrier()
            elif kind == "shift":
                right = (comm.rank + 1) % comm.size
                left = (comm.rank - 1) % comm.size
                req = yield comm.isend(None, dest=right, tag=idx, nbytes=arg)
                yield comm.recv(source=left, tag=idx, nbytes=arg)
                yield comm.wait(req)
        return comm.rank

    return prog


@given(phases=st.lists(phase, min_size=1, max_size=12),
       nprocs=st.sampled_from([2, 4]),
       run_seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=40, deadline=None)
def test_property_determinism(phases, nprocs, run_seed):
    prog = build_program(phases)
    m = Machine(nprocs=nprocs, seed=5)
    r1 = Simulator(m).run(prog, run_seed=run_seed)
    r2 = Simulator(m).run(prog, run_seed=run_seed)
    assert r1.makespan == r2.makespan
    assert r1.rank_times == r2.rank_times


@given(phases=st.lists(phase, min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_property_all_ranks_finish_and_time_monotone(phases):
    prog = build_program(phases)
    m = Machine(nprocs=4, seed=5)
    res = Simulator(m).run(prog, run_seed=1)
    assert res.returns == [0, 1, 2, 3]
    assert all(t >= 0 for t in res.rank_times)
    assert res.makespan == max(res.rank_times)


@given(phases=st.lists(phase, min_size=2, max_size=10),
       run_seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=30, deadline=None)
def test_property_critical_path_bounds(phases, run_seed):
    """Predicted critical path never exceeds the makespan (no overlap in
    these programs) and dominates every rank's volumetric kernel time."""
    prog = build_program(phases)
    m = Machine(nprocs=4, seed=5)
    cr = Critter(policy="never-skip")
    res = Simulator(m, profiler=cr).run(prog, run_seed=run_seed)
    rep = cr.last_report
    assert rep.predicted_exec_time <= res.makespan * (1 + 1e-9)
    for p in cr.profiles:
        assert rep.predicted_exec_time >= p.kernel_wall_time * (1 - 1e-9) - 1e-12


@given(phases=st.lists(phase, min_size=1, max_size=10))
@settings(max_examples=30, deadline=None)
def test_property_skipping_never_slower(phases):
    """With timing noise disabled, a selective rerun is never slower
    than the first (full) run — up to the per-kernel skip overhead,
    which can exceed the cost of degenerate (sub-overhead) kernels.
    (Under noise the statement only holds in expectation: forced first
    executions re-sample kernel times.)"""
    prog = build_program(phases)
    m = Machine(nprocs=2, seed=5)
    quiet = NoiseModel(bias_sigma=0.0, comp_cv=0.0, comm_cv=0.0, run_cv=0.0)
    cr = Critter(policy="conditional", eps=0.9)
    first = Simulator(m, noise=quiet, profiler=cr).run(prog, run_seed=0).makespan
    second = Simulator(m, noise=quiet, profiler=cr).run(prog, run_seed=0).makespan
    slack = m.skip_overhead * len(phases)
    assert second <= first * (1 + 1e-9) + slack


@given(phases=st.lists(phase, min_size=1, max_size=8),
       eps=st.sampled_from([1.0, 0.25, 2**-4, 2**-8]))
@settings(max_examples=30, deadline=None)
def test_property_skip_counts_bounded(phases, eps):
    prog = build_program(phases)
    m = Machine(nprocs=2, seed=7)
    cr = Critter(policy="online", eps=eps)
    for rep in range(2):
        Simulator(m, profiler=cr).run(prog, run_seed=rep)
    rep = cr.last_report
    total = rep.executed_kernels + rep.skipped_kernels
    # every phase contributes >= 1 kernel per rank
    assert total >= len(phases) * 2
    assert 0.0 <= rep.skip_fraction <= 1.0
