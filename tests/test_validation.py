"""Statistical validation: CI coverage and sqrt(alpha) error reduction."""

import pytest

from repro.critter.validation import (
    CoverageResult,
    aggregate_error_reduction,
    ci_coverage,
)
from repro.sim import NoiseModel


class TestCoverage:
    def test_nominal_95_coverage(self):
        res = ci_coverage(
            noise=NoiseModel(comp_cv=0.1, run_cv=0.0),
            confidence=0.95, samples_per_trial=30, trials=1500, seed=1,
        )
        # normal-theory interval on lognormal data with n=30: coverage
        # within a few points of nominal
        assert 0.90 <= res.observed <= 0.985

    def test_higher_confidence_higher_coverage(self):
        kw = dict(noise=NoiseModel(comp_cv=0.1, run_cv=0.0),
                  samples_per_trial=30, trials=1200, seed=2)
        lo = ci_coverage(confidence=0.8, **kw)
        hi = ci_coverage(confidence=0.99, **kw)
        assert hi.observed > lo.observed

    def test_more_samples_keep_coverage(self):
        kw = dict(noise=NoiseModel(comp_cv=0.2, run_cv=0.0),
                  confidence=0.95, trials=800, seed=3)
        small = ci_coverage(samples_per_trial=5, **kw)
        large = ci_coverage(samples_per_trial=80, **kw)
        # skewed data under-covers at tiny n; must improve with n
        assert large.observed >= small.observed - 0.02
        assert large.observed >= 0.92

    def test_result_fields(self):
        res = ci_coverage(trials=50, samples_per_trial=5, seed=0)
        assert isinstance(res, CoverageResult)
        assert res.trials == 50
        assert -1.0 <= res.gap <= 1.0


class TestSqrtAlphaReduction:
    def test_error_falls_with_alpha(self):
        errs = aggregate_error_reduction(
            noise=NoiseModel(comp_cv=0.2, run_cv=0.0),
            alphas=(1, 4, 16, 64), trials=600, samples=10, seed=4,
        )
        assert errs[1] > errs[4] > errs[16]
        # the realization-noise component falls like sqrt(alpha): from
        # alpha=1 to alpha=16 expect at least ~2x total reduction
        assert errs[1] / errs[16] > 2.0

    def test_estimator_floor(self):
        # with a huge measurement budget the residual error comes from
        # the realization noise only
        errs = aggregate_error_reduction(
            noise=NoiseModel(comp_cv=0.2, run_cv=0.0),
            alphas=(64,), trials=400, samples=400, seed=5,
        )
        assert errs[64] < 0.05

    def test_quiet_noise_zero_error(self):
        errs = aggregate_error_reduction(
            noise=NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0),
            alphas=(1, 8), trials=20, samples=3, seed=6,
        )
        assert errs[1] == pytest.approx(0.0, abs=1e-12)
        assert errs[8] == pytest.approx(0.0, abs=1e-12)
