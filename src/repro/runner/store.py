"""Durable result store: sharded, checksummed, size-bounded, degradable.

The content-addressed result cache is the system of record for every
measurement the runner ever takes — and, for the transfer-learning
direction, a training set — so storage corruption poisons future tuning
sessions, not just one sweep.  :class:`ShardedResultCache` hardens the
PR-1 flat cache into a store built to survive what long-running
services actually see, in four layers:

* **integrity** — every entry is a framed envelope: a header line
  carrying a format version, the payload byte length, and a sha256
  payload checksum, followed by the payload JSON.  Reads verify frame,
  length, checksum, and key before anything is returned; any mismatch
  quarantines the entry to ``<key>.corrupt`` (exactly like a decode
  failure) and reports a miss — a corrupt entry is *never* a hit.
  Writes are published with the full fsync discipline (temp file,
  ``fsync`` on the file, atomic ``os.replace``, ``fsync`` on the
  directory) so a crash or power loss cannot publish a torn entry.
* **sharding + bounded size** — entries fan out over 256
  two-hex-character subdirectories (flat directories degrade badly at
  service entry counts), a best-effort accounting sidecar carries the
  size estimate and lifetime counters across processes, and when
  ``max_bytes`` is exceeded an eviction pass rescans the shards (the
  scan both corrects accounting drift and yields the recency order)
  and deletes least-recently-used entries — never entries pinned by a
  live sweep manifest — until the store fits.
* **graceful degradation** — unexpected storage errors (full disk,
  permission loss, a backend gone) surface as
  :class:`DegradedCacheError`; :class:`ComputeThroughCache` wraps any
  cache and absorbs them, downgrading to compute-through (every get a
  miss, every put skipped, warned once, counted in
  ``stats()["degraded"]``) instead of failing jobs that can still run.
* **fault injection** — all entry I/O flows through two seams that
  consult :func:`repro.runner.faults.active_fs_plan`, so a seeded
  :class:`~repro.runner.faults.FSFaultPlan` can tear writes, fill the
  disk, drop permissions, or flip bits deterministically — the
  substrate for the storage-fault fuzz leg.

The store is API-compatible with
:class:`~repro.runner.cache.ResultCache` (get/put/stats/clear) and is
the default behind :func:`~repro.runner.executors.make_runner`; legacy
flat-layout entries written by ``ResultCache`` are still readable and
are migrated into their shard (envelope and all) on first hit.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.runner.faults import active_fs_plan
from repro.runner.jobs import RunResult, result_from_dict, result_to_dict

__all__ = [
    "DegradedCacheError",
    "ShardedResultCache",
    "ComputeThroughCache",
    "write_atomic",
    "fsync_directory",
    "quarantine_entry",
]

#: framed-envelope identity: bump ENVELOPE_VERSION on any shape change
ENVELOPE_FORMAT = "repro-result-store"
ENVELOPE_VERSION = 1

#: accounting sidecar filename — deliberately not ``*.json`` so neither
#: the legacy flat cache nor entry scans ever mistake it for an entry
SIDECAR_NAME = "store-accounting.sidecar"

_COUNTER_KEYS = ("hits", "misses", "stores", "corrupt", "evicted",
                 "degraded")


class DegradedCacheError(RuntimeError):
    """A storage operation failed in a way that is not a miss.

    Raised by :class:`ShardedResultCache` when the backing filesystem
    misbehaves (``ENOSPC``, ``EACCES``, stale handles, ...).  The
    :class:`ComputeThroughCache` wrapper absorbs it and downgrades to
    compute-through; an unwrapped store propagates it so tests can pin
    the exact failure surface.
    """


# ----------------------------------------------------------------------
# sanctioned publish-by-rename helpers (the ``bare-os-replace`` lint
# rule flags any os.replace outside this module)
# ----------------------------------------------------------------------
def _umask_mode() -> int:
    """The umask-respecting file mode ``tempfile.mkstemp`` denies.

    ``mkstemp`` hardcodes 0600 (private temp files), which is wrong for
    entries published into a shared cache directory: other users could
    never read them.  Published entries get the mode a plain ``open``
    would have produced.
    """
    mask = os.umask(0)
    os.umask(mask)
    return 0o666 & ~mask


def fsync_directory(directory: str) -> None:
    """Flush a directory's metadata (the rename itself) to disk."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_atomic(path: str, data: bytes, durable: bool = True) -> None:
    """Publish ``data`` at ``path`` via temp file + atomic rename.

    With ``durable`` (the default) the file is fsync'd before the
    rename and the directory after it, so a crash at any point leaves
    either the old entry or the complete new one — never a torn file
    published under the final name.  ``durable=False`` keeps the
    atomicity but skips the fsyncs (hint files, legacy cache parity).
    """
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        os.fchmod(fd, _umask_mode())
        with os.fdopen(fd, "wb") as f:
            f.write(data)
            if durable:
                f.flush()
                os.fsync(f.fileno())
        os.replace(tmp, path)
        if durable:
            fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def quarantine_entry(path: str) -> bool:
    """Move a corrupt ``<key>.json`` aside to ``<key>.corrupt``.

    Left in place, a corrupt file would re-pay the verify-and-fail on
    every future lookup while silently re-missing forever; renamed, it
    becomes a fresh miss that the next execution overwrites, and the
    evidence survives for debugging.  Returns False when a concurrent
    quarantine/overwrite already handled it.
    """
    try:
        os.replace(path, path[: -len(".json")] + ".corrupt")
        return True
    except OSError:
        return False


# ----------------------------------------------------------------------
# the envelope
# ----------------------------------------------------------------------
def _encode_entry(payload: Dict) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    header = json.dumps({
        "format": ENVELOPE_FORMAT,
        "version": ENVELOPE_VERSION,
        "length": len(body),
        "sha256": hashlib.sha256(body).hexdigest(),
    }, sort_keys=True).encode("utf-8")
    return header + b"\n" + body


def _decode_entry(data: bytes, key: str) -> Optional[Dict]:
    """The verified payload, or None for any corruption whatsoever."""
    nl = data.find(b"\n")
    if nl < 0:
        return None
    try:
        header = json.loads(data[:nl])
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(header, dict) \
            or header.get("format") != ENVELOPE_FORMAT \
            or header.get("version") != ENVELOPE_VERSION:
        return None
    body = data[nl + 1:]
    if header.get("length") != len(body):
        return None  # torn write: only a prefix reached the disk
    if header.get("sha256") != hashlib.sha256(body).hexdigest():
        return None  # bit rot: the payload is not what was written
    try:
        payload = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(payload, dict) or payload.get("key") != key:
        return None  # aliased entry: stored under the wrong address
    return payload


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class ShardedResultCache:
    """Durable, sharded, size-bounded result store.

    API-compatible with :class:`~repro.runner.cache.ResultCache`
    (``get``/``put``/``stats``/``clear``/``__len__``) plus ``vacuum``,
    ``pin``/``unpin`` (eviction exemptions for live sweep manifests),
    and ``disk_stats`` (offline inspection for ``repro cache stats``).

    ``max_bytes`` bounds the on-disk size: exceeding it triggers an
    LRU-by-atime eviction pass (hits refresh recency explicitly via
    ``os.utime``, so the order survives ``noatime`` mounts).  Unexpected
    storage errors raise :class:`DegradedCacheError` — wrap the store in
    :class:`ComputeThroughCache` (as :func:`make_runner` does) to
    degrade gracefully instead.
    """

    def __init__(self, directory: str, max_bytes: Optional[int] = None,
                 durable: bool = True) -> None:
        self.directory = str(directory)
        self.max_bytes = int(max_bytes) if max_bytes is not None else None
        if self.max_bytes is not None and self.max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.durable = bool(durable)
        os.makedirs(self.directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.evicted = 0
        self.degraded = 0
        self._pins: set = set()
        #: counters already merged into the sidecar (delta tracking)
        self._flushed: Dict[str, int] = {k: 0 for k in _COUNTER_KEYS}
        sidecar = self._read_sidecar()
        if sidecar is not None:
            self._total_bytes = int(sidecar.get("total_bytes", 0))
        else:
            # first open of this directory (or a lost sidecar): take the
            # exact figure; later drift self-corrects at eviction passes
            self._total_bytes = sum(size for _, size, _, _
                                    in self._scan_entries())

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @staticmethod
    def shard_of(key: str) -> str:
        """256-way fan-out by the leading two hex characters."""
        return key[:2] if len(key) >= 2 else (key + "00")[:2]

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, self.shard_of(key),
                            f"{key}.json")

    def _legacy_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def _sidecar_path(self) -> str:
        return os.path.join(self.directory, SIDECAR_NAME)

    # ------------------------------------------------------------------
    # the I/O seams (all entry bytes pass through here, which is where
    # an FSFaultPlan tears, fills, denies, or flips)
    # ------------------------------------------------------------------
    def _read_entry_bytes(self, key: str, path: str) -> bytes:
        plan = active_fs_plan()
        action = plan.action_for("read", key) if plan is not None else None
        if action == "eacces":
            raise PermissionError(f"injected EACCES reading {path}")
        with open(path, "rb") as f:
            data = f.read()
        if action == "bitflip":
            data = plan.flip_bit(key, data)
        return data

    def _write_entry_bytes(self, key: str, path: str, data: bytes) -> None:
        plan = active_fs_plan()
        if plan is not None:
            action = plan.action_for("write", key)
            if action == "enospc":
                raise OSError(28, f"injected ENOSPC writing {path}")
            if action == "eacces":
                raise PermissionError(f"injected EACCES writing {path}")
            if action == "torn":
                # the torn publish the fsync discipline exists to
                # prevent: a prefix reaches the final name — the read
                # side must quarantine it, never serve it
                data = data[:plan.torn_length(key, len(data))]
        write_atomic(path, data, durable=self.durable)

    # ------------------------------------------------------------------
    # get / put
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[RunResult]:
        """The verified cached result for ``key``, or None on a miss."""
        before = (self.hits, self.misses, self.corrupt)
        try:
            return self._get(key)
        finally:
            # keep the sidecar's lifetime ledger current on read-only
            # workloads too (a fully warm sweep never calls put)
            if (self.hits, self.misses, self.corrupt) != before:
                self._write_sidecar()

    def _get(self, key: str) -> Optional[RunResult]:
        path = self._path(key)
        try:
            data = self._read_entry_bytes(key, path)
        except FileNotFoundError:
            return self._get_legacy(key)
        except OSError as exc:
            self.degraded += 1
            raise DegradedCacheError(
                f"result store read failed for {path}: {exc}") from exc
        payload = _decode_entry(data, key)
        if payload is None:
            if quarantine_entry(path):
                self.corrupt += 1
            self.misses += 1
            return None
        result = self._result_of(payload, path)
        if result is None:
            self.misses += 1
            return None
        try:
            os.utime(path)  # LRU recency, robust to noatime mounts
        except OSError:
            pass
        self.hits += 1
        return result

    def _result_of(self, payload: Dict, path: str) -> Optional[RunResult]:
        try:
            return result_from_dict(payload["result"])
        except (KeyError, ValueError, TypeError):
            # decodes and checksums but is not a result: stale schema
            if quarantine_entry(path):
                self.corrupt += 1
            return None

    def _get_legacy(self, key: str) -> Optional[RunResult]:
        """Flat-layout fallback: entries written by the PR-1 cache."""
        path = self._legacy_path(key)
        try:
            data = self._read_entry_bytes(key, path)
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as exc:
            self.degraded += 1
            raise DegradedCacheError(
                f"result store read failed for {path}: {exc}") from exc
        try:
            payload = json.loads(data)
            if not isinstance(payload, dict):
                raise ValueError("not an entry object")
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
            if quarantine_entry(path):
                self.corrupt += 1
            self.misses += 1
            return None
        result = self._result_of(payload, path)
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        self._migrate_legacy(key, payload, path)
        return result

    def _migrate_legacy(self, key: str, payload: Dict, path: str) -> None:
        """Rewrite a legacy hit into its shard, envelope and all."""
        payload = dict(payload)
        payload["key"] = key
        data = _encode_entry(payload)
        sharded = self._path(key)
        try:
            os.makedirs(os.path.dirname(sharded), exist_ok=True)
            self._write_entry_bytes(key, sharded, data)
            os.unlink(path)
        except OSError:
            return  # best effort: the legacy entry keeps serving
        self._total_bytes += len(data)
        self._maybe_evict()
        self._write_sidecar()

    def put(self, key: str, result: RunResult,
            fingerprint: Optional[dict] = None) -> None:
        """Durably store a result; the fingerprint aids debugging."""
        payload: Dict = {"key": key, "result": result_to_dict(result)}
        if fingerprint is not None:
            payload["fingerprint"] = fingerprint
        data = _encode_entry(payload)
        path = self._path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            self._write_entry_bytes(key, path, data)
        except OSError as exc:
            self.degraded += 1
            raise DegradedCacheError(
                f"result store write failed for {path}: {exc}") from exc
        self.stores += 1
        self._total_bytes += len(data)
        self._maybe_evict()
        self._write_sidecar()

    # ------------------------------------------------------------------
    # pinning and eviction
    # ------------------------------------------------------------------
    def pin(self, keys: Iterable[str]) -> None:
        """Exempt ``keys`` from eviction (a live sweep's working set)."""
        self._pins.update(keys)

    def unpin(self, keys: Optional[Iterable[str]] = None) -> None:
        """Release pins (all of them when ``keys`` is None)."""
        if keys is None:
            self._pins.clear()
        else:
            self._pins.difference_update(keys)

    def _iter_shard_dirs(self) -> Iterator[str]:
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return
        for name in names:
            if len(name) == 2:
                path = os.path.join(self.directory, name)
                if os.path.isdir(path):
                    yield path

    def _scan_entries(self) -> List[Tuple[int, int, str, str]]:
        """Every entry as ``(atime_ns, size, path, key)`` — legacy too."""
        out: List[Tuple[int, int, str, str]] = []

        def scan(directory: str) -> None:
            try:
                with os.scandir(directory) as it:
                    for de in it:
                        if not de.name.endswith(".json") or not de.is_file():
                            continue
                        try:
                            st = de.stat()
                        except OSError:
                            continue
                        out.append((st.st_atime_ns, st.st_size, de.path,
                                    de.name[: -len(".json")]))
            except OSError:
                pass

        scan(self.directory)
        for shard in self._iter_shard_dirs():
            scan(shard)
        return out

    def _maybe_evict(self) -> None:
        """Evict LRU entries until the store fits ``max_bytes``.

        Runs off the size *estimate*; the pass itself rescans, which
        yields the exact total (correcting any accounting drift from
        concurrent writers or crashes) and the recency order in one
        walk.  Pinned keys are never evicted, even if the store then
        stays over budget.  Eviction failures are skipped, not raised:
        a cache too full is still a working cache.
        """
        if self.max_bytes is None or self._total_bytes <= self.max_bytes:
            return
        entries = self._scan_entries()
        total = sum(size for _, size, _, _ in entries)
        if total > self.max_bytes:
            for _, size, path, key in sorted(entries):
                if key in self._pins:
                    continue
                try:
                    os.unlink(path)
                except OSError:
                    continue
                self.evicted += 1
                total -= size
                if total <= self.max_bytes:
                    break
        self._total_bytes = total

    # ------------------------------------------------------------------
    # accounting sidecar: a best-effort, atomically-replaced hint that
    # carries the size estimate and lifetime counters across processes
    # (never fsync'd, never trusted over a rescan)
    # ------------------------------------------------------------------
    def _read_sidecar(self) -> Optional[Dict]:
        try:
            with open(self._sidecar_path(), "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return doc if isinstance(doc, dict) else None

    def _write_sidecar(self) -> None:
        base = self._read_sidecar() or {}
        counters = base.get("counters") or {}
        session = self.stats()
        merged = {}
        for k in _COUNTER_KEYS:
            delta = session.get(k, 0) - self._flushed.get(k, 0)
            try:
                prior = int(counters.get(k, 0))
            except (TypeError, ValueError):
                prior = 0
            merged[k] = prior + delta
        doc = {
            "version": 1,
            "total_bytes": self._total_bytes,
            "counters": merged,
        }
        try:
            write_atomic(self._sidecar_path(),
                         json.dumps(doc, sort_keys=True).encode("utf-8"),
                         durable=False)
        except OSError:
            return  # a hint we could not leave; the next scan rebuilds it
        self._flushed = {k: session.get(k, 0) for k in _COUNTER_KEYS}

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._scan_entries())

    def clear(self) -> int:
        """Delete every entry, plus quarantine/temp debris; count all."""
        removed = 0
        for _, _, path, _ in self._scan_entries():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        removed += self.vacuum()
        self._total_bytes = 0
        self._write_sidecar()
        return removed

    def vacuum(self) -> int:
        """Remove ``*.corrupt`` quarantines and ``*.tmp`` orphans.

        Quarantined entries have served their debugging purpose once
        inspected, and ``*.tmp`` files are orphans of killed processes
        (a live writer's temp file exists only for the microseconds
        between mkstemp and rename, so sweeping them is safe in
        practice).  Returns the number of files removed.
        """
        removed = 0
        for directory in (self.directory, *self._iter_shard_dirs()):
            try:
                names = sorted(os.listdir(directory))
            except OSError:
                continue
            for name in names:
                if name.endswith((".corrupt", ".tmp")):
                    try:
                        os.unlink(os.path.join(directory, name))
                        removed += 1
                    except OSError:
                        pass
        return removed

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "corrupt": self.corrupt,
                "evicted": self.evicted, "degraded": self.degraded}

    def disk_stats(self) -> Dict[str, int]:
        """What is actually on disk right now (``repro cache stats``).

        Unlike :meth:`stats` (this process's session counters), these
        figures come from a scan plus the sidecar's lifetime counters,
        so they are meaningful for a directory no live run has open.
        """
        entries = self._scan_entries()
        corrupt_files = tmp_files = 0
        for directory in (self.directory, *self._iter_shard_dirs()):
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            corrupt_files += sum(1 for n in names if n.endswith(".corrupt"))
            tmp_files += sum(1 for n in names if n.endswith(".tmp"))
        sidecar = self._read_sidecar() or {}
        counters = sidecar.get("counters") or {}
        out = {"entries": len(entries),
               "total_bytes": sum(size for _, size, _, _ in entries),
               "corrupt_files": corrupt_files,
               "tmp_files": tmp_files,
               "shards": sum(1 for _ in self._iter_shard_dirs())}
        for k in _COUNTER_KEYS:
            try:
                out[f"lifetime_{k}"] = int(counters.get(k, 0))
            except (TypeError, ValueError):
                out[f"lifetime_{k}"] = 0
        return out

    def __repr__(self) -> str:
        bound = (f", max_bytes={self.max_bytes}"
                 if self.max_bytes is not None else "")
        return (f"ShardedResultCache({self.directory!r}{bound}, "
                f"hits={self.hits}, misses={self.misses}, "
                f"stores={self.stores}, corrupt={self.corrupt}, "
                f"evicted={self.evicted})")


# ----------------------------------------------------------------------
# graceful degradation
# ----------------------------------------------------------------------
class ComputeThroughCache:
    """Absorb storage failure; never let the cache fail a runnable job.

    Wraps any cache with the ``get``/``put``/``stats`` protocol.  The
    first :class:`DegradedCacheError` (or raw ``OSError`` from a legacy
    cache) downgrades the wrapper to compute-through: every later get
    is a miss and every later put is skipped without touching storage
    — a dead backend costs one failed syscall, not one per job, and a
    sweep that lost its disk still completes on compute alone.  The
    downgrade warns exactly once and every absorbed or skipped
    operation is counted in ``stats()["degraded"]``.
    """

    def __init__(self, cache: ShardedResultCache) -> None:
        self.cache = cache
        #: operations absorbed or skipped because storage is gone
        self.degraded = 0
        self._dead: Optional[str] = None  # the first failure, verbatim
        self._warned = False

    # ------------------------------------------------------------------
    @property
    def directory(self) -> str:
        return self.cache.directory

    def _absorb(self, op: str, exc: BaseException) -> None:
        if not isinstance(exc, DegradedCacheError):
            # a DegradedCacheError was already counted by the store that
            # raised it; raw OSErrors (legacy caches) are counted here
            self.degraded += 1
        self._dead = f"{op}: {exc}"
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"result cache degraded to compute-through after a storage "
                f"failure ({op}: {exc}); later lookups miss and results are "
                f"not stored for the rest of this run",
                RuntimeWarning, stacklevel=3)

    def get(self, key: str) -> Optional[RunResult]:
        if self._dead is not None:
            self.degraded += 1
            return None
        try:
            return self.cache.get(key)
        except (DegradedCacheError, OSError) as exc:
            self._absorb("get", exc)
            return None

    def put(self, key: str, result: RunResult,
            fingerprint: Optional[dict] = None) -> None:
        if self._dead is not None:
            self.degraded += 1
            return
        try:
            self.cache.put(key, result, fingerprint=fingerprint)
        except (DegradedCacheError, OSError) as exc:
            self._absorb("put", exc)

    # ------------------------------------------------------------------
    def pin(self, keys: Iterable[str]) -> None:
        self.cache.pin(keys)

    def unpin(self, keys: Optional[Iterable[str]] = None) -> None:
        self.cache.unpin(keys)

    def clear(self) -> int:
        if self._dead is not None:
            return 0
        try:
            return self.cache.clear()
        except (DegradedCacheError, OSError) as exc:
            self._absorb("clear", exc)
            return 0

    def vacuum(self) -> int:
        if self._dead is not None:
            return 0
        try:
            return self.cache.vacuum()
        except (DegradedCacheError, OSError) as exc:
            self._absorb("vacuum", exc)
            return 0

    def __len__(self) -> int:
        if self._dead is not None:
            return 0
        return len(self.cache)

    def stats(self) -> Dict[str, int]:
        out = dict(self.cache.stats())
        # the store counts failures it raised; add the operations this
        # wrapper absorbed or skipped on top
        out["degraded"] = out.get("degraded", 0) + self.degraded
        return out

    def __repr__(self) -> str:
        state = f"degraded after {self._dead!r}" if self._dead else "healthy"
        return f"ComputeThroughCache({self.cache!r}, {state})"
