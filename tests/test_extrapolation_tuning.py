"""Extrapolation in the tuning loop: the CANDMC-motivated case.

Section VIII singles out CANDMC's pipelined QR as the beneficiary of
line-fitting: its trailing matrix shrinks every panel, so kernel
signatures rarely repeat and per-signature confidence intervals starve.
"""

import pytest

from repro.autotune import candmc_qr_space
from repro.autotune.tuner import _seed_for, default_machine
from repro.critter import Critter
from repro.sim import NoiseModel, Simulator


@pytest.fixture(scope="module")
def setup():
    space = candmc_qr_space(m=512, n=64, p=4, pr0=2, b0=2, nconf=5)
    machine = default_machine(space, seed=47)
    # smooth per-size efficiency: the regime where line fitting is valid
    noise = NoiseModel(bias_sigma=0.02, comp_cv=0.05, comm_cv=0.1,
                       run_cv=0.005, machine_seed=47)
    return space, machine, noise


def tune(space, machine, noise, extrapolate, reps=3):
    critter = Critter(policy="conditional", eps=2**-3,
                      extrapolate=extrapolate, extrapolation_tolerance=0.2)
    total = 0.0
    skip = []
    for idx, config in enumerate(space.configs):
        critter.reset_statistics()
        for rep in range(reps):
            sim = Simulator(machine, noise=noise, profiler=critter)
            total += sim.run(space.program, args=(config,),
                             run_seed=_seed_for(0, idx, rep)).makespan
        skip.append(critter.last_report.skip_fraction)
    return total, skip


class TestExtrapolatedTuning:
    def test_extrapolation_accelerates_candmc(self, setup):
        space, machine, noise = setup
        t_plain, skip_plain = tune(space, machine, noise, extrapolate=False)
        t_extra, skip_extra = tune(space, machine, noise, extrapolate=True)
        # more kernels skipped, faster search
        assert sum(skip_extra) > sum(skip_plain)
        assert t_extra < t_plain

    def test_extrapolated_predictions_stay_accurate(self, setup):
        space, machine, noise = setup
        config = space.configs[0]
        full = Critter(policy="never-skip")
        t_full = Simulator(machine, noise=noise, profiler=full).run(
            space.program, args=(config,), run_seed=999).makespan
        critter = Critter(policy="conditional", eps=2**-3, extrapolate=True,
                          extrapolation_tolerance=0.2)
        for rep in range(3):
            Simulator(machine, noise=noise, profiler=critter).run(
                space.program, args=(config,), run_seed=rep)
        err = abs(critter.last_report.predicted_exec_time - t_full) / t_full
        assert err < 0.15
