"""Collective-semantics bugfixes and the inline-arrival fast path (PR 3).

Covers the three semantic fixes — root-mismatch detection, alltoall
payload-size inference, declared-receive-size checking — plus waitany
tie-breaking on simultaneous completions and fast-vs-naive differentials
for collective-dense programs (the golden fixtures in
``tests/golden/engine_golden.json`` pin the same paths bit-exactly).
"""

from __future__ import annotations

import pytest

from repro.kernels.blas import gemm_spec
from repro.sim import DeadlockError, Machine, NoiseModel, Simulator

from conftest import make_quiet_sim
from golden_workloads import coll_chain_program


def both_schedulers(nprocs, program, **kw):
    """Run under both schedulers, assert bit-identity, return the result."""
    fast = make_quiet_sim(nprocs)
    naive = make_quiet_sim(nprocs)
    naive.fast_path = False
    rf = fast.run(program, **kw)
    rn = naive.run(program, **kw)
    assert rf.makespan == rn.makespan
    assert rf.rank_times == rn.rank_times
    return rf


class TestRootValidation:
    def test_root_mismatch_raises(self):
        def prog(comm):
            yield comm.bcast(None, root=comm.rank % 2, nbytes=8)

        for fast in (True, False):
            sim = make_quiet_sim(4)
            sim.fast_path = fast
            with pytest.raises(RuntimeError, match="root mismatch"):
                sim.run(prog)

    def test_agreeing_roots_pass(self):
        def prog(comm):
            out = yield comm.bcast(3.5 if comm.rank == 2 else None,
                                   root=2, nbytes=8)
            return out

        res = both_schedulers(4, prog)
        assert res.returns == [3.5] * 4


class TestNbytesDisagreement:
    def test_declared_disagreement_warns_and_costs_max(self):
        def prog(comm, nb):
            yield comm.allreduce(nbytes=nb[comm.rank])

        with pytest.warns(RuntimeWarning, match="disagree on nbytes"):
            mixed = make_quiet_sim(4).run(prog, args=((64, 4096, 64, 64),))
        uniform = make_quiet_sim(4).run(prog, args=((4096,) * 4,))
        assert mixed.makespan == uniform.makespan

    def test_rootonly_payload_does_not_warn(self, recwarn):
        def prog(comm):
            payload = [1.0, 2.0] if comm.rank == 0 else None
            yield comm.bcast(payload, root=0)

        make_quiet_sim(4).run(prog)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, RuntimeWarning)]


class TestAlltoallInference:
    def test_payload_infers_per_peer_nbytes(self):
        def prog(comm, nbytes=None):
            row = [float(comm.rank * comm.size + j) for j in range(comm.size)]
            out = yield comm.alltoall(row, nbytes=nbytes)
            return out

        inferred = make_quiet_sim(4).run(prog)
        explicit = make_quiet_sim(4).run(prog, args=(8,))
        # a float is 8 bytes: 4 peers x 8 B payload -> 8 B per peer
        assert inferred.makespan == explicit.makespan
        assert inferred.returns[2] == [2.0, 6.0, 10.0, 14.0]

    def test_payload_no_longer_costs_zero(self):
        def sized(comm):
            yield comm.alltoall([bytes(2048)] * comm.size)

        def zero(comm):
            yield comm.alltoall(nbytes=0)

        # before the fix the payload was ignored (int(nbytes or 0) -> 0)
        costly = make_quiet_sim(4).run(sized)
        free = make_quiet_sim(4).run(zero)
        assert costly.makespan > free.makespan

    def test_opaque_payload_still_needs_explicit_nbytes(self):
        # bytes payloads are measurable; strings and other opaque types
        # still need nbytes= (TypeError from payload_nbytes)
        def explicit(comm):
            yield comm.alltoall([f"{comm.rank}->{j}" for j in range(comm.size)],
                                nbytes=8)

        make_quiet_sim(4).run(explicit)  # explicit size keeps working

        def inferred(comm):
            yield comm.alltoall([f"{comm.rank}->{j}" for j in range(comm.size)])

        with pytest.raises(TypeError, match="cannot infer nbytes"):
            make_quiet_sim(4).run(inferred)


class TestReceiveSizeChecking:
    def _pair(self, recv_kw, send_nbytes=64):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(dest=1, tag=3, nbytes=send_nbytes)
            else:
                yield comm.recv(source=0, tag=3, **recv_kw)

        return prog

    def test_declared_mismatch_warns(self):
        with pytest.warns(RuntimeWarning, match="size mismatch"):
            make_quiet_sim(2).run(self._pair({"nbytes": 32}))

    def test_explicit_zero_is_a_declaration(self):
        # nbytes=0 used to be conflated with "unknown"; it now means an
        # expected empty message and is checked against the sender
        with pytest.warns(RuntimeWarning, match="size mismatch"):
            make_quiet_sim(2).run(self._pair({"nbytes": 0}))

    def test_unknown_size_does_not_warn(self, recwarn):
        make_quiet_sim(2).run(self._pair({}))
        assert not [w for w in recwarn.list
                    if issubclass(w.category, RuntimeWarning)]

    def test_matching_size_does_not_warn(self, recwarn):
        make_quiet_sim(2).run(self._pair({"nbytes": 64}))
        assert not [w for w in recwarn.list
                    if issubclass(w.category, RuntimeWarning)]

    def test_irecv_mismatch_warns(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send(dest=1, tag=9, nbytes=128)
            else:
                req = yield comm.irecv(source=0, tag=9, nbytes=16)
                yield comm.wait(req)

        with pytest.warns(RuntimeWarning, match="size mismatch"):
            make_quiet_sim(2).run(prog)

    def test_transfer_costed_at_sender_size(self):
        import warnings

        def prog(comm, declared):
            if comm.rank == 0:
                yield comm.send(dest=1, tag=1, nbytes=4096)
            else:
                yield comm.recv(source=0, tag=1, nbytes=declared)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            small = make_quiet_sim(2).run(prog, args=(16,))
            exact = make_quiet_sim(2).run(prog, args=(4096,))
        assert small.makespan == exact.makespan


class TestWaitanyTieBreaking:
    def test_simultaneous_completions_pick_lowest_index(self):
        """Two sends posted at the same time with equal cost: the
        waitany winner is the request-list position, not arrival luck."""

        def prog(comm):
            if comm.rank == 0:
                r1 = yield comm.irecv(source=1, tag=1, nbytes=64)
                r2 = yield comm.irecv(source=2, tag=2, nbytes=64)
                got = yield comm.waitany([r2, r1])
                rest = yield comm.waitall([r1, r2])
                return got[0]
            if comm.rank in (1, 2):
                yield comm.send(dest=0, tag=comm.rank, nbytes=64)
            return None

        for fast in (True, False):
            sim = make_quiet_sim(3)
            sim.fast_path = fast
            res = sim.run(prog)
            # both complete at the identical quiet-machine time; index 0
            # (r2 in the list) must win deterministically
            assert res.returns[0] == 0

    def test_earlier_completion_beats_list_order(self):
        def prog(comm):
            if comm.rank == 0:
                r1 = yield comm.irecv(source=1, tag=1, nbytes=64)
                r2 = yield comm.irecv(source=2, tag=2, nbytes=1 << 20)
                yield comm.compute(gemm_spec(64, 64, 64))
                got = yield comm.waitany([r2, r1])
                yield comm.waitall([r1, r2])
                return got[0]
            if comm.rank == 1:
                yield comm.send(dest=0, tag=1, nbytes=64)
            elif comm.rank == 2:
                yield comm.send(dest=0, tag=2, nbytes=1 << 20)
            return None

        res = make_quiet_sim(3).run(prog)
        assert res.returns[0] == 1  # the small (earlier) transfer wins


class TestInlineArrivalEquivalence:
    """Fast-vs-naive differentials for the collective-dense paths.

    The golden fixtures pin these bit-exactly for fixed seeds; these
    differentials sweep more seeds and noisy machines.
    """

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_coll_chain_bit_identical_noisy(self, seed):
        machine = Machine(nprocs=4, seed=5)
        noise = NoiseModel(machine_seed=5)
        fast = Simulator(machine, noise=noise)
        naive = Simulator(machine, noise=noise, fast_path=False)
        rf = fast.run(coll_chain_program, run_seed=seed)
        rn = naive.run(coll_chain_program, run_seed=seed)
        assert fast.used_fast_path and not naive.used_fast_path
        assert rf.makespan == rn.makespan
        assert rf.rank_times == rn.rank_times
        assert rf.returns == rn.returns

    def test_deferred_completion_exact(self):
        """Inline-parked rank carries the *latest* arrival: the heap-
        dispatched final arrival must defer the completion to it."""

        def prog(comm):
            if comm.rank == 0:
                yield comm.compute(gemm_spec(64, 64, 64))  # arrive late
            yield comm.allreduce(nbytes=256)
            yield comm.compute(gemm_spec(8, 8, 8))
            yield comm.allreduce(nbytes=256)
            return None

        machine = Machine(nprocs=2, seed=1)
        noise = NoiseModel(machine_seed=1)
        rf = Simulator(machine, noise=noise).run(prog, run_seed=2)
        rn = Simulator(machine, noise=noise, fast_path=False).run(prog, run_seed=2)
        assert rf.makespan == rn.makespan
        assert rf.rank_times == rn.rank_times

    def test_partial_collective_still_deadlocks_with_reason(self):
        def prog(comm):
            if comm.rank != 0:
                yield comm.allreduce(nbytes=8)

        with pytest.raises(DeadlockError) as exc:
            make_quiet_sim(4).run(prog)
        assert "allreduce" in str(exc.value)

    def test_collective_mismatch_detected_inline(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.bcast(None, root=0, nbytes=8)
            else:
                yield comm.barrier()

        with pytest.raises(RuntimeError, match="collective mismatch"):
            make_quiet_sim(4).run(prog)
