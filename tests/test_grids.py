"""Processor grid construction: communicator shapes and strides."""

import pytest

from repro.algorithms.grids import make_grid2d, make_grid3d
from repro.sim import DeadlockError

from conftest import make_quiet_sim


class TestGrid2D:
    def test_shapes_and_indices(self):
        def prog(comm):
            g = yield from make_grid2d(comm, 2, 3)
            return (g.ri, g.ci, g.row.size, g.col.size)

        res = make_quiet_sim(6).run(prog)
        assert res.returns[0] == (0, 0, 3, 2)
        assert res.returns[5] == (1, 2, 3, 2)

    def test_row_ranks_contiguous(self):
        def prog(comm):
            g = yield from make_grid2d(comm, 2, 2)
            return (g.row.world_ranks, g.col.world_ranks)

        res = make_quiet_sim(4).run(prog)
        assert res.returns[0] == ((0, 1), (0, 2))
        assert res.returns[3] == ((2, 3), (1, 3))

    def test_row_col_strides(self):
        def prog(comm):
            g = yield from make_grid2d(comm, 2, 4)
            return (g.row.group.stride, g.col.group.stride)

        res = make_quiet_sim(8).run(prog)
        assert all(r == (1, 4) for r in res.returns)

    def test_bad_shape_raises(self):
        def prog(comm):
            g = yield from make_grid2d(comm, 3, 3)

        with pytest.raises(ValueError, match="grid 3x3"):
            make_quiet_sim(4).run(prog)

    def test_row_collective(self):
        def prog(comm):
            g = yield from make_grid2d(comm, 2, 2)
            s = yield g.row.allreduce(comm.rank, nbytes=8)
            return s

        res = make_quiet_sim(4).run(prog)
        assert res.returns == [1, 1, 5, 5]


class TestGrid3D:
    def test_coordinates(self):
        def prog(comm):
            g = yield from make_grid3d(comm, 2)
            return (g.k, g.i, g.j)

        res = make_quiet_sim(8).run(prog)
        assert res.returns[0] == (0, 0, 0)
        assert res.returns[3] == (0, 1, 1)
        assert res.returns[4] == (1, 0, 0)
        assert res.returns[7] == (1, 1, 1)

    def test_communicator_sizes(self):
        def prog(comm):
            g = yield from make_grid3d(comm, 2)
            return (g.row.size, g.col.size, g.fiber.size, g.layer.size)

        res = make_quiet_sim(8).run(prog)
        assert all(r == (2, 2, 2, 4) for r in res.returns)

    def test_fiber_spans_layers(self):
        def prog(comm):
            g = yield from make_grid3d(comm, 2)
            return g.fiber.world_ranks

        res = make_quiet_sim(8).run(prog)
        assert res.returns[0] == (0, 4)
        assert res.returns[3] == (3, 7)

    def test_layer_members(self):
        def prog(comm):
            g = yield from make_grid3d(comm, 2)
            return g.layer.world_ranks

        res = make_quiet_sim(8).run(prog)
        assert res.returns[0] == (0, 1, 2, 3)
        assert res.returns[5] == (4, 5, 6, 7)

    def test_strides_feed_channels(self):
        def prog(comm):
            g = yield from make_grid3d(comm, 2)
            return (g.row.group.stride, g.col.group.stride, g.fiber.group.stride)

        res = make_quiet_sim(8).run(prog)
        assert all(r == (1, 2, 4) for r in res.returns)

    def test_bad_cube_raises(self):
        def prog(comm):
            g = yield from make_grid3d(comm, 2)

        with pytest.raises(ValueError, match=r"\^3"):
            make_quiet_sim(4).run(prog)
