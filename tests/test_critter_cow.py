"""Copy-on-write path propagation and cached-verdict invariants.

The hot-path overhaul replaced per-loser deep copies of the ``K~``
count tables with shared immutable snapshots, and the per-decision
CI computation with cached verdict sentinels.  These tests pin the
safety properties those optimizations rely on:

* adoption is by reference, but a loser's post-adoption local update
  never mutates the winner's table (or the shared snapshot);
* verdict caches answer exactly like the uncached formula and are
  invalidated by ``update``/``merge``;
* the stdlib inverse-normal ``z_value`` matches the scipy values the
  decision thresholds were originally computed with.
"""

from __future__ import annotations

import math

import pytest

from repro.critter import Critter, PathCountTable
from repro.critter.stats import RunningStat, is_predictable, relative_ci, z_value
from repro.kernels.signature import comm_signature, comp_signature
from repro.sim import Machine, Simulator
from repro.sim.engine import CommGroup

GEMM = comp_signature("gemm", 32, 32, 32)
POTRF = comp_signature("potrf", 32)
BCAST = comm_signature("bcast", 256, 2, 1)


class TestPathCountTable:
    def test_dict_like_reads(self):
        t = PathCountTable()
        assert not t
        assert t.get(GEMM, 0) == 0
        t.increment(GEMM)
        t.increment(GEMM)
        assert t
        assert t[GEMM] == 2
        assert t.get(GEMM) == 2
        assert GEMM in t
        assert dict(t) == {GEMM: 2}
        assert list(t.items()) == [(GEMM, 2)]
        assert len(t) == 1

    def test_adopt_is_by_reference(self):
        a = PathCountTable()
        a.increment(GEMM)
        snap = a.snapshot()
        b = PathCountTable()
        b.increment(POTRF)
        v0 = b.version
        b.adopt(snap)
        assert b.version == v0 + 1
        # wholesale adoption: old contents gone, snapshot aliased
        assert b.get(POTRF, 0) == 0
        assert b[GEMM] == 1
        assert b._base is snap

    def test_post_adoption_update_never_mutates_winner(self):
        winner = PathCountTable()
        winner.increment(GEMM)
        winner.increment(GEMM)
        snap = winner.snapshot()
        loser = PathCountTable()
        loser.adopt(snap)
        loser.increment(GEMM)
        loser.increment(POTRF)
        # the loser sees its own updates ...
        assert loser[GEMM] == 3
        assert loser[POTRF] == 1
        # ... while the winner and the frozen snapshot are untouched
        assert winner[GEMM] == 2
        assert winner.get(POTRF, 0) == 0
        assert snap == {GEMM: 2}

    def test_winner_updates_do_not_leak_into_adopters(self):
        winner = PathCountTable()
        winner.increment(GEMM)
        snap = winner.snapshot()
        a, b = PathCountTable(), PathCountTable()
        a.adopt(snap)
        b.adopt(snap)
        winner.increment(GEMM)
        a.increment(POTRF)
        assert winner[GEMM] == 2
        assert a[GEMM] == 1 and b[GEMM] == 1
        assert b.get(POTRF, 0) == 0

    def test_snapshot_collapses_delta_once(self):
        t = PathCountTable()
        t.increment(GEMM)
        s1 = t.snapshot()
        s2 = t.snapshot()
        assert s1 is s2  # no delta, no new collapse
        t.increment(GEMM)
        s3 = t.snapshot()
        assert s3 is not s1
        assert s1 == {GEMM: 1}  # earlier snapshot frozen
        assert s3 == {GEMM: 2}


class _StubSim:
    def __init__(self, machine):
        self.machine = machine


class TestCritterAdoptionAliasing:
    """The ISSUE's regression case, through the real Critter hooks."""

    def _critter(self, nprocs=2):
        cr = Critter(policy="online", eps=0.25, min_samples=2)
        cr.start_run(_StubSim(Machine(nprocs=nprocs, seed=0)), run_seed=1)
        return cr

    def test_loser_update_after_collective_does_not_mutate_winner(self):
        cr = self._critter()
        # rank 0 wins the path election (longer executed path)
        for _ in range(4):
            cr.post_compute(0, GEMM, True, 1e-3, 100.0)
        cr.post_compute(1, POTRF, True, 1e-4, 10.0)
        group = CommGroup(0, (0, 1))
        arrivals = {0: 4e-3, 1: 1e-4}
        cr.post_collective(group, BCAST, arrivals, True, 1e-5, 5e-3)
        # rank 1 adopted rank 0's counts wholesale (plus the collective)
        assert cr._Kt[1][GEMM] == 4
        assert cr._Kt[1].get(POTRF, 0) == 0
        assert cr._Kt[1][BCAST] == 1
        winner_before = dict(cr._Kt[0])
        # the loser's subsequent local activity must stay private
        cr.post_compute(1, POTRF, True, 1e-4, 10.0)
        cr.post_compute(1, GEMM, True, 1e-3, 100.0)
        assert dict(cr._Kt[0]) == winner_before
        assert cr._Kt[1][GEMM] == 5
        assert cr._Kt[1][POTRF] == 1

    def test_last_path_counts_snapshots_are_frozen(self):
        cr = self._critter()
        cr.post_compute(0, GEMM, True, 1e-3, 100.0)
        cr.post_compute(1, POTRF, True, 1e-4, 10.0)
        cr.end_run(None, 1e-3)
        counts = cr.last_path_counts
        assert counts[0] == {GEMM: 1}
        # seeding another profiler from them is copy-free and safe
        cr2 = Critter(policy="apriori")
        cr2.seed_path_counts(counts)
        assert cr2._apriori[0] == {GEMM: 1}

    def test_simulated_run_adopts_longest_path_counts(self):
        # end to end: COW tables must be indistinguishable from dicts
        from repro.kernels.blas import gemm_spec
        from repro.kernels.lapack import potrf_spec

        gemm, potrf = gemm_spec(32, 32, 32), potrf_spec(32)

        def prog(comm):
            for _ in range(3 + comm.rank):
                yield comm.compute(gemm)
            yield comm.allreduce(nbytes=256)
            yield comm.compute(potrf)
            return None

        m = Machine(nprocs=4, seed=3)
        cr = Critter(policy="online", eps=0.25)
        Simulator(m, profiler=cr).run(prog, run_seed=5)
        # rank 3 ran the longest path: everyone adopted its gemm count
        # at the allreduce, then counted the allreduce and final potrf
        for table in cr.last_path_counts:
            assert table[gemm[0]] == 6
            assert table[potrf[0]] == 1


class TestCustomPolicyAlpha:
    def test_overridden_alpha_is_always_consulted(self):
        from repro.critter.policies import Policy

        calls = []

        class RecordingAlpha(Policy):
            def alpha(self, local, path, offline):
                calls.append((local, path, offline))
                return 1

        cr = Critter(policy=RecordingAlpha("recording", "path"), eps=0.25)
        # a custom alpha() disables every fast-path specialization
        assert cr._slow_decision
        cr.start_run(_StubSim(Machine(nprocs=1, seed=0)), run_seed=1)
        for _ in range(3):
            cr.post_compute(0, GEMM, True, 1e-3, 100.0)
        cr.on_compute(0, GEMM)
        assert calls and calls[-1] == (3, 3, None)


class TestVerdictCache:
    def _stat(self, values):
        st = RunningStat()
        for v in values:
            st.update(v)
        return st

    def test_cached_verdicts_match_formula(self):
        z = z_value(0.95)
        st = self._stat([1.0, 1.05, 0.95, 1.02, 0.98])
        for alpha in (1, 2, 3, 5, 8, 13, 21, 1, 3, 8):
            expect = relative_ci(st, z, alpha) <= 0.05
            assert is_predictable(st, 0.05, z, alpha) is expect

    def test_monotone_sentinels(self):
        z = z_value(0.95)
        st = self._stat([1.0, 1.2, 0.8, 1.1, 0.9])
        # establish a True at some alpha: larger alphas hit the cache
        assert is_predictable(st, 0.2, z, 50) == (relative_ci(st, z, 50) <= 0.2)
        for alpha in (50, 80, 200):
            assert is_predictable(st, 0.2, z, alpha) is True
        # smaller alphas may be False; cached False bounds further ones
        lo = relative_ci(st, z, 1) <= 0.2
        assert is_predictable(st, 0.2, z, 1) is lo

    def test_update_invalidates(self):
        z = z_value(0.95)
        st = self._stat([1.0, 1.0, 1.0])
        assert is_predictable(st, 0.05, z, 1)  # zero variance: predictable
        st.update(50.0)  # huge outlier: CI explodes
        assert not is_predictable(st, 0.05, z, 1)
        assert is_predictable(st, 0.05, z, 1) is (relative_ci(st, z, 1) <= 0.05)

    def test_merge_invalidates(self):
        z = z_value(0.95)
        a = self._stat([1.0, 1.0, 1.0, 1.0])
        assert is_predictable(a, 0.05, z, 1)
        b = self._stat([10.0, 30.0])
        a.merge(b)
        assert not is_predictable(a, 0.05, z, 1)

    def test_eps_change_recomputes(self):
        z = z_value(0.95)
        st = self._stat([1.0, 1.1, 0.9, 1.05])
        loose = is_predictable(st, 0.5, z, 1)
        tight = is_predictable(st, 1e-6, z, 1)
        assert loose is True and tight is False
        # back to the first eps: sentinels were retagged, answer exact
        assert is_predictable(st, 0.5, z, 1) is True


class TestZValue:
    #: float.hex of scipy.stats.norm.ppf(0.5 + c/2) — recorded when the
    #: decision hot path still imported scipy; the stdlib NormalDist
    #: replacement must stay within a few ulp of these
    SCIPY_VALUES = {
        0.5: "0x1.5956b87528a49p-1",
        0.8: "0x1.4813c36e26d32p+0",
        0.9: "0x1.a515209676abbp+0",
        0.95: "0x1.f5c0331eeff84p+0",
        0.99: "0x1.49b4c64d69160p+1",
        0.995: "0x1.674ce1ece6f39p+1",
        0.999: "0x1.a52ffadd2f906p+1",
    }

    def test_matches_recorded_scipy_values(self):
        for conf, hexval in self.SCIPY_VALUES.items():
            want = float.fromhex(hexval)
            got = z_value(conf)
            assert got == pytest.approx(want, rel=1e-12), conf

    def test_within_four_ulp(self):
        for conf, hexval in self.SCIPY_VALUES.items():
            want = float.fromhex(hexval)
            got = z_value(conf)
            assert abs(got - want) <= 4 * math.ulp(want), conf

    def test_rejects_out_of_range(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                z_value(bad)
