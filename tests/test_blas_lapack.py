"""BLAS/LAPACK cost builders and numeric reference routines."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.kernels import blas, lapack


RNG = np.random.default_rng(42)


class TestBlasSpecs:
    def test_gemm_flops(self):
        sig, flops = blas.gemm_spec(4, 5, 6)
        assert flops == 2 * 4 * 5 * 6
        assert sig.name == "gemm" and sig.params == (4, 5, 6)

    def test_syrk_flops(self):
        _, flops = blas.syrk_spec(8, 4)
        assert flops == 8 * 9 * 4

    def test_trsm_trmm_flops(self):
        assert blas.trsm_spec(8, 3)[1] == 64 * 3
        assert blas.trmm_spec(8, 3)[1] == 64 * 3

    def test_specs_interned(self):
        assert blas.gemm_spec(4, 4, 4)[0] is blas.gemm_spec(4, 4, 4)[0]


class TestBlasNumerics:
    def test_gemm_plain(self):
        a, b = RNG.random((4, 3)), RNG.random((3, 5))
        assert np.allclose(blas.gemm(a, b), a @ b)

    def test_gemm_transposes_and_scaling(self):
        a, b, c = RNG.random((3, 4)), RNG.random((5, 3)), RNG.random((4, 5))
        out = blas.gemm(a, b, c, alpha=2.0, beta=-1.0, transa=True, transb=True)
        assert np.allclose(out, 2 * a.T @ b.T - c)

    def test_syrk(self):
        a = RNG.random((4, 3))
        c = RNG.random((4, 4))
        assert np.allclose(blas.syrk(a, c, alpha=1.0, beta=1.0), a @ a.T + c)

    def test_trsm_left_lower(self):
        l = np.tril(RNG.random((4, 4))) + 4 * np.eye(4)
        b = RNG.random((4, 3))
        x = blas.trsm(l, b, side="L", lower=True)
        assert np.allclose(l @ x, b)

    def test_trsm_right_transposed(self):
        # the SLATE Cholesky panel solve: X L^T = B
        l = np.tril(RNG.random((4, 4))) + 4 * np.eye(4)
        b = RNG.random((3, 4))
        x = blas.trsm(l, b, side="R", lower=True, trans=True)
        assert np.allclose(x @ l.T, b)

    def test_trmm_left_and_right(self):
        a = np.tril(RNG.random((4, 4)))
        b = RNG.random((4, 4))
        assert np.allclose(blas.trmm(a, b, side="L"), a @ b)
        assert np.allclose(blas.trmm(a, b, side="R", trans=True), b @ a.T)


class TestLapackSpecs:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            (lapack.potrf_spec(6), 72.0),
            (lapack.trtri_spec(6), 72.0),
            (lapack.getrf_spec(6, 6), 6 * 36 - 72),
            (lapack.geqrf_spec(8, 4), 2 * 8 * 16 - 2 * 64 / 3),
        ],
    )
    def test_flop_counts(self, spec, expected):
        assert spec[1] == pytest.approx(expected)

    def test_qr_update_specs_positive(self):
        for s in (
            lapack.geqrt_spec(16, 8),
            lapack.tpqrt_spec(16, 8),
            lapack.tpmqrt_spec(16, 8, 8),
            lapack.larfb_spec(16, 8, 8),
            lapack.larft_spec(16, 8),
            lapack.ormqr_spec(16, 8, 8),
        ):
            assert s[1] > 0


class TestLapackNumerics:
    def test_potrf(self):
        a = RNG.random((5, 5))
        spd = a @ a.T + 5 * np.eye(5)
        l = lapack.potrf(spd)
        assert np.allclose(l @ l.T, spd)
        assert np.allclose(l, np.tril(l))

    def test_trtri(self):
        l = np.tril(RNG.random((5, 5))) + 5 * np.eye(5)
        assert np.allclose(lapack.trtri(l) @ l, np.eye(5), atol=1e-12)

    def test_getrf(self):
        a = RNG.random((5, 5))
        p, l, u = lapack.getrf(a)
        assert np.allclose(p @ l @ u, a)

    def test_householder_T_matches_scipy_q(self):
        a = RNG.random((8, 4))
        y, t, r = lapack.qr_factor(a)
        q_full = np.eye(8) - y @ t @ y.T
        q_ref, r_ref = np.linalg.qr(a)
        # compare column spans via projector (sign-invariant)
        assert np.allclose(q_full[:, :4] @ r, a, atol=1e-12)
        assert np.allclose(np.abs(np.diag(r)), np.abs(np.diag(r_ref)))

    def test_apply_q_qt_inverse_pair(self):
        a = RNG.random((10, 4))
        y, t, _ = lapack.qr_factor(a)
        c = RNG.random((10, 6))
        roundtrip = lapack.apply_q(y, t, lapack.apply_qt(y, t, c))
        assert np.allclose(roundtrip, c, atol=1e-12)

    def test_qr_factor_orthogonality(self):
        a = RNG.random((12, 5))
        y, t, _ = lapack.qr_factor(a)
        q = lapack.apply_q(y, t, np.eye(12))
        assert np.allclose(q.T @ q, np.eye(12), atol=1e-11)

    def test_qr_factor_square(self):
        a = RNG.random((6, 6))
        y, t, r = lapack.qr_factor(a)
        assert np.allclose(lapack.apply_q(y, t, np.vstack([r])), a, atol=1e-12)

    def test_stacked_tpqrt_equivalent(self):
        # the tiled-QR building block: QR of [R; B] applied via (Y, T)
        r_top = np.triu(RNG.random((4, 4))) + 2 * np.eye(4)
        b = RNG.random((6, 4))
        stack = np.vstack([r_top, b])
        y, t, r_new = lapack.qr_factor(stack)
        c = RNG.random((10, 3))
        out = lapack.apply_qt(y, t, c)
        # consistency: Q^T stack == [r_new; 0]
        chk = lapack.apply_qt(y, t, stack)
        assert np.allclose(chk[:4], r_new, atol=1e-12)
        assert np.allclose(chk[4:], 0, atol=1e-12)
        assert out.shape == c.shape
