"""The durable result store: integrity, sharding, eviction, degradation.

Four layers under test (see ``repro.runner.store``): checksummed
envelope entries that quarantine instead of serving corruption, 256-way
sharding with LRU-by-atime eviction toward ``max_bytes`` (pinned keys
exempt), compute-through degradation when storage itself fails, and the
seeded storage fault plan that tears writes, fills the disk, drops
permissions, and flips bits deterministically.  The fuzz class asserts
the load-bearing invariant: under *any* storage fault pattern, every
result the runner returns is bit-identical to the fault-free serial
run — a corrupt entry is never served as a hit.
``REPRO_FS_FAULT_FUZZ_CASES`` scales the number of plans (CI runs 16).
"""

import json
import multiprocessing
import os
import stat
import warnings

import pytest

from repro.autotune import capital_cholesky_space, tolerance_sweep
from repro.autotune.tuner import (
    default_machine,
    ground_truth_requests,
    tuning_requests,
)
from repro.runner import (
    ComputeThroughCache,
    DegradedCacheError,
    FSFaultPlan,
    ResultCache,
    Runner,
    ShardedResultCache,
    execute_request,
    make_runner,
    request_key,
    write_atomic,
)
from repro.runner import faults as faults_mod
from repro.runner.faults import ENV_FS_PLAN, install_fs
from repro.runner.jobs import result_to_dict
from repro.runner.store import _decode_entry, _encode_entry

FUZZ_CASES = int(os.environ.get("REPRO_FS_FAULT_FUZZ_CASES", "2"))

KEY = "ab" * 32
KEY2 = "cd" * 32
KEY3 = "ef" * 32


@pytest.fixture(scope="module")
def space():
    return capital_cholesky_space(n=64, c=2, b0=4, nconf=3)


@pytest.fixture(scope="module")
def machine(space):
    return default_machine(space, seed=3)


@pytest.fixture(scope="module")
def batch(space, machine):
    """A mixed batch: ground truth plus one (policy, eps) tuning pass."""
    return (ground_truth_requests(space, machine, full_reps=2, seed=0)
            + tuning_requests(space, machine, "online", 0.25, reps=2, seed=0))


@pytest.fixture(scope="module")
def baseline(batch):
    return [result_to_dict(r) for r in Runner().run(batch)]


@pytest.fixture(scope="module")
def result(batch):
    """One real RunResult to store under synthetic keys."""
    return execute_request(batch[0])


@pytest.fixture(autouse=True)
def clean_fs_plan_state(monkeypatch):
    monkeypatch.delenv(ENV_FS_PLAN, raising=False)
    faults_mod._fs_plan_from_env.cache_clear()
    install_fs(None)
    yield
    install_fs(None)


# ----------------------------------------------------------------------
# the envelope
# ----------------------------------------------------------------------
class TestEnvelope:
    PAYLOAD = {"key": KEY, "result": {"version": 1}}

    def test_round_trip(self):
        data = _encode_entry(self.PAYLOAD)
        header = json.loads(data.split(b"\n", 1)[0])
        assert header["format"] == "repro-result-store"
        assert header["version"] == 1
        assert _decode_entry(data, KEY) == self.PAYLOAD

    def test_rejects_garbage_header(self):
        assert _decode_entry(b"not json\n{}", KEY) is None
        assert _decode_entry(b"no newline at all", KEY) is None
        assert _decode_entry(b"", KEY) is None

    def test_rejects_torn_payload(self):
        data = _encode_entry(self.PAYLOAD)
        for cut in (len(data) - 1, len(data) - 7, data.find(b"\n") + 2):
            assert _decode_entry(data[:cut], KEY) is None

    def test_rejects_single_flipped_bit_anywhere_in_payload(self):
        data = _encode_entry(self.PAYLOAD)
        body_start = data.find(b"\n") + 1
        for pos in range(body_start, len(data)):
            torn = bytearray(data)
            torn[pos] ^= 0x01
            assert _decode_entry(bytes(torn), KEY) is None

    def test_rejects_aliased_key(self):
        data = _encode_entry(self.PAYLOAD)
        assert _decode_entry(data, KEY2) is None

    def test_rejects_foreign_version(self):
        data = _encode_entry(self.PAYLOAD)
        header = json.loads(data.split(b"\n", 1)[0])
        header["version"] = 99
        forged = json.dumps(header).encode() + b"\n" + data.split(b"\n", 1)[1]
        assert _decode_entry(forged, KEY) is None


# ----------------------------------------------------------------------
# atomic publish
# ----------------------------------------------------------------------
class TestWriteAtomic:
    def test_respects_umask_not_mkstemp_0600(self, tmp_path):
        path = str(tmp_path / "entry.json")
        old = os.umask(0o022)
        try:
            write_atomic(path, b"data")
        finally:
            os.umask(old)
        mode = stat.S_IMODE(os.stat(path).st_mode)
        assert mode == 0o644  # not mkstemp's private 0600

    def test_no_temp_debris_after_success(self, tmp_path):
        write_atomic(str(tmp_path / "entry.json"), b"data")
        assert sorted(os.listdir(tmp_path)) == ["entry.json"]

    def test_legacy_cache_entries_are_group_readable(self, tmp_path, result):
        # the PR-1 bug: mkstemp published 0600 entries into shared dirs
        cache = ResultCache(str(tmp_path))
        old = os.umask(0o022)
        try:
            cache.put(KEY, result)
        finally:
            os.umask(old)
        mode = stat.S_IMODE(os.stat(tmp_path / f"{KEY}.json").st_mode)
        assert mode & 0o044 == 0o044


# ----------------------------------------------------------------------
# store basics
# ----------------------------------------------------------------------
class TestShardedBasics:
    def test_round_trip_and_shard_layout(self, tmp_path, result):
        cache = ShardedResultCache(str(tmp_path))
        assert cache.get(KEY) is None  # cold miss
        cache.put(KEY, result, fingerprint={"n": 64})
        entry = tmp_path / KEY[:2] / f"{KEY}.json"
        assert entry.exists()
        back = cache.get(KEY)
        assert back is not None
        assert result_to_dict(back) == result_to_dict(result)
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1,
                                 "corrupt": 0, "evicted": 0, "degraded": 0}
        assert len(cache) == 1

    def test_clear_removes_entries_and_debris(self, tmp_path, result):
        cache = ShardedResultCache(str(tmp_path))
        cache.put(KEY, result)
        cache.put(KEY2, result)
        (tmp_path / f"{KEY3}.corrupt").write_text("evidence")
        (tmp_path / KEY[:2] / "orphan.tmp").write_text("half")
        assert cache.clear() == 4
        assert len(cache) == 0
        assert cache.vacuum() == 0

    def test_vacuum_leaves_entries_alone(self, tmp_path, result):
        cache = ShardedResultCache(str(tmp_path))
        cache.put(KEY, result)
        (tmp_path / "junk.corrupt").write_text("x")
        (tmp_path / KEY[:2] / "junk.tmp").write_text("y")
        assert cache.vacuum() == 2
        assert cache.get(KEY) is not None

    def test_rejects_nonpositive_bound(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ShardedResultCache(str(tmp_path), max_bytes=0)


# ----------------------------------------------------------------------
# corruption quarantine
# ----------------------------------------------------------------------
class TestQuarantine:
    def _entry_path(self, tmp_path):
        return tmp_path / KEY[:2] / f"{KEY}.json"

    def test_torn_entry_is_quarantined_not_served(self, tmp_path, result):
        cache = ShardedResultCache(str(tmp_path))
        cache.put(KEY, result)
        path = self._entry_path(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # the torn publish
        assert cache.get(KEY) is None
        assert cache.corrupt == 1 and cache.misses == 1
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()
        # the second lookup is a plain miss, not a re-quarantine
        assert cache.get(KEY) is None
        assert cache.corrupt == 1 and cache.misses == 2

    def test_flipped_bit_is_quarantined(self, tmp_path, result):
        cache = ShardedResultCache(str(tmp_path))
        cache.put(KEY, result)
        path = self._entry_path(tmp_path)
        data = bytearray(path.read_bytes())
        data[-10] ^= 0x10
        path.write_bytes(bytes(data))
        assert cache.get(KEY) is None
        assert cache.corrupt == 1
        assert path.with_suffix(".corrupt").exists()

    def test_garbage_header_is_quarantined(self, tmp_path):
        shard = tmp_path / KEY[:2]
        shard.mkdir()
        (shard / f"{KEY}.json").write_text("{ not an envelope")
        cache = ShardedResultCache(str(tmp_path))
        assert cache.get(KEY) is None
        assert cache.corrupt == 1

    def test_overwrite_after_quarantine_serves_again(self, tmp_path, result):
        cache = ShardedResultCache(str(tmp_path))
        cache.put(KEY, result)
        self._entry_path(tmp_path).write_bytes(b"rotten")
        assert cache.get(KEY) is None
        cache.put(KEY, result)
        assert cache.get(KEY) is not None


# ----------------------------------------------------------------------
# legacy flat-layout compatibility
# ----------------------------------------------------------------------
class TestLegacyFallback:
    def test_legacy_entry_hits_and_migrates(self, tmp_path, result):
        legacy = ResultCache(str(tmp_path))
        legacy.put(KEY, result, fingerprint={"n": 64})
        cache = ShardedResultCache(str(tmp_path))
        back = cache.get(KEY)
        assert back is not None and cache.hits == 1
        assert result_to_dict(back) == result_to_dict(result)
        # migrated: now a checksummed envelope in its shard, flat gone
        sharded = tmp_path / KEY[:2] / f"{KEY}.json"
        assert sharded.exists()
        assert not (tmp_path / f"{KEY}.json").exists()
        payload = _decode_entry(sharded.read_bytes(), KEY)
        assert payload is not None and payload["fingerprint"] == {"n": 64}
        assert cache.get(KEY) is not None  # sharded path serves now

    def test_corrupt_legacy_entry_is_quarantined(self, tmp_path):
        (tmp_path / f"{KEY}.json").write_text("{ nope")
        cache = ShardedResultCache(str(tmp_path))
        assert cache.get(KEY) is None
        assert cache.corrupt == 1
        assert (tmp_path / f"{KEY}.corrupt").exists()

    def test_absent_key_is_a_plain_miss(self, tmp_path):
        cache = ShardedResultCache(str(tmp_path))
        assert cache.get(KEY) is None
        assert cache.stats()["misses"] == 1 and cache.corrupt == 0


# ----------------------------------------------------------------------
# bounded size: LRU eviction and pinning
# ----------------------------------------------------------------------
class TestEviction:
    def _entry_size(self, tmp_path, result):
        probe = ShardedResultCache(str(tmp_path / "probe"))
        probe.put(KEY, result)
        return os.path.getsize(tmp_path / "probe" / KEY[:2] / f"{KEY}.json")

    def _age(self, directory, key, ns):
        path = os.path.join(directory, key[:2], f"{key}.json")
        os.utime(path, ns=(ns, ns))

    def test_lru_entry_is_evicted_first(self, tmp_path, result):
        size = self._entry_size(tmp_path, result)
        d = str(tmp_path / "c")
        cache = ShardedResultCache(d, max_bytes=int(size * 2.5))
        cache.put(KEY, result)
        cache.put(KEY2, result)
        self._age(d, KEY, 1_000)       # ancient
        self._age(d, KEY2, 2_000_000)  # newer
        cache.put(KEY3, result)        # exceeds the bound
        assert cache.evicted == 1
        assert not os.path.exists(os.path.join(d, KEY[:2], f"{KEY}.json"))
        assert cache.get(KEY2) is not None
        assert cache.get(KEY3) is not None

    def test_hit_refreshes_recency(self, tmp_path, result):
        size = self._entry_size(tmp_path, result)
        d = str(tmp_path / "c")
        cache = ShardedResultCache(d, max_bytes=int(size * 2.5))
        cache.put(KEY, result)
        cache.put(KEY2, result)
        self._age(d, KEY, 1_000)
        self._age(d, KEY2, 2_000_000)
        assert cache.get(KEY) is not None  # bumps KEY to now
        cache.put(KEY3, result)
        assert cache.evicted == 1
        assert cache.get(KEY) is not None   # survived: recently used
        assert cache.get(KEY2) is None      # the actual LRU went

    def test_pinned_keys_are_never_evicted(self, tmp_path, result):
        size = self._entry_size(tmp_path, result)
        d = str(tmp_path / "c")
        cache = ShardedResultCache(d, max_bytes=int(size * 2.5))
        cache.put(KEY, result)
        cache.put(KEY2, result)
        self._age(d, KEY, 1_000)       # oldest, but pinned
        self._age(d, KEY2, 2_000_000)
        cache.pin([KEY])
        cache.put(KEY3, result)
        assert cache.evicted == 1
        assert cache.get(KEY) is not None   # pin beat LRU order
        assert cache.get(KEY2) is None
        cache.unpin([KEY])
        assert KEY not in cache._pins

    def test_stats_count_evictions(self, tmp_path, result):
        size = self._entry_size(tmp_path, result)
        cache = ShardedResultCache(str(tmp_path / "c"),
                                   max_bytes=int(size * 1.5))
        for key in (KEY, KEY2, KEY3):
            cache.put(key, result)
        assert cache.stats()["evicted"] == cache.evicted == 2
        assert len(cache) == 1

    def test_sweep_under_tight_bound_completes(self, tmp_path, space,
                                               machine):
        """Acceptance: a bounded cache never evicts the live sweep."""
        kw = dict(policies=("online",), tolerances=[0.25, 0.0625],
                  reps=1, full_reps=1)
        runner = make_runner(cache_dir=str(tmp_path / "c"),
                             cache_max_bytes=4096)  # a few entries' worth
        sweep = tolerance_sweep(space, machine, seed=0, runner=runner, **kw)
        assert len(sweep.points) == 2
        store = runner.cache.cache
        assert runner.cache.stats()["degraded"] == 0
        # the sweep's entire working set was pinned: over budget, but
        # nothing of the live grid was evicted, and pins were released
        assert store.evicted == 0
        assert store._total_bytes > 4096
        assert store._pins == set()
        n_entries = len(store)
        assert n_entries > 0
        # a different grid over the same directory *does* evict now:
        # the stale unpinned entries are the LRU victims
        runner2 = make_runner(cache_dir=str(tmp_path / "c"),
                              cache_max_bytes=4096)
        tolerance_sweep(space, machine, seed=1, runner=runner2, **kw)
        assert runner2.cache.cache.evicted > 0
        assert runner2.cache.stats()["degraded"] == 0


# ----------------------------------------------------------------------
# accounting sidecar
# ----------------------------------------------------------------------
class TestSidecar:
    def test_lifetime_counters_survive_across_instances(self, tmp_path,
                                                        result):
        d = str(tmp_path)
        first = ShardedResultCache(d)
        first.put(KEY, result)
        first.get(KEY)
        second = ShardedResultCache(d)
        second.put(KEY2, result)
        disk = second.disk_stats()
        assert disk["lifetime_stores"] == 2
        assert disk["lifetime_hits"] == 1
        assert disk["entries"] == 2
        assert disk["total_bytes"] > 0
        assert disk["shards"] == 2

    def test_sidecar_is_not_an_entry(self, tmp_path, result):
        cache = ShardedResultCache(str(tmp_path))
        cache.put(KEY, result)
        assert len(cache) == 1  # the sidecar file is not counted
        assert (tmp_path / "store-accounting.sidecar").exists()

    def test_lost_sidecar_rebuilds_from_scan(self, tmp_path, result):
        d = str(tmp_path)
        cache = ShardedResultCache(d)
        cache.put(KEY, result)
        os.unlink(os.path.join(d, "store-accounting.sidecar"))
        reopened = ShardedResultCache(d)
        assert reopened._total_bytes == os.path.getsize(
            os.path.join(d, KEY[:2], f"{KEY}.json"))

    def test_garbage_sidecar_is_ignored(self, tmp_path, result):
        d = str(tmp_path)
        ShardedResultCache(d).put(KEY, result)
        with open(os.path.join(d, "store-accounting.sidecar"), "w") as f:
            f.write("{ half a doc")
        reopened = ShardedResultCache(d)
        assert reopened._total_bytes > 0
        assert reopened.disk_stats()["lifetime_stores"] == 0


# ----------------------------------------------------------------------
# compute-through degradation
# ----------------------------------------------------------------------
class TestDegradation:
    def test_write_failure_downgrades_and_warns_once(self, tmp_path, result):
        install_fs(FSFaultPlan(rate=1.0, seed=7, actions=("enospc",)))
        cache = ComputeThroughCache(ShardedResultCache(str(tmp_path)))
        with pytest.warns(RuntimeWarning, match="compute-through") as rec:
            cache.put(KEY, result)
            cache.put(KEY2, result)  # already dead: skipped silently
        assert len(rec) == 1
        assert cache.get(KEY) is None  # dead: miss without touching disk
        stats = cache.stats()
        # one absorbed failure + one skipped put + one skipped get
        assert stats["degraded"] == 3
        assert stats["stores"] == 0
        install_fs(None)
        assert len(ShardedResultCache(str(tmp_path))) == 0

    def test_read_failure_downgrades(self, tmp_path, result):
        cache = ComputeThroughCache(ShardedResultCache(str(tmp_path)))
        cache.put(KEY, result)
        install_fs(FSFaultPlan(rate=1.0, seed=7, actions=("eacces",)))
        with pytest.warns(RuntimeWarning):
            assert cache.get(KEY) is None
        assert cache.stats()["degraded"] >= 1

    def test_unwrapped_store_raises(self, tmp_path, result):
        install_fs(FSFaultPlan(rate=1.0, seed=7, actions=("enospc",)))
        cache = ShardedResultCache(str(tmp_path))
        with pytest.raises(DegradedCacheError, match="ENOSPC"):
            cache.put(KEY, result)
        assert cache.degraded == 1

    def test_sweep_completes_on_dead_storage(self, tmp_path, space, machine):
        """A sweep that lost its disk still finishes on compute alone."""
        install_fs(FSFaultPlan(rate=1.0, seed=3, actions=("eacces",)))
        runner = make_runner(cache_dir=str(tmp_path / "c"))
        with pytest.warns(RuntimeWarning, match="compute-through"):
            sweep = tolerance_sweep(space, machine, policies=("online",),
                                    tolerances=[0.25], reps=1, full_reps=1,
                                    seed=0, runner=runner)
        assert len(sweep.points) == 1
        assert runner.cache.stats()["degraded"] > 0
        assert runner.executed() > 0 and runner.cache_hits() == 0


# ----------------------------------------------------------------------
# the storage fault plan itself
# ----------------------------------------------------------------------
class TestFSFaultPlan:
    def test_decisions_are_deterministic(self):
        a = FSFaultPlan(rate=0.5, seed=11)
        b = FSFaultPlan(rate=0.5, seed=11)
        keys = [f"{i:064x}" for i in range(64)]
        for op in ("read", "write"):
            assert [a.action_for(op, k) for k in keys] \
                == [b.action_for(op, k) for k in keys]

    def test_rate_zero_never_faults(self):
        plan = FSFaultPlan(rate=0.0, seed=1)
        assert all(plan.action_for("write", f"{i:064x}") is None
                   for i in range(32))

    def test_read_and_write_draw_from_their_own_pools(self):
        plan = FSFaultPlan(rate=1.0, seed=5)
        keys = [f"{i:064x}" for i in range(128)]
        assert {plan.action_for("read", k) for k in keys} \
            <= {"bitflip", "eacces"}
        assert {plan.action_for("write", k) for k in keys} \
            <= {"torn", "enospc", "eacces"}

    def test_actions_subset_restricts_the_draw(self):
        plan = FSFaultPlan(rate=1.0, seed=5, actions=("enospc",))
        keys = [f"{i:064x}" for i in range(32)]
        assert {plan.action_for("write", k) for k in keys} == {"enospc"}
        assert all(plan.action_for("read", k) is None for k in keys)

    def test_torn_length_is_a_strict_prefix(self):
        plan = FSFaultPlan(rate=1.0, seed=5)
        for i in range(32):
            n = plan.torn_length(f"{i:064x}", 1000)
            assert 0 <= n < 1000
        assert plan.torn_length(KEY, 1) == 0

    def test_flip_bit_changes_exactly_one_bit(self):
        plan = FSFaultPlan(rate=1.0, seed=5)
        data = bytes(range(256))
        flipped = plan.flip_bit(KEY, data)
        assert flipped != data and len(flipped) == len(data)
        diff = [a ^ b for a, b in zip(data, flipped) if a != b]
        assert len(diff) == 1 and bin(diff[0]).count("1") == 1
        assert plan.flip_bit(KEY, b"") == b""

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            FSFaultPlan(rate=1.5)
        with pytest.raises(ValueError, match="unknown fs fault action"):
            FSFaultPlan(rate=0.5, actions=("meteor",))
        with pytest.raises(ValueError, match="unknown fs operation"):
            FSFaultPlan(rate=0.5).action_for("mmap", KEY)

    def test_json_round_trip(self):
        plan = FSFaultPlan(rate=0.25, seed=9, actions=("torn", "enospc"))
        back = FSFaultPlan.from_json(plan.to_json())
        assert (back.rate, back.seed, back.actions) \
            == (plan.rate, plan.seed, plan.actions)
        assert "rate=0.25" in repr(plan)

    def test_env_activation_and_install_precedence(self, monkeypatch):
        env_plan = FSFaultPlan(rate=0.5, seed=1)
        monkeypatch.setenv(ENV_FS_PLAN, env_plan.to_json())
        faults_mod._fs_plan_from_env.cache_clear()
        active = faults_mod.active_fs_plan()
        assert active is not None and active.seed == 1
        installed = FSFaultPlan(rate=0.5, seed=2)
        install_fs(installed)
        assert faults_mod.active_fs_plan() is installed
        install_fs(None)
        assert faults_mod.active_fs_plan().seed == 1


# ----------------------------------------------------------------------
# concurrent multi-process access
# ----------------------------------------------------------------------
def _put_loop(directory, key, rounds, max_bytes):
    from repro.runner.jobs import result_from_dict

    cache = ShardedResultCache(directory, max_bytes=max_bytes)
    with open(os.path.join(directory, "seed-result.ref")) as f:
        res = result_from_dict(json.load(f))
    for i in range(rounds):
        cache.put(key if isinstance(key, str) else key[i % len(key)], res)


def _get_loop(directory, keys, rounds):
    cache = ShardedResultCache(directory)
    for i in range(rounds):
        cache.get(keys[i % len(keys)])  # may hit or miss, must not raise


def _spawn(target, *args):
    proc = multiprocessing.Process(target=target, args=args)
    proc.start()
    return proc


class TestConcurrency:
    @pytest.fixture()
    def seeded_dir(self, tmp_path, result):
        """A cache dir carrying a serialized result workers can load."""
        d = str(tmp_path)
        os.makedirs(d, exist_ok=True)
        with open(os.path.join(d, "seed-result.ref"), "w") as f:
            json.dump(result_to_dict(result), f)
        return d

    def test_two_processes_putting_the_same_key(self, seeded_dir, result):
        procs = [_spawn(_put_loop, seeded_dir, KEY, 50, None)
                 for _ in range(2)]
        for p in procs:
            p.join(60)
            assert p.exitcode == 0
        # one winner, and it verifies end to end
        cache = ShardedResultCache(seeded_dir)
        back = cache.get(KEY)
        assert back is not None and cache.corrupt == 0
        assert result_to_dict(back) == result_to_dict(result)

    def test_gets_racing_quarantine(self, seeded_dir):
        shard = os.path.join(seeded_dir, KEY[:2])
        os.makedirs(shard, exist_ok=True)
        with open(os.path.join(shard, f"{KEY}.json"), "w") as f:
            f.write("{ rotten")
        procs = [_spawn(_get_loop, seeded_dir, [KEY], 25) for _ in range(2)]
        for p in procs:
            p.join(60)
            assert p.exitcode == 0  # both raced, neither raised
        assert not os.path.exists(os.path.join(shard, f"{KEY}.json"))
        assert os.path.exists(os.path.join(shard, f"{KEY}.corrupt"))

    def test_eviction_racing_reader(self, seeded_dir, result):
        keys = [KEY, KEY2, KEY3, "12" * 32]
        # a bound tight enough that every put cycles the working set
        probe = ShardedResultCache(os.path.join(seeded_dir, "probe"))
        probe.put(KEY, result)
        size = os.path.getsize(
            os.path.join(seeded_dir, "probe", KEY[:2], f"{KEY}.json"))
        writer = _spawn(_put_loop, seeded_dir, keys, 80, int(size * 2.5))
        reader = _spawn(_get_loop, seeded_dir, keys, 200)
        for p in (writer, reader):
            p.join(120)
            assert p.exitcode == 0
        # whatever survived the churn still verifies
        cache = ShardedResultCache(seeded_dir)
        for key in keys:
            got = cache.get(key)
            if got is not None:
                assert result_to_dict(got) == result_to_dict(result)
        assert cache.corrupt == 0


# ----------------------------------------------------------------------
# the storage-fault fuzz leg: survivors are bit-identical, corrupt
# entries are never served
# ----------------------------------------------------------------------
class TestStorageFaultFuzz:
    @pytest.mark.parametrize("case", range(FUZZ_CASES))
    def test_results_bit_identical_under_any_fault_plan(
        self, case, batch, baseline, tmp_path, monkeypatch
    ):
        plan = FSFaultPlan(rate=0.3, seed=2000 + case)
        monkeypatch.setenv(ENV_FS_PLAN, plan.to_json())
        faults_mod._fs_plan_from_env.cache_clear()
        cache_dir = str(tmp_path / "c")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            # cold: every entry write races the plan's torn/enospc/eacces
            cold = make_runner(cache_dir=cache_dir)
            out = cold.run(batch)
            assert [result_to_dict(r) for r in out] == baseline
            # warm: reads race bitflips and eacces; a flipped entry must
            # quarantine into a recompute, never surface as a wrong hit
            warm = make_runner(cache_dir=cache_dir)
            out2 = warm.run(batch)
            assert [result_to_dict(r) for r in out2] == baseline
            assert warm.cache.stats()["hits"] + warm.executed() == len(batch)
        # and with the plan lifted, the store serves what survived —
        # all of it verified, bit-identical
        monkeypatch.delenv(ENV_FS_PLAN)
        faults_mod._fs_plan_from_env.cache_clear()
        clean = make_runner(cache_dir=cache_dir)
        out3 = clean.run(batch)
        assert [result_to_dict(r) for r in out3] == baseline
        assert clean.cache.stats()["degraded"] == 0
